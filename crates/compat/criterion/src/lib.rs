//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the subset of criterion's API the workspace uses:
//! `Criterion` with the `sample_size`/`measurement_time`/`warm_up_time`
//! builders, `bench_function` + `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Statistics are minimal —
//! mean and min/max per-iteration wall time printed to stdout — but the
//! harness shape (and thus `cargo bench` compatibility) is preserved.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up time before measurement starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark: warms up, sizes iterations to fill the
    /// measurement window, then reports per-iteration wall time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: also yields a per-iteration estimate for sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);

        let budget = self.measurement_time.as_nanos() as u64 / self.sample_size as u64;
        let iters_per_sample = (budget / per_iter.max(1)).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as u64 / iters_per_sample);
        }
        let mean = samples.iter().sum::<u64>() / samples.len() as u64;
        let min = samples.iter().min().copied().unwrap_or(0);
        let max = samples.iter().max().copied().unwrap_or(0);
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        self
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Per-sample timing driver handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function (both the plain and the
/// `name/config/targets` forms criterion supports).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1_000u64).sum::<u64>()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        targets = tiny_bench
    }

    criterion_main!(benches);

    #[test]
    fn harness_runs() {
        // The generated `main` exercises group + bench_function + iter.
        main();
    }
}
