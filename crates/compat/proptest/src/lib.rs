//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the subset of proptest's API the workspace uses: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`),
//! integer-range / tuple / `collection::vec` / `any::<T>()` strategies,
//! `ProptestConfig::with_cases`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Inputs are drawn deterministically from a hash of the test's module
//! path, name, and case index, so runs are reproducible. There is no
//! shrinking: a failing case panics with the ordinary assertion message
//! (the case is re-derivable from the test name + printed case number).

use std::ops::Range;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases executed per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case entropy source (SplitMix64 seeded from a hash
/// of the test identity and case index).
#[derive(Debug)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Builds the generator for case `case` of the test named `name`.
    pub fn new(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Gen {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A failed test case, produced by `return Err(TestCaseError::fail(..))`
/// inside a property body (the escape hatch for non-assertion failures).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of random values of one type (no shrinking).
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, g: &mut Gen) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (g.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, g: &mut Gen) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, g: &mut Gen) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (g.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, g: &mut Gen) -> Self::Value {
        (self.0.sample(g), self.1.sample(g))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, g: &mut Gen) -> Self::Value {
        (self.0.sample(g), self.1.sample(g), self.2.sample(g))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, g: &mut Gen) -> Self::Value {
        (
            self.0.sample(g),
            self.1.sample(g),
            self.2.sample(g),
            self.3.sample(g),
        )
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(g: &mut Gen) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(g: &mut Gen) -> $t {
                g.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(g: &mut Gen) -> bool {
        g.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, g: &mut Gen) -> T {
        T::arbitrary(g)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Gen, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, g: &mut Gen) -> Self::Value {
            let n = self.len.sample(g);
            (0..n).map(|_| self.element.sample(g)).collect()
        }
    }

    /// Vectors of values from `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over `cases` deterministic
/// random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let __label = concat!(module_path!(), "::", stringify!($name));
                let mut __gen = $crate::Gen::new(__label, __case as u64);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __gen);)+
                let __run = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    }
                ));
                match __run {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        panic!(
                            "proptest: {} failed at case {}/{}: {}",
                            __label, __case, __cfg.cases, e
                        );
                    }
                    Err(panic) => {
                        eprintln!(
                            "proptest: {} failed at case {}/{}",
                            __label, __case, __cfg.cases
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Property assertion; panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; panics (failing the case) when unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn gen_is_deterministic() {
        let mut a = crate::Gen::new("t", 3);
        let mut b = crate::Gen::new("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::Gen::new("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges, tuples, and vec strategies stay in bounds.
        #[test]
        fn strategies_in_bounds(
            x in 10u64..20,
            pair in (0u8..2, 5usize..9),
            items in prop::collection::vec((0u32..100, any::<u8>()), 1..30)
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(pair.0 < 2 && (5..9).contains(&pair.1));
            prop_assert!(!items.is_empty() && items.len() < 30);
            for (v, _b) in &items {
                prop_assert!(*v < 100);
            }
        }
    }

    proptest! {
        /// The no-config arm compiles and runs too.
        #[test]
        fn default_config_works(v in prop::collection::vec(any::<u64>(), 0..4)) {
            prop_assert!(v.len() < 4);
        }
    }
}
