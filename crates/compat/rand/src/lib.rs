//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the subset of `rand` 0.8's API the workspace uses:
//! the [`Rng`] extension trait (`gen`, `gen_range` over half-open integer
//! ranges, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::SmallRng`] (xoshiro256** seeded through SplitMix64, the same
//! construction upstream `SmallRng` uses on 64-bit targets). Streams are
//! deterministic per seed but not bit-identical to upstream; every
//! consumer in this repo makes statistical assertions only.

use std::ops::Range;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible uniformly at random (the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types samplable uniformly from a half-open range.
pub trait UniformSample: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`; `lo < hi` is required.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < 2^-64 per draw for every span this
                // workspace uses; acceptable for simulation workloads.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing random-value interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_and_floats_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(0usize..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.gen_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b}");
        }
        let heads = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&heads), "heads {heads}");
    }
}
