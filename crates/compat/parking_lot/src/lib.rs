//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the (small) subset of `parking_lot`'s API the workspace
//! uses — `Mutex`, `RwLock`, and `Condvar` with guard-returning lock
//! methods and no poisoning — implemented over `std::sync`. Semantics
//! match `parking_lot` for every call site in this repo: a panicked
//! holder does not poison the lock for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`] (parking_lot style:
/// the guard is passed by `&mut`).
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Blocks until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter. Returns whether a thread was woken (always
    /// `false` here: std does not report it; no call site consumes it).
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        false
    }

    /// Wakes all waiters. Return value as in [`Condvar::notify_one`].
    pub fn notify_all(&self) -> bool {
        self.0.notify_all();
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_unpoisoned() {
        let m = Arc::new(Mutex::new(0u32));
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Timeout path.
        {
            let mut g = pair.0.lock();
            let res = pair.1.wait_for(&mut g, Duration::from_millis(10));
            assert!(res.timed_out());
        }
        // Wake path.
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let mut g = pair.0.lock();
        while !*g {
            let res = pair.1.wait_for(&mut g, Duration::from_secs(5));
            assert!(!res.timed_out() || *g);
        }
        t.join().unwrap();
    }
}
