//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the subset the workspace uses: `channel::{unbounded,
//! Sender, Receiver}` with `send`/`recv`/`try_recv`/`recv_timeout` and
//! crossbeam's disconnect semantics, implemented over `std::sync::mpsc`.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// All senders have disconnected and the channel is drained.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Returns a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn timeout_then_delivery() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            let t = std::thread::spawn(move || tx.send(7u32).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
            t.join().unwrap();
        }
    }
}
