#![warn(missing_docs)]

//! LITE-Log: distributed atomic logging on LITE one-sided operations
//! (paper §8.1).
//!
//! The "one-sided concept pushed to an extreme": the global log and its
//! metadata live in LMRs on some node, and *creation, maintenance, and
//! access are performed entirely from remote* — the log's home node runs
//! no log code at all.
//!
//! Layout:
//!
//! * a metadata LMR holding three 64-bit words — `reserved` (bytes handed
//!   to writers), `committed` (transactions fully written), and `cleaned`
//!   (bytes reclaimed by the cleaner);
//! * a data LMR of `capacity` bytes used as a ring.
//!
//! Commit protocol (buffer locally → reserve → write → publish):
//!
//! 1. the writer buffers entries locally until commit time;
//! 2. `LT_fetch-add(reserved, total)` reserves a consecutive span;
//! 3. `LT_write` lands the whole transaction in one one-sided write;
//! 4. `LT_fetch-add(committed, 1)` publishes it.
//!
//! The cleaner scans committed transactions with `LT_read` and reclaims
//! space with `LT_fetch-add(cleaned, n)`.

use lite::{Lh, LiteError, LiteHandle, LiteResult, Perm};
use simnet::Ctx;

/// Byte offsets of the metadata words.
const META_RESERVED: u64 = 0;
const META_COMMITTED: u64 = 8;
const META_CLEANED: u64 = 16;
/// Metadata LMR size.
const META_BYTES: u64 = 64;

/// Magic tag heading each transaction record.
const TXN_MAGIC: u32 = 0x4C4F_4721; // "LOG!"

/// A writer's (or the cleaner's) view of one distributed log.
///
/// Each process opens its own `LiteLog` (lh's are per-process); all views
/// name the same pair of LMRs.
pub struct LiteLog {
    meta: Lh,
    data: Lh,
    capacity: u64,
    /// Client-side cache of the cleaner watermark: re-read (one LT_read)
    /// only when a reservation would overrun it, instead of on every
    /// commit. Keeps the commit fast path at fetch-add + write +
    /// fetch-add.
    cleaned_cache: std::cell::Cell<u64>,
}

/// One decoded transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Txn {
    /// Byte offset of the record in the log.
    pub offset: u64,
    /// The entries committed together.
    pub entries: Vec<Vec<u8>>,
}

impl LiteLog {
    /// Creates the log LMRs on `home` and opens a view. `capacity` is the
    /// data-ring size in bytes.
    pub fn create(
        h: &mut LiteHandle,
        ctx: &mut Ctx,
        home: usize,
        name: &str,
        capacity: u64,
    ) -> LiteResult<LiteLog> {
        let meta = h.lt_malloc(ctx, home, META_BYTES, &format!("{name}.meta"), Perm::RW)?;
        let data = h.lt_malloc(ctx, home, capacity, &format!("{name}.data"), Perm::RW)?;
        h.lt_memset(ctx, meta, 0, META_BYTES as usize, 0)?;
        Ok(LiteLog {
            meta,
            data,
            capacity,
            cleaned_cache: std::cell::Cell::new(0),
        })
    }

    /// Opens an existing log by name from any node.
    pub fn open(
        h: &mut LiteHandle,
        ctx: &mut Ctx,
        name: &str,
        capacity: u64,
    ) -> LiteResult<LiteLog> {
        let meta = h.lt_map(ctx, &format!("{name}.meta"))?;
        let data = h.lt_map(ctx, &format!("{name}.data"))?;
        Ok(LiteLog {
            meta,
            data,
            capacity,
            cleaned_cache: std::cell::Cell::new(0),
        })
    }

    /// Serialized size of a transaction with these entries.
    pub fn record_size(entries: &[&[u8]]) -> u64 {
        // magic + total + count, then (len, bytes) per entry.
        let mut sz = 12u64;
        for e in entries {
            sz += 4 + e.len() as u64;
        }
        // Keep records 8-byte aligned so metadata math stays simple.
        sz.div_ceil(8) * 8
    }

    /// Commits `entries` as one atomic transaction; returns the log
    /// offset. Fails with [`LiteError::OutOfBounds`] when the ring is
    /// full (cleaner too far behind).
    pub fn commit(&self, h: &mut LiteHandle, ctx: &mut Ctx, entries: &[&[u8]]) -> LiteResult<u64> {
        let size = Self::record_size(entries);
        // Reserve a consecutive span with one fetch-add (§8.1).
        let start = h.lt_fetch_add(ctx, self.meta, META_RESERVED, size)?;
        // Capacity check against the cached cleaner watermark; refresh it
        // (one LT_read) only when the cache says we would overrun.
        if start + size - self.cleaned_cache.get() > self.capacity {
            let mut b = [0u8; 8];
            h.lt_read(ctx, self.meta, META_CLEANED, &mut b)?;
            self.cleaned_cache.set(u64::from_le_bytes(b));
        }
        if start + size - self.cleaned_cache.get() > self.capacity {
            return Err(LiteError::OutOfBounds {
                offset: start,
                len: size as usize,
            });
        }
        // Serialize and write with a single LT_write.
        let mut rec = Vec::with_capacity(size as usize);
        rec.extend_from_slice(&TXN_MAGIC.to_le_bytes());
        rec.extend_from_slice(&(size as u32).to_le_bytes());
        rec.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for e in entries {
            rec.extend_from_slice(&(e.len() as u32).to_le_bytes());
            rec.extend_from_slice(e);
        }
        rec.resize(size as usize, 0);
        let ring_off = start % self.capacity;
        if ring_off + size <= self.capacity {
            h.lt_write(ctx, self.data, ring_off, &rec)?;
        } else {
            // Split the write at the wrap point.
            let first = (self.capacity - ring_off) as usize;
            h.lt_write(ctx, self.data, ring_off, &rec[..first])?;
            h.lt_write(ctx, self.data, 0, &rec[first..])?;
        }
        // Publish.
        h.lt_fetch_add(ctx, self.meta, META_COMMITTED, 1)?;
        Ok(start)
    }

    /// Number of committed transactions.
    pub fn committed(&self, h: &mut LiteHandle, ctx: &mut Ctx) -> LiteResult<u64> {
        let mut b = [0u8; 8];
        h.lt_read(ctx, self.meta, META_COMMITTED, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads the transaction at `offset` (entirely from remote).
    pub fn read_at(&self, h: &mut LiteHandle, ctx: &mut Ctx, offset: u64) -> LiteResult<Txn> {
        let mut hdr = [0u8; 12];
        self.read_ring(h, ctx, offset, &mut hdr)?;
        let magic = u32::from_le_bytes(hdr[0..4].try_into().expect("4"));
        if magic != TXN_MAGIC {
            return Err(LiteError::Remote(0xA0));
        }
        let size = u32::from_le_bytes(hdr[4..8].try_into().expect("4")) as u64;
        let count = u32::from_le_bytes(hdr[8..12].try_into().expect("4")) as usize;
        let mut body = vec![0u8; (size - 12) as usize];
        self.read_ring(h, ctx, offset + 12, &mut body)?;
        let mut entries = Vec::with_capacity(count);
        let mut pos = 0usize;
        for _ in 0..count {
            let len = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4")) as usize;
            pos += 4;
            entries.push(body[pos..pos + len].to_vec());
            pos += len;
        }
        Ok(Txn { offset, entries })
    }

    fn read_ring(
        &self,
        h: &mut LiteHandle,
        ctx: &mut Ctx,
        offset: u64,
        buf: &mut [u8],
    ) -> LiteResult<()> {
        let ring_off = offset % self.capacity;
        if ring_off + buf.len() as u64 <= self.capacity {
            h.lt_read(ctx, self.data, ring_off, buf)?;
        } else {
            let first = (self.capacity - ring_off) as usize;
            h.lt_read(ctx, self.data, ring_off, &mut buf[..first])?;
            h.lt_read(ctx, self.data, 0, &mut buf[first..])?;
        }
        Ok(())
    }

    /// Cleaner step: scans forward from `cleaned`, validates records, and
    /// reclaims up to `max_bytes`. Returns the transactions reclaimed.
    /// Runs entirely from remote, like everything else here.
    pub fn clean(&self, h: &mut LiteHandle, ctx: &mut Ctx, max_bytes: u64) -> LiteResult<Vec<Txn>> {
        let mut b = [0u8; 8];
        h.lt_read(ctx, self.meta, META_CLEANED, &mut b)?;
        let mut pos = u64::from_le_bytes(b);
        h.lt_read(ctx, self.meta, META_RESERVED, &mut b)?;
        let reserved = u64::from_le_bytes(b);
        let mut out = Vec::new();
        let mut reclaimed = 0u64;
        while pos < reserved && reclaimed < max_bytes {
            let txn = match self.read_at(h, ctx, pos) {
                Ok(t) => t,
                // An in-flight record (reserved but not yet written) stops
                // the scan; the cleaner retries later.
                Err(LiteError::Remote(0xA0)) => break,
                Err(e) => return Err(e),
            };
            let mut hdr = [0u8; 12];
            self.read_ring(h, ctx, pos, &mut hdr)?;
            let size = u32::from_le_bytes(hdr[4..8].try_into().expect("4")) as u64;
            // Reclaim: advance `cleaned` and scrub the magic so the slot
            // cannot be mistaken for a live record after wrap.
            h.lt_write(ctx, self.data, pos % self.capacity, &[0u8; 4])?;
            h.lt_fetch_add(ctx, self.meta, META_CLEANED, size)?;
            pos += size;
            reclaimed += size;
            out.push(txn);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lite::LiteCluster;
    use std::sync::Arc;

    #[test]
    fn commit_and_read_back() {
        let cluster = LiteCluster::start(3).unwrap();
        let mut h = cluster.attach(1).unwrap();
        let mut ctx = Ctx::new();
        let log = LiteLog::create(&mut h, &mut ctx, 2, "log", 1 << 20).unwrap();
        let off = log.commit(&mut h, &mut ctx, &[b"alpha", b"beta"]).unwrap();
        let txn = log.read_at(&mut h, &mut ctx, off).unwrap();
        assert_eq!(txn.entries, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(log.committed(&mut h, &mut ctx).unwrap(), 1);
    }

    #[test]
    fn concurrent_writers_get_disjoint_space() {
        let cluster = LiteCluster::start(3).unwrap();
        {
            let mut h = cluster.attach(0).unwrap();
            let mut ctx = Ctx::new();
            LiteLog::create(&mut h, &mut ctx, 2, "clog", 1 << 22).unwrap();
        }
        let mut joins = Vec::new();
        for node in 0..2 {
            let cluster = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                let mut h = cluster.attach(node).unwrap();
                let mut ctx = Ctx::new();
                let log = LiteLog::open(&mut h, &mut ctx, "clog", 1 << 22).unwrap();
                let mut offs = Vec::new();
                for i in 0..50u32 {
                    let e = [node as u8, i as u8, 0xEE];
                    offs.push((log.commit(&mut h, &mut ctx, &[&e]).unwrap(), e));
                }
                offs
            }));
        }
        let all: Vec<(u64, [u8; 3])> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        // All offsets disjoint.
        let mut offs: Vec<u64> = all.iter().map(|(o, _)| *o).collect();
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs.len(), 100);
        // And every transaction reads back intact from a third node.
        let mut h = cluster.attach(1).unwrap();
        let mut ctx = Ctx::new();
        let log = LiteLog::open(&mut h, &mut ctx, "clog", 1 << 22).unwrap();
        for (off, e) in all {
            let txn = log.read_at(&mut h, &mut ctx, off).unwrap();
            assert_eq!(txn.entries, vec![e.to_vec()]);
        }
        assert_eq!(log.committed(&mut h, &mut ctx).unwrap(), 100);
    }

    #[test]
    fn cleaner_reclaims_in_order() {
        let cluster = LiteCluster::start(2).unwrap();
        let mut h = cluster.attach(0).unwrap();
        let mut ctx = Ctx::new();
        let log = LiteLog::create(&mut h, &mut ctx, 1, "klog", 4096).unwrap();
        for i in 0..4u8 {
            log.commit(&mut h, &mut ctx, &[&[i; 16]]).unwrap();
        }
        let cleaned = log.clean(&mut h, &mut ctx, 1 << 20).unwrap();
        assert_eq!(cleaned.len(), 4);
        for (i, txn) in cleaned.iter().enumerate() {
            assert_eq!(txn.entries[0], vec![i as u8; 16]);
        }
        // Ring space is reusable: the log wraps past its capacity.
        for i in 0..120u8 {
            log.commit(&mut h, &mut ctx, &[&[i; 16]]).unwrap();
            if i % 8 == 7 {
                log.clean(&mut h, &mut ctx, 1 << 20).unwrap();
            }
        }
    }

    #[test]
    fn full_ring_reports_error() {
        let cluster = LiteCluster::start(2).unwrap();
        let mut h = cluster.attach(0).unwrap();
        let mut ctx = Ctx::new();
        let log = LiteLog::create(&mut h, &mut ctx, 1, "flog", 1024).unwrap();
        let big = vec![7u8; 400];
        log.commit(&mut h, &mut ctx, &[&big]).unwrap();
        log.commit(&mut h, &mut ctx, &[&big]).unwrap();
        assert!(matches!(
            log.commit(&mut h, &mut ctx, &[&big]),
            Err(LiteError::OutOfBounds { .. })
        ));
    }
}
