//! Open-loop workload generation for the KV service.
//!
//! The harness simulates millions of users hitting the store with
//! zipfian popularity and bursty arrival. Two properties matter more
//! than raw scale:
//!
//! - **Open loop / no coordinated omission.** The arrival schedule is
//!   precomputed from the spec's seed before any request is sent, so a
//!   slow server cannot push arrivals into the future and hide its own
//!   tail: an op's latency is measured from its *scheduled* arrival
//!   time, and a backlog shows up as queueing delay instead of
//!   silently thinning the load.
//! - **Determinism.** The schedule is a pure function of the
//!   [`WorkloadSpec`]; the same seed replays the same users, mix, and
//!   arrival times, which is what makes A/B runs across QoS modes
//!   comparable.
//!
//! Bursts use an on/off model: arrivals are drawn as a Poisson process
//! on a compressed "on-time" axis and then mapped onto wall time so
//! that every arrival lands inside an ON window and OFF windows carry
//! nothing. Mean offered load over a full cycle is `rate · on/(on+off)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simnet::{Nanos, Zipf};

/// Parameters of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Simulated user population; user ids double as key ranks, with
    /// rank 0 the most popular.
    pub users: usize,
    /// Zipf exponent of key popularity (0.99 = YCSB default).
    pub theta: f64,
    /// Percentage of operations that are reads (0..=100).
    pub read_pct: u8,
    /// Offered arrival rate while a burst is ON, in ops per second.
    pub rate_ops_per_sec: f64,
    /// Total operations in the schedule.
    pub ops: usize,
    /// Burst ON window length in ns (0 disables bursting: always on).
    pub burst_on_ns: u64,
    /// Gap between bursts in ns.
    pub burst_off_ns: u64,
    /// Seed; the schedule is a pure function of this spec.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            users: 1_000_000,
            theta: 0.99,
            read_pct: 90,
            rate_ops_per_sec: 50_000.0,
            ops: 10_000,
            burst_on_ns: 0,
            burst_off_ns: 0,
            seed: 1,
        }
    }
}

/// One scheduled operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpec {
    /// Scheduled (virtual) arrival time.
    pub at: Nanos,
    /// The user issuing it — also the key rank.
    pub user: usize,
    /// Read or write.
    pub is_read: bool,
}

impl WorkloadSpec {
    /// The key a user's data lives under.
    pub fn key_of(user: usize) -> Vec<u8> {
        format!("user:{user:08}").into_bytes()
    }

    /// Precomputes the full arrival schedule. Deterministic in the
    /// spec, and independent of anything the service later does.
    pub fn schedule(&self) -> Vec<OpSpec> {
        assert!(self.users > 0 && self.rate_ops_per_sec > 0.0);
        assert!(self.read_pct <= 100);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.users, self.theta);
        let mean_gap_ns = 1e9 / self.rate_ops_per_sec;
        let mut t_on = 0f64; // time on the compressed ON axis
        let mut out = Vec::with_capacity(self.ops);
        for _ in 0..self.ops {
            // Exponential inter-arrival (Poisson process) on the ON axis.
            let u: f64 = rng.gen();
            t_on += -(1.0 - u).ln() * mean_gap_ns;
            let user = zipf.sample(&mut rng);
            let is_read = rng.gen_range(0..100u32) < self.read_pct as u32;
            out.push(OpSpec {
                at: self.wall_of(t_on as Nanos),
                user,
                is_read,
            });
        }
        out
    }

    /// Maps a point on the ON axis onto wall time, skipping OFF gaps.
    fn wall_of(&self, t_on: Nanos) -> Nanos {
        if self.burst_on_ns == 0 || self.burst_off_ns == 0 {
            return t_on;
        }
        let cycle = self.burst_on_ns + self.burst_off_ns;
        (t_on / self.burst_on_ns) * cycle + (t_on % self.burst_on_ns)
    }

    /// Whether wall-time `t` falls inside an ON window.
    pub fn is_on(&self, t: Nanos) -> bool {
        if self.burst_on_ns == 0 || self.burst_off_ns == 0 {
            return true;
        }
        t % (self.burst_on_ns + self.burst_off_ns) < self.burst_on_ns
    }

    /// Analytic zipf probability of `rank` under this spec — the
    /// ground truth the generator is property-tested against.
    pub fn zipf_probability(&self, rank: usize) -> f64 {
        let h: f64 = (1..=self.users)
            .map(|k| 1.0 / (k as f64).powf(self.theta))
            .sum();
        (1.0 / ((rank + 1) as f64).powf(self.theta)) / h
    }
}

/// Exact percentile over raw latency samples (the harness-side
/// complement of the kernel's log-bucketed histograms). Sorts a copy;
/// fine for bench-sized sample sets.
pub fn exact_percentile(samples: &[Nanos], pct: f64) -> Nanos {
    if samples.is_empty() {
        return 0;
    }
    let mut v = samples.to_vec();
    v.sort_unstable();
    let idx = ((pct / 100.0) * (v.len() - 1) as f64).round() as usize;
    v[idx.min(v.len() - 1)]
}
