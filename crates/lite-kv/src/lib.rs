//! `lite-kv`: a replicated KV/event-log service over LITE RPC.
//!
//! The paper validates LITE with a ten-machine memcached-style store
//! (§5.2); this crate builds the production-shaped version of that
//! experiment on top of everything the repo has grown since: writes flow
//! through a single leader that assigns a total order by committing each
//! update to a [`lite_log::LiteLog`], the leader streams committed
//! updates to follower replicas with `lt_multicast_rpc`, and reads are
//! served locally by any replica. The log is the source of truth — a
//! follower that misses replication frames (slow, paused, or crashed)
//! catches up by reading the log directly with one-sided `LT_read`s, the
//! same way the paper's applications sidestep their servers' CPUs.
//!
//! Consistency is per-session: [`SessionMode::ReadYourWrites`] threads
//! the client's last-written sequence number through its reads and falls
//! back to the leader when a replica has not applied that far yet;
//! [`SessionMode::Eventual`] takes whatever the chosen replica has.
//! Values live in a per-replica LMR arena, so capacity overflow rides on
//! `lite::mm` tiering — hot keys stay resident, cold values spill to
//! swap nodes and fault back on access.
//!
//! The [`workload`] module is the load side of the story: an open-loop
//! (coordinated-omission-free) arrival schedule over millions of
//! simulated users with zipfian popularity, a configurable read/write
//! mix, and bursty on/off arrival — precomputed from a seed so the
//! schedule is independent of service time by construction. The
//! `kvbench` bin in `crates/bench` drives it and emits an SLO report.
//!
//! See DESIGN.md §15 for the replication protocol and its guarantees.

mod service;
pub mod workload;

pub use service::{KvClient, KvEvent, KvService, KvSpec, SessionMode};

use lite::LiteError;

/// Errors surfaced by the KV service and client.
#[derive(Debug)]
pub enum KvError {
    /// A LITE-layer failure (transport, timeout, permissions, ...).
    Lite(LiteError),
    /// The replica value arenas are full; the write was refused before
    /// entering the log, so no replica state changed.
    StoreFull,
    /// The ordering log is full (cleaner pinned by a lagging follower).
    LogFull,
    /// A reply that does not parse — protocol corruption.
    BadReply,
}

impl From<LiteError> for KvError {
    fn from(e: LiteError) -> Self {
        KvError::Lite(e)
    }
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Lite(e) => write!(f, "lite error: {e:?}"),
            KvError::StoreFull => write!(f, "value arena full"),
            KvError::LogFull => write!(f, "ordering log full"),
            KvError::BadReply => write!(f, "malformed reply"),
        }
    }
}

impl std::error::Error for KvError {}

/// Result alias for this crate.
pub type KvResult<T> = Result<T, KvError>;
