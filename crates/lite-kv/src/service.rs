//! The replicated KV service proper: leader, followers, replicator, and
//! the client. See the crate docs and DESIGN.md §15 for the protocol.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::Duration;

use lite::{Lh, LiteCluster, LiteError, LiteHandle, Perm, Priority, USER_FUNC_MIN};
use lite_log::LiteLog;
use simnet::Ctx;

use crate::{KvError, KvResult};

/// Offset the three service functions claim above `spec.func_base`.
const FN_PUT: u8 = 0;
const FN_GET: u8 = 1;
const FN_REPL: u8 = 2;

/// GET reply status bytes.
const GET_HIT: u8 = 0;
const GET_MISS: u8 = 1;
const GET_BEHIND: u8 = 2;

/// PUT reply status bytes.
const PUT_OK: u8 = 0;
const PUT_STORE_FULL: u8 = 1;
const PUT_LOG_FULL: u8 = 2;

/// How long a follower sits out of the replication fan-out after a
/// failed multicast before the replicator probes it again (rounds).
const DOWN_ROUNDS: u32 = 20;

/// Value arena allocations are rounded up to this, so in-place
/// overwrites absorb small size changes.
const ARENA_ALIGN: u64 = 8;

/// Static description of one KV service instance.
#[derive(Debug, Clone)]
pub struct KvSpec {
    /// Service name; prefixes every LMR the service allocates.
    pub name: String,
    /// Node hosting the leader (write path + ordering log).
    pub leader: usize,
    /// Follower replica nodes (read path + redundancy).
    pub followers: Vec<usize>,
    /// First of three consecutive RPC function ids (PUT/GET/REPL).
    pub func_base: u8,
    /// Byte capacity of the ordering log ring.
    pub log_capacity: u64,
    /// Byte capacity of each replica's value arena.
    pub arena_bytes: u64,
    /// Largest value a client may read back (sizes reply buffers).
    pub max_value: usize,
    /// Max updates streamed per replication multicast.
    pub repl_batch: usize,
    /// Per-node artificial apply cost (virtual ns per update), for
    /// modelling deliberately slow consumer replicas.
    pub slow_followers: Vec<(usize, u64)>,
}

impl KvSpec {
    /// A spec with defaults sized for tests and CI smoke runs.
    pub fn new(name: &str, leader: usize, followers: &[usize]) -> KvSpec {
        KvSpec {
            name: name.to_string(),
            leader,
            followers: followers.to_vec(),
            func_base: USER_FUNC_MIN,
            log_capacity: 4 << 20,
            arena_bytes: 1 << 20,
            max_value: 4096,
            repl_batch: 32,
            slow_followers: Vec::new(),
        }
    }

    /// All replica nodes, leader first.
    pub fn replicas(&self) -> Vec<usize> {
        let mut v = vec![self.leader];
        v.extend_from_slice(&self.followers);
        v
    }

    fn fn_put(&self) -> u8 {
        self.func_base + FN_PUT
    }
    fn fn_get(&self) -> u8 {
        self.func_base + FN_GET
    }
    fn fn_repl(&self) -> u8 {
        self.func_base + FN_REPL
    }

    fn apply_delay(&self, node: usize) -> u64 {
        self.slow_followers
            .iter()
            .find(|(n, _)| *n == node)
            .map_or(0, |(_, d)| *d)
    }
}

/// Per-replica state shared between the service threads and the
/// accessors tests use.
struct ReplicaState {
    node: usize,
    /// Highest sequence number applied to this replica's store.
    applied: AtomicU64,
    /// Log offset of the record carrying `applied + 1`.
    next_off: AtomicU64,
    /// Test hook: a paused follower acks but does not apply, modelling
    /// a stalled consumer; it catches up from the log when resumed.
    paused: AtomicBool,
}

/// One record of the event log, as returned by [`KvClient::events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvEvent {
    /// Log offset of this record.
    pub offset: u64,
    /// Offset of the next record (pass back to continue scanning).
    pub next: u64,
    /// Key written.
    pub key: Vec<u8>,
    /// Value written.
    pub value: Vec<u8>,
}

/// Read-consistency mode of a [`KvClient`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionMode {
    /// Reads take whatever the chosen replica has applied — possibly
    /// stale, never blocking on replication.
    Eventual,
    /// Reads carry the session's last written sequence number; a replica
    /// that has not applied that far reports "behind" and the client
    /// retries on the leader.
    ReadYourWrites,
}

// ---------------------------------------------------------------------------
// Wire encoding (little-endian throughout).
// ---------------------------------------------------------------------------

fn enc_put(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(2 + key.len() + value.len());
    b.extend_from_slice(&(key.len() as u16).to_le_bytes());
    b.extend_from_slice(key);
    b.extend_from_slice(value);
    b
}

fn dec_put(req: &[u8]) -> Option<(&[u8], &[u8])> {
    let klen = u16::from_le_bytes(req.get(0..2)?.try_into().ok()?) as usize;
    let key = req.get(2..2 + klen)?;
    Some((key, &req[2 + klen..]))
}

fn enc_get(need_seq: u64, key: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(8 + key.len());
    b.extend_from_slice(&need_seq.to_le_bytes());
    b.extend_from_slice(key);
    b
}

struct Frame {
    seq: u64,
    off: u64,
    key: Vec<u8>,
    value: Vec<u8>,
}

fn enc_frames(frames: &[Frame]) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&(frames.len() as u32).to_le_bytes());
    for f in frames {
        b.extend_from_slice(&f.seq.to_le_bytes());
        b.extend_from_slice(&f.off.to_le_bytes());
        b.extend_from_slice(&(f.key.len() as u16).to_le_bytes());
        b.extend_from_slice(&(f.value.len() as u32).to_le_bytes());
        b.extend_from_slice(&f.key);
        b.extend_from_slice(&f.value);
    }
    b
}

fn dec_frames(req: &[u8]) -> Option<Vec<Frame>> {
    let count = u32::from_le_bytes(req.get(0..4)?.try_into().ok()?) as usize;
    let mut pos = 4usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let seq = u64::from_le_bytes(req.get(pos..pos + 8)?.try_into().ok()?);
        let off = u64::from_le_bytes(req.get(pos + 8..pos + 16)?.try_into().ok()?);
        let klen = u16::from_le_bytes(req.get(pos + 16..pos + 18)?.try_into().ok()?) as usize;
        let vlen = u32::from_le_bytes(req.get(pos + 18..pos + 22)?.try_into().ok()?) as usize;
        pos += 22;
        let key = req.get(pos..pos + klen)?.to_vec();
        pos += klen;
        let value = req.get(pos..pos + vlen)?.to_vec();
        pos += vlen;
        out.push(Frame {
            seq,
            off,
            key,
            value,
        });
    }
    Some(out)
}

/// Size of the log record a (key, value) update commits as.
fn update_record_size(key: &[u8], value: &[u8]) -> u64 {
    LiteLog::record_size(&[key, value])
}

// ---------------------------------------------------------------------------
// Replica store: a bump-allocated value arena (an LMR, so mm tiering
// applies) plus an in-memory index.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct Loc {
    off: u64,
    len: u32,
    cap: u32,
}

struct Store {
    arena: Lh,
    cap: u64,
    bump: u64,
    index: HashMap<Vec<u8>, Loc>,
}

impl Store {
    fn create(h: &mut LiteHandle, ctx: &mut Ctx, spec: &KvSpec, node: usize) -> Store {
        let arena = h
            .lt_malloc(
                ctx,
                node,
                spec.arena_bytes,
                &format!("{}.arena{}", spec.name, node),
                Perm::RW,
            )
            .expect("kv replica arena allocation");
        Store {
            arena,
            cap: spec.arena_bytes,
            bump: 0,
            index: HashMap::new(),
        }
    }

    fn aligned(len: usize) -> u64 {
        (len.max(1) as u64).div_ceil(ARENA_ALIGN) * ARENA_ALIGN
    }

    /// Whether `apply` would succeed — checked on the leader *before*
    /// the log commit, so only applyable updates enter the order.
    fn can_apply(&self, key: &[u8], vlen: usize) -> bool {
        match self.index.get(key) {
            Some(loc) if vlen <= loc.cap as usize => true,
            _ => self.bump + Self::aligned(vlen) <= self.cap,
        }
    }

    fn apply(
        &mut self,
        h: &mut LiteHandle,
        ctx: &mut Ctx,
        key: &[u8],
        value: &[u8],
    ) -> KvResult<()> {
        if let Some(loc) = self.index.get_mut(key) {
            if value.len() <= loc.cap as usize {
                if !value.is_empty() {
                    h.lt_write(ctx, self.arena, loc.off, value)?;
                }
                loc.len = value.len() as u32;
                return Ok(());
            }
        }
        let need = Self::aligned(value.len());
        if self.bump + need > self.cap {
            return Err(KvError::StoreFull);
        }
        let off = self.bump;
        if !value.is_empty() {
            h.lt_write(ctx, self.arena, off, value)?;
        }
        self.bump += need;
        self.index.insert(
            key.to_vec(),
            Loc {
                off,
                len: value.len() as u32,
                cap: need as u32,
            },
        );
        Ok(())
    }

    fn get(&self, h: &mut LiteHandle, ctx: &mut Ctx, key: &[u8]) -> KvResult<Option<Vec<u8>>> {
        let Some(loc) = self.index.get(key) else {
            return Ok(None);
        };
        let mut buf = vec![0u8; loc.len as usize];
        if !buf.is_empty() {
            h.lt_read(ctx, self.arena, loc.off, &mut buf)?;
        }
        Ok(Some(buf))
    }
}

// ---------------------------------------------------------------------------
// Service.
// ---------------------------------------------------------------------------

/// A running KV service: one leader thread, one replicator thread, and
/// one thread per follower, all polling their node's RPC queues.
pub struct KvService {
    spec: KvSpec,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    replicas: Vec<Arc<ReplicaState>>,
    lag: Arc<AtomicU64>,
}

impl KvService {
    /// Creates the log and arenas, starts all service threads, and
    /// returns once every replica is serving.
    pub fn spawn(cluster: &Arc<LiteCluster>, spec: KvSpec) -> KvService {
        let stop = Arc::new(AtomicBool::new(false));
        let lag = Arc::new(AtomicU64::new(0));
        let replicas: Vec<Arc<ReplicaState>> = spec
            .replicas()
            .iter()
            .map(|&node| {
                Arc::new(ReplicaState {
                    node,
                    applied: AtomicU64::new(0),
                    next_off: AtomicU64::new(0),
                    paused: AtomicBool::new(false),
                })
            })
            .collect();
        // Leader creates the shared LMRs before followers open them;
        // everyone (plus the spawner) meets at `ready` before traffic.
        let log_ready = Arc::new(Barrier::new(1 + spec.followers.len()));
        let ready = Arc::new(Barrier::new(2 + spec.followers.len()));
        let mut threads = Vec::new();

        // Leader.
        threads.push({
            let cluster = Arc::clone(cluster);
            let spec = spec.clone();
            let stop = Arc::clone(&stop);
            let state = Arc::clone(&replicas[0]);
            let log_ready = Arc::clone(&log_ready);
            let ready = Arc::clone(&ready);
            std::thread::spawn(move || {
                let mut h = cluster.attach(spec.leader).expect("leader attach");
                let mut ctx = Ctx::new();
                let log =
                    LiteLog::create(&mut h, &mut ctx, spec.leader, &spec.name, spec.log_capacity)
                        .expect("kv log create");
                let mut store = Store::create(&mut h, &mut ctx, &spec, spec.leader);
                h.register_rpc(spec.fn_put()).expect("register PUT");
                h.register_rpc(spec.fn_get()).expect("register GET");
                log_ready.wait();
                ready.wait();
                serve_leader(
                    &cluster, &spec, &stop, &state, &mut h, &mut ctx, &log, &mut store,
                );
            })
        });

        // Followers.
        for (i, &node) in spec.followers.iter().enumerate() {
            let cluster = Arc::clone(cluster);
            let spec = spec.clone();
            let stop = Arc::clone(&stop);
            let state = Arc::clone(&replicas[1 + i]);
            let log_ready = Arc::clone(&log_ready);
            let ready = Arc::clone(&ready);
            threads.push(std::thread::spawn(move || {
                log_ready.wait();
                let mut h = cluster.attach(node).expect("follower attach");
                let mut ctx = Ctx::new();
                let log = LiteLog::open(&mut h, &mut ctx, &spec.name, spec.log_capacity)
                    .expect("kv log open");
                let mut store = Store::create(&mut h, &mut ctx, &spec, node);
                h.register_rpc(spec.fn_repl()).expect("register REPL");
                h.register_rpc(spec.fn_get()).expect("register GET");
                ready.wait();
                serve_follower(
                    &cluster, &spec, &stop, &state, &mut h, &mut ctx, &log, &mut store,
                );
            }));
        }

        ready.wait();

        // Replicator (runs on the leader node with its own handle).
        threads.push({
            let cluster = Arc::clone(cluster);
            let spec = spec.clone();
            let stop = Arc::clone(&stop);
            let leader_state = Arc::clone(&replicas[0]);
            let lag = Arc::clone(&lag);
            std::thread::spawn(move || {
                run_replicator(&cluster, &spec, &stop, &leader_state, &lag);
            })
        });

        KvService {
            spec,
            stop,
            threads,
            replicas,
            lag,
        }
    }

    /// The spec this service was started with.
    pub fn spec(&self) -> &KvSpec {
        &self.spec
    }

    /// Sequence number the leader has committed and applied.
    pub fn committed_seq(&self) -> u64 {
        self.replicas[0].applied.load(Ordering::Acquire)
    }

    /// Sequence number `node`'s replica has applied.
    pub fn applied_seq(&self, node: usize) -> u64 {
        self.replicas
            .iter()
            .find(|r| r.node == node)
            .map_or(0, |r| r.applied.load(Ordering::Acquire))
    }

    /// Last replication lag the replicator computed (committed minus
    /// the slowest follower's acknowledged seq).
    pub fn replication_lag(&self) -> u64 {
        self.lag.load(Ordering::Acquire)
    }

    /// Stalls `node`'s apply loop: it keeps acking (so the leader sees
    /// it alive) but stops applying, and its staleness grows.
    pub fn pause_follower(&self, node: usize) {
        if let Some(r) = self.replicas.iter().find(|r| r.node == node) {
            r.paused.store(true, Ordering::Release);
        }
    }

    /// Resumes `node`; it catches up from the log on the next frame.
    pub fn resume_follower(&self, node: usize) {
        if let Some(r) = self.replicas.iter().find(|r| r.node == node) {
            r.paused.store(false, Ordering::Release);
        }
    }

    /// Stops all service threads and waits for them.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Poll backoff when a service thread finds its queues empty.
const IDLE_SLEEP: Duration = Duration::from_micros(50);

#[allow(clippy::too_many_arguments)]
fn serve_leader(
    cluster: &Arc<LiteCluster>,
    spec: &KvSpec,
    stop: &AtomicBool,
    state: &ReplicaState,
    h: &mut LiteHandle,
    ctx: &mut Ctx,
    log: &LiteLog,
    store: &mut Store,
) {
    let kernel = Arc::clone(cluster.kernel(spec.leader));
    while !stop.load(Ordering::Acquire) {
        let mut busy = false;
        // Writes: order through the log, apply locally, ack with seq.
        while let Ok(Some(call)) = h.lt_try_recv_rpc(ctx, spec.fn_put()) {
            busy = true;
            let reply = match dec_put(&call.input) {
                Some((key, value)) if store.can_apply(key, value.len()) => {
                    match log.commit(h, ctx, &[key, value]) {
                        Ok(off) => {
                            store.apply(h, ctx, key, value).expect("checked apply");
                            let seq = state.applied.load(Ordering::Acquire) + 1;
                            state.applied.store(seq, Ordering::Release);
                            state
                                .next_off
                                .store(off + update_record_size(key, value), Ordering::Release);
                            kernel.note_kv_put();
                            let mut r = vec![PUT_OK];
                            r.extend_from_slice(&seq.to_le_bytes());
                            r
                        }
                        Err(LiteError::OutOfBounds { .. }) => vec![PUT_LOG_FULL],
                        Err(_) => vec![PUT_LOG_FULL],
                    }
                }
                Some(_) => vec![PUT_STORE_FULL],
                None => vec![PUT_STORE_FULL],
            };
            let _ = h.lt_reply_rpc(ctx, &call, &reply);
        }
        busy |= serve_gets(spec, state, &kernel, h, ctx, store);
        if !busy {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

/// Drains the GET queue; shared by leader and followers. Returns
/// whether any call was served.
fn serve_gets(
    spec: &KvSpec,
    state: &ReplicaState,
    kernel: &lite::LiteKernel,
    h: &mut LiteHandle,
    ctx: &mut Ctx,
    store: &Store,
) -> bool {
    let mut busy = false;
    while let Ok(Some(call)) = h.lt_try_recv_rpc(ctx, spec.fn_get()) {
        busy = true;
        kernel.note_kv_get();
        let applied = state.applied.load(Ordering::Acquire);
        let reply = match call.input.get(0..8) {
            Some(need) => {
                let need = u64::from_le_bytes(need.try_into().expect("8 bytes"));
                let key = &call.input[8..];
                if need > applied {
                    let mut r = vec![GET_BEHIND];
                    r.extend_from_slice(&applied.to_le_bytes());
                    r
                } else {
                    match store.get(h, ctx, key) {
                        Ok(Some(v)) => {
                            let mut r = vec![GET_HIT];
                            r.extend_from_slice(&applied.to_le_bytes());
                            r.extend_from_slice(&v);
                            r
                        }
                        _ => {
                            let mut r = vec![GET_MISS];
                            r.extend_from_slice(&applied.to_le_bytes());
                            r
                        }
                    }
                }
            }
            None => vec![GET_MISS, 0, 0, 0, 0, 0, 0, 0, 0],
        };
        let _ = h.lt_reply_rpc(ctx, &call, &reply);
    }
    busy
}

#[allow(clippy::too_many_arguments)]
fn serve_follower(
    cluster: &Arc<LiteCluster>,
    spec: &KvSpec,
    stop: &AtomicBool,
    state: &ReplicaState,
    h: &mut LiteHandle,
    ctx: &mut Ctx,
    log: &LiteLog,
    store: &mut Store,
) {
    let kernel = Arc::clone(cluster.kernel(state.node));
    let delay = spec.apply_delay(state.node);
    let mut idle_rounds = 0u32;
    while !stop.load(Ordering::Acquire) {
        let mut busy = false;
        // Replication stream: always drained and acked promptly (the
        // leader must never block on a slow consumer); applied unless
        // paused. A gap means missed frames — recover from the log.
        while let Ok(Some(call)) = h.lt_try_recv_rpc(ctx, spec.fn_repl()) {
            busy = true;
            if !state.paused.load(Ordering::Acquire) {
                for f in dec_frames(&call.input).unwrap_or_default() {
                    apply_stream_frame(state, h, ctx, log, store, &f, delay);
                }
            }
            let mut r = Vec::with_capacity(16);
            r.extend_from_slice(&state.applied.load(Ordering::Acquire).to_le_bytes());
            r.extend_from_slice(&state.next_off.load(Ordering::Acquire).to_le_bytes());
            let _ = h.lt_reply_rpc(ctx, &call, &r);
        }
        busy |= serve_gets(spec, state, &kernel, h, ctx, store);
        if busy {
            idle_rounds = 0;
            continue;
        }
        // Idle anti-entropy: a follower that was paused (or missed the
        // stream entirely) pulls itself forward from the log without
        // waiting for the leader to send anything.
        idle_rounds += 1;
        if idle_rounds.is_multiple_of(20) && !state.paused.load(Ordering::Acquire) {
            if let Ok(target) = log.committed(h, ctx) {
                if target > state.applied.load(Ordering::Acquire) {
                    catch_up_from_log(state, h, ctx, log, store, target, delay, spec.repl_batch);
                    continue;
                }
            }
        }
        std::thread::sleep(IDLE_SLEEP);
    }
}

/// Replays log records with one-sided reads until `state` reaches
/// `target` or `max` records were applied (the LITE move: recovery
/// reads the leader's memory directly, never its CPU). Returns whether
/// `target` was reached.
#[allow(clippy::too_many_arguments)]
fn catch_up_from_log(
    state: &ReplicaState,
    h: &mut LiteHandle,
    ctx: &mut Ctx,
    log: &LiteLog,
    store: &mut Store,
    target: u64,
    delay: u64,
    max: usize,
) -> bool {
    let mut applied = state.applied.load(Ordering::Acquire);
    let mut steps = 0usize;
    while applied < target && steps < max {
        let off = state.next_off.load(Ordering::Acquire);
        let Ok(txn) = log.read_at(h, ctx, off) else {
            return false; // record not readable yet; retry later
        };
        let [key, value] = &txn.entries[..] else {
            return false;
        };
        if store.apply(h, ctx, key, value).is_err() {
            return false;
        }
        if delay > 0 {
            ctx.work(delay);
        }
        applied += 1;
        steps += 1;
        state.applied.store(applied, Ordering::Release);
        state
            .next_off
            .store(off + update_record_size(key, value), Ordering::Release);
    }
    applied >= target
}

/// Applies one replication frame, first closing any gap (missed
/// frames) by replaying the log.
fn apply_stream_frame(
    state: &ReplicaState,
    h: &mut LiteHandle,
    ctx: &mut Ctx,
    log: &LiteLog,
    store: &mut Store,
    frame: &Frame,
    delay: u64,
) {
    if frame.seq <= state.applied.load(Ordering::Acquire) {
        return; // duplicate (leader re-streamed after a lost ack)
    }
    if !catch_up_from_log(state, h, ctx, log, store, frame.seq - 1, delay, usize::MAX) {
        return;
    }
    if store.apply(h, ctx, &frame.key, &frame.value).is_err() {
        return;
    }
    if delay > 0 {
        ctx.work(delay);
    }
    state.applied.store(frame.seq, Ordering::Release);
    state.next_off.store(
        frame.off + update_record_size(&frame.key, &frame.value),
        Ordering::Release,
    );
}

/// The leader-side replication pump: streams committed updates to the
/// followers in multicast batches, tracks acknowledgements, publishes
/// the lag gauge, and cleans the log behind the slowest ack.
fn run_replicator(
    cluster: &Arc<LiteCluster>,
    spec: &KvSpec,
    stop: &AtomicBool,
    leader: &ReplicaState,
    lag: &AtomicU64,
) {
    let mut h = cluster.attach(spec.leader).expect("replicator attach");
    let mut ctx = Ctx::new();
    let log = LiteLog::open(&mut h, &mut ctx, &spec.name, spec.log_capacity)
        .expect("replicator log open");
    let kernel = Arc::clone(cluster.kernel(spec.leader));
    let n = spec.followers.len();
    let mut acked = vec![0u64; n]; // seq each follower acknowledged
    let mut acked_off = vec![0u64; n]; // their matching log offsets
    let mut down = vec![0u32; n]; // rounds left in a failure backoff
    let mut repl_seq = 0u64; // last seq streamed
    let mut repl_off = 0u64; // offset of seq repl_seq + 1
    let mut cleaned = 0u64; // log bytes already reclaimed
    let mut idle_rounds = 0u32;
    while !stop.load(Ordering::Acquire) {
        for d in down.iter_mut() {
            *d = d.saturating_sub(1);
        }
        let committed = leader.applied.load(Ordering::Acquire);
        // Read the next batch out of the log (one-sided; the leader's
        // serving thread is not involved).
        let mut frames = Vec::new();
        while repl_seq < committed && frames.len() < spec.repl_batch {
            let Ok(txn) = log.read_at(&mut h, &mut ctx, repl_off) else {
                break;
            };
            let [key, value] = &txn.entries[..] else {
                break;
            };
            let size = update_record_size(key, value);
            frames.push(Frame {
                seq: repl_seq + 1,
                off: repl_off,
                key: key.clone(),
                value: value.clone(),
            });
            repl_seq += 1;
            repl_off += size;
        }
        if frames.is_empty() {
            // Nothing new to stream. If some follower still trails
            // (paused, recovering, restarted), probe it with an empty
            // batch now and then: followers pull the data from the log
            // themselves, but only an ack round updates our lag view.
            idle_rounds += 1;
            let trailing = n > 0 && acked.iter().any(|&a| a < committed);
            if !trailing || !idle_rounds.is_multiple_of(20) {
                publish_lag(lag, &kernel, committed, &acked, n);
                std::thread::sleep(IDLE_SLEEP);
                continue;
            }
        } else {
            idle_rounds = 0;
        }
        let buf = enc_frames(&frames);
        // Skip followers sitting out a failure backoff; a partial
        // multicast failure towards one follower must not stall the
        // stream to the others (they recover from the log anyway).
        let targets: Vec<(usize, usize)> = spec
            .followers
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| down[*i] == 0)
            .collect();
        let nodes: Vec<usize> = targets.iter().map(|&(_, node)| node).collect();
        if !nodes.is_empty() {
            let results = h
                .lt_multicast_rpc_partial(&mut ctx, &nodes, spec.fn_repl(), &buf, 32)
                .unwrap_or_else(|_| vec![Err(LiteError::Timeout); nodes.len()]);
            for ((i, _), result) in targets.iter().zip(results) {
                match result {
                    Ok(rep) if rep.len() >= 16 => {
                        let seq = u64::from_le_bytes(rep[0..8].try_into().expect("8"));
                        let off = u64::from_le_bytes(rep[8..16].try_into().expect("8"));
                        acked[*i] = acked[*i].max(seq);
                        acked_off[*i] = acked_off[*i].max(off);
                    }
                    _ => down[*i] = DOWN_ROUNDS,
                }
            }
        }
        publish_lag(lag, &kernel, committed, &acked, n);
        // Ack-aware cleaning: reclaim only what every follower has
        // durably applied. A dead follower pins the log; staleness is
        // bounded by the log capacity (DESIGN.md §15).
        let min_off = acked_off.iter().copied().min().unwrap_or(repl_off);
        if min_off.saturating_sub(cleaned) >= spec.log_capacity / 4 {
            if let Ok(txns) = log.clean(&mut h, &mut ctx, min_off - cleaned) {
                for t in &txns {
                    let refs: Vec<&[u8]> = t.entries.iter().map(|e| e.as_slice()).collect();
                    cleaned += LiteLog::record_size(&refs);
                }
            }
        }
    }
}

fn publish_lag(
    lag: &AtomicU64,
    kernel: &lite::LiteKernel,
    committed: u64,
    acked: &[u64],
    n: usize,
) {
    let slowest = if n == 0 {
        committed
    } else {
        acked.iter().copied().min().unwrap_or(0)
    };
    let cur = committed.saturating_sub(slowest);
    lag.store(cur, Ordering::Release);
    kernel.set_kv_replication_lag(cur);
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

/// A client session against a [`KvService`].
pub struct KvClient {
    h: LiteHandle,
    leader: usize,
    replicas: Vec<usize>,
    func_base: u8,
    max_value: usize,
    mode: SessionMode,
    session_seq: u64,
    prefer: Option<usize>,
    rr: usize,
    log: Option<LiteLog>,
    log_name: String,
    log_capacity: u64,
}

impl KvClient {
    /// Opens a session from `node` against the service described by
    /// `spec` (pass the same spec the service was spawned with).
    pub fn connect(
        cluster: &Arc<LiteCluster>,
        node: usize,
        spec: &KvSpec,
        mode: SessionMode,
    ) -> KvResult<KvClient> {
        Ok(KvClient {
            h: cluster.attach(node)?,
            leader: spec.leader,
            replicas: spec.replicas(),
            func_base: spec.func_base,
            max_value: spec.max_value,
            mode,
            session_seq: 0,
            prefer: None,
            rr: 0,
            log: None,
            log_name: spec.name.clone(),
            log_capacity: spec.log_capacity,
        })
    }

    /// Pins reads to one replica instead of round-robining.
    pub fn prefer_replica(&mut self, node: usize) {
        self.prefer = Some(node);
    }

    /// QoS priority for this session's subsequent operations.
    pub fn set_priority(&mut self, prio: Priority) {
        self.h.set_priority(prio);
    }

    /// Highest sequence number this session has written.
    pub fn session_seq(&self) -> u64 {
        self.session_seq
    }

    /// Writes `key = value` through the leader; returns the assigned
    /// sequence number.
    pub fn put(&mut self, ctx: &mut Ctx, key: &[u8], value: &[u8]) -> KvResult<u64> {
        let rep = self.h.lt_rpc(
            ctx,
            self.leader,
            self.func_base + FN_PUT,
            &enc_put(key, value),
            16,
        )?;
        match rep.first() {
            Some(&PUT_OK) if rep.len() >= 9 => {
                let seq = u64::from_le_bytes(rep[1..9].try_into().expect("8"));
                self.session_seq = self.session_seq.max(seq);
                Ok(seq)
            }
            Some(&PUT_STORE_FULL) => Err(KvError::StoreFull),
            Some(&PUT_LOG_FULL) => Err(KvError::LogFull),
            _ => Err(KvError::BadReply),
        }
    }

    /// Reads `key` from a replica (preferred or round-robin). In
    /// read-your-writes mode a lagging replica answers "behind" and the
    /// read retries on the leader; a replica that cannot be reached at
    /// all fails over to the leader too.
    pub fn get(&mut self, ctx: &mut Ctx, key: &[u8]) -> KvResult<Option<Vec<u8>>> {
        let replica = self.prefer.unwrap_or_else(|| {
            let r = self.replicas[self.rr % self.replicas.len()];
            self.rr += 1;
            r
        });
        let need = match self.mode {
            SessionMode::Eventual => 0,
            SessionMode::ReadYourWrites => self.session_seq,
        };
        let max_reply = 9 + self.max_value;
        if replica != self.leader {
            let rep = self.h.lt_rpc(
                ctx,
                replica,
                self.func_base + FN_GET,
                &enc_get(need, key),
                max_reply,
            );
            match rep.as_deref().map(Self::dec_get) {
                Ok(Ok(Some(hit))) => return Ok(hit),
                Ok(Ok(None)) => {} // behind: fall through to the leader
                Ok(Err(e)) => return Err(e),
                Err(_) => {} // unreachable replica: fail over
            }
        }
        // The leader applies synchronously, so need_seq 0 suffices.
        let rep = self.h.lt_rpc(
            ctx,
            self.leader,
            self.func_base + FN_GET,
            &enc_get(0, key),
            max_reply,
        )?;
        match Self::dec_get(&rep)? {
            Some(hit) => Ok(hit),
            None => Err(KvError::BadReply), // the leader is never behind
        }
    }

    /// `Ok(Some(hit))` = served (hit is the optional value);
    /// `Ok(None)` = replica behind the session.
    #[allow(clippy::type_complexity)]
    fn dec_get(rep: &[u8]) -> KvResult<Option<Option<Vec<u8>>>> {
        match rep.first() {
            Some(&GET_HIT) if rep.len() >= 9 => Ok(Some(Some(rep[9..].to_vec()))),
            Some(&GET_MISS) => Ok(Some(None)),
            Some(&GET_BEHIND) => Ok(None),
            _ => Err(KvError::BadReply),
        }
    }

    /// Scans the event log (the service's write order) starting at
    /// `from` (0 = the beginning, or a previous event's `next`),
    /// returning at most `max` events. Reads the log with one-sided
    /// operations — no server thread is involved.
    pub fn events(&mut self, ctx: &mut Ctx, from: u64, max: usize) -> KvResult<Vec<KvEvent>> {
        if self.log.is_none() {
            self.log = Some(LiteLog::open(
                &mut self.h,
                ctx,
                &self.log_name,
                self.log_capacity,
            )?);
        }
        let log = self.log.as_ref().expect("just opened");
        let mut off = from;
        let mut out = Vec::new();
        while out.len() < max {
            match log.read_at(&mut self.h, ctx, off) {
                Ok(txn) => {
                    let [key, value] = &txn.entries[..] else {
                        return Err(KvError::BadReply);
                    };
                    let next = off + update_record_size(key, value);
                    out.push(KvEvent {
                        offset: off,
                        next,
                        key: key.clone(),
                        value: value.clone(),
                    });
                    off = next;
                }
                // Unwritten/scrubbed record: end of the committed log.
                Err(LiteError::Remote(0xA0)) => break,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(out)
    }
}
