//! Chaos acceptance for the KV service: with one follower crashed
//! mid-run (and later restarted) by a seeded fault plan, the service
//! stays fully available — every client put and read-your-writes get
//! succeeds — staleness stays bounded (the lag gauge rises while the
//! follower is dead), and after the restart the follower replays the
//! log and reconverges with the leader.

use std::time::{Duration, Instant};

use lite::{LiteCluster, LiteConfig, QosConfig};
use lite_kv::{KvClient, KvService, KvSpec, SessionMode};
use rnic::{FaultPlan, FaultRule, IbConfig};
use simnet::Ctx;

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

#[test]
fn service_survives_follower_crash_and_restart() {
    let config = LiteConfig {
        // Short deadlines so calls toward the dead follower fail fast
        // and the replicator's backoff kicks in quickly.
        op_timeout: Duration::from_millis(300),
        ..Default::default()
    };
    let cluster =
        LiteCluster::start_with(IbConfig::with_nodes(5), config, QosConfig::default()).unwrap();
    let spec = KvSpec::new("kv", 1, &[2, 3]);
    let svc = KvService::spawn(&cluster, spec.clone());

    let mut ctx = Ctx::new();
    let mut c = KvClient::connect(&cluster, 0, &spec, SessionMode::ReadYourWrites).unwrap();

    // Warm traffic before the fault fires, and make sure everyone has
    // the prefix.
    for i in 0..30 {
        c.put(
            &mut ctx,
            format!("k{i}").as_bytes(),
            format!("v{i}").as_bytes(),
        )
        .unwrap();
    }
    assert!(eventually(Duration::from_secs(10), || {
        svc.applied_seq(3) == svc.committed_seq()
    }));

    // Kill follower 3 shortly after the plan lands and keep it down for
    // the whole client workload below (a second plan revives it later).
    cluster
        .fabric()
        .install_fault_plan(FaultPlan::seeded(2026).with(FaultRule::CrashNode {
            node: 3,
            at_op: 30,
            restart_after_ops: u64::MAX,
        }));

    // Full client workload across the outage: every op must succeed.
    // Reads pin the doomed replica — read-your-writes must fail over.
    c.prefer_replica(3);
    for i in 0..120 {
        let key = format!("c{i}");
        c.put(&mut ctx, key.as_bytes(), format!("w{i}").as_bytes())
            .unwrap_or_else(|e| panic!("put {key} during outage: {e}"));
        let v = c
            .get(&mut ctx, key.as_bytes())
            .unwrap_or_else(|e| panic!("get {key} during outage: {e}"));
        assert_eq!(v.as_deref(), Some(format!("w{i}").as_bytes()), "{key}");
    }
    let faults = cluster.fabric().fault_stats();
    assert!(faults.crashes >= 1, "crash never fired: {faults:?}");
    // The dead follower shows up as replication lag (bounded
    // staleness), while the healthy follower keeps up regardless.
    assert!(
        eventually(Duration::from_secs(10), || svc.replication_lag() > 0),
        "a dead follower must show up as replication lag"
    );
    assert!(eventually(Duration::from_secs(10), || {
        svc.applied_seq(2) == svc.committed_seq()
    }));

    // Revive follower 3 (a fresh plan re-crashes the already-down node
    // and restarts it a few ops later); it replays the log from where
    // it died (gap catch-up) and the lag drains to zero.
    cluster
        .fabric()
        .install_fault_plan(FaultPlan::seeded(2027).with(FaultRule::CrashNode {
            node: 3,
            at_op: 0,
            restart_after_ops: 5,
        }));
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut tick = 0u64;
    let reconverged = loop {
        if cluster.fabric().fault_stats().restarts >= 1
            && svc.applied_seq(3) == svc.committed_seq()
            && svc.replication_lag() == 0
        {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
        // Each put drives the op counter past the restart and gives the
        // recovering follower fresh traffic to converge on.
        c.put(&mut ctx, b"tick", &tick.to_le_bytes()).unwrap();
        tick += 1;
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(
        reconverged,
        "follower 3 never reconverged: applied {} vs committed {}, lag {}, faults {:?}",
        svc.applied_seq(3),
        svc.committed_seq(),
        svc.replication_lag(),
        cluster.fabric().fault_stats(),
    );
    // And it serves the data written while it was dead, locally.
    let mut ev = KvClient::connect(&cluster, 0, &spec, SessionMode::Eventual).unwrap();
    ev.prefer_replica(3);
    assert_eq!(
        ev.get(&mut ctx, b"c119").unwrap().as_deref(),
        Some(b"w119".as_ref())
    );
    svc.stop();
}
