//! End-to-end tests of the replicated KV service: write/read round
//! trips on every replica, session consistency with a stalled
//! follower, event-log scans, capacity overflow over `lite::mm`
//! tiering, and the kernel gauges the service feeds.

use std::time::{Duration, Instant};

use lite::{LiteCluster, LiteConfig, QosConfig};
use lite_kv::{KvClient, KvService, KvSpec, SessionMode};
use rnic::IbConfig;
use simnet::Ctx;

/// Polls `cond` (host time) until it holds or `timeout` passes.
fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

#[test]
fn put_get_roundtrip_on_every_replica() {
    let cluster = LiteCluster::start(4).unwrap();
    let spec = KvSpec::new("kv", 1, &[2, 3]);
    let svc = KvService::spawn(&cluster, spec.clone());

    let mut ctx = Ctx::new();
    let mut c = KvClient::connect(&cluster, 0, &spec, SessionMode::ReadYourWrites).unwrap();
    let n = 20usize;
    for i in 0..n {
        let seq = c
            .put(
                &mut ctx,
                format!("k{i}").as_bytes(),
                format!("v{i}").as_bytes(),
            )
            .unwrap();
        assert_eq!(seq, (i + 1) as u64, "leader assigns a dense order");
    }
    // Overwrites keep the same key, new value.
    c.put(&mut ctx, b"k0", b"v0-new").unwrap();

    // Read-your-writes: correct answers immediately, whatever replica
    // the session happens to pick.
    for i in 0..n {
        let v = c.get(&mut ctx, format!("k{i}").as_bytes()).unwrap();
        let expect = if i == 0 {
            "v0-new".into()
        } else {
            format!("v{i}")
        };
        assert_eq!(v.as_deref(), Some(expect.as_bytes()));
    }
    assert_eq!(c.get(&mut ctx, b"nope").unwrap(), None);

    // Once replication catches up, every replica serves the data
    // locally under eventual consistency.
    assert!(
        eventually(Duration::from_secs(10), || {
            spec.replicas()
                .iter()
                .all(|&r| svc.applied_seq(r) == svc.committed_seq())
        }),
        "followers converge: {:?} vs committed {}",
        spec.replicas()
            .iter()
            .map(|&r| svc.applied_seq(r))
            .collect::<Vec<_>>(),
        svc.committed_seq(),
    );
    for &replica in &spec.replicas() {
        let mut e = KvClient::connect(&cluster, 0, &spec, SessionMode::Eventual).unwrap();
        e.prefer_replica(replica);
        let v = e.get(&mut ctx, b"k7").unwrap();
        assert_eq!(v.as_deref(), Some(b"v7".as_ref()), "replica {replica}");
    }

    // The event log replays the write order, including the overwrite.
    let events = c.events(&mut ctx, 0, 100).unwrap();
    assert_eq!(events.len(), n + 1);
    assert_eq!(events[0].key, b"k0");
    assert_eq!(events[0].value, b"v0");
    assert_eq!(events[n].key, b"k0");
    assert_eq!(events[n].value, b"v0-new");
    // Offsets chain: each event's `next` is the next event's offset.
    for w in events.windows(2) {
        assert_eq!(w[0].next, w[1].offset);
    }

    // The service feeds the kernel gauges, and they surface in the
    // stats JSON export.
    let leader_stats = cluster.kernel(1).stats();
    assert_eq!(leader_stats.kv_puts, (n + 1) as u64);
    let json = cluster.attach(1).unwrap().lt_stats().to_json();
    assert!(json.contains("\"kv_puts\":21"), "missing gauge: {json}");
    svc.stop();
}

#[test]
fn paused_follower_bounds_staleness_not_availability() {
    let cluster = LiteCluster::start(4).unwrap();
    let spec = KvSpec::new("kv", 1, &[2, 3]);
    let svc = KvService::spawn(&cluster, spec.clone());

    let mut ctx = Ctx::new();
    let mut rw = KvClient::connect(&cluster, 0, &spec, SessionMode::ReadYourWrites).unwrap();
    rw.put(&mut ctx, b"warm", b"base").unwrap();
    assert!(eventually(Duration::from_secs(10), || {
        svc.applied_seq(2) == svc.committed_seq()
    }));

    // Stall follower 2, then write past it.
    svc.pause_follower(2);
    for i in 0..10 {
        rw.put(&mut ctx, b"hot", format!("v{i}").as_bytes())
            .unwrap();
    }
    // The session still reads its own writes — the stalled replica
    // answers "behind" and the client falls back to the leader.
    rw.prefer_replica(2);
    assert_eq!(
        rw.get(&mut ctx, b"hot").unwrap().as_deref(),
        Some(b"v9".as_ref())
    );

    // An eventual session pinned to the stalled replica sees bounded
    // staleness (the old world), not an error.
    let mut ev = KvClient::connect(&cluster, 0, &spec, SessionMode::Eventual).unwrap();
    ev.prefer_replica(2);
    assert_eq!(
        ev.get(&mut ctx, b"hot").unwrap(),
        None,
        "stalled replica is stale"
    );
    assert_eq!(
        ev.get(&mut ctx, b"warm").unwrap().as_deref(),
        Some(b"base".as_ref())
    );

    // The replicator notices and publishes the lag.
    assert!(
        eventually(Duration::from_secs(10), || svc.replication_lag() > 0),
        "lag gauge never rose"
    );
    assert!(cluster.kernel(1).stats().kv_replication_lag > 0);

    // Resume: the follower recovers from the log and the lag drains.
    svc.resume_follower(2);
    assert!(eventually(Duration::from_secs(10), || {
        svc.applied_seq(2) == svc.committed_seq() && svc.replication_lag() == 0
    }));
    assert_eq!(
        ev.get(&mut ctx, b"hot").unwrap().as_deref(),
        Some(b"v9".as_ref())
    );
    svc.stop();
}

/// With a memory budget far below the working set, the value arenas
/// overflow onto `lite::mm` swap: evictions happen, reads fault values
/// back, and every byte still comes back correct.
#[test]
fn capacity_overflow_rides_mm_tiering() {
    let config = LiteConfig {
        mem_budget_bytes: 256 * 1024,
        mm_sweep_interval: Duration::from_millis(1),
        // Small chunks so tiering moves values, not whole arenas.
        max_lmr_chunk: 16 * 1024,
        ..Default::default()
    };
    let cluster =
        LiteCluster::start_with(IbConfig::with_nodes(4), config, QosConfig::default()).unwrap();
    let mut spec = KvSpec::new("kv", 1, &[2]);
    spec.arena_bytes = 1 << 20;
    spec.log_capacity = 2 << 20;
    spec.max_value = 20 * 1024;
    let svc = KvService::spawn(&cluster, spec.clone());

    let mut ctx = Ctx::new();
    let mut c = KvClient::connect(&cluster, 0, &spec, SessionMode::ReadYourWrites).unwrap();
    // ~40 × 16 KiB values ≈ 640 KiB per replica — several times the
    // 256 KiB node budget.
    let blob = |i: usize| vec![(i % 251) as u8; 16 * 1024];
    for i in 0..40 {
        c.put(&mut ctx, format!("big{i}").as_bytes(), &blob(i))
            .unwrap_or_else(|e| panic!("put big{i}: {e}"));
    }
    for i in 0..40 {
        let v = c.get(&mut ctx, format!("big{i}").as_bytes()).unwrap();
        assert_eq!(v.as_deref(), Some(blob(i).as_slice()), "big{i}");
    }
    let mm = cluster.kernel(1).mm_stats();
    assert!(mm.enabled);
    assert!(
        mm.evictions > 0,
        "budget {} should have forced evictions: {mm:?}",
        256 * 1024
    );
    svc.stop();
}
