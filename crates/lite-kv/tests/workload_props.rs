//! Property tests of the open-loop workload generator: the empirical
//! key-frequency distribution matches the configured zipf theta, the
//! arrival schedule is deterministic in the spec and independent of
//! service time (no coordinated omission), bursts really gate
//! arrivals, and the offered rate comes out as configured.

use lite_kv::workload::{exact_percentile, OpSpec, WorkloadSpec};
use proptest::prelude::*;

fn spec(users: usize, theta: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        users,
        theta,
        read_pct: 90,
        rate_ops_per_sec: 100_000.0,
        ops: 20_000,
        burst_on_ns: 0,
        burst_off_ns: 0,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The most popular key's empirical frequency matches the analytic
    /// zipf mass for the configured theta, and popularity decays
    /// monotonically across rank bands — i.e. theta actually shapes
    /// the traffic, it is not a decorative knob.
    #[test]
    fn key_frequencies_match_theta(
        theta in 0.6f64..1.2,
        users in 200usize..2000,
        seed in any::<u64>(),
    ) {
        let s = spec(users, theta, seed);
        let sched = s.schedule();
        let mut counts = vec![0u64; users];
        for op in &sched {
            counts[op.user] += 1;
        }
        let p0 = counts[0] as f64 / sched.len() as f64;
        let expect = s.zipf_probability(0);
        // 20k samples: allow generous sampling noise but reject a
        // wrong distribution (uniform would give p0 = 1/users).
        prop_assert!(
            (p0 - expect).abs() < 0.25 * expect + 0.005,
            "rank-0 mass {p0} vs analytic {expect} (theta {theta})"
        );
        // Mass per rank band decays with rank.
        let band = users / 4;
        let mass: Vec<u64> = (0..4)
            .map(|b| counts[b * band..(b + 1) * band].iter().sum())
            .collect();
        prop_assert!(
            mass[0] > mass[1] && mass[1] > mass[2] && mass[2] > mass[3],
            "band masses must decay: {mass:?}"
        );
    }

    /// The schedule is a pure function of the spec: same seed, same
    /// schedule; different seed, different schedule.
    #[test]
    fn schedule_is_deterministic(seed in any::<u64>()) {
        let s = spec(500, 0.99, seed);
        prop_assert_eq!(s.schedule(), s.schedule());
        let other = spec(500, 0.99, seed.wrapping_add(1));
        prop_assert!(s.schedule() != other.schedule(), "seeds must differentiate schedules");
    }

    /// Every scheduled arrival lands inside an ON window of the burst
    /// cycle — OFF windows carry no load.
    #[test]
    fn bursty_arrivals_land_in_on_windows(
        on_us in 50u64..500,
        off_us in 50u64..500,
        seed in any::<u64>(),
    ) {
        let mut s = spec(100, 0.99, seed);
        s.ops = 2_000;
        s.burst_on_ns = on_us * 1_000;
        s.burst_off_ns = off_us * 1_000;
        for op in s.schedule() {
            prop_assert!(s.is_on(op.at), "arrival at {} in an OFF window", op.at);
        }
    }

    /// Without bursts the mean inter-arrival gap matches the configured
    /// rate (the schedule really offers the load it claims).
    #[test]
    fn mean_gap_matches_rate(seed in any::<u64>()) {
        let s = spec(100, 0.99, seed);
        let sched = s.schedule();
        let span = sched.last().unwrap().at as f64;
        let mean_gap = span / (sched.len() - 1) as f64;
        let expect = 1e9 / s.rate_ops_per_sec;
        prop_assert!(
            (mean_gap - expect).abs() < 0.05 * expect,
            "mean gap {mean_gap} vs {expect}"
        );
    }
}

/// Simulates a single-server FCFS queue over a schedule: each op starts
/// at `max(arrival, previous completion)` and takes `service_ns`.
/// Latency is measured from the *scheduled* arrival, open-loop style.
fn queue_latencies(sched: &[OpSpec], service_ns: u64) -> Vec<u64> {
    let mut free_at = 0u64;
    sched
        .iter()
        .map(|op| {
            let start = op.at.max(free_at);
            free_at = start + service_ns;
            free_at - op.at
        })
        .collect()
}

/// The no-coordinated-omission property, demonstrated end to end: the
/// arrival schedule is fixed before the run, so a server slower than
/// the offered rate shows up as unbounded queueing delay in the tail —
/// instead of silently stretching the arrivals and hiding it (what a
/// closed-loop harness would do).
#[test]
fn open_loop_exposes_slow_service_as_queueing_delay() {
    let s = spec(100, 0.99, 7);
    let sched = s.schedule();
    let mean_gap = 1e9 / s.rate_ops_per_sec; // 10 µs

    // Fast server (half the mean gap): tail latency stays near the
    // service time itself.
    let fast = queue_latencies(&sched, (mean_gap * 0.5) as u64);
    let fast_p99 = exact_percentile(&fast, 99.0);
    // Slow server (1.5× the mean gap): the backlog compounds, and the
    // p99 dwarfs the service time many times over.
    let slow_service = (mean_gap * 1.5) as u64;
    let slow = queue_latencies(&sched, slow_service);
    let slow_p99 = exact_percentile(&slow, 99.0);

    assert!(
        fast_p99 < 20 * (mean_gap as u64),
        "fast server tail should be modest: {fast_p99}"
    );
    assert!(
        slow_p99 > 100 * slow_service,
        "open-loop must surface the backlog: p99 {slow_p99} vs service {slow_service}"
    );
    // And the arrivals were identical in both runs — the service time
    // never fed back into the schedule.
    assert_eq!(sched, s.schedule());
}
