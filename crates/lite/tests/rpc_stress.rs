//! Stress and edge-case tests of the LITE RPC stack: tiny rings with
//! wrap-around under concurrency, oversized replies, multicast failures,
//! per-sender ordering, and barrier reuse.

use std::sync::Arc;

use lite::{LiteCluster, LiteConfig, LiteError, QosConfig, USER_FUNC_MIN};
use rnic::IbConfig;
use simnet::Ctx;

/// A deliberately tiny (64 KB) ring forces constant wrap-around and
/// head-update flow control under 4 concurrent clients.
#[test]
fn tiny_ring_wraps_under_concurrency() {
    let config = LiteConfig {
        rpc_ring_bytes: 64 * 1024,
        ..Default::default()
    };
    let cluster =
        LiteCluster::start_with(IbConfig::with_nodes(2), config, QosConfig::default()).unwrap();
    const F: u8 = USER_FUNC_MIN + 11;
    cluster.attach(1).unwrap().register_rpc(F).unwrap();
    let per_client = 150;
    let clients = 4;
    let c2 = Arc::clone(&cluster);
    let srv = std::thread::spawn(move || {
        let mut h = c2.attach(1).unwrap();
        let mut ctx = Ctx::new();
        for _ in 0..per_client * clients {
            let call = h.lt_recv_rpc(&mut ctx, F).unwrap();
            // Echo a checksum so corruption is caught.
            let sum: u64 = call.input.iter().map(|&b| b as u64).sum();
            h.lt_reply_rpc(&mut ctx, &call, &sum.to_le_bytes()).unwrap();
        }
    });
    let mut joins = Vec::new();
    for t in 0..clients as u8 {
        let cluster = Arc::clone(&cluster);
        joins.push(std::thread::spawn(move || {
            let mut h = cluster.attach(0).unwrap();
            let mut ctx = Ctx::new();
            for i in 0..per_client {
                // Payload sizes chosen to hit the wrap at odd offsets.
                let len = 500 + ((t as usize * per_client + i) * 37) % 9_000;
                let payload: Vec<u8> = (0..len).map(|j| (j as u8) ^ t).collect();
                let expect: u64 = payload.iter().map(|&b| b as u64).sum();
                let reply = h.lt_rpc(&mut ctx, 1, F, &payload, 64).unwrap();
                assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), expect);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    srv.join().unwrap();
}

/// Replies larger than the client's announced buffer are rejected at the
/// server with a typed error — not written past the buffer.
#[test]
fn oversized_reply_is_rejected() {
    let cluster = LiteCluster::start(2).unwrap();
    const F: u8 = USER_FUNC_MIN + 12;
    cluster.attach(1).unwrap().register_rpc(F).unwrap();
    let c2 = Arc::clone(&cluster);
    let srv = std::thread::spawn(move || {
        let mut h = c2.attach(1).unwrap();
        let mut ctx = Ctx::new();
        let call = h.lt_recv_rpc(&mut ctx, F).unwrap();
        let too_big = vec![9u8; 1024];
        let err = h.lt_reply_rpc(&mut ctx, &call, &too_big).unwrap_err();
        assert!(matches!(err, LiteError::TooLarge { .. }));
        // A fitting reply still goes through afterwards.
        h.lt_reply_rpc(&mut ctx, &call, &[1, 2, 3]).unwrap();
    });
    let mut c = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let reply = c.lt_rpc(&mut ctx, 1, F, b"gimme", 64).unwrap();
    assert_eq!(reply, vec![1, 2, 3]);
    srv.join().unwrap();
}

/// Oversized *inputs* are rejected locally before touching the wire.
#[test]
fn oversized_input_rejected_locally() {
    let cluster = LiteCluster::start(2).unwrap();
    let mut c = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let huge = vec![0u8; 5 << 20];
    assert!(matches!(
        c.lt_rpc(&mut ctx, 1, USER_FUNC_MIN + 1, &huge, 64),
        Err(LiteError::TooLarge { .. })
    ));
}

/// Multicast to a set that includes a node with no handler: the call
/// reports the failure rather than hanging, and healthy targets replied.
#[test]
fn multicast_partial_failure_reports() {
    let cluster = LiteCluster::start(4).unwrap();
    const F: u8 = USER_FUNC_MIN + 13;
    // Only nodes 1 and 2 serve; node 3 never registered the function.
    for node in [1usize, 2] {
        cluster.attach(node).unwrap().register_rpc(F).unwrap();
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            let mut h = cluster.attach(node).unwrap();
            let mut ctx = Ctx::new();
            if let Ok(call) = h.lt_recv_rpc(&mut ctx, F) {
                let _ = h.lt_reply_rpc(&mut ctx, &call, &[node as u8]);
            }
        });
    }
    let mut c = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let err = c
        .lt_multicast_rpc(&mut ctx, &[1, 2, 3], F, b"x", 64)
        .unwrap_err();
    assert!(matches!(err, LiteError::UnknownRpc { .. }));
}

/// Messages from one sender arrive in order when the sender uses a
/// single QP (K = 1): RC guarantees per-QP FIFO. With K > 1, LITE's
/// round-robin QP sharing can reorder across QPs — exactly as on real
/// hardware — so applications needing total order use one QP or sequence
/// numbers.
#[test]
fn per_sender_message_order() {
    let cluster = LiteCluster::start_with(
        IbConfig::with_nodes(2),
        LiteConfig::with_qp_factor(1),
        QosConfig::default(),
    )
    .unwrap();
    let c2 = Arc::clone(&cluster);
    let n = 200u32;
    let recv = std::thread::spawn(move || {
        let mut h = c2.attach(1).unwrap();
        let mut ctx = Ctx::new();
        let mut last = None;
        for _ in 0..n {
            let (_, data) = h.lt_recv_msg(&mut ctx).unwrap();
            let v = u32::from_le_bytes(data.try_into().unwrap());
            if let Some(prev) = last {
                assert_eq!(v, prev + 1, "message reordering within one sender");
            }
            last = Some(v);
        }
    });
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    for i in 0..n {
        h.lt_send(&mut ctx, 1, &i.to_le_bytes()).unwrap();
    }
    recv.join().unwrap();
}

/// Barriers can be reused sequentially with the same id and different
/// participant counts.
#[test]
fn barrier_reuse_and_varied_counts() {
    let cluster = LiteCluster::start(3).unwrap();
    for round in 0..3u64 {
        let mut joins = Vec::new();
        for node in 0..3 {
            let cluster = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                let mut h = cluster.attach(node).unwrap();
                let mut ctx = Ctx::new();
                h.lt_barrier(&mut ctx, 555, 3).unwrap();
                let _ = round;
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }
    // A two-party barrier with a different id runs independently.
    let mut joins = Vec::new();
    for node in 0..2 {
        let cluster = Arc::clone(&cluster);
        joins.push(std::thread::spawn(move || {
            let mut h = cluster.attach(node).unwrap();
            let mut ctx = Ctx::new();
            h.lt_barrier(&mut ctx, 556, 2).unwrap();
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

/// Interleaved handles on one node: dropping one mid-flight releases its
/// staging without disturbing the other.
#[test]
fn handle_drop_releases_resources() {
    let cluster = LiteCluster::start(2).unwrap();
    let mut keep = cluster.attach(0).unwrap();
    let mut kctx = Ctx::new();
    let lh = keep
        .lt_malloc(&mut kctx, 1, 4096, "keeper", lite::Perm::RW)
        .unwrap();
    for _ in 0..20 {
        let mut temp = cluster.attach(0).unwrap();
        let mut tctx = Ctx::new();
        let tlh = temp.lt_map(&mut tctx, "keeper").unwrap();
        temp.lt_write(&mut tctx, tlh, 0, b"transient").unwrap();
        // temp dropped here; its staging/reply scratch must be reclaimed.
    }
    keep.lt_write(&mut kctx, lh, 0, b"still fine").unwrap();
    let mut buf = [0u8; 10];
    keep.lt_read(&mut kctx, lh, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"still fine");
}

/// Buffers far larger than the initial 64 KB scratch exercise the
/// staging-growth path on both the one-sided and RPC planes.
#[test]
fn large_buffers_grow_staging() {
    let cluster = LiteCluster::start(2).unwrap();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 1, 3 << 20, "bigbuf", lite::Perm::RW)
        .unwrap();
    let data: Vec<u8> = (0..2_500_000u32).map(|i| (i % 241) as u8).collect();
    h.lt_write(&mut ctx, lh, 17, &data).unwrap();
    let mut back = vec![0u8; data.len()];
    h.lt_read(&mut ctx, lh, 17, &mut back).unwrap();
    assert_eq!(back, data);

    // A 1 MB RPC payload (under the 4 MB cap) round-trips too.
    const F: u8 = USER_FUNC_MIN + 14;
    cluster.attach(1).unwrap().register_rpc(F).unwrap();
    let c2 = Arc::clone(&cluster);
    let srv = std::thread::spawn(move || {
        let mut h = c2.attach(1).unwrap();
        let mut ctx = Ctx::new();
        let call = h.lt_recv_rpc(&mut ctx, F).unwrap();
        let digest: u64 = call.input.iter().map(|&b| b as u64).sum();
        let mut out = digest.to_le_bytes().to_vec();
        out.extend_from_slice(&call.input[..1024]);
        h.lt_reply_rpc(&mut ctx, &call, &out).unwrap();
    });
    let payload = vec![0x42u8; 1 << 20];
    let reply = h.lt_rpc(&mut ctx, 1, F, &payload, 2 << 20).unwrap();
    let digest = u64::from_le_bytes(reply[..8].try_into().unwrap());
    assert_eq!(digest, 0x42u64 * (1 << 20));
    assert!(reply[8..].iter().all(|&b| b == 0x42));
    srv.join().unwrap();
}
