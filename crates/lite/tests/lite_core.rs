//! End-to-end tests of the LITE layer: memory API, RPC, messaging,
//! synchronization, permissions, QoS plumbing, and failure handling.

use std::sync::Arc;

use lite::{LiteCluster, LiteError, Perm, Priority, QosMode, USER_FUNC_MIN};
use simnet::Ctx;

#[test]
fn malloc_write_read_across_nodes() {
    let cluster = LiteCluster::start(3).unwrap();
    let mut h0 = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    // LMR lives on node 2, master is node 0.
    let lh = h0
        .lt_malloc(&mut ctx, 2, 64 * 1024, "data", Perm::RW)
        .unwrap();
    let payload: Vec<u8> = (0..50_000).map(|i| (i % 251) as u8).collect();
    h0.lt_write(&mut ctx, lh, 1_000, &payload).unwrap();

    // Node 1 maps by name and reads it back.
    let mut h1 = cluster.attach(1).unwrap();
    let mut ctx1 = Ctx::new();
    let lh1 = h1.lt_map(&mut ctx1, "data").unwrap();
    let mut buf = vec![0u8; payload.len()];
    h1.lt_read(&mut ctx1, lh1, 1_000, &mut buf).unwrap();
    assert_eq!(buf, payload);

    // Out-of-bounds and unknown-name errors are typed.
    assert!(matches!(
        h1.lt_read(&mut ctx1, lh1, 64 * 1024 - 10, &mut [0u8; 100]),
        Err(LiteError::OutOfBounds { .. })
    ));
    assert!(matches!(
        h1.lt_map(&mut ctx1, "nope"),
        Err(LiteError::NameNotFound { .. })
    ));
}

#[test]
fn large_lmr_is_chunked_transparently() {
    let cluster = LiteCluster::start(2).unwrap();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    // 16 MB LMR: split into 4 MB physically-consecutive chunks (§4.1).
    let lh = h.lt_malloc(&mut ctx, 1, 16 << 20, "big", Perm::RW).unwrap();
    // Write across a chunk boundary.
    let data = vec![0xCDu8; 1 << 20];
    h.lt_write(&mut ctx, lh, (4 << 20) - 512 * 1024, &data)
        .unwrap();
    let mut buf = vec![0u8; 1 << 20];
    h.lt_read(&mut ctx, lh, (4 << 20) - 512 * 1024, &mut buf)
        .unwrap();
    assert_eq!(buf, data);
}

#[test]
fn name_collision_is_rejected_and_rolled_back() {
    let cluster = LiteCluster::start(2).unwrap();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let _lh = h.lt_malloc(&mut ctx, 1, 4096, "dup", Perm::RW).unwrap();
    let err = h.lt_malloc(&mut ctx, 1, 4096, "dup", Perm::RW).unwrap_err();
    assert!(matches!(err, LiteError::NameExists { .. }));
}

#[test]
fn free_invalidates_remote_mappers() {
    let cluster = LiteCluster::start(2).unwrap();
    let mut h0 = cluster.attach(0).unwrap();
    let mut h1 = cluster.attach(1).unwrap();
    let mut ctx0 = Ctx::new();
    let mut ctx1 = Ctx::new();
    let lh = h0.lt_malloc(&mut ctx0, 1, 4096, "gone", Perm::RW).unwrap();
    let lh1 = h1.lt_map(&mut ctx1, "gone").unwrap();
    h1.lt_write(&mut ctx1, lh1, 0, b"ok").unwrap();

    h0.lt_free(&mut ctx0, lh).unwrap();
    // The remote mapper's lh is now stale.
    let err = h1.lt_write(&mut ctx1, lh1, 0, b"x").unwrap_err();
    assert!(matches!(err, LiteError::BadLh { .. }));
    // The name can be reused.
    let _lh2 = h0.lt_malloc(&mut ctx0, 1, 4096, "gone", Perm::RW).unwrap();
}

#[test]
fn permissions_and_grants() {
    let cluster = LiteCluster::start(3).unwrap();
    let mut h0 = cluster.attach(0).unwrap();
    let mut ctx0 = Ctx::new();
    // Default permission for mappers: read-only.
    let lh = h0.lt_malloc(&mut ctx0, 0, 4096, "ro", Perm::RO).unwrap();
    h0.lt_write(&mut ctx0, lh, 0, b"master can write").unwrap();

    let mut h1 = cluster.attach(1).unwrap();
    let mut ctx1 = Ctx::new();
    let lh1 = h1.lt_map(&mut ctx1, "ro").unwrap();
    let mut buf = [0u8; 6];
    h1.lt_read(&mut ctx1, lh1, 0, &mut buf).unwrap();
    assert_eq!(
        h1.lt_write(&mut ctx1, lh1, 0, b"nope"),
        Err(LiteError::PermissionDenied)
    );
    // Non-masters cannot free or grant.
    assert_eq!(h1.lt_free(&mut ctx1, lh1), Err(LiteError::NotMaster));
    assert_eq!(
        h1.lt_grant(&mut ctx1, lh1, 2, Perm::RW),
        Err(LiteError::NotMaster)
    );

    // Master grants node 2 read-write; a fresh map from node 2 gets it.
    h0.lt_grant(&mut ctx0, lh, 2, Perm::RW).unwrap();
    let mut h2 = cluster.attach(2).unwrap();
    let mut ctx2 = Ctx::new();
    let lh2 = h2.lt_map(&mut ctx2, "ro").unwrap();
    h2.lt_write(&mut ctx2, lh2, 0, b"granted!").unwrap();
}

#[test]
fn rpc_echo_roundtrip() {
    let cluster = LiteCluster::start(2).unwrap();
    const ECHO: u8 = USER_FUNC_MIN + 1;
    let server = cluster.attach(1).unwrap();
    server.register_rpc(ECHO).unwrap();

    let cluster2 = Arc::clone(&cluster);
    let srv = std::thread::spawn(move || {
        let mut h = cluster2.attach(1).unwrap();
        let mut ctx = Ctx::new();
        for _ in 0..3 {
            let call = h.lt_recv_rpc(&mut ctx, ECHO).unwrap();
            let mut out = call.input.clone();
            out.reverse();
            h.lt_reply_rpc(&mut ctx, &call, &out).unwrap();
        }
        ctx
    });

    let mut c = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    for msg in [b"abc".to_vec(), vec![7u8; 4096], b"x".to_vec()] {
        let reply = c.lt_rpc(&mut ctx, 1, ECHO, &msg, 1 << 20).unwrap();
        let mut expect = msg.clone();
        expect.reverse();
        assert_eq!(reply, expect);
    }
    let sctx = srv.join().unwrap();
    assert!(sctx.now() > 0);
    // RPC latency is microseconds, not milliseconds.
    assert!(ctx.now() < 1_000_000 * 10, "3 RPCs took {} ns", ctx.now());
}

#[test]
fn rpc_to_self_works_via_loopback() {
    let cluster = LiteCluster::start(2).unwrap();
    const F: u8 = USER_FUNC_MIN + 2;
    let h = cluster.attach(0).unwrap();
    h.register_rpc(F).unwrap();
    let cluster2 = Arc::clone(&cluster);
    let srv = std::thread::spawn(move || {
        let mut h = cluster2.attach(0).unwrap();
        let mut ctx = Ctx::new();
        let call = h.lt_recv_rpc(&mut ctx, F).unwrap();
        h.lt_reply_rpc(&mut ctx, &call, b"self-reply").unwrap();
    });
    let mut c = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let reply = c.lt_rpc(&mut ctx, 0, F, b"hi", 4096).unwrap();
    assert_eq!(reply, b"self-reply");
    srv.join().unwrap();
}

#[test]
fn rpc_unknown_function_errors_not_hangs() {
    let cluster = LiteCluster::start(2).unwrap();
    let mut c = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let err = c
        .lt_rpc(&mut ctx, 1, USER_FUNC_MIN + 9, b"hello", 4096)
        .unwrap_err();
    assert!(matches!(err, LiteError::UnknownRpc { .. }));
    // Reserved ids are rejected locally.
    assert!(matches!(
        c.lt_rpc(&mut ctx, 1, 3, b"", 64),
        Err(LiteError::ReservedFunc { .. })
    ));
}

#[test]
fn reply_recv_combined_pipeline() {
    let cluster = LiteCluster::start(2).unwrap();
    const F: u8 = USER_FUNC_MIN + 3;
    cluster.attach(1).unwrap().register_rpc(F).unwrap();
    let n = 16;
    let cluster2 = Arc::clone(&cluster);
    let srv = std::thread::spawn(move || {
        let mut h = cluster2.attach(1).unwrap();
        let mut ctx = Ctx::new();
        let mut call = h.lt_recv_rpc(&mut ctx, F).unwrap();
        for _ in 0..n - 1 {
            let out = vec![call.input[0] + 1];
            call = h.lt_reply_recv(&mut ctx, &call, &out, F).unwrap();
        }
        h.lt_reply_rpc(&mut ctx, &call, &[call.input[0] + 1])
            .unwrap();
    });
    let mut c = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    for i in 0..n {
        let reply = c.lt_rpc(&mut ctx, 1, F, &[i as u8], 64).unwrap();
        assert_eq!(reply, vec![i as u8 + 1]);
    }
    srv.join().unwrap();
}

#[test]
fn messaging_send_recv() {
    let cluster = LiteCluster::start(2).unwrap();
    let cluster2 = Arc::clone(&cluster);
    let recv = std::thread::spawn(move || {
        let mut h = cluster2.attach(1).unwrap();
        let mut ctx = Ctx::new();
        let (src, data) = h.lt_recv_msg(&mut ctx).unwrap();
        assert_eq!(src, 0);
        data
    });
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    h.lt_send(&mut ctx, 1, b"one-way message").unwrap();
    assert_eq!(recv.join().unwrap(), b"one-way message");
}

#[test]
fn memset_memcpy_between_nodes() {
    let cluster = LiteCluster::start(3).unwrap();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let a = h.lt_malloc(&mut ctx, 1, 8192, "a", Perm::RW).unwrap();
    let b = h.lt_malloc(&mut ctx, 2, 8192, "b", Perm::RW).unwrap();

    h.lt_memset(&mut ctx, a, 100, 2000, 0x5A).unwrap();
    let mut buf = vec![0u8; 2000];
    h.lt_read(&mut ctx, a, 100, &mut buf).unwrap();
    assert!(buf.iter().all(|&x| x == 0x5A));

    // Cross-node memcpy a→b (executed by node 1 pushing to node 2).
    h.lt_memcpy(&mut ctx, a, 100, b, 500, 2000).unwrap();
    let mut buf2 = vec![0u8; 2000];
    h.lt_read(&mut ctx, b, 500, &mut buf2).unwrap();
    assert!(buf2.iter().all(|&x| x == 0x5A));

    // Same-node memcpy within one LMR via memmove.
    h.lt_memmove(&mut ctx, b, 500, b, 4000, 1000).unwrap();
    let mut buf3 = vec![0u8; 1000];
    h.lt_read(&mut ctx, b, 4000, &mut buf3).unwrap();
    assert!(buf3.iter().all(|&x| x == 0x5A));
}

#[test]
fn fetch_add_and_test_set() {
    let cluster = LiteCluster::start(2).unwrap();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h.lt_malloc(&mut ctx, 1, 4096, "ctr", Perm::RW).unwrap();
    assert_eq!(h.lt_fetch_add(&mut ctx, lh, 0, 5).unwrap(), 0);
    assert_eq!(h.lt_fetch_add(&mut ctx, lh, 0, 3).unwrap(), 5);
    assert_eq!(h.lt_test_set(&mut ctx, lh, 8, 0, 99).unwrap(), 0);
    assert_eq!(h.lt_test_set(&mut ctx, lh, 8, 0, 77).unwrap(), 99);
    let mut buf = [0u8; 8];
    h.lt_read(&mut ctx, lh, 8, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 99);
}

#[test]
fn lock_is_mutually_exclusive_and_fifoish() {
    let cluster = LiteCluster::start(3).unwrap();
    let mut owner = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lock = owner.lt_create_lock(&mut ctx).unwrap();

    // Uncontended acquire is fast (~2.2 us one fetch-add, §7.2).
    let t0 = ctx.now();
    owner.lt_lock(&mut ctx, lock).unwrap();
    let fast = ctx.now() - t0;
    assert!(fast < 5_000, "uncontended lock took {fast} ns");
    owner.lt_unlock(&mut ctx, lock).unwrap();

    // 3 nodes × 2 threads hammer a shared counter under the lock.
    let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut handles = Vec::new();
    for node in 0..3 {
        for _ in 0..2 {
            let cluster = Arc::clone(&cluster);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut h = cluster.attach(node).unwrap();
                let mut ctx = Ctx::new();
                for _ in 0..20 {
                    h.lt_lock(&mut ctx, lock).unwrap();
                    // Critical section: non-atomic read-modify-write made
                    // safe only by the LITE lock.
                    let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                    std::thread::yield_now();
                    counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                    h.lt_unlock(&mut ctx, lock).unwrap();
                }
            }));
        }
    }
    for th in handles {
        th.join().unwrap();
    }
    assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 120);
}

#[test]
fn barrier_releases_all_at_once() {
    let cluster = LiteCluster::start(4).unwrap();
    let arrived = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut handles = Vec::new();
    for node in 0..4 {
        let cluster = Arc::clone(&cluster);
        let arrived = Arc::clone(&arrived);
        handles.push(std::thread::spawn(move || {
            let mut h = cluster.attach(node).unwrap();
            let mut ctx = Ctx::new();
            if node == 3 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            arrived.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            h.lt_barrier(&mut ctx, 42, 4).unwrap();
            // By the time anyone passes, all four must have arrived.
            assert_eq!(arrived.load(std::sync::atomic::Ordering::SeqCst), 4);
        }));
    }
    for th in handles {
        th.join().unwrap();
    }
}

#[test]
fn multicast_rpc_gathers_all_replies() {
    let cluster = LiteCluster::start(4).unwrap();
    const F: u8 = USER_FUNC_MIN + 4;
    let mut servers = Vec::new();
    for node in 1..4 {
        cluster.attach(node).unwrap().register_rpc(F).unwrap();
        let cluster = Arc::clone(&cluster);
        servers.push(std::thread::spawn(move || {
            let mut h = cluster.attach(node).unwrap();
            let mut ctx = Ctx::new();
            let call = h.lt_recv_rpc(&mut ctx, F).unwrap();
            h.lt_reply_rpc(&mut ctx, &call, &[node as u8]).unwrap();
        }));
    }
    let mut c = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let replies = c
        .lt_multicast_rpc(&mut ctx, &[1, 2, 3], F, b"bcast", 64)
        .unwrap();
    assert_eq!(replies, vec![vec![1u8], vec![2u8], vec![3u8]]);
    for s in servers {
        s.join().unwrap();
    }
}

#[test]
fn qp_sharing_counts_match_section_6_1() {
    // LITE uses K×(N-1) QPs per node regardless of thread count — and
    // with incremental membership (DESIGN.md §12) pairs are wired on
    // first use, so boot itself creates *zero* data QPs.
    let cluster = LiteCluster::start_with(
        rnic::IbConfig::with_nodes(5),
        lite::LiteConfig::with_qp_factor(2),
        lite::QosConfig::default(),
    )
    .unwrap();
    for node in 0..5 {
        assert_eq!(cluster.kernel(node).stats().qps, 0);
    }
    assert_eq!(cluster.fabric().nic(0).stats().live_qps, 0);
    // Touch every pair once; each unordered pair is wired exactly once
    // no matter which side posted first.
    let mut ctx = Ctx::new();
    for node in 0..5usize {
        let mut h = cluster.attach(node).unwrap();
        h.lt_malloc(&mut ctx, node, 4096, &format!("qp{node}"), Perm::RW)
            .unwrap();
    }
    for node in 0..5usize {
        let mut h = cluster.attach(node).unwrap();
        for peer in 0..5 {
            if peer != node {
                let lh = h.lt_map(&mut ctx, &format!("qp{peer}")).unwrap();
                h.lt_write(&mut ctx, lh, 0, &[peer as u8]).unwrap();
            }
        }
    }
    // Fully meshed now: K×(N-1) per node, and the NIC sees exactly
    // those QPs, not 2×N×T.
    for node in 0..5 {
        assert_eq!(cluster.kernel(node).stats().qps, 2 * 4);
    }
    assert_eq!(cluster.fabric().nic(0).stats().live_qps, 8);
}

#[test]
fn eager_mesh_restores_boot_time_wiring() {
    // The ablation switch for the old behavior: eager_mesh pre-wires
    // every pair (and every ring) during start.
    let cluster = LiteCluster::start_with(
        rnic::IbConfig::with_nodes(4),
        lite::LiteConfig {
            eager_mesh: true,
            ..lite::LiteConfig::with_qp_factor(2)
        },
        lite::QosConfig::default(),
    )
    .unwrap();
    for node in 0..4 {
        assert_eq!(cluster.kernel(node).stats().qps, 2 * 3);
    }
}

#[test]
fn qos_modes_switch_and_low_priority_is_throttled_under_hwsep() {
    let cluster = LiteCluster::start(2).unwrap();
    cluster.set_qos_mode(QosMode::HwSep);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h.lt_malloc(&mut ctx, 1, 1 << 20, "qos", Perm::RW).unwrap();
    let data = vec![0u8; 256 * 1024];

    // Low priority is capped at its HW share even with an idle link.
    h.set_priority(Priority::Low);
    let t0 = ctx.now();
    for _ in 0..8 {
        h.lt_write(&mut ctx, lh, 0, &data).unwrap();
    }
    let low_time = ctx.now() - t0;

    cluster.set_qos_mode(QosMode::None);
    let t1 = ctx.now();
    for _ in 0..8 {
        h.lt_write(&mut ctx, lh, 0, &data).unwrap();
    }
    let free_time = ctx.now() - t1;
    assert!(
        low_time > free_time * 2,
        "HW-Sep low-priority ({low_time}) should be much slower than unrestricted ({free_time})"
    );
}

#[test]
fn node_down_yields_timeout_not_hang() {
    let cluster = LiteCluster::start(2).unwrap();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h.lt_malloc(&mut ctx, 1, 4096, "down", Perm::RW).unwrap();
    cluster.fabric().set_down(1, true);
    let err = h.lt_write(&mut ctx, lh, 0, b"x").unwrap_err();
    assert_eq!(err, LiteError::Timeout);
    cluster.fabric().set_down(1, false);
    h.lt_write(&mut ctx, lh, 0, b"x").unwrap();
}

#[test]
fn unmap_then_use_fails() {
    let cluster = LiteCluster::start(2).unwrap();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h.lt_malloc(&mut ctx, 1, 4096, "u", Perm::RW).unwrap();
    h.lt_unmap(&mut ctx, lh).unwrap();
    assert!(matches!(
        h.lt_write(&mut ctx, lh, 0, b"x"),
        Err(LiteError::BadLh { .. })
    ));
}

#[test]
fn concurrent_rpc_clients_share_one_server_ring() {
    let cluster = LiteCluster::start(2).unwrap();
    const F: u8 = USER_FUNC_MIN + 5;
    cluster.attach(1).unwrap().register_rpc(F).unwrap();
    let total = 4 * 50;
    let cluster2 = Arc::clone(&cluster);
    let srv = std::thread::spawn(move || {
        let mut h = cluster2.attach(1).unwrap();
        let mut ctx = Ctx::new();
        for _ in 0..total {
            let call = h.lt_recv_rpc(&mut ctx, F).unwrap();
            let out = call.input.iter().map(|b| b ^ 0xFF).collect::<Vec<_>>();
            h.lt_reply_rpc(&mut ctx, &call, &out).unwrap();
        }
    });
    let mut clients = Vec::new();
    for t in 0..4u8 {
        let cluster = Arc::clone(&cluster);
        clients.push(std::thread::spawn(move || {
            let mut h = cluster.attach(0).unwrap();
            let mut ctx = Ctx::new();
            for i in 0..50u8 {
                let msg = vec![t, i, t ^ i];
                let reply = h.lt_rpc(&mut ctx, 1, F, &msg, 64).unwrap();
                let expect: Vec<u8> = msg.iter().map(|b| b ^ 0xFF).collect();
                assert_eq!(reply, expect);
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    srv.join().unwrap();
}

#[test]
fn kernel_level_handle_skips_crossings() {
    // Two isolated clusters so the measurements share no queues.
    let measure = |kernel_level: bool| {
        let cluster = LiteCluster::start(2).unwrap();
        let mut h = if kernel_level {
            cluster.attach_kernel(0).unwrap()
        } else {
            cluster.attach(0).unwrap()
        };
        let mut ctx = Ctx::new();
        let lh = h.lt_malloc(&mut ctx, 1, 4096, "m", Perm::RW).unwrap();
        h.lt_write(&mut ctx, lh, 0, b"warm").unwrap();
        let mut total = 0;
        for _ in 0..32 {
            let t0 = ctx.now();
            h.lt_write(&mut ctx, lh, 0, b"data").unwrap();
            total += ctx.now() - t0;
        }
        total / 32
    };
    let user_lat = measure(false);
    let kern_lat = measure(true);
    assert!(
        user_lat > kern_lat,
        "user-level ({user_lat}) must pay the crossing over kernel-level ({kern_lat})"
    );
    assert!(user_lat - kern_lat < 1_000, "crossing cost is sub-µs");
}

#[test]
fn lt_move_migrates_data_and_invalidates_mappers() {
    let cluster = LiteCluster::start(3).unwrap();
    let mut master = cluster.attach(0).unwrap();
    let mut mctx = Ctx::new();
    let lh = master
        .lt_malloc(&mut mctx, 1, 64 * 1024, "movable", Perm::RW)
        .unwrap();
    let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 253) as u8).collect();
    master.lt_write(&mut mctx, lh, 100, &payload).unwrap();

    // A remote mapper caches the old location.
    let mut mapper = cluster.attach(2).unwrap();
    let mut ctx2 = Ctx::new();
    let lh2 = mapper.lt_map(&mut ctx2, "movable").unwrap();
    let mut probe = vec![0u8; 16];
    mapper.lt_read(&mut ctx2, lh2, 100, &mut probe).unwrap();
    assert_eq!(&probe[..], &payload[..16]);

    // Master moves the LMR from node 1 to node 2.
    master.lt_move(&mut mctx, lh, 2).unwrap();

    // The master's own lh keeps working against the new location.
    let mut back = vec![0u8; payload.len()];
    master.lt_read(&mut mctx, lh, 100, &mut back).unwrap();
    assert_eq!(back, payload);
    master.lt_write(&mut mctx, lh, 0, b"post-move").unwrap();

    // The old mapper's lh is stale; a fresh map sees the new home.
    assert!(matches!(
        mapper.lt_read(&mut ctx2, lh2, 100, &mut probe),
        Err(LiteError::BadLh { .. })
    ));
    let lh3 = mapper.lt_map(&mut ctx2, "movable").unwrap();
    mapper.lt_read(&mut ctx2, lh3, 100, &mut probe).unwrap();
    assert_eq!(&probe[..], &payload[..16]);

    // Non-masters cannot move.
    assert_eq!(mapper.lt_move(&mut ctx2, lh3, 1), Err(LiteError::NotMaster));
}

#[test]
fn lt_move_chunked_large_lmr() {
    // A 12 MB LMR spans multiple 4 MB chunks; the move must stitch the
    // pieces back together byte-exactly.
    let cluster = LiteCluster::start(3).unwrap();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 1, 12 << 20, "bigmove", Perm::RW)
        .unwrap();
    let stamp: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    // Stamp a pattern near each chunk boundary.
    for mb in [0u64, 4, 8, 11] {
        h.lt_write(&mut ctx, lh, mb * (1 << 20) + 7, &stamp)
            .unwrap();
    }
    h.lt_move(&mut ctx, lh, 2).unwrap();
    for mb in [0u64, 4, 8, 11] {
        let mut buf = vec![0u8; 4096];
        h.lt_read(&mut ctx, lh, mb * (1 << 20) + 7, &mut buf)
            .unwrap();
        assert_eq!(buf, stamp, "corruption after move at {mb} MB");
    }
}
