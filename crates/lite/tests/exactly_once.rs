//! End-to-end exactly-once atomics through the kernel's retry layer.
//!
//! `DropAtomicAck` faults drop the *response* leg of remote atomics —
//! the apply has landed when the requester sees the timeout. The
//! datapath mints one sequence per logical op outside `with_retry` and
//! tags every attempt with it, so the responder NIC's dedup filter turns
//! the retry into a replay of the one real apply. These tests drive the
//! full stack (`lt_fetch_add` / `lt_test_set` / `lt_cmp_swap` →
//! datapath → verbs) under seeded ack loss and assert no double-apply.

use lite::{LiteCluster, LiteConfig, Perm, QosConfig};
use rnic::{FaultPlan, FaultRule, IbConfig};
use simnet::Ctx;

fn cluster_with_retry() -> std::sync::Arc<LiteCluster> {
    let config = LiteConfig {
        retry_base_ns: 500,
        ..LiteConfig::default()
    };
    LiteCluster::start_with(IbConfig::with_nodes(2), config, QosConfig::default()).unwrap()
}

fn ack_plan(seed: u64, prob: f64, max_drops: u64) -> FaultPlan {
    FaultPlan::seeded(seed).with(FaultRule::DropAtomicAck {
        src: Some(0),
        dst: Some(1),
        prob,
        max_drops,
    })
}

/// Every lost ack forces a retry; the counter must still advance by
/// exactly one per logical op, and the returned old values must be the
/// exact sequence 0, 1, 2, ... (any double-apply skips a value).
#[test]
fn fetch_add_exactly_once_under_ack_loss() {
    let cluster = cluster_with_retry();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h.lt_malloc(&mut ctx, 1, 4096, "eo.fa", Perm::RW).unwrap();

    cluster.fabric().install_fault_plan(ack_plan(7, 0.5, 16));
    let n = 64u64;
    for i in 0..n {
        let old = h.lt_fetch_add(&mut ctx, lh, 0, 1).unwrap();
        assert_eq!(old, i, "old value stream must have no gaps or repeats");
    }
    // Stats are owned by the installed plan — read them before clearing.
    let stats = cluster.fabric().fault_stats();
    cluster.fabric().clear_fault_plan();

    let mut word = [0u8; 8];
    h.lt_read(&mut ctx, lh, 0, &mut word).unwrap();
    assert_eq!(u64::from_le_bytes(word), n, "applied exactly once each");
    assert!(stats.ack_drops > 0, "the plan must actually have fired");
    let ks = h.lt_stats().kernel;
    assert!(ks.retries > 0, "lost acks must have forced retries");
}

/// A CAS chain i -> i+1 survives ack loss: a retried winning CAS must
/// report its original success (a re-execution would see the swapped
/// word and report a spurious failure, derailing the chain).
#[test]
fn cmp_swap_chain_exactly_once_under_ack_loss() {
    let cluster = cluster_with_retry();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h.lt_malloc(&mut ctx, 1, 4096, "eo.cas", Perm::RW).unwrap();

    cluster.fabric().install_fault_plan(ack_plan(13, 0.5, 16));
    let n = 48u64;
    for i in 0..n {
        let old = h.lt_cmp_swap(&mut ctx, lh, 0, i, i + 1).unwrap();
        assert_eq!(old, i, "every CAS in the chain must win exactly once");
    }
    let stats = cluster.fabric().fault_stats();
    cluster.fabric().clear_fault_plan();

    let mut word = [0u8; 8];
    h.lt_read(&mut ctx, lh, 0, &mut word).unwrap();
    assert_eq!(u64::from_le_bytes(word), n);
    assert!(stats.ack_drops > 0);
}

/// `lt_test_set` (the paper-surface alias of `lt_cmp_swap`) gets the
/// same exactly-once treatment: a lock word acquired under ack loss is
/// held once, not twice.
#[test]
fn test_set_exactly_once_under_ack_loss() {
    let cluster = cluster_with_retry();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h.lt_malloc(&mut ctx, 1, 4096, "eo.ts", Perm::RW).unwrap();

    cluster.fabric().install_fault_plan(ack_plan(29, 1.0, 4));
    // Acquire (0 -> 1): ack dropped, retried, must still report old = 0.
    assert_eq!(h.lt_test_set(&mut ctx, lh, 0, 0, 1).unwrap(), 0);
    // Re-acquire attempt fails cleanly: the word is 1, exactly once.
    assert_eq!(h.lt_test_set(&mut ctx, lh, 0, 0, 1).unwrap(), 1);
    // Release (1 -> 0) under ack loss, then verify.
    assert_eq!(h.lt_test_set(&mut ctx, lh, 0, 1, 0).unwrap(), 1);
    cluster.fabric().clear_fault_plan();

    let mut word = [0u8; 8];
    h.lt_read(&mut ctx, lh, 0, &mut word).unwrap();
    assert_eq!(u64::from_le_bytes(word), 0);
}

/// The atomic history recorded under ack loss stays linearizable: Ok
/// completions correspond to exactly one apply each, so the checker
/// finds a witness (a double-apply would leave a gap no order explains).
#[test]
fn atomic_history_linearizable_under_ack_loss() {
    let cluster = cluster_with_retry();
    let log = cluster.record_history().unwrap();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h.lt_malloc(&mut ctx, 1, 4096, "eo.hist", Perm::RW).unwrap();

    cluster.fabric().install_fault_plan(ack_plan(99, 0.3, 8));
    for i in 0..32u64 {
        if i % 3 == 0 {
            let _ = h.lt_cmp_swap(&mut ctx, lh, 0, i, i + 1);
        } else {
            let _ = h.lt_fetch_add(&mut ctx, lh, 0, 1);
        }
    }
    cluster.fabric().clear_fault_plan();

    let history = log.take();
    assert!(!history.ops.is_empty());
    let outcome = history.check();
    assert!(
        outcome.is_linearizable(),
        "exactly-once atomics must stay linearizable: {:?}",
        outcome.violations
    );
}
