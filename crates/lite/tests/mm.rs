//! End-to-end tests of the memory-tiering subsystem (`lite::mm`):
//! budget-pressure eviction, explicit migration requests, fault-driven
//! fetch-back, transparency of the API layer across migrations, and the
//! ablation (budget 0 leaves every gauge at zero and behavior
//! unchanged).

use std::sync::Arc;
use std::time::{Duration, Instant};

use lite::mm::MmRequest;
use lite::{LiteCluster, LiteConfig, Perm, QosConfig};
use rnic::IbConfig;
use simnet::Ctx;

fn tiered_cluster(nodes: usize, budget: u64) -> Arc<LiteCluster> {
    let config = LiteConfig {
        mem_budget_bytes: budget,
        mm_sweep_interval: Duration::from_millis(1),
        max_lmr_chunk: 8 * 1024,
        ..LiteConfig::default()
    };
    LiteCluster::start_with(IbConfig::with_nodes(nodes), config, QosConfig::default()).unwrap()
}

/// Polls `cond` until it holds or `secs` elapse.
fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

/// A working set far above the budget is evicted to swap nodes by the
/// background sweeper, and every byte survives the trip: reads through
/// the original (now stale) handle transparently refresh and follow the
/// chunks to their new hosts.
#[test]
fn pressure_eviction_keeps_data_intact() {
    let budget = 48 * 1024u64;
    let total = 128 * 1024usize;
    let cluster = tiered_cluster(3, budget);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 0, total as u64, "mm.pressure", Perm::RW)
        .unwrap();
    let data = pattern(total, 7);
    for (i, slice) in data.chunks(16 * 1024).enumerate() {
        h.lt_write(&mut ctx, lh, (i * 16 * 1024) as u64, slice)
            .unwrap();
    }

    let kernel = cluster.kernel(0);
    assert!(
        wait_for(20, || {
            let s = kernel.mm_stats();
            s.evictions > 0 && s.resident_bytes <= budget
        }),
        "sweeper never relieved pressure: {:?}",
        kernel.mm_stats()
    );
    let stats = kernel.mm_stats();
    assert!(stats.enabled);
    assert!(
        stats.evicted_bytes > 0,
        "no bytes accounted remote: {stats:?}"
    );
    assert!(stats.evicted_chunks > 0);

    // Everything reads back intact through the pre-eviction handle.
    let mut buf = vec![0u8; total];
    for (i, slice) in buf.chunks_mut(16 * 1024).enumerate() {
        h.lt_read(&mut ctx, lh, (i * 16 * 1024) as u64, slice)
            .unwrap();
    }
    assert_eq!(buf, data, "data corrupted across eviction");

    // A fresh mapper on another node sees the same bytes.
    let mut remote = cluster.attach(1).unwrap();
    let rlh = remote.lt_map(&mut ctx, "mm.pressure").unwrap();
    let mut rbuf = vec![0u8; 4096];
    remote.lt_read(&mut ctx, rlh, 60 * 1024, &mut rbuf).unwrap();
    assert_eq!(&rbuf[..], &data[60 * 1024..64 * 1024]);
}

/// An explicit `MmRequest::Evict` migrates every chunk of one LMR, and
/// the stale handle keeps working for both reads and writes — writes
/// land on the remote copy, visible to other mappers.
#[test]
fn explicit_evict_is_transparent_to_stale_handles() {
    let total = 32 * 1024usize;
    // Budget far above the working set: nothing evicts on its own.
    let cluster = tiered_cluster(2, 4 << 20);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 0, total as u64, "mm.explicit", Perm::RW)
        .unwrap();
    let data = pattern(total, 3);
    h.lt_write(&mut ctx, lh, 0, &data).unwrap();
    let id = h.lh_id(lh).unwrap();

    let kernel = cluster.kernel(0);
    let before = kernel.mm_stats();
    assert_eq!(before.evictions, 0, "unexpected background eviction");
    kernel.mm().request(MmRequest::Evict {
        idx: id.idx,
        off: u64::MAX,
    });
    assert!(
        wait_for(10, || kernel.mm_stats().evicted_chunks
            >= total / (8 * 1024)),
        "explicit evict did not complete: {:?}",
        kernel.mm_stats()
    );

    // Read through the stale handle: transparently refreshed.
    let mut buf = vec![0u8; total];
    h.lt_read(&mut ctx, lh, 0, &mut buf).unwrap();
    assert_eq!(buf, data);

    // Write through it too; a fresh mapper on node 1 must see the new
    // bytes at the chunk the write touched.
    let update = pattern(4096, 99);
    h.lt_write(&mut ctx, lh, 10 * 1024, &update).unwrap();
    let mut remote = cluster.attach(1).unwrap();
    let rlh = remote.lt_map(&mut ctx, "mm.explicit").unwrap();
    let mut rbuf = vec![0u8; 4096];
    remote.lt_read(&mut ctx, rlh, 10 * 1024, &mut rbuf).unwrap();
    assert_eq!(rbuf, update);

    // Atomics redirect as well: the counter lives wherever the chunk is.
    let v0 = h.lt_fetch_add(&mut ctx, lh, 16, 5).unwrap();
    let v1 = remote.lt_fetch_add(&mut ctx, rlh, 16, 1).unwrap();
    assert_eq!(v1, v0 + 5);
}

/// Repeated remote map-faults on an evicted LMR pull its chunks home:
/// the fetch-back path restores residency and the data.
#[test]
fn map_faults_pull_chunks_home() {
    let total = 16 * 1024usize;
    let cluster = tiered_cluster(2, 4 << 20);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 0, total as u64, "mm.faults", Perm::RW)
        .unwrap();
    let data = pattern(total, 42);
    h.lt_write(&mut ctx, lh, 0, &data).unwrap();
    let id = h.lh_id(lh).unwrap();

    let kernel = cluster.kernel(0);
    kernel.mm().request(MmRequest::Evict {
        idx: id.idx,
        off: u64::MAX,
    });
    assert!(
        wait_for(10, || kernel.mm_stats().evicted_chunks > 0),
        "evict did not complete: {:?}",
        kernel.mm_stats()
    );

    // Each lt_map re-fetches the record from the master and counts as a
    // remote fault there (extents point away from home). Enough of them
    // trigger a fetch-back on the next sweep.
    let mut remote = cluster.attach(1).unwrap();
    let fetched = wait_for(10, || {
        remote.lt_map(&mut ctx, "mm.faults").unwrap();
        let s = kernel.mm_stats();
        s.fetch_backs > 0 && s.evicted_chunks == 0
    });
    assert!(fetched, "fetch-back never fired: {:?}", kernel.mm_stats());
    let stats = kernel.mm_stats();
    assert_eq!(stats.evicted_bytes, 0, "still remote: {stats:?}");
    assert!(stats.resident_bytes >= total as u64);

    // Data intact after the round trip, from both nodes.
    let mut buf = vec![0u8; total];
    h.lt_read(&mut ctx, lh, 0, &mut buf).unwrap();
    assert_eq!(buf, data);
    let rlh = remote.lt_map(&mut ctx, "mm.faults").unwrap();
    let mut rbuf = vec![0u8; total];
    remote.lt_read(&mut ctx, rlh, 0, &mut rbuf).unwrap();
    assert_eq!(rbuf, data);
}

/// Concurrent writers and readers make progress while the sweeper
/// churns their LMR between hosts — the pin/retry fencing never loses
/// an acknowledged write.
#[test]
fn concurrent_access_survives_live_migration() {
    let cluster = tiered_cluster(3, 16 * 1024);
    {
        let mut h = cluster.attach(0).unwrap();
        let mut ctx = Ctx::new();
        h.lt_malloc(&mut ctx, 0, 64 * 1024, "mm.churn", Perm::RW)
            .unwrap();
    }
    let mut joins = Vec::new();
    for t in 0..2usize {
        let cluster = Arc::clone(&cluster);
        joins.push(std::thread::spawn(move || {
            let mut h = cluster.attach(t).unwrap();
            let mut ctx = Ctx::new();
            let lh = h.lt_map(&mut ctx, "mm.churn").unwrap();
            for i in 0..150u32 {
                let off = (t * 32 * 1024) as u64 + u64::from(i % 64) * 256;
                let tag = [(t as u8) << 4 | (i % 16) as u8; 64];
                h.lt_write(&mut ctx, lh, off, &tag).unwrap();
                let mut back = [0u8; 64];
                h.lt_read(&mut ctx, lh, off, &mut back).unwrap();
                assert_eq!(back, tag, "writer {t} lost write {i}");
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let stats = cluster.kernel(0).mm_stats();
    assert!(
        stats.evictions > 0,
        "budget never forced migration — test exercised nothing: {stats:?}"
    );
}

/// Budget 0 disables tiering entirely: no manager thread, every gauge
/// stays zero, explicit requests are no-ops, and the data path behaves
/// exactly as before the subsystem existed.
#[test]
fn ablation_budget_zero_is_inert() {
    let cluster = tiered_cluster(2, 0);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 0, 64 * 1024, "mm.off", Perm::RW)
        .unwrap();
    let data = pattern(64 * 1024, 11);
    h.lt_write(&mut ctx, lh, 0, &data).unwrap();

    let kernel = cluster.kernel(0);
    let id = h.lh_id(lh).unwrap();
    kernel.mm().request(MmRequest::Evict {
        idx: id.idx,
        off: u64::MAX,
    });
    std::thread::sleep(Duration::from_millis(50));

    let stats = kernel.mm_stats();
    assert!(!stats.enabled);
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.fetch_backs, 0);
    assert_eq!(stats.evicted_bytes, 0);
    assert_eq!(stats.redirects, 0);

    let mut buf = vec![0u8; 64 * 1024];
    h.lt_read(&mut ctx, lh, 0, &mut buf).unwrap();
    assert_eq!(buf, data);
}
