//! Integration tests for the linearizability verifier ([`lite::verify`])
//! and the lock/cleanup fault-path fixes it guards.
//!
//! The deterministic fault scenarios here replay the exact failure modes
//! the bugfix sweep closed: a release whose ack is dropped (must retry
//! without granting a second waiter) and an acquire that times out in
//! the owner's queue (must unwind its lock-word increment). Each run is
//! recorded and fed through the history checker, so the assertions are
//! not just liveness — the interleaving itself is certified.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lite::{LiteCluster, LiteConfig, LiteError, Perm, QosConfig};
use rnic::{FaultPlan, FaultRule, IbConfig};
use simnet::Ctx;

fn quick_config(op_timeout: Duration) -> LiteConfig {
    LiteConfig {
        op_timeout,
        ..LiteConfig::default()
    }
}

/// A release whose ack (and the head update batched with it) is dropped
/// must be retried by the unlocker and deduplicated by the owner: the
/// waiter is granted exactly once, nothing leaks, and the recorded
/// history linearizes.
#[test]
fn unlock_handover_survives_dropped_ack() {
    let mut config = quick_config(Duration::from_millis(300));
    // Disable the transparent datapath retry layer: this test exercises
    // the API-level release retry + owner-side dedup, which only engage
    // once a reply is truly lost.
    config.retry_enabled = false;
    let cluster =
        LiteCluster::start_with(IbConfig::with_nodes(2), config, QosConfig::default()).unwrap();
    let log = cluster.record_history().unwrap();

    let mut owner = cluster.attach(0).unwrap();
    let mut ctx0 = Ctx::new();
    let lock = owner.lt_create_lock(&mut ctx0).unwrap();

    // A (node 1) takes the lock on the fast path.
    let mut a = cluster.attach(1).unwrap();
    let mut ctx_a = Ctx::new();
    a.lt_lock(&mut ctx_a, lock).unwrap();

    // B (node 0) contends and parks in the owner's queue.
    let b_granted = Arc::new(AtomicBool::new(false));
    let b_thread = {
        let cluster = Arc::clone(&cluster);
        let b_granted = Arc::clone(&b_granted);
        std::thread::spawn(move || {
            let mut b = cluster.attach(0).unwrap();
            let mut ctx = Ctx::new();
            b.lt_lock(&mut ctx, lock).unwrap();
            b_granted.store(true, Ordering::SeqCst);
            b.lt_unlock(&mut ctx, lock).unwrap();
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        !b_granted.load(Ordering::SeqCst),
        "B must still be queued while A holds the lock"
    );

    // Drop the next two owner->A WRs: the head update and the release
    // ack of A's first unlock attempt. The grant to B (loop-back on the
    // owner) is unaffected, so B wakes while A's ack is lost.
    cluster
        .fabric()
        .install_fault_plan(FaultPlan::seeded(1).with(FaultRule::DropWr {
            src: Some(0),
            dst: Some(1),
            prob: 1.0,
            max_drops: 2,
        }));
    a.lt_unlock(&mut ctx_a, lock).unwrap();
    b_thread.join().unwrap();
    assert!(
        cluster.fabric().fault_stats().drops >= 1,
        "fault never fired"
    );
    cluster.fabric().clear_fault_plan();

    for n in 0..2 {
        let stats = cluster.kernel(n).stats();
        assert_eq!(stats.sync_leaks, 0, "node {n} leaked sync state");
        assert_eq!(stats.lock_unwinds, 0, "node {n} unwound a healthy acquire");
    }

    // The lock is free and reusable: the duplicate release must not have
    // pre-granted a phantom waiter.
    a.lt_lock(&mut ctx_a, lock).unwrap();
    a.lt_unlock(&mut ctx_a, lock).unwrap();

    let outcome = log.take().check();
    assert!(
        outcome.is_linearizable(),
        "history not linearizable: {:?}",
        outcome.violations
    );
    assert_eq!(outcome.skipped, 0, "no partition should be ambiguous");
}

/// An acquire that times out while queued must abort its enqueue and
/// unwind its lock-word increment, leaving the lock healthy for the
/// holder and for future acquirers.
#[test]
fn lock_timeout_abort_unwinds_word() {
    let cluster = LiteCluster::start_with(
        IbConfig::with_nodes(2),
        quick_config(Duration::from_millis(150)),
        QosConfig::default(),
    )
    .unwrap();
    let log = cluster.record_history().unwrap();

    let mut holder = cluster.attach(0).unwrap();
    let mut ctx_h = Ctx::new();
    let lock = holder.lt_create_lock(&mut ctx_h).unwrap();
    holder.lt_lock(&mut ctx_h, lock).unwrap();

    // The waiter gives up after 150ms; the holder sits on the lock for
    // 400ms, so the wait deterministically expires first.
    let waiter = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            let mut w = cluster.attach(1).unwrap();
            let mut ctx = Ctx::new();
            w.lt_lock(&mut ctx, lock)
        })
    };
    std::thread::sleep(Duration::from_millis(400));
    let waited = waiter.join().unwrap();
    assert!(matches!(waited, Err(LiteError::Timeout)), "got {waited:?}");
    assert_eq!(
        cluster.kernel(1).stats().lock_unwinds,
        1,
        "the failed acquire must roll its fetch_add back"
    );
    assert_eq!(cluster.kernel(1).stats().sync_leaks, 0);

    // The holder's unlock takes the fast path (the word is back to 1),
    // and the lock keeps working for everyone afterwards.
    holder.lt_unlock(&mut ctx_h, lock).unwrap();
    let mut late = cluster.attach(1).unwrap();
    let mut ctx_l = Ctx::new();
    late.lt_lock(&mut ctx_l, lock).unwrap();
    late.lt_unlock(&mut ctx_l, lock).unwrap();

    let outcome = log.take().check();
    assert!(
        outcome.is_linearizable(),
        "history not linearizable: {:?}",
        outcome.violations
    );
}

/// Reusing a barrier id after a generation completes must form a fresh
/// generation, never mix arrivals across generations (satellite of the
/// verifier work: the checker's generation chunking certifies it).
#[test]
fn barrier_id_reuse_forms_fresh_generations() {
    let cluster = LiteCluster::start(3).unwrap();
    let log = cluster.record_history().unwrap();

    for _round in 0..4 {
        let mut threads = Vec::new();
        for node in 0..3 {
            let cluster = Arc::clone(&cluster);
            threads.push(std::thread::spawn(move || {
                let mut h = cluster.attach(node).unwrap();
                let mut ctx = Ctx::new();
                // Same id every round: each completed generation must
                // retire owner-side state so the next one starts clean.
                h.lt_barrier(&mut ctx, 9, 3).unwrap();
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
    }

    let history = log.take();
    assert_eq!(history.ops.len(), 12, "4 generations x 3 arrivals");
    let outcome = history.check();
    assert!(
        outcome.is_linearizable(),
        "barrier generations overlap: {:?}",
        outcome.violations
    );
}

/// An 8-byte atomic that spans two chunks of a multi-chunk LMR must be
/// rejected with the real offset, not the bogus `OutOfBounds {{ offset:
/// 0 }}` the old `single_piece` produced.
#[test]
fn atomic_straddling_chunk_boundary_reports_real_offset() {
    let config = LiteConfig {
        max_lmr_chunk: 4096,
        ..LiteConfig::default()
    };
    let cluster =
        LiteCluster::start_with(IbConfig::with_nodes(2), config, QosConfig::default()).unwrap();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 1, 8192, "straddle", Perm::RW)
        .unwrap();

    // Fully inside the first chunk: fine.
    assert_eq!(h.lt_fetch_add(&mut ctx, lh, 4088, 5).unwrap(), 0);
    // Spanning [4092, 4100): must name the offending offset.
    assert_eq!(
        h.lt_fetch_add(&mut ctx, lh, 4092, 1),
        Err(LiteError::StraddlesChunk {
            offset: 4092,
            len: 8
        })
    );
    assert_eq!(
        h.lt_test_set(&mut ctx, lh, 4092, 0, 7),
        Err(LiteError::StraddlesChunk {
            offset: 4092,
            len: 8
        })
    );
    // First word of the second chunk: fine again.
    assert_eq!(h.lt_test_set(&mut ctx, lh, 4096, 0, 7).unwrap(), 0);
}

/// End-to-end smoke of the canonical mixed workload: one seeded run,
/// recorded and certified by the checker.
#[test]
fn mixed_workload_records_linearizable_history() {
    let w = lite::verify::MixedWorkload::default();
    let history = lite::verify::run_mixed(0xC0FFEE, &w).unwrap();
    assert!(!history.ops.is_empty(), "workload recorded nothing");
    let outcome = history.check();
    assert!(
        outcome.is_linearizable(),
        "mixed workload not linearizable: {:?}",
        outcome.violations
    );
}
