//! Observability acceptance tests: the concurrent histogram against an
//! exact-quantile oracle under multi-threaded recording, `lt_stats()`
//! percentiles after a mixed workload, per-priority separation under
//! SW-Pri contention, and the JSON export.

use std::sync::Arc;

use lite::{
    ConcurrentHistogram, EventKind, LiteCluster, OpClass, Perm, Priority, QosMode, USER_FUNC_MIN,
};
use proptest::prelude::*;
use simnet::stats::{bucket_floor, bucket_of};
use simnet::Ctx;

/// What the log-scaled histogram must report for rank-`target` (1-based)
/// of `sorted`: the floor of the bucket holding that sample, clamped to
/// the exact extremes (and the exact max at the top rank).
fn oracle(sorted: &[u64], p: f64) -> u64 {
    let count = sorted.len() as u64;
    let target = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
    let min = sorted[0];
    let max = *sorted.last().unwrap();
    if target >= count {
        return max;
    }
    bucket_floor(bucket_of(sorted[target as usize - 1])).clamp(min, max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded concurrent recording merges into exactly the same
    /// histogram a serial recorder would produce: every percentile
    /// equals the bucket-floor oracle over the sorted values, and the
    /// extremes are exact.
    #[test]
    fn concurrent_histogram_matches_exact_quantile_oracle(
        values in prop::collection::vec(1u64..1_000_000_000, 64..512),
    ) {
        let hist = Arc::new(ConcurrentHistogram::new());
        let threads = 4;
        let chunk = values.len().div_ceil(threads);
        std::thread::scope(|s| {
            for part in values.chunks(chunk) {
                let hist = Arc::clone(&hist);
                s.spawn(move || {
                    for &v in part {
                        hist.record(v);
                    }
                });
            }
        });
        prop_assert_eq!(hist.count(), values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = hist.snapshot();
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(
                snap.percentile(p),
                oracle(&sorted, p),
                "percentile {} diverged from the exact oracle",
                p
            );
        }
        prop_assert_eq!(snap.percentile(0.0), sorted[0]);
        prop_assert_eq!(snap.percentile(100.0), *sorted.last().unwrap());
    }
}

/// After a mixed workload (one-sided writes + reads + RPC), `lt_stats()`
/// reports non-zero p50/p99 for every exercised class, live per-peer
/// accounting, and trace-ring occupancy.
#[test]
fn lt_stats_reports_mixed_workload_latencies() {
    const FN_ECHO: u8 = USER_FUNC_MIN + 1;
    let cluster = LiteCluster::start(2).unwrap();
    cluster.attach(1).unwrap().register_rpc(FN_ECHO).unwrap();

    let server = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            let mut h = cluster.attach(1).unwrap();
            let mut ctx = Ctx::new();
            for _ in 0..32 {
                let call = h.lt_recv_rpc(&mut ctx, FN_ECHO).unwrap();
                h.lt_reply_rpc(&mut ctx, &call, &call.input).unwrap();
            }
        })
    };

    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 1, 1 << 16, "obs.mix", Perm::RW)
        .unwrap();
    let payload = vec![0x5a_u8; 4096];
    for i in 0..64u64 {
        h.lt_write(&mut ctx, lh, (i % 8) * 4096, &payload).unwrap();
        let mut buf = vec![0u8; 4096];
        h.lt_read(&mut ctx, lh, (i % 8) * 4096, &mut buf).unwrap();
    }
    for _ in 0..32 {
        let reply = h.lt_rpc(&mut ctx, 1, FN_ECHO, b"ping", 64).unwrap();
        assert_eq!(reply, b"ping");
    }
    server.join().unwrap();

    let report = h.lt_stats();
    assert_eq!(report.node, 0);
    assert_eq!(report.sample_rate, 1);
    for class in [OpClass::Read, OpClass::Write, OpClass::Rpc] {
        let lat = report
            .class_any_prio(class)
            .unwrap_or_else(|| panic!("{} recorded no latencies", class.name()));
        assert!(lat.count > 0, "{}: empty summary", class.name());
        assert!(lat.p50 > 0, "{}: zero p50", class.name());
        assert!(lat.p99 > 0, "{}: zero p99", class.name());
        assert!(lat.p99 >= lat.p50, "{}: p99 below p50", class.name());
    }
    // Per-peer view: node 0 talked to node 1 and it is alive.
    let peer = report
        .peers
        .iter()
        .find(|p| p.peer == 1)
        .expect("peer 1 must appear in the report");
    assert!(peer.ops > 0);
    assert!(peer.bytes > 0);
    assert!(peer.alive);
    assert_eq!(peer.failures, 0);
    // The trace ring saw posted + completed lifecycles.
    assert!(report.trace.occupancy > 0);
    assert!(report.trace_count(EventKind::Posted) > 0);
    assert!(report.trace_count(EventKind::Completed) > 0);
    assert_eq!(report.trace_count(EventKind::Failed), 0);
}

/// Under SW-Pri with sustained high-priority contention, low-priority
/// writes are rate-limited and their latency histogram separates from
/// the high-priority one (the Fig 14 behavior, observed through
/// `lt_stats()` instead of a benchmark harness).
#[test]
fn sw_pri_contention_separates_priority_histograms() {
    let cluster = LiteCluster::start(2).unwrap();
    cluster.set_qos_mode(QosMode::SwPri);

    let mut hi = cluster.attach(0).unwrap();
    let mut lo = cluster.attach(0).unwrap();
    lo.set_priority(Priority::Low);

    let mut ctx = Ctx::new();
    let lh_hi = hi
        .lt_malloc(&mut ctx, 1, 1 << 18, "obs.hi", Perm::RW)
        .unwrap();
    let lh_lo = lo
        .lt_malloc(&mut ctx, 1, 1 << 18, "obs.lo", Perm::RW)
        .unwrap();
    let block = vec![0xa5_u8; 64 * 1024];
    // Interleave on one virtual clock: the high stream keeps the
    // receiver's monitor hot (policies 1/3), so the low stream hits the
    // token bucket on most ops.
    for _ in 0..120 {
        hi.lt_write(&mut ctx, lh_hi, 0, &block).unwrap();
        lo.lt_write(&mut ctx, lh_lo, 0, &block).unwrap();
    }

    let report = hi.lt_stats();
    let high = report
        .class(OpClass::Write, Priority::High)
        .expect("high-priority writes recorded");
    let low = report
        .class(OpClass::Write, Priority::Low)
        .expect("low-priority writes recorded");
    assert!(high.count >= 120 && low.count >= 120);
    assert!(
        low.p50 > high.p50,
        "SW-Pri contention must throttle low priority: low p50 {} <= high p50 {}",
        low.p50,
        high.p50
    );
    assert!(low.p99 > high.p99, "low tail must sit above the high tail");
}

/// The JSON export carries the documented schema: kernel counters,
/// per-class cells keyed `class.prio`, peers, trace gauges, QoS mode.
#[test]
fn stats_report_exports_json() {
    let cluster = LiteCluster::start(2).unwrap();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 1, 4096, "obs.json", Perm::RW)
        .unwrap();
    h.lt_write(&mut ctx, lh, 0, b"json").unwrap();

    let json = h.lt_stats().to_json();
    for key in [
        "\"node\":0",
        "\"sample_rate\":1",
        "\"kernel\":{",
        "\"lt_writes\":",
        "\"kv_puts\":",
        "\"kv_gets\":",
        "\"kv_replication_lag\":",
        "\"p999\":",
        "\"classes\":{",
        "\"write.high\":",
        "\"peers\":[",
        "\"trace\":{",
        "\"capacity\":",
        "\"qos\":{\"mode\":\"none\"",
    ] {
        assert!(json.contains(key), "JSON export missing {key}: {json}");
    }
}
