//! Direct coverage for `lt_multicast_rpc` / `lt_multicast_rpc_partial`:
//! fan-out ordering, partial-failure isolation (one bad destination must
//! not poison the others' replies), behavior under a seeded fault plan,
//! and a scratch-balance regression test for the resource leaks the
//! fault path originally turned up (reply buffers and completion slots
//! orphaned by early returns mid-fan-out).

use std::sync::Arc;
use std::time::Duration;

use lite::{LiteCluster, LiteConfig, LiteError, QosConfig, USER_FUNC_MIN};
use rnic::{FaultPlan, FaultRule, IbConfig};
use simnet::Ctx;

/// Spawns an echo server on `node` that answers `calls` requests for
/// `func` with its own node id followed by the request payload.
fn echo_server(
    cluster: &Arc<LiteCluster>,
    node: usize,
    func: u8,
    calls: usize,
) -> std::thread::JoinHandle<()> {
    cluster.attach(node).unwrap().register_rpc(func).unwrap();
    let cluster = Arc::clone(cluster);
    std::thread::spawn(move || {
        let mut h = cluster.attach(node).unwrap();
        let mut ctx = Ctx::new();
        for _ in 0..calls {
            // Retry on timeout: some tests run with a short `op_timeout`
            // and the client may not have posted yet.
            let call = loop {
                match h.lt_recv_rpc(&mut ctx, func) {
                    Ok(call) => break call,
                    Err(LiteError::Timeout) => continue,
                    Err(e) => panic!("server recv failed: {e:?}"),
                }
            };
            let mut reply = vec![node as u8];
            reply.extend_from_slice(&call.input);
            h.lt_reply_rpc(&mut ctx, &call, &reply).unwrap();
        }
    })
}

/// Replies come back in destination order regardless of which server
/// answers first, and repeated fan-outs reuse the handle's persistent
/// reply cells without disturbing results.
#[test]
fn multicast_replies_align_with_destination_order() {
    let cluster = LiteCluster::start(4).unwrap();
    const F: u8 = USER_FUNC_MIN + 11;
    let rounds = 3usize;
    let servers: Vec<_> = (1..4)
        .map(|node| echo_server(&cluster, node, F, rounds))
        .collect();

    let mut c = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    // Destinations deliberately out of node order: the result vector
    // must be indexed by position in `servers`, not by node id.
    for round in 0..rounds {
        let payload = [round as u8];
        let replies = c
            .lt_multicast_rpc(&mut ctx, &[3, 1, 2], F, &payload, 64)
            .unwrap();
        assert_eq!(
            replies,
            vec![
                vec![3, round as u8],
                vec![1, round as u8],
                vec![2, round as u8]
            ]
        );
    }
    for s in servers {
        s.join().unwrap();
    }
}

/// A destination that never registered the function gets an error reply;
/// the partial API surfaces it in that destination's slot while the
/// other replies come through intact, and the all-or-nothing wrapper
/// turns the same outcome into a call-wide error.
#[test]
fn multicast_partial_isolates_unregistered_destination() {
    let cluster = LiteCluster::start(4).unwrap();
    const F: u8 = USER_FUNC_MIN + 12;
    // Servers on 1 and 3 only — node 2 never binds the function, so its
    // poller error-replies and releases the ring slot itself.
    let servers: Vec<_> = [1usize, 3]
        .into_iter()
        .map(|node| echo_server(&cluster, node, F, 2))
        .collect();

    let mut c = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let results = c
        .lt_multicast_rpc_partial(&mut ctx, &[1, 2, 3], F, b"go", 64)
        .unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].as_deref().unwrap(), [1, b'g', b'o']);
    assert!(matches!(results[1], Err(LiteError::UnknownRpc { func: F })));
    assert_eq!(results[2].as_deref().unwrap(), [3, b'g', b'o']);

    // Same fan-out through the all-or-nothing view: the healthy replies
    // are discarded and the first failure is the call's result.
    let err = c
        .lt_multicast_rpc(&mut ctx, &[1, 2, 3], F, b"go", 64)
        .unwrap_err();
    assert!(matches!(err, LiteError::UnknownRpc { func: F }));
    for s in servers {
        s.join().unwrap();
    }
}

/// With one destination crashed by a seeded fault plan, the fan-out
/// still gathers the live destinations' replies and reports a
/// per-destination error for the dead one.
#[test]
fn multicast_partial_survives_crashed_destination() {
    const F: u8 = USER_FUNC_MIN + 13;
    let config = LiteConfig {
        // Short deadlines: the dead destination should fail the call
        // quickly instead of serializing the test on long timeouts.
        op_timeout: Duration::from_millis(200),
        ..Default::default()
    };
    let cluster =
        LiteCluster::start_with(IbConfig::with_nodes(4), config, QosConfig::default()).unwrap();
    let servers: Vec<_> = [1usize, 3]
        .into_iter()
        .map(|node| echo_server(&cluster, node, F, 1))
        .collect();
    // Node 2 dies on the first fabric op and never comes back.
    cluster
        .fabric()
        .install_fault_plan(FaultPlan::seeded(7).with(FaultRule::CrashNode {
            node: 2,
            at_op: 1,
            restart_after_ops: u64::MAX,
        }));

    let mut c = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let results = c
        .lt_multicast_rpc_partial(&mut ctx, &[1, 2, 3], F, b"up?", 64)
        .unwrap();
    assert_eq!(results[0].as_deref().unwrap(), [1, b'u', b'p', b'?']);
    assert!(results[1].is_err(), "crashed destination must error");
    assert_eq!(results[2].as_deref().unwrap(), [3, b'u', b'p', b'?']);
    assert!(cluster.fabric().fault_stats().crashes >= 1);
    for s in servers {
        s.join().unwrap();
    }
}

/// Regression test for the leak the fault path turned up: the original
/// multicast bailed out with `?` mid-fan-out, orphaning the reply
/// buffers and completion slots of destinations already posted (and
/// skipping the syscall-exit bookkeeping). Failing fan-outs must leave
/// the client kernel's scratch allocator balance exactly where they
/// found it, and the handle must remain usable afterwards.
#[test]
fn multicast_failure_paths_release_client_scratch() {
    const F: u8 = USER_FUNC_MIN + 14;
    let config = LiteConfig {
        op_timeout: Duration::from_millis(50),
        ..Default::default()
    };
    let cluster =
        LiteCluster::start_with(IbConfig::with_nodes(3), config, QosConfig::default()).unwrap();
    let server = echo_server(&cluster, 1, F, 2);

    let mut c = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    // Warm-up: one successful fan-out sizes the handle's persistent
    // staging and multicast-reply scratch.
    c.lt_multicast_rpc(&mut ctx, &[1], F, b"warm", 64).unwrap();

    // Crash node 2, then let one failing call settle any lazy wiring
    // state (ring structures are cached across calls, so the first
    // attempt may legitimately shift the allocator balance).
    cluster
        .fabric()
        .install_fault_plan(FaultPlan::seeded(11).with(FaultRule::CrashNode {
            node: 2,
            at_op: 1,
            restart_after_ops: u64::MAX,
        }));
    let _ = c.lt_multicast_rpc(&mut ctx, &[2], F, b"warm", 64);

    let baseline = c.kernel().scratch_free_bytes();
    for i in 0..10 {
        let r = c.lt_multicast_rpc(&mut ctx, &[2], F, b"warm", 64);
        assert!(r.is_err(), "call {i} to a crashed node must fail");
        assert_eq!(
            c.kernel().scratch_free_bytes(),
            baseline,
            "failing multicast {i} moved the scratch allocator balance"
        );
    }

    // The handle is still healthy: a fresh fan-out to the live server
    // succeeds with the same persistent scratch.
    let replies = c.lt_multicast_rpc(&mut ctx, &[1], F, b"ok", 64).unwrap();
    assert_eq!(replies, vec![vec![1, b'o', b'k']]);
    server.join().unwrap();
}
