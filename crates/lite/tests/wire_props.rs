//! Property tests of the `lite::wire` codecs: the `Enc`/`Dec` pair,
//! the 32-bit IMM encoding, the ring-message header, and granule
//! rounding must all round-trip for arbitrary inputs.

use lite::wire::{round_granule, Dec, Enc, Imm, MsgHeader, HEADER_BYTES, RING_GRANULE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// An interleaved u8/u32/u64/bytes sequence decodes to exactly what
    /// was encoded, in order.
    #[test]
    fn enc_dec_round_trips(
        a in any::<u8>(),
        b in any::<u32>(),
        c in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..300),
        d in any::<u64>(),
    ) {
        let buf = Enc::new()
            .u8(a)
            .u32(b)
            .u64(c)
            .bytes(&payload)
            .u64(d)
            .done();
        let mut dec = Dec::new(&buf);
        prop_assert_eq!(dec.u8().unwrap(), a);
        prop_assert_eq!(dec.u32().unwrap(), b);
        prop_assert_eq!(dec.u64().unwrap(), c);
        prop_assert_eq!(dec.bytes().unwrap(), &payload[..]);
        prop_assert_eq!(dec.u64().unwrap(), d);
        // The buffer is exhausted: one more read must fail, not wrap.
        prop_assert!(dec.u8().is_err());
    }

    /// Truncating an encoded buffer at any point yields an error from
    /// some decode step — never a panic or a silently wrong value.
    #[test]
    fn dec_rejects_truncation(
        v in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..100),
        cut in 0usize..100,
    ) {
        let buf = Enc::new().u64(v).bytes(&payload).done();
        let cut = cut.min(buf.len().saturating_sub(1));
        let mut dec = Dec::new(&buf[..cut]);
        if let Ok(g) = dec.u64() {
            prop_assert_eq!(g, v);
            prop_assert!(dec.bytes().is_err(), "truncated payload must not decode");
        }
    }

    /// Every IMM survives encode → decode (the payload is 30 bits).
    #[test]
    fn imm_round_trips(kind in 0u32..4, payload in 0u32..(1 << 30)) {
        let imm = match kind {
            0 => Imm::Request { granule: payload },
            1 => Imm::Reply { slot: payload },
            2 => Imm::Head { granule: payload },
            _ => Imm::ReplyErr { slot: payload },
        };
        prop_assert_eq!(Imm::decode(imm.encode()), imm);
    }

    /// Ring-message headers round-trip through their fixed 40-byte form.
    #[test]
    fn msg_header_round_trips(
        func in any::<u8>(),
        slot in any::<u32>(),
        len in any::<u32>(),
        reply_addr in any::<u64>(),
        reply_max in any::<u32>(),
        src_node in any::<u32>(),
        src_pid in any::<u32>(),
        skip in any::<u32>(),
    ) {
        let hdr = MsgHeader {
            func,
            slot,
            len,
            reply_addr,
            reply_max,
            src_node,
            src_pid,
            skip,
        };
        let bytes = hdr.encode();
        prop_assert_eq!(bytes.len(), HEADER_BYTES);
        prop_assert_eq!(MsgHeader::decode(&bytes).unwrap(), hdr);
        // A corrupted magic is rejected.
        let mut bad = bytes;
        bad[0] ^= 0xFF;
        prop_assert!(MsgHeader::decode(&bad).is_err());
    }

    /// Granule rounding is idempotent, aligned, and minimal.
    #[test]
    fn round_granule_is_minimal_alignment(len in 0u64..(1 << 40)) {
        let r = round_granule(len);
        prop_assert_eq!(r % RING_GRANULE, 0);
        prop_assert!(r >= len);
        prop_assert!(r < len + RING_GRANULE);
        prop_assert_eq!(round_granule(r), r);
    }
}
