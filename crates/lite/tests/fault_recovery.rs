//! Fault injection against the kernel recovery layer: dropped WRs are
//! masked by retries, broken QPs are re-established transparently, dead
//! peers fail fast and revive through probes, and with recovery
//! disabled the same faults surface — proving the layer is load-bearing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lite::{
    DataPath, LiteCluster, LiteConfig, LiteError, Op, Perm, Priority, QosConfig, TcpDataPath,
    USER_FUNC_MIN,
};
use rnic::{FaultPlan, FaultRule, IbConfig, VerbsError};
use simnet::Ctx;
use transport::TcpCostModel;

fn cluster_with(nodes: usize, config: LiteConfig) -> Arc<LiteCluster> {
    LiteCluster::start_with(IbConfig::with_nodes(nodes), config, QosConfig::default()).unwrap()
}

/// Probabilistically dropped work requests never reach the application:
/// the retry layer re-posts them (faults inject before side effects),
/// every byte lands, and the retry counter proves drops actually fired.
#[test]
fn dropped_wrs_are_masked_by_retries() {
    let cluster = cluster_with(2, LiteConfig::default());
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 1, 1 << 16, "droppy", Perm::RW)
        .unwrap();

    cluster
        .fabric()
        .install_fault_plan(FaultPlan::seeded(42).with(FaultRule::DropWr {
            src: Some(0),
            dst: Some(1),
            prob: 0.3,
            max_drops: 64,
        }));
    for i in 0..100u64 {
        h.lt_write(&mut ctx, lh, i * 8, &i.to_le_bytes()).unwrap();
    }
    for i in 0..100u64 {
        let mut buf = [0u8; 8];
        h.lt_read(&mut ctx, lh, i * 8, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), i);
    }
    let fired = cluster.fabric().fault_stats();
    assert!(fired.drops > 0, "plan never fired: {fired:?}");
    let stats = cluster.kernel(0).stats();
    assert!(stats.retries >= fired.drops, "every drop costs a retry");
    assert_eq!(stats.ops_failed, 0, "no drop may surface to the app");
    cluster.fabric().clear_fault_plan();
}

/// A QP moved to the error state mid-run is torn down and re-created on
/// the shared CQs without the application noticing; the pool size is
/// restored and the reconnect counter records the repair.
#[test]
fn broken_qp_reconnects_transparently() {
    let cluster = cluster_with(2, LiteConfig::default());
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 1, 1 << 16, "breaky", Perm::RW)
        .unwrap();
    let qps_before = cluster.fabric().nic(0).stats().live_qps;

    cluster
        .fabric()
        .install_fault_plan(FaultPlan::seeded(7).with(FaultRule::BreakQp {
            src: 0,
            dst: 1,
            at_op: 5,
        }));
    for i in 0..40u64 {
        h.lt_write(&mut ctx, lh, i * 8, &i.to_le_bytes()).unwrap();
    }
    let mut buf = [0u8; 8];
    h.lt_read(&mut ctx, lh, 39 * 8, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 39);

    assert_eq!(cluster.fabric().fault_stats().qp_breaks, 1);
    let reconnects: u64 = (0..2)
        .map(|n| cluster.kernel(n).stats().qp_reconnects)
        .sum();
    assert_eq!(reconnects, 1, "exactly one end repairs the pair");
    assert_eq!(
        cluster.fabric().nic(0).stats().live_qps,
        qps_before,
        "pool restored to full strength"
    );
    cluster.fabric().clear_fault_plan();
}

/// Liveness monitoring: consecutive exhausted deadlines mark the peer
/// dead, after which ops fail fast with `PeerDead` instead of burning a
/// timeout each — and a probe revives the peer once it returns.
#[test]
fn dead_peer_fails_fast_and_probes_revive_it() {
    let config = LiteConfig {
        op_timeout: Duration::from_millis(150),
        peer_dead_threshold: 2,
        ..Default::default()
    };
    let cluster = cluster_with(2, config);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h.lt_malloc(&mut ctx, 1, 4096, "deady", Perm::RW).unwrap();

    cluster.fabric().set_down(1, true);
    // Two ops exhaust their deadlines and trip the threshold.
    assert_eq!(h.lt_write(&mut ctx, lh, 0, b"x"), Err(LiteError::Timeout));
    assert_eq!(h.lt_write(&mut ctx, lh, 0, b"x"), Err(LiteError::Timeout));
    assert_eq!(cluster.kernel(0).stats().peers_marked_dead, 1);

    // Fail-fast: once the (cheap) probe budget of a call is spent, a
    // dead-peer op returns well inside the 150 ms deadline.
    let t0 = Instant::now();
    let err = h.lt_write(&mut ctx, lh, 0, b"x").unwrap_err();
    assert_eq!(err, LiteError::PeerDead { node: 1 });
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "dead-peer op must not burn the timeout: {:?}",
        t0.elapsed()
    );

    // The node comes back; the rate-limited probe notices and the peer
    // transparently returns to service.
    cluster.fabric().set_down(1, false);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match h.lt_write(&mut ctx, lh, 0, b"back!") {
            Ok(_) => break,
            Err(LiteError::PeerDead { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("unexpected error while reviving: {e:?}"),
        }
    }
    let mut buf = [0u8; 5];
    h.lt_read(&mut ctx, lh, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"back!");
}

/// The load-bearing check: with `retry_enabled: false` the very same
/// deterministic fault that the other tests mask reaches the
/// application, and the failure counter records it.
#[test]
fn with_retries_disabled_the_same_fault_surfaces() {
    let config = LiteConfig {
        retry_enabled: false,
        ..Default::default()
    };
    let cluster = cluster_with(2, config);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h.lt_malloc(&mut ctx, 1, 4096, "naked", Perm::RW).unwrap();

    cluster
        .fabric()
        .install_fault_plan(FaultPlan::seeded(42).with(FaultRule::DropWr {
            src: Some(0),
            dst: Some(1),
            prob: 1.0,
            max_drops: 1,
        }));
    assert_eq!(
        h.lt_write(&mut ctx, lh, 0, b"gone"),
        Err(LiteError::Timeout),
        "without the recovery layer a dropped WR is a user-visible fault"
    );
    let stats = cluster.kernel(0).stats();
    assert!(stats.ops_failed >= 1);
    assert_eq!(stats.retries, 0);
    // The drop budget is spent, so the next attempt goes through.
    h.lt_write(&mut ctx, lh, 0, b"okay").unwrap();
    cluster.fabric().clear_fault_plan();
}

/// An RPC whose reply never comes back times out at the liveness bound
/// instead of hanging the caller.
#[test]
fn rpc_with_no_reply_times_out() {
    const FN_SILENT: u8 = USER_FUNC_MIN + 3;
    let config = LiteConfig {
        op_timeout: Duration::from_millis(200),
        ..Default::default()
    };
    let cluster = cluster_with(2, config);
    cluster.attach(1).unwrap().register_rpc(FN_SILENT).unwrap();

    // Server takes the request off the queue and never replies.
    let c2 = Arc::clone(&cluster);
    let server = std::thread::spawn(move || {
        let mut h = c2.attach(1).unwrap();
        let mut ctx = Ctx::new();
        let _swallowed = h.lt_recv_rpc(&mut ctx, FN_SILENT);
    });

    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let t0 = Instant::now();
    let err = h
        .lt_rpc(&mut ctx, 1, FN_SILENT, b"anyone there?", 64)
        .unwrap_err();
    assert_eq!(err, LiteError::Timeout);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "timeout must honor the configured bound, took {:?}",
        t0.elapsed()
    );
    server.join().unwrap();
}

/// With the receiver's credit pool empty and its reposter contributing
/// nothing (zero pre-posted credits models a stalled poller), a
/// write-imm RPC surfaces RNR as a typed error in bounded time.
#[test]
fn recv_credit_exhaustion_is_a_bounded_typed_error() {
    const FN_ECHO: u8 = USER_FUNC_MIN;
    let config = LiteConfig {
        recv_credits: 0,
        op_timeout: Duration::from_millis(500),
        ..Default::default()
    };
    let cluster = cluster_with(2, config);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let t0 = Instant::now();
    let err = h
        .lt_rpc(&mut ctx, 1, FN_ECHO, b"no credits", 64)
        .unwrap_err();
    assert_eq!(err, LiteError::Verbs(VerbsError::ReceiverNotReady));
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "RNR exhaustion must not hang, took {:?}",
        t0.elapsed()
    );
    assert!(cluster.kernel(0).stats().ops_failed >= 1);
}

/// RPCs towards a down server leak their ring reservations (the send
/// fails after reservation), so a small ring eventually reports
/// `RingFull` — a typed, bounded failure rather than a hang.
#[test]
fn ring_fills_up_while_peer_is_down() {
    const FN_VOID: u8 = USER_FUNC_MIN + 1;
    let config = LiteConfig {
        rpc_ring_bytes: 1 << 10,
        op_timeout: Duration::from_millis(150),
        peer_dead_threshold: 2,
        ..Default::default()
    };
    let cluster = cluster_with(2, config);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    cluster.fabric().set_down(1, true);

    let mut saw_ring_full = false;
    for _ in 0..16 {
        match h.lt_rpc(&mut ctx, 1, FN_VOID, &[7u8; 200], 64) {
            Err(LiteError::RingFull) => {
                saw_ring_full = true;
                break;
            }
            Err(LiteError::Timeout | LiteError::PeerDead { .. }) => {}
            other => panic!("unexpected outcome against a down server: {other:?}"),
        }
    }
    assert!(saw_ring_full, "leaked reservations must fill the ring");
}

/// Satellite check: the TCP datapath consults the same fault plan and
/// node-down state as the RNIC datapath — both transports share one
/// fault model.
#[test]
fn tcp_datapath_honors_down_nodes_and_fault_plans() {
    let paths = TcpDataPath::mesh(2, TcpCostModel::default());
    let mut ctx = Ctx::new();
    let src = paths[0].alloc(64).unwrap();
    let dst = paths[1].alloc(64).unwrap();
    paths[0].fabric().mem(0).write(src, &[9u8; 64]).unwrap();
    let op = Op::write(1, dst, vec![lite::Chunk { addr: src, len: 64 }], 64);

    paths[0].fabric().set_down(1, true);
    assert_eq!(
        paths[0].post(&mut ctx, Priority::High, &op).unwrap_err(),
        LiteError::Timeout,
        "down node must fail TCP ops like RNIC ops"
    );
    paths[0].fabric().set_down(1, false);

    paths[0]
        .fabric()
        .install_fault_plan(FaultPlan::seeded(3).with(FaultRule::DropWr {
            src: None,
            dst: Some(1),
            prob: 1.0,
            max_drops: 1,
        }));
    assert_eq!(
        paths[0].post(&mut ctx, Priority::High, &op).unwrap_err(),
        LiteError::Timeout,
        "a dropped segment times out on TCP too"
    );
    // Budget spent: traffic flows again and the bytes land.
    paths[0].post(&mut ctx, Priority::High, &op).unwrap();
    let mut got = [0u8; 64];
    paths[0].fabric().mem(1).read(dst, &mut got).unwrap();
    assert_eq!(got, [9u8; 64]);
}
