//! DataPath dispatch tests: batched vs element-at-a-time posting must
//! move identical bytes (batching is a cost optimization, never a
//! semantic change), and the RPC ring must survive wrap-around while
//! replies go out as doorbell chains.

use std::sync::Arc;

use lite::{Chunk, LiteCluster, LiteConfig, Op, Priority, QosConfig, USER_FUNC_MIN};
use rnic::IbConfig;
use simnet::Ctx;

fn cluster_with_batching(batch: bool) -> Arc<LiteCluster> {
    LiteCluster::start_with(
        IbConfig::with_nodes(2),
        LiteConfig {
            batch_posting: batch,
            ..Default::default()
        },
        QosConfig::default(),
    )
    .unwrap()
}

/// Streams `rounds` blocking 8-write chains through `post_many` and
/// returns the bytes that landed on node 1 plus the total elapsed
/// virtual time (after one untimed warm-up chain).
fn run_chains(cluster: &Arc<LiteCluster>, rounds: usize) -> (Vec<u8>, u64) {
    let dp0 = cluster.datapath(0);
    let dp1 = cluster.datapath(1);
    let mut ctx = Ctx::new();
    let n = 8usize;
    let piece = 256usize;
    let src = dp0.alloc((n * piece) as u64).unwrap();
    let dst = dp1.alloc((n * piece) as u64).unwrap();
    let payload: Vec<u8> = (0..n * piece).map(|i| (i % 251) as u8).collect();
    dp0.fabric().mem(0).write(src, &payload).unwrap();
    let ops: Vec<Op> = (0..n)
        .map(|i| {
            Op::write(
                1,
                dst + (i * piece) as u64,
                vec![Chunk {
                    addr: src + (i * piece) as u64,
                    len: piece as u64,
                }],
                piece,
            )
        })
        .collect();
    let mut start = 0;
    for round in 0..rounds + 1 {
        let comps = dp0.post_many(&mut ctx, Priority::High, &ops).unwrap();
        assert_eq!(comps.len(), n);
        let last = comps.iter().map(|c| c.stamp).max().unwrap();
        ctx.wait_until(last);
        if round == 0 {
            // Warm-up chain: QP-context and QoS state settle here.
            start = ctx.now();
        }
    }
    let mut got = vec![0u8; n * piece];
    dp0.fabric().mem(1).read(dst, &mut got).unwrap();
    assert_eq!(got, payload, "chain must deliver every piece intact");
    (got, ctx.now() - start)
}

/// Batched and unbatched `post_many` write identical bytes; over a
/// stream of blocking chains the doorbell path is no slower — one host
/// post and one QP-context touch per chain instead of eight.
#[test]
fn batched_posting_matches_single_and_is_no_slower() {
    let (batched_bytes, batched_ns) = run_chains(&cluster_with_batching(true), 25);
    let (single_bytes, single_ns) = run_chains(&cluster_with_batching(false), 25);
    assert_eq!(batched_bytes, single_bytes);
    assert!(
        batched_ns <= single_ns,
        "batched stream took {batched_ns} ns, unbatched {single_ns} ns"
    );
}

/// A mixed op list still dispatches correctly when batching splits it
/// into runs: write, atomic, two more writes — the atomic breaks the
/// chain but every op must land.
#[test]
fn mixed_ops_dispatch_through_post_many() {
    let cluster = cluster_with_batching(true);
    let dp0 = cluster.datapath(0);
    let dp1 = cluster.datapath(1);
    let mut ctx = Ctx::new();
    let src = dp0.alloc(64).unwrap();
    let dst = dp1.alloc(64).unwrap();
    let counter = dp1.alloc(8).unwrap();
    dp0.fabric().mem(0).write(src, &[7u8; 64]).unwrap();
    dp0.fabric().mem(1).write(counter, &[0u8; 8]).unwrap();
    let w = |off: u64| {
        Op::write(
            1,
            dst + off,
            vec![Chunk {
                addr: src + off,
                len: 16,
            }],
            16,
        )
    };
    let ops = vec![
        w(0),
        Op::FetchAdd {
            node: 1,
            addr: counter,
            delta: 5,
        },
        w(16),
        w(32),
    ];
    let comps = dp0.post_many(&mut ctx, Priority::High, &ops).unwrap();
    assert_eq!(comps.len(), 4);
    assert_eq!(comps[1].value, 0, "fetch-add returns the old value");
    let last = comps.iter().map(|c| c.stamp).max().unwrap();
    ctx.wait_until(last);
    let mut got = vec![0u8; 48];
    dp0.fabric().mem(1).read(dst, &mut got).unwrap();
    assert_eq!(got, vec![7u8; 48]);
    let mut c = [0u8; 8];
    dp0.fabric().mem(1).read(counter, &mut c).unwrap();
    assert_eq!(u64::from_le_bytes(c), 5);
}

/// RPC through a deliberately tiny ring: the reply's head-release +
/// data chain goes out via `post_many`, so wrap-around exercises the
/// deferred head release under batched posting. Both settings must
/// produce identical replies.
#[test]
fn ring_wraparound_survives_batched_posting() {
    for batch in [true, false] {
        let cluster = LiteCluster::start_with(
            IbConfig::with_nodes(2),
            LiteConfig {
                rpc_ring_bytes: 32 * 1024,
                batch_posting: batch,
                ..Default::default()
            },
            QosConfig::default(),
        )
        .unwrap();
        const F: u8 = USER_FUNC_MIN + 12;
        cluster.attach(1).unwrap().register_rpc(F).unwrap();
        let ops = 120;
        let c2 = Arc::clone(&cluster);
        let srv = std::thread::spawn(move || {
            let mut h = c2.attach(1).unwrap();
            let mut ctx = Ctx::new();
            for _ in 0..ops {
                let call = h.lt_recv_rpc(&mut ctx, F).unwrap();
                let sum: u64 = call.input.iter().map(|&b| b as u64).sum();
                h.lt_reply_rpc(&mut ctx, &call, &sum.to_le_bytes()).unwrap();
            }
        });
        let mut h = cluster.attach(0).unwrap();
        let mut ctx = Ctx::new();
        for i in 0..ops {
            // Sizes sweep past the ring capacity several times and hit
            // the wrap at odd offsets.
            let len = 300 + (i * 613) % 5_000;
            let payload: Vec<u8> = (0..len).map(|j| (j % 241) as u8).collect();
            let expect: u64 = payload.iter().map(|&b| b as u64).sum();
            let reply = h.lt_rpc(&mut ctx, 1, F, &payload, 64).unwrap();
            assert_eq!(
                u64::from_le_bytes(reply.try_into().unwrap()),
                expect,
                "batch={batch} rpc #{i} corrupted"
            );
        }
        srv.join().unwrap();
    }
}
