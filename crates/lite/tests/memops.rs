//! Regression tests for `lt_memmove` overlap semantics (and the
//! segment-ordered `lt_memcpy` rewrite behind it). The pre-fix
//! `lt_memmove` was a blind alias of `lt_memcpy`: with an overlapping
//! range split across several chunk segments, an ascending copy
//! overwrites source bytes a later segment still has to read.

use lite::{LiteCluster, LiteConfig, Perm};
use rnic::IbConfig;
use simnet::Ctx;

const CHUNK: u64 = 4096;

fn small_chunk_cluster() -> std::sync::Arc<LiteCluster> {
    let config = LiteConfig {
        max_lmr_chunk: CHUNK,
        ..LiteConfig::default()
    };
    LiteCluster::start_with(IbConfig::with_nodes(2), config, lite::QosConfig::default()).unwrap()
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

/// Runs one memmove against the byte oracle (`copy_within`).
fn check_move(home: rnic::NodeId, src_off: u64, dst_off: u64, len: usize) {
    let cluster = small_chunk_cluster();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let total = 4 * CHUNK as usize;
    let lh = h
        .lt_malloc(&mut ctx, home, total as u64, "memmove.arena", Perm::RW)
        .unwrap();
    let init = pattern(total);
    h.lt_write(&mut ctx, lh, 0, &init).unwrap();

    h.lt_memmove(&mut ctx, lh, src_off, lh, dst_off, len)
        .unwrap();

    let mut oracle = init;
    oracle.copy_within(src_off as usize..src_off as usize + len, dst_off as usize);
    let mut got = vec![0u8; total];
    h.lt_read(&mut ctx, lh, 0, &mut got).unwrap();
    assert_eq!(
        got, oracle,
        "memmove src_off={src_off} dst_off={dst_off} len={len} home={home} diverged from oracle"
    );
}

/// Forward overlap (dst above src) across chunk boundaries — the case
/// the pre-fix ascending copy corrupted: by the time the second segment
/// is copied, its source bytes were already overwritten by the first.
#[test]
fn memmove_forward_overlap_multi_chunk() {
    check_move(0, 0, CHUNK / 2, 2 * CHUNK as usize);
}

/// Same forward overlap on a remote LMR (pieces pushed by the peer).
#[test]
fn memmove_forward_overlap_remote() {
    check_move(1, 512, 512 + CHUNK / 2, 2 * CHUNK as usize);
}

/// Backward overlap (dst below src): ascending order is the safe one.
#[test]
fn memmove_backward_overlap_multi_chunk() {
    check_move(0, CHUNK / 2, 0, 2 * CHUNK as usize);
    check_move(1, CHUNK, 128, 3 * CHUNK as usize - 256);
}

/// Overlap confined to a single chunk: one FN_MEMCPY call, whose handler
/// buffers the whole subrange — both directions must hold.
#[test]
fn memmove_overlap_single_chunk() {
    check_move(0, 100, 300, 1024);
    check_move(0, 300, 100, 1024);
}

/// Degenerate and disjoint cases keep plain-memcpy behavior.
#[test]
fn memmove_disjoint_and_identity() {
    // Disjoint ranges in the same LMR.
    check_move(0, 0, 3 * CHUNK, 1024);
    // Exactly adjacent (no overlap).
    check_move(0, 0, CHUNK, CHUNK as usize);
    // Self-copy onto itself.
    check_move(0, CHUNK, CHUNK, 512);
}

/// Cross-LMR memmove degrades to memcpy (handles never alias).
#[test]
fn memmove_across_lmrs_is_memcpy() {
    let cluster = small_chunk_cluster();
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let len = 2 * CHUNK as usize;
    let a = h
        .lt_malloc(&mut ctx, 0, len as u64, "memmove.a", Perm::RW)
        .unwrap();
    let b = h
        .lt_malloc(&mut ctx, 1, len as u64, "memmove.b", Perm::RW)
        .unwrap();
    let data = pattern(len);
    h.lt_write(&mut ctx, a, 0, &data).unwrap();
    h.lt_memmove(&mut ctx, a, 0, b, 0, len).unwrap();
    let mut got = vec![0u8; len];
    h.lt_read(&mut ctx, b, 0, &mut got).unwrap();
    assert_eq!(got, data);
}
