//! Property tests of `lmr::Location::slice` and `lmr::LhEntry::check`
//! against a naive byte-by-byte oracle.
//!
//! The oracle maps every byte offset of an LMR to its (node, physical
//! address) by walking the extent list one byte at a time — the slowest
//! possible but obviously correct translation. `slice`'s piece list must
//! expand to exactly the oracle's byte sequence for arbitrary chunk
//! layouts, unaligned offsets, ranges straddling three or more chunks,
//! and zero-length accesses; `check` must additionally enforce the
//! permission lattice and the stale/relocated flags, and atomics (8-byte
//! single-piece accesses) must split exactly when the oracle says the
//! word crosses a chunk boundary.

use lite::{LiteError, LmrId, Location, Perm};
use proptest::prelude::*;
use smem::Chunk;

/// Builds a multi-chunk layout from raw (node, len) pairs: bases spaced
/// far apart so addresses never alias across chunks.
fn layout(parts: &[(usize, u64)]) -> Location {
    Location {
        extents: parts
            .iter()
            .enumerate()
            .map(|(i, &(node, len))| {
                (
                    node,
                    Chunk {
                        addr: 10_000 * (i as u64 + 1),
                        len,
                    },
                )
            })
            .collect(),
    }
}

/// The oracle: every byte's (node, physical address), in LMR order.
fn oracle_bytes(loc: &Location) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    for (node, c) in &loc.extents {
        for i in 0..c.len {
            out.push((*node, c.addr + i));
        }
    }
    out
}

/// Expands a piece list back into per-byte (node, address) pairs.
fn expand(pieces: &[(usize, Chunk)]) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    for (node, c) in pieces {
        for i in 0..c.len {
            out.push((*node, c.addr + i));
        }
    }
    out
}

fn entry(loc: Location, perm: Perm) -> lite::lmr::LhEntry {
    lite::lmr::LhEntry {
        id: LmrId { node: 0, idx: 1 },
        name: "props".to_string(),
        location: loc,
        perm,
        stale: false,
        relocated: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `slice` agrees with the byte oracle on every in-bounds range,
    /// including unaligned offsets and ranges spanning ≥3 chunks.
    #[test]
    fn slice_matches_byte_oracle(
        parts in prop::collection::vec((0usize..4, 1u64..200), 1..6),
        off_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let loc = layout(&parts);
        let bytes = oracle_bytes(&loc);
        let total = bytes.len() as u64;
        prop_assert_eq!(loc.len(), total);
        let offset = (off_frac * total as f64) as u64 % total;
        let len = (1 + (len_frac * (total - offset) as f64) as u64).min(total - offset).max(1);
        let pieces = loc.slice(offset, len).unwrap();
        prop_assert_eq!(
            expand(&pieces),
            bytes[offset as usize..(offset + len) as usize].to_vec()
        );
        // Pieces are never empty and never cross a chunk boundary.
        for (_, c) in &pieces {
            prop_assert!(c.len > 0);
            prop_assert!(loc.extents.iter().any(|(_, e)| c.addr >= e.addr
                && c.addr + c.len <= e.addr + e.len));
        }
    }

    /// Zero-length slices are empty at any offset; anything reaching
    /// past the end is `OutOfBounds`, never a panic or a short piece
    /// list.
    #[test]
    fn slice_bounds_and_zero_len(
        parts in prop::collection::vec((0usize..4, 1u64..200), 1..6),
        offset in 0u64..1500,
        len in 0u64..1500,
    ) {
        let loc = layout(&parts);
        let total = loc.len();
        match loc.slice(offset, len) {
            Ok(pieces) => {
                if len == 0 {
                    prop_assert!(pieces.is_empty());
                } else {
                    prop_assert!(offset + len <= total);
                    prop_assert_eq!(pieces.iter().map(|(_, c)| c.len).sum::<u64>(), len);
                }
            }
            Err(LiteError::OutOfBounds { .. }) => prop_assert!(len > 0 && offset + len > total),
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// `check` enforces the permission lattice on top of the oracle: RW
    /// handles cover RO accesses, RO handles reject RW, and the piece
    /// list (when allowed) is exactly `slice`'s.
    #[test]
    fn check_respects_permissions(
        parts in prop::collection::vec((0usize..4, 1u64..200), 1..6),
        write in any::<bool>(),
    ) {
        let loc = layout(&parts);
        let total = loc.len();
        let need = if write { Perm::RW } else { Perm::RO };
        let ro = entry(loc.clone(), Perm::RO);
        let rw = entry(loc.clone(), Perm::RW);
        let len = (total as usize).min(9);
        match ro.check(0, len, need) {
            Ok(pieces) => {
                prop_assert!(!write);
                prop_assert_eq!(pieces, loc.slice(0, len as u64).unwrap());
            }
            Err(e) => {
                prop_assert!(write);
                prop_assert_eq!(e, LiteError::PermissionDenied);
            }
        }
        prop_assert_eq!(rw.check(0, len, need).unwrap(), loc.slice(0, len as u64).unwrap());
    }

    /// Stale beats relocated beats permission: the flags fail fast with
    /// their distinct errors regardless of the requested range.
    #[test]
    fn check_stale_and_relocated_flags(
        parts in prop::collection::vec((0usize..4, 1u64..200), 1..6),
        offset in 0u64..64,
    ) {
        let loc = layout(&parts);
        let total = loc.len();
        let len = ((total.saturating_sub(offset)) as usize).clamp(1, 8);
        let mut e = entry(loc, Perm::RW);
        e.stale = true;
        e.relocated = true;
        prop_assert!(matches!(e.check(offset, len, Perm::RO), Err(LiteError::BadLh { .. })));
        e.stale = false;
        prop_assert_eq!(e.check(offset, len, Perm::RO).unwrap_err(), LiteError::Relocated);
        e.relocated = false;
        if offset + len as u64 <= total {
            prop_assert!(e.check(offset, len, Perm::RO).is_ok());
        }
    }

    /// An 8-byte atomic word splits into more than one piece exactly
    /// when the oracle places its bytes across a chunk boundary — the
    /// `StraddlesChunk` condition the API layer rejects for
    /// `lt_fetch_add`/`lt_test_set`.
    #[test]
    fn atomic_words_split_exactly_at_chunk_boundaries(
        parts in prop::collection::vec((0usize..4, 1u64..200), 1..6),
        off_frac in 0.0f64..1.0,
    ) {
        let loc = layout(&parts);
        let total = loc.len();
        if total < 8 {
            return Ok(());
        }
        let offset = (off_frac * (total - 8) as f64) as u64;
        let pieces = entry(loc.clone(), Perm::RW).check(offset, 8, Perm::RW).unwrap();
        // Oracle: the word straddles iff its 8 bytes are not physically
        // consecutive on one node.
        let bytes = &oracle_bytes(&loc)[offset as usize..offset as usize + 8];
        let contiguous = bytes.windows(2).all(|w| w[1].0 == w[0].0 && w[1].1 == w[0].1 + 1);
        prop_assert_eq!(pieces.len() == 1, contiguous);
    }
}
