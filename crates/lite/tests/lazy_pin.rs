//! End-to-end tests of pin-free on-demand registration
//! (`LiteConfig::lazy_pinning`): O(1) registration latency, first-touch
//! fault-in at the datapath, the background unpinner, and the
//! Relocated-retry regression for atomics racing a concurrent eviction.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lite::mm::MmRequest;
use lite::{LiteCluster, LiteConfig, Perm, QosConfig};
use rnic::IbConfig;
use simnet::Ctx;

const MB: u64 = 1 << 20;

fn cluster_with(nodes: usize, lazy: bool, budget: u64) -> Arc<LiteCluster> {
    let config = LiteConfig {
        lazy_pinning: lazy,
        mem_budget_bytes: budget,
        mm_sweep_interval: Duration::from_millis(1),
        ..LiteConfig::default()
    };
    LiteCluster::start_with(IbConfig::with_nodes(nodes), config, QosConfig::default()).unwrap()
}

/// Polls `cond` until it holds or `secs` elapse.
fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// Virtual latency of one `lt_malloc` of `size` bytes on a fresh
/// cluster (fresh so poller-clock history cannot skew the measurement).
fn reg_latency(lazy: bool, size: u64, name: &str) -> u64 {
    let cluster = cluster_with(2, lazy, 0);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let t0 = ctx.now();
    h.lt_malloc(&mut ctx, 0, size, name, Perm::RW).unwrap();
    ctx.now() - t0
}

/// The Fig 8 claim, in-test: eager registration latency scales with the
/// LMR size (per-page get_user_pages), lazy stays flat.
#[test]
fn lazy_registration_latency_is_flat_across_sizes() {
    let lazy_small = reg_latency(true, 16 * MB, "lazy.16m");
    let lazy_large = reg_latency(true, 256 * MB, "lazy.256m");
    assert!(
        lazy_large < 2 * lazy_small,
        "lazy registration not flat: 16MB={lazy_small}ns 256MB={lazy_large}ns"
    );

    let eager_small = reg_latency(false, 16 * MB, "eager.16m");
    let eager_large = reg_latency(false, 256 * MB, "eager.256m");
    assert!(
        eager_large > 8 * eager_small,
        "eager registration should scale with pages: 16MB={eager_small}ns 256MB={eager_large}ns"
    );
    assert!(
        eager_large > 10 * lazy_large,
        "eager 256MB ({eager_large}ns) should dwarf lazy 256MB ({lazy_large}ns)"
    );
}

/// Lazy mode pins nothing at registration; the first access faults in
/// and pins only the pages it covers, and repeat accesses to the same
/// range are fault-free (and cheaper in virtual time).
#[test]
fn first_touch_pins_only_the_touched_pages() {
    let cluster = cluster_with(2, true, 0);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    h.lt_malloc(&mut ctx, 0, MB, "lazy.touch", Perm::RW)
        .unwrap();
    let kernel = cluster.kernel(0);
    let s0 = kernel.mm_stats();
    assert!(s0.lazy);
    assert_eq!(s0.pinned_pages, 0, "registration must not pin: {s0:?}");

    // Touch 64 KB out of the 1 MB region.
    let lh = h.lt_map(&mut ctx, "lazy.touch").unwrap();
    let data = vec![0xABu8; 64 * 1024];
    let t0 = ctx.now();
    h.lt_write(&mut ctx, lh, 0, &data).unwrap();
    let cold = ctx.now() - t0;
    let s1 = kernel.mm_stats();
    assert!(
        s1.first_touch_faults >= 16,
        "64KB touch should fault ≥16 pages: {s1:?}"
    );
    assert!(
        s1.pinned_pages >= 16 && s1.pinned_pages < 64,
        "only the touched pages pin, not the whole LMR: {s1:?}"
    );

    // Steady state: same range, no new faults, cheaper access.
    let t0 = ctx.now();
    h.lt_write(&mut ctx, lh, 0, &data).unwrap();
    let warm = ctx.now() - t0;
    let s2 = kernel.mm_stats();
    assert_eq!(
        s2.first_touch_faults, s1.first_touch_faults,
        "warm access refaulted"
    );
    assert!(
        warm < cold,
        "warm access ({warm}ns) should beat the faulting one ({cold}ns)"
    );

    // The data survives the fault-in path.
    let mut buf = vec![0u8; 64 * 1024];
    h.lt_read(&mut ctx, lh, 0, &mut buf).unwrap();
    assert_eq!(buf, data);
}

/// The background unpinner demotes segments that go cold for a full
/// sweep epoch: their pins are released, and the next access faults
/// them back in with the bytes intact.
#[test]
fn background_unpinner_releases_cold_pages_and_refault_restores() {
    let cluster = cluster_with(2, true, 0);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 0, 256 * 1024, "lazy.cold", Perm::RW)
        .unwrap();
    let data: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    h.lt_write(&mut ctx, lh, 0, &data).unwrap();
    let kernel = cluster.kernel(0);
    let touched = kernel.mm_stats();
    assert!(touched.pinned_pages >= 16, "write should pin: {touched:?}");

    // Go idle; the sweeper (1 ms interval) must reap the pins.
    assert!(
        wait_for(10, || {
            let s = kernel.mm_stats();
            s.bg_unpins >= 16 && s.pinned_pages == 0
        }),
        "background unpinner never reaped cold pages: {:?}",
        kernel.mm_stats()
    );

    // Refault: the read faults the pages back in, data intact.
    let faults_before = kernel.mm_stats().first_touch_faults;
    let mut buf = vec![0u8; 64 * 1024];
    h.lt_read(&mut ctx, lh, 0, &mut buf).unwrap();
    assert_eq!(buf, data, "data corrupted across unpin/refault");
    let s = kernel.mm_stats();
    assert!(
        s.first_touch_faults > faults_before,
        "read of an Unpinned segment must refault: {s:?}"
    );
    assert!(s.pinned_pages >= 16, "refault must repin: {s:?}");
}

/// Regression (pin-fencing on Relocated retries): a stream of atomics
/// racing explicit evictions/fetch-backs of their chunk must apply each
/// op exactly once — the pin is re-acquired against the refreshed
/// mapping after every relocation, never the stale piece list.
#[test]
fn atomics_survive_concurrent_eviction() {
    // Lazy + budget: eviction can claim segments from the Unpinned tier.
    let cluster = cluster_with(3, true, 4 << 20);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 0, 32 * 1024, "lazy.atomic", Perm::RW)
        .unwrap();
    let id = h.lh_id(lh).unwrap();
    let kernel = cluster.kernel(0);

    // Churn thread: bounce the LMR's chunks out and back while the
    // atomics run.
    let churn_kernel = Arc::clone(kernel);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let churn = std::thread::spawn(move || {
        while !stop2.load(std::sync::atomic::Ordering::Acquire) {
            churn_kernel.mm().request(MmRequest::Evict {
                idx: id.idx,
                off: u64::MAX,
            });
            std::thread::sleep(Duration::from_millis(2));
            churn_kernel
                .mm()
                .request(MmRequest::FetchBack { idx: id.idx });
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    // `Err(Relocated)` is the documented bounded-retry exhaustion under
    // migration churn: pins are taken before any side effect, so the op
    // did NOT apply and redoing it preserves exactly-once accounting.
    fn eventually<T>(mut op: impl FnMut() -> lite::LiteResult<T>) -> T {
        for _ in 0..100 {
            match op() {
                Ok(v) => return v,
                Err(lite::LiteError::Relocated) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => panic!("atomic failed under churn: {e:?}"),
            }
        }
        panic!("atomic still Relocated after 100 retries");
    }

    const ADDS: u64 = 200;
    let mut prev_sum = 0u64;
    for i in 0..ADDS {
        let before = eventually(|| h.lt_fetch_add(&mut ctx, lh, 16, 1));
        assert_eq!(before, i, "fetch-add lost or double-applied at {i}");
        prev_sum = before + 1;
    }
    // CAS chain: each step must see exactly the previous value.
    for i in 0..50u64 {
        let prev = eventually(|| h.lt_test_set(&mut ctx, lh, 24, i, i + 1));
        assert_eq!(prev, i, "test-set saw a torn value at {i}");
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    churn.join().unwrap();

    // Final word agrees from a fresh mapper on another node.
    let mut remote = cluster.attach(1).unwrap();
    let rlh = remote.lt_map(&mut ctx, "lazy.atomic").unwrap();
    let mut word = [0u8; 8];
    remote.lt_read(&mut ctx, rlh, 16, &mut word).unwrap();
    assert_eq!(u64::from_le_bytes(word), prev_sum);
    let stats = kernel.mm_stats();
    assert!(
        stats.evictions > 0,
        "churn never actually migrated — test exercised nothing: {stats:?}"
    );
}

/// Both modes expose the registration-latency histogram, and the mm /
/// verify suites' invariants hold with lazy pinning on: a full
/// write-evict-read round trip stays intact.
#[test]
fn lazy_mode_reports_gauges_and_survives_eviction_roundtrip() {
    let cluster = cluster_with(3, true, 16 * 1024);
    let mut h = cluster.attach(0).unwrap();
    let mut ctx = Ctx::new();
    let lh = h
        .lt_malloc(&mut ctx, 0, 64 * 1024, "lazy.roundtrip", Perm::RW)
        .unwrap();
    let data: Vec<u8> = (0..64 * 1024).map(|i| (i * 7 % 253) as u8).collect();
    for (i, slice) in data.chunks(16 * 1024).enumerate() {
        h.lt_write(&mut ctx, lh, (i * 16 * 1024) as u64, slice)
            .unwrap();
    }
    let kernel = cluster.kernel(0);
    assert!(kernel.mm_stats().reg_lat.count >= 1, "reg_lat not recorded");
    // 64 KB resident against a 16 KB budget: the sweeper must evict.
    assert!(
        wait_for(20, || kernel.mm_stats().evictions > 0),
        "no eviction under pressure in lazy mode: {:?}",
        kernel.mm_stats()
    );
    let mut buf = vec![0u8; 64 * 1024];
    for (i, slice) in buf.chunks_mut(16 * 1024).enumerate() {
        h.lt_read(&mut ctx, lh, (i * 16 * 1024) as u64, slice)
            .unwrap();
    }
    assert_eq!(buf, data, "data corrupted across lazy-mode eviction");
}
