//! Scale-out behavior: incremental membership (partial boot + runtime
//! joins), lazy pair wiring, the boot/mesh gauges, the stale-name
//! regression, and multi-context hammering of the sharded kernel
//! tables. DESIGN.md §12.

use std::sync::Arc;

use lite::{LiteCluster, LiteError, Perm};
use simnet::Ctx;

#[test]
fn partial_boot_and_runtime_join() {
    // Boot 2 of 4 fabric nodes; the dark ones cost nothing and serve
    // nothing until they join.
    let cluster = LiteCluster::start_partial(
        rnic::IbConfig::with_nodes(4),
        lite::LiteConfig::default(),
        lite::QosConfig::default(),
        2,
    )
    .unwrap();
    assert_eq!(cluster.num_nodes(), 2);
    assert_eq!(cluster.capacity(), 4);
    assert!(cluster.try_kernel(2).is_err());
    assert!(matches!(
        cluster.attach(3),
        Err(LiteError::NodeDown { node: 3 })
    ));

    // The booted prefix works on its own.
    let mut ctx = Ctx::new();
    let mut h0 = cluster.attach(0).unwrap();
    let lh = h0.lt_malloc(&mut ctx, 1, 4096, "pre", Perm::RW).unwrap();
    h0.lt_write(&mut ctx, lh, 0, b"early").unwrap();

    // Join node 2 at runtime; traffic flows to and from it immediately.
    cluster.join_node(2).unwrap();
    assert_eq!(cluster.num_nodes(), 3);
    let mut h2 = cluster.attach(2).unwrap();
    let mut ctx2 = Ctx::new();
    let lh2 = h2.lt_map(&mut ctx2, "pre").unwrap();
    let mut buf = [0u8; 5];
    h2.lt_read(&mut ctx2, lh2, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"early");
    let lh_new = h2.lt_malloc(&mut ctx2, 2, 4096, "late", Perm::RW).unwrap();
    h2.lt_write(&mut ctx2, lh_new, 0, b"join!").unwrap();
    let lh_back = h0.lt_map(&mut ctx, "late").unwrap();
    let mut buf = [0u8; 5];
    h0.lt_read(&mut ctx, lh_back, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"join!");

    // Joining a running node is idempotent.
    cluster.join_node(2).unwrap();
    assert_eq!(cluster.num_nodes(), 3);
    // Out-of-fabric joins fail typed.
    assert!(matches!(
        cluster.join_node(9).map(|_| ()),
        Err(LiteError::NodeDown { node: 9 })
    ));
}

#[test]
fn boot_and_mesh_gauges_are_exposed() {
    let cluster = LiteCluster::start(3).unwrap();
    // Boot time is recorded per node and cumulatively in the directory.
    for node in 0..3 {
        assert!(cluster.kernel(node).stats().boot_ns > 0);
    }
    assert!(cluster.directory().boot_host_ns() > 0);
    // Before any cross-node traffic: no lazy connects, no live QPs.
    assert_eq!(cluster.kernel(0).stats().lazy_connects, 0);
    assert_eq!(cluster.kernel(0).stats().qps, 0);

    let mut ctx = Ctx::new();
    let mut h = cluster.attach(0).unwrap();
    let lh = h.lt_malloc(&mut ctx, 1, 4096, "gauge", Perm::RW).unwrap();
    h.lt_write(&mut ctx, lh, 0, b"x").unwrap();

    let s = cluster.kernel(0).stats();
    assert!(s.lazy_connects >= 1, "first use wires the pair");
    assert!(s.mesh_ns > 0, "pair wiring time is accounted");
    assert_eq!(s.qps, cluster.kernel(0).config().qp_factor);

    // The gauges ride through lt_stats and its JSON rendering.
    let json = cluster.kernel(0).lt_stats().to_json();
    for key in ["\"boot_ns\":", "\"mesh_ns\":", "\"lazy_connects\":"] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn freed_name_does_not_resolve_to_recycled_lmr() {
    // Regression: `names` entries must be scrubbed when the LMR is
    // freed, *before* any fallible cleanup — a stale binding used to
    // point map requests at a master whose record id had been recycled.
    let cluster = LiteCluster::start(3).unwrap();
    let mut ctx = Ctx::new();
    let mut h = cluster.attach(0).unwrap();
    let lh = h.lt_malloc(&mut ctx, 1, 4096, "phoenix", Perm::RW).unwrap();
    h.lt_write(&mut ctx, lh, 0, b"old").unwrap();
    h.lt_free(&mut ctx, lh).unwrap();

    // The name is gone — not dangling.
    assert!(matches!(
        h.lt_map(&mut ctx, "phoenix"),
        Err(LiteError::NameNotFound { .. })
    ));

    // And it is immediately re-registrable from a different node; the
    // new binding resolves to the new LMR, not the freed one.
    let mut h2 = cluster.attach(2).unwrap();
    let mut ctx2 = Ctx::new();
    let lh2 = h2
        .lt_malloc(&mut ctx2, 2, 4096, "phoenix", Perm::RW)
        .unwrap();
    h2.lt_write(&mut ctx2, lh2, 0, b"new").unwrap();
    let lh3 = h.lt_map(&mut ctx, "phoenix").unwrap();
    let mut buf = [0u8; 3];
    h.lt_read(&mut ctx, lh3, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"new");
}

#[test]
fn sharded_tables_survive_multi_context_hammering() {
    // Many contexts on many nodes hammering the sharded tables at once:
    // names (malloc/free), lhs (map/unmap), locks, and the master table.
    let cluster = LiteCluster::start_with(
        rnic::IbConfig::with_nodes(4),
        lite::LiteConfig {
            kernel_shards: 4,
            ..Default::default()
        },
        lite::QosConfig::default(),
    )
    .unwrap();
    let (lock, shared) = {
        let mut h = cluster.attach(0).unwrap();
        let mut ctx = Ctx::new();
        h.lt_malloc(&mut ctx, 2, 4096, "ctr", Perm::RW).unwrap();
        (h.lt_create_lock(&mut ctx).unwrap(), "ctr")
    };
    let threads = 8;
    let iters = 12;
    let mut joins = Vec::new();
    for t in 0..threads {
        let cluster = Arc::clone(&cluster);
        joins.push(std::thread::spawn(move || {
            let mut h = cluster.attach(t % 4).unwrap();
            let mut ctx = Ctx::new();
            let ctr = h.lt_map(&mut ctx, shared).unwrap();
            for i in 0..iters {
                // Name + master-record churn, spread across targets.
                let name = format!("t{t}i{i}");
                let lh = h
                    .lt_malloc(&mut ctx, (t + i) % 4, 2048, &name, Perm::RW)
                    .unwrap();
                h.lt_write(&mut ctx, lh, 0, &[t as u8, i as u8]).unwrap();
                if i % 2 == 0 {
                    h.lt_free(&mut ctx, lh).unwrap();
                }
                // Locked increment of the shared cell (locks + lhs).
                h.lt_lock(&mut ctx, lock).unwrap();
                h.lt_fetch_add(&mut ctx, ctr, 0, 1).unwrap();
                h.lt_unlock(&mut ctx, lock).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let mut h = cluster.attach(3).unwrap();
    let mut ctx = Ctx::new();
    let ctr = h.lt_map(&mut ctx, shared).unwrap();
    assert_eq!(
        h.lt_fetch_add(&mut ctx, ctr, 0, 0).unwrap(),
        (threads * iters) as u64
    );
    // Every surviving name still resolves, every freed one is gone.
    for t in 0..threads {
        for i in 0..iters {
            let name = format!("t{t}i{i}");
            let mapped = h.lt_map(&mut ctx, &name);
            if i % 2 == 0 {
                assert!(matches!(mapped, Err(LiteError::NameNotFound { .. })));
            } else {
                let lh = mapped.unwrap();
                let mut buf = [0u8; 2];
                h.lt_read(&mut ctx, lh, 0, &mut buf).unwrap();
                assert_eq!(buf, [t as u8, i as u8]);
            }
        }
    }
}
