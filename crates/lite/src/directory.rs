//! The cluster directory: per-node membership records and the single
//! connect lock behind incremental (lazy) mesh bring-up.
//!
//! Boot used to wire the full O(N²·K) QP mesh and every ordered-pair
//! RPC ring before the first op could run. The directory replaces that:
//! [`crate::LiteCluster`] registers each node's membership record —
//! global rkey, head-sink address, QoS state, memory manager, and a
//! weak kernel handle — as the node joins (O(N) total), and peers pull
//! what they need from the directory on demand. Shared QPs and rings
//! are established on *first use* of a peer pair, under the one
//! [`ClusterDirectory::lock_connect`] mutex that also serializes QP
//! repairs and runtime joins, so pair wiring is race-free and
//! idempotent.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::{Mutex, MutexGuard};
use rnic::NodeId;

use crate::kernel::LiteKernel;
use crate::mm::MemManager;
use crate::qos::QosState;

/// One node's membership record.
pub(crate) struct DirEntry {
    /// The node's kernel (weak: the cluster owns kernels, the directory
    /// must not keep a stopped one alive).
    pub(crate) kernel: Weak<LiteKernel>,
    /// The node's global-MR rkey (§4.1).
    pub(crate) rkey: u32,
    /// Physical address of the node's 64-byte head-update sink cell.
    pub(crate) head_sink: u64,
    /// The node's QoS state (receiver-side SW-Pri policies read it).
    pub(crate) qos: Arc<QosState>,
    /// The node's memory-tiering manager.
    pub(crate) mm: Arc<MemManager>,
}

/// Cluster membership, sized to the fabric's node capacity. Entries are
/// written once per node (at boot or at a runtime join) and never
/// removed — a dead node keeps its record, liveness is the datapath
/// monitor's job.
pub struct ClusterDirectory {
    /// Write-once per slot, so runtime joins fill entries out of order
    /// while readers stay lock-free.
    entries: Box<[OnceLock<DirEntry>]>,
    /// Serializes lazy pair wiring (QPs + rings), QP repairs, and
    /// runtime joins. Never held across a datapath post.
    connect_lock: Mutex<()>,
    joined: AtomicUsize,
    /// Host-wall nanoseconds the cluster spent booting (all joins).
    boot_host_ns: AtomicU64,
}

impl ClusterDirectory {
    /// An empty directory for a fabric of `capacity` nodes.
    pub(crate) fn new(capacity: usize) -> Self {
        ClusterDirectory {
            entries: (0..capacity).map(|_| OnceLock::new()).collect(),
            connect_lock: Mutex::new(()),
            joined: AtomicUsize::new(0),
            boot_host_ns: AtomicU64::new(0),
        }
    }

    /// Fabric node capacity (registered or not).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Nodes registered so far.
    pub fn joined(&self) -> usize {
        self.joined.load(Ordering::Acquire)
    }

    /// Registers `node`'s membership record; `false` if already present
    /// or out of range. Callers hold [`ClusterDirectory::lock_connect`]
    /// across register + kernel wiring so peers never observe a record
    /// whose kernel is still half-built.
    pub(crate) fn register(&self, node: NodeId, entry: DirEntry) -> bool {
        let Some(slot) = self.entries.get(node) else {
            return false;
        };
        let fresh = slot.set(entry).is_ok();
        if fresh {
            self.joined.fetch_add(1, Ordering::AcqRel);
        }
        fresh
    }

    fn entry(&self, node: NodeId) -> Option<&DirEntry> {
        self.entries.get(node)?.get()
    }

    /// Whether `node` has joined.
    pub fn is_member(&self, node: NodeId) -> bool {
        self.entry(node).is_some()
    }

    /// The node's kernel, if joined and alive.
    pub(crate) fn kernel(&self, node: NodeId) -> Option<Arc<LiteKernel>> {
        self.entry(node)?.kernel.upgrade()
    }

    /// The node's global rkey.
    pub(crate) fn rkey(&self, node: NodeId) -> Option<u32> {
        Some(self.entry(node)?.rkey)
    }

    /// The node's head-sink physical address.
    pub(crate) fn head_sink(&self, node: NodeId) -> Option<u64> {
        Some(self.entry(node)?.head_sink)
    }

    /// The node's QoS state.
    pub(crate) fn qos(&self, node: NodeId) -> Option<&Arc<QosState>> {
        Some(&self.entry(node)?.qos)
    }

    /// The node's memory manager.
    pub(crate) fn mm(&self, node: NodeId) -> Option<&Arc<MemManager>> {
        Some(&self.entry(node)?.mm)
    }

    /// Takes the cluster-wide connect lock (pair wiring, QP repair,
    /// runtime join).
    pub(crate) fn lock_connect(&self) -> MutexGuard<'_, ()> {
        self.connect_lock.lock()
    }

    /// Adds to the cumulative boot-time gauge.
    pub(crate) fn note_boot(&self, host_ns: u64) {
        self.boot_host_ns.fetch_add(host_ns, Ordering::Relaxed);
    }

    /// Cumulative host-wall nanoseconds spent joining nodes.
    pub fn boot_host_ns(&self) -> u64 {
        self.boot_host_ns.load(Ordering::Relaxed)
    }
}
