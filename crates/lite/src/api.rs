//! The LITE API (paper Table 1).
//!
//! A [`LiteHandle`] is one process's view of LITE on one node. Handles
//! come in two flavors: *user-level* (charges syscall-crossing costs,
//! §5.2) and *kernel-level* (no crossings — what LITE-DSM uses). A handle
//! is intended to be used by a single thread; spawn one per worker.
//!
//! | Paper API        | Here                                     |
//! |------------------|------------------------------------------|
//! | `LT_join`        | [`crate::LiteCluster::attach`]           |
//! | `LT_malloc`      | [`LiteHandle::lt_malloc`]                |
//! | `LT_free`        | [`LiteHandle::lt_free`]                  |
//! | `LT_map/unmap`   | [`LiteHandle::lt_map`] / [`LiteHandle::lt_unmap`] |
//! | `LT_read/write`  | [`LiteHandle::lt_read`] / [`LiteHandle::lt_write`] |
//! | `LT_memset`      | [`LiteHandle::lt_memset`]                |
//! | `LT_memcpy/move` | [`LiteHandle::lt_memcpy`] / [`LiteHandle::lt_memmove`] |
//! | `LT_regRPC`      | [`LiteHandle::register_rpc`]             |
//! | `LT_RPC`         | [`LiteHandle::lt_rpc`]                   |
//! | `LT_recvRPC`     | [`LiteHandle::lt_recv_rpc`]              |
//! | `LT_replyRPC`    | [`LiteHandle::lt_reply_rpc`] (+ combined [`LiteHandle::lt_reply_recv`]) |
//! | `LT_send`        | [`LiteHandle::lt_send`] / [`LiteHandle::lt_recv_msg`] |
//! | `LT_(un)lock`    | [`LiteHandle::lt_lock`] / [`LiteHandle::lt_unlock`] |
//! | `LT_barrier`     | [`LiteHandle::lt_barrier`]               |
//! | `LT_fetch-add`   | [`LiteHandle::lt_fetch_add`]             |
//! | `LT_test-set`    | [`LiteHandle::lt_test_set`]              |
//! | `LT_cmp-swap`    | [`LiteHandle::lt_cmp_swap`] (general CAS; `lt_test_set` delegates) |

use std::sync::Arc;

use parking_lot::Mutex;
use rnic::NodeId;
use simnet::{Ctx, Nanos};
use smem::Chunk;

use crate::error::{LiteError, LiteResult};
use crate::kernel::datapath::Op;
use crate::kernel::{
    perm_to_byte, LiteKernel, ReplyRoute, FN_BARRIER, FN_FREE_CHUNKS, FN_GRANT, FN_INVALIDATE,
    FN_LOCK, FN_MALLOC, FN_MAP, FN_MEMCPY, FN_MEMSET, FN_MSG, FN_QUERYNAME, FN_REGNAME,
    FN_TAKE_RECORD, FN_UNMAP, FN_UNREGNAME, MANAGER_NODE, USER_FUNC_MIN,
};
use crate::lmr::{LhEntry, LmrId, Location, Perm};
use crate::observe::{EventKind, OpClass, StatsReport};
use crate::qos::Priority;
use crate::wire::{Dec, Enc, Imm, MsgHeader, HEADER_BYTES};

/// A cluster-wide lock identity (§7.2: a 64-bit integer in an internal
/// LMR with an owner node). `Copy` — distribute it to other nodes through
/// an LMR, a message, or any other channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockId {
    /// Owner node (maintains the FIFO wait queue).
    pub node: NodeId,
    /// Physical address of the lock word on the owner node.
    pub addr: u64,
}

/// An opaque LITE handle to an LMR (the paper's `lh`).
pub type Lh = u64;

/// An incoming RPC held by a server thread; reply through
/// [`LiteHandle::lt_reply_rpc`].
pub struct RpcCall {
    /// The request payload.
    pub input: Vec<u8>,
    /// Calling node.
    pub src_node: NodeId,
    /// Calling process.
    pub src_pid: u32,
    pub(crate) route: ReplyRoute,
    /// Deferred ring-release head update, flushed together with the
    /// reply in one doorbell batch (only set with `batch_posting`, for
    /// remote two-way calls).
    pub(crate) pending_head: Mutex<Option<Op>>,
}

/// A physical scratch region owned by a handle.
struct Scratch {
    addr: u64,
    cap: usize,
}

/// One process's LITE endpoint.
pub struct LiteHandle {
    kernel: Arc<LiteKernel>,
    pid: u32,
    user_level: bool,
    prio: Priority,
    staging: Scratch,
    reply: Scratch,
    /// Reply cells for multicast calls, one `max_reply`-sized cell per
    /// destination, allocated lazily on the first multicast. Persistent
    /// like [`LiteHandle::reply`] (never freed while the handle lives):
    /// a straggler reply landing after a slot timeout scribbles scratch
    /// this handle owns, never allocator memory someone else reused.
    mcast_reply: Option<Scratch>,
}

const INIT_SCRATCH: usize = 64 * 1024;

impl LiteHandle {
    pub(crate) fn new(kernel: Arc<LiteKernel>, user_level: bool) -> LiteResult<Self> {
        let pid = kernel.alloc_pid();
        let staging = Scratch {
            addr: kernel.alloc.lock().alloc(INIT_SCRATCH as u64)?,
            cap: INIT_SCRATCH,
        };
        let reply = Scratch {
            addr: kernel.alloc.lock().alloc(INIT_SCRATCH as u64)?,
            cap: INIT_SCRATCH,
        };
        Ok(LiteHandle {
            kernel,
            pid,
            user_level,
            prio: Priority::High,
            staging,
            reply,
            mcast_reply: None,
        })
    }

    /// The node this handle lives on.
    pub fn node(&self) -> NodeId {
        self.kernel.node()
    }

    /// Process id on this node.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Sets the priority for subsequent operations (QoS, §6.2).
    pub fn set_priority(&mut self, prio: Priority) {
        self.prio = prio;
    }

    /// Current priority.
    pub fn priority(&self) -> Priority {
        self.prio
    }

    /// The kernel under this handle (stats, QoS control).
    pub fn kernel(&self) -> &Arc<LiteKernel> {
        &self.kernel
    }

    /// Structured observability report for this node: per-class latency
    /// percentiles, per-peer gauges and liveness, trace-ring occupancy,
    /// and QoS state (see DESIGN.md "Observability").
    pub fn lt_stats(&self) -> StatsReport {
        self.kernel.lt_stats()
    }

    /// The cluster-wide LMR id behind a local handle. The id is stable
    /// across chunk migrations (only the physical location moves), so
    /// tooling can use it to target `MmRequest`s at a specific LMR.
    pub fn lh_id(&self, lh: Lh) -> LiteResult<crate::lmr::LmrId> {
        Ok(self.kernel.lookup_lh(self.pid, lh)?.id)
    }

    /// Records a completed API-level round trip (RPC/lock/barrier) into
    /// the class histograms and — when sampled — the trace ring. Spans
    /// feed only the class view; the datapath posts underneath them
    /// already account per-peer traffic.
    fn span(&self, class: OpClass, peer: NodeId, start: Nanos, end: Nanos) {
        let Some(obs) = self.kernel.observe() else {
            return;
        };
        obs.record_span(class, self.prio, end.saturating_sub(start));
        if obs.sample() {
            let id = obs.next_op_id();
            obs.trace(id, class, EventKind::Posted, self.prio, peer, start);
            obs.trace(id, class, EventKind::Completed, self.prio, peer, end);
        }
    }

    /// Appends one op to the linearizability history, when recording is
    /// armed (see [`crate::LiteCluster::record_history`]). One `OnceLock`
    /// load when unarmed.
    fn record_hist(
        &self,
        key: crate::verify::Key,
        kind: crate::verify::OpKind,
        ret: u64,
        ok: bool,
        invoke: Nanos,
        response: Nanos,
    ) {
        let Some(log) = self.kernel.observe().and_then(|obs| obs.history().cloned()) else {
            return;
        };
        log.record(crate::verify::HistOp {
            proc: crate::verify::proc_id(self.kernel.node(), self.pid),
            key,
            kind,
            ret,
            ok,
            invoke,
            response,
        });
    }

    // ------------------------------------------------------------------
    // syscall model
    // ------------------------------------------------------------------

    fn enter(&self, ctx: &mut Ctx) {
        if self.user_level {
            ctx.work(self.kernel.config.syscall_crossing_ns);
        }
    }

    fn exit(&self, ctx: &mut Ctx) {
        // With the §5.2 optimizations the return path is observed through
        // the shared page — no further crossing. The ablation restores
        // the full syscall return plus a re-entry to fetch results.
        if self.user_level && !self.kernel.config.fast_syscalls {
            ctx.work(2 * self.kernel.config.syscall_crossing_ns);
        }
    }

    // ------------------------------------------------------------------
    // scratch management (simulation plumbing: user buffers live in Rust
    // memory; LITE addresses them physically with zero copies, so moving
    // bytes into the scratch region carries no virtual-time cost)
    // ------------------------------------------------------------------

    fn ensure(kernel: &LiteKernel, s: &mut Scratch, need: usize) -> LiteResult<()> {
        if need <= s.cap {
            return Ok(());
        }
        let new_cap = need.next_power_of_two();
        let mut a = kernel.alloc.lock();
        let new_addr = a.alloc(new_cap as u64)?;
        a.free(s.addr)?;
        s.addr = new_addr;
        s.cap = new_cap;
        Ok(())
    }

    fn stage(&mut self, data: &[u8]) -> LiteResult<u64> {
        Self::ensure(&self.kernel, &mut self.staging, data.len())?;
        self.kernel
            .fabric()
            .mem(self.kernel.node())
            .write(self.staging.addr, data)?;
        Ok(self.staging.addr)
    }

    fn unstage(&self, addr: u64, buf: &mut [u8]) -> LiteResult<()> {
        self.kernel
            .fabric()
            .mem(self.kernel.node())
            .read(addr, buf)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // kernel-call plumbing
    // ------------------------------------------------------------------

    /// Sends one LITE RPC (request write-imm → slot wait) and returns the
    /// reply bytes. `func` may be a kernel service or a user function.
    fn call_raw(
        &mut self,
        ctx: &mut Ctx,
        server: NodeId,
        func: u8,
        payload: &[u8],
        max_reply: usize,
        oneway: bool,
    ) -> LiteResult<Vec<u8>> {
        let cfg = self.kernel.config.clone();
        if payload.len() > cfg.max_rpc_payload {
            return Err(LiteError::TooLarge {
                len: payload.len(),
                max: cfg.max_rpc_payload,
            });
        }
        ctx.work(cfg.rpc_meta_ns);
        let span_start = ctx.now();
        let total = HEADER_BYTES as u64 + payload.len() as u64;
        let r = self.kernel.reserve_ring(ctx, server, total)?;
        let (slot_id, slot) = if oneway {
            (0, None)
        } else {
            Self::ensure(&self.kernel, &mut self.reply, max_reply.max(1))?;
            let (id, s) = self.kernel.alloc_slot();
            (id, Some(s))
        };
        let hdr = MsgHeader {
            func,
            slot: slot_id,
            len: payload.len() as u32,
            reply_addr: self.reply.addr,
            reply_max: max_reply as u32,
            src_node: self.kernel.node() as u32,
            src_pid: self.pid,
            skip: r.skip as u32,
        };
        // One write-imm carries header + input (§5.1 step 2).
        let mut msg = Vec::with_capacity(total as usize);
        msg.extend_from_slice(&hdr.encode());
        msg.extend_from_slice(payload);
        let staged = self.stage(&msg)?;
        let chunks = [Chunk {
            addr: staged,
            len: msg.len() as u64,
        }];
        let dst = self.kernel.ring_remote_addr(server, r.offset)?;
        let imm = Imm::Request {
            granule: (r.offset / crate::wire::RING_GRANULE) as u32,
        };
        let post = self
            .kernel
            .post_write_imm(ctx, self.prio, server, dst, &chunks, msg.len(), imm);
        let Some(slot) = slot else {
            post?;
            return Ok(Vec::new());
        };
        let result = post.and_then(|_| slot.wait(ctx, &cfg, cfg.op_timeout));
        self.kernel.free_slot(slot_id);
        let res = result?;
        self.span(OpClass::Rpc, server, span_start, res.stamp);
        if !res.ok {
            return Err(LiteError::UnknownRpc { func });
        }
        if res.len as usize > max_reply {
            return Err(LiteError::TooLarge {
                len: res.len as usize,
                max: max_reply,
            });
        }
        // The reply was RDMA-written straight into our reply buffer —
        // zero-copy at the client.
        let mut out = vec![0u8; res.len as usize];
        self.unstage(self.reply.addr, &mut out)?;
        Ok(out)
    }

    /// Kernel-service call; checks the leading status byte.
    pub(crate) fn kcall(
        &mut self,
        ctx: &mut Ctx,
        server: NodeId,
        func: u8,
        payload: Vec<u8>,
    ) -> LiteResult<Vec<u8>> {
        let resp = self.call_raw(ctx, server, func, &payload, 64 * 1024, false)?;
        match resp.first() {
            Some(0) => Ok(resp[1..].to_vec()),
            Some(&code) => Err(map_status(code)),
            None => Err(LiteError::Remote(0xFB)),
        }
    }

    // ------------------------------------------------------------------
    // Memory API
    // ------------------------------------------------------------------

    /// LT_malloc: allocates a `size`-byte LMR on `target` (any node,
    /// including this one), names it, and returns a master lh.
    pub fn lt_malloc(
        &mut self,
        ctx: &mut Ctx,
        target: NodeId,
        size: u64,
        name: &str,
        default_perm: Perm,
    ) -> LiteResult<Lh> {
        self.enter(ctx);
        let reg_started = ctx.now();
        let max_chunk = self.kernel.config.max_lmr_chunk;
        let resp = self.kcall(
            ctx,
            target,
            FN_MALLOC,
            Enc::new().u64(size).u64(max_chunk).done(),
        )?;
        let mut d = Dec::new(&resp);
        let n = d.u32()?;
        let mut extents = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let addr = d.u64()?;
            let len = d.u64()?;
            extents.push((target, Chunk { addr, len }));
        }
        let location = Location { extents };
        let id = self.kernel.create_master_record(
            location.clone(),
            Some(name.to_string()),
            default_perm,
        );
        // Register the name with the cluster manager; roll back on clash.
        let reg = self.kcall(
            ctx,
            MANAGER_NODE,
            FN_REGNAME,
            Enc::new()
                .bytes(name.as_bytes())
                .u32(self.kernel.node() as u32)
                .done(),
        );
        if let Err(e) = reg {
            self.kernel.remove_master_record(id.idx);
            // The registration may have landed with only its reply lost;
            // best-effort guarded scrub so a half-registered name cannot
            // outlive the record it pointed at. A clean name clash
            // (Remote(1)) means someone else owns the binding — the
            // guard makes scrubbing it a no-op either way.
            if !matches!(e, LiteError::Remote(1)) {
                let _ = self.kcall(
                    ctx,
                    MANAGER_NODE,
                    FN_UNREGNAME,
                    Enc::new()
                        .bytes(name.as_bytes())
                        .u32(self.kernel.node() as u32)
                        .done(),
                );
            }
            let mut free = Enc::new().u32(location.extents.len() as u32);
            for (_, c) in &location.extents {
                free = free.u64(c.addr);
            }
            if self
                .kcall(ctx, target, FN_FREE_CHUNKS, free.done())
                .is_err()
            {
                // Rollback failed: the chunks on `target` are leaked.
                // Count it and trace it instead of swallowing it.
                self.kernel.note_cleanup_failure(target, ctx.now());
            }
            let mapped = matches!(e, LiteError::Remote(1));
            self.exit(ctx);
            return Err(if mapped {
                LiteError::NameExists {
                    name: name.to_string(),
                }
            } else {
                e
            });
        }
        let lh = self.kernel.install_lh(
            self.pid,
            LhEntry {
                id,
                name: name.to_string(),
                location,
                perm: Perm::MASTER,
                stale: false,
                relocated: false,
            },
        );
        self.kernel
            .mm()
            .record_reg_latency(ctx.now().saturating_sub(reg_started));
        self.exit(ctx);
        Ok(lh)
    }

    /// LT_map: acquires an lh for a named LMR (manager lookup + master
    /// map, §4.1).
    pub fn lt_map(&mut self, ctx: &mut Ctx, name: &str) -> LiteResult<Lh> {
        self.enter(ctx);
        let resp = self
            .kcall(
                ctx,
                MANAGER_NODE,
                FN_QUERYNAME,
                Enc::new().bytes(name.as_bytes()).done(),
            )
            .map_err(|e| named_err(e, name))?;
        let mut d = Dec::new(&resp);
        let master = d.u32()? as NodeId;
        let lh = self.map_at(ctx, name, master)?;
        self.exit(ctx);
        Ok(lh)
    }

    /// LT_map with a known master node (the paper's
    /// `LT_map(name, master)` form) — skips the manager lookup.
    pub fn lt_map_at(&mut self, ctx: &mut Ctx, name: &str, master: NodeId) -> LiteResult<Lh> {
        self.enter(ctx);
        let lh = self.map_at(ctx, name, master)?;
        self.exit(ctx);
        Ok(lh)
    }

    fn map_at(&mut self, ctx: &mut Ctx, name: &str, master: NodeId) -> LiteResult<Lh> {
        let resp = self
            .kcall(
                ctx,
                master,
                FN_MAP,
                Enc::new().bytes(name.as_bytes()).done(),
            )
            .map_err(|e| named_err(e, name))?;
        let mut d = Dec::new(&resp);
        let id = LmrId {
            node: d.u32()?,
            idx: d.u32()?,
        };
        let perm = crate::kernel::byte_to_perm(d.u8()?);
        let n = d.u32()?;
        let mut extents = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let node = d.u32()? as NodeId;
            let addr = d.u64()?;
            let len = d.u64()?;
            extents.push((node, Chunk { addr, len }));
        }
        Ok(self.kernel.install_lh(
            self.pid,
            LhEntry {
                id,
                name: name.to_string(),
                location: Location { extents },
                perm,
                stale: false,
                relocated: false,
            },
        ))
    }

    /// Transparently refreshes an lh whose cached location went stale
    /// under memory tiering (the master's `lite::mm` migrated chunks):
    /// re-fetches the location from the master and reinstalls the entry
    /// under the *same* lh number. The permission the handle already
    /// carries is preserved — a plain `FN_MAP` reply would downgrade a
    /// master handle to the granted perm.
    fn refresh_lh(&mut self, ctx: &mut Ctx, lh: Lh) -> LiteResult<()> {
        let entry = self.kernel.lookup_lh(self.pid, lh)?;
        let resp = self
            .kcall(
                ctx,
                entry.id.node as NodeId,
                FN_MAP,
                Enc::new().bytes(entry.name.as_bytes()).done(),
            )
            .map_err(|e| match e {
                // The LMR vanished while we held a relocated handle: the
                // handle is dead, not merely stale.
                LiteError::NameNotFound { .. } => LiteError::BadLh { lh },
                other => other,
            })?;
        let mut d = Dec::new(&resp);
        let id = LmrId {
            node: d.u32()?,
            idx: d.u32()?,
        };
        let _granted = d.u8()?;
        let n = d.u32()?;
        let mut extents = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let node = d.u32()? as NodeId;
            let addr = d.u64()?;
            let len = d.u64()?;
            extents.push((node, Chunk { addr, len }));
        }
        self.kernel.reinstall_lh(
            self.pid,
            lh,
            LhEntry {
                id,
                name: entry.name,
                location: Location { extents },
                perm: entry.perm,
                stale: false,
                relocated: false,
            },
        );
        Ok(())
    }

    /// Pins every piece at its storage node's memory manager before a
    /// one-sided access, so eviction cannot pull the chunks out from
    /// under the in-flight op. The pin verifies piece identity (LMR id +
    /// byte offset), closing the window where a cached location points
    /// at freed-and-recycled memory. `Err(Relocated)` means the caller
    /// should refresh the lh and retry; no side effect has happened yet.
    ///
    /// Under lazy pinning this is also where memory becomes real: pages
    /// never touched before fault in here (the simulated NIC page
    /// fault), and each one charges the fault-service cost to the
    /// caller's clock — first touch is dear, steady state is free.
    fn pin_pieces(
        &self,
        ctx: &mut Ctx,
        entry: &LhEntry,
        offset: u64,
        pieces: &[(NodeId, Chunk)],
    ) -> LiteResult<Vec<crate::mm::PinGuard>> {
        let mut guards = Vec::new();
        let mut lmr_off = offset;
        let mut faulted = 0usize;
        for (node, c) in pieces {
            if let Some(mm) = self.kernel.mm().peer(*node) {
                match mm.pin_touch(c.addr, c.len, entry.id, lmr_off) {
                    (crate::mm::PinOutcome::Untracked, _) => {}
                    (crate::mm::PinOutcome::Pinned(g), f) => {
                        guards.push(g);
                        faulted += f;
                    }
                    (crate::mm::PinOutcome::Relocated, _) => return Err(LiteError::Relocated),
                }
            }
            lmr_off += c.len;
        }
        if faulted > 0 {
            ctx.work(self.kernel.fabric().cost().fault_page_ns * faulted as u64);
        }
        Ok(guards)
    }

    /// LT_unmap: drops the lh and tells the master.
    pub fn lt_unmap(&mut self, ctx: &mut Ctx, lh: Lh) -> LiteResult<()> {
        self.enter(ctx);
        let entry = self.kernel.remove_lh(self.pid, lh)?;
        let _ = self.kcall(
            ctx,
            entry.id.node as NodeId,
            FN_UNMAP,
            Enc::new()
                .u32(entry.id.idx)
                .u32(self.kernel.node() as u32)
                .done(),
        );
        self.exit(ctx);
        Ok(())
    }

    /// LT_free: frees the LMR everywhere and invalidates every mapper.
    /// Requires a master lh.
    pub fn lt_free(&mut self, ctx: &mut Ctx, lh: Lh) -> LiteResult<()> {
        self.enter(ctx);
        let entry = self.kernel.lookup_lh(self.pid, lh)?;
        if !entry.perm.master {
            self.exit(ctx);
            return Err(LiteError::NotMaster);
        }
        let resp = self.kcall(
            ctx,
            entry.id.node as NodeId,
            FN_TAKE_RECORD,
            Enc::new().bytes(entry.name.as_bytes()).done(),
        )?;
        let mut d = Dec::new(&resp);
        let id = LmrId {
            node: d.u32()?,
            idx: d.u32()?,
        };
        let n = d.u32()?;
        let mut extents: Vec<(NodeId, Chunk)> = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let node = d.u32()? as NodeId;
            let addr = d.u64()?;
            let len = d.u64()?;
            extents.push((node, Chunk { addr, len }));
        }
        let m = d.u32()?;
        let mut mapped = Vec::with_capacity(m as usize);
        for _ in 0..m {
            mapped.push(d.u32()? as NodeId);
        }
        // Scrub the name binding *now*, immediately after the record was
        // taken — before the fallible chunk frees below. The old
        // ordering (unregister last) leaked the binding whenever a free
        // failed mid-way: the record was gone but the name stayed,
        // pointing at a master that would answer "unknown" forever and
        // blocking re-registration. The trailing u32 guards the scrub:
        // the manager only removes the binding if it still names this
        // master, so a name freed and re-registered by someone else in
        // the meantime is left alone.
        let _ = self.kcall(
            ctx,
            MANAGER_NODE,
            FN_UNREGNAME,
            Enc::new()
                .bytes(entry.name.as_bytes())
                .u32(entry.id.node)
                .done(),
        );
        // Free storage per node.
        let mut by_node: std::collections::HashMap<NodeId, Vec<u64>> = Default::default();
        for (node, c) in &extents {
            by_node.entry(*node).or_default().push(c.addr);
        }
        for (node, addrs) in by_node {
            let mut e = Enc::new().u32(addrs.len() as u32);
            for a in addrs {
                e = e.u64(a);
            }
            self.kcall(ctx, node, FN_FREE_CHUNKS, e.done())?;
        }
        // Invalidate every mapper (including ourselves, via loop-back).
        for node in mapped {
            let _ = self.kcall(
                ctx,
                node,
                FN_INVALIDATE,
                Enc::new().u32(id.node).u32(id.idx).done(),
            );
        }
        let _ = self.kernel.remove_lh(self.pid, lh);
        self.exit(ctx);
        Ok(())
    }

    /// LT_move (§4.1 master role): migrates the LMR's bytes to `target`
    /// and updates the master record; every other mapper's lh is
    /// invalidated so their next access fails fast and they re-map.
    /// Requires a master lh, and (in this implementation) must run on the
    /// LMR's record-holder node.
    pub fn lt_move(&mut self, ctx: &mut Ctx, lh: Lh, target: NodeId) -> LiteResult<()> {
        self.enter(ctx);
        let entry = self.kernel.lookup_lh(self.pid, lh)?;
        if !entry.perm.master {
            self.exit(ctx);
            return Err(LiteError::NotMaster);
        }
        if entry.id.node as NodeId != self.kernel.node() {
            self.exit(ctx);
            return Err(LiteError::NotMaster);
        }
        let len = entry.location.len();
        // Allocate at the target.
        let resp = self.kcall(
            ctx,
            target,
            FN_MALLOC,
            Enc::new()
                .u64(len)
                .u64(self.kernel.config.max_lmr_chunk)
                .done(),
        )?;
        let mut d = Dec::new(&resp);
        let n = d.u32()?;
        let mut new_extents = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let addr = d.u64()?;
            let clen = d.u64()?;
            new_extents.push((target, Chunk { addr, len: clen }));
        }
        let new_loc = Location {
            extents: new_extents,
        };
        // Copy the bytes: each source piece pushed by its storage node.
        let src_pieces = entry.location.slice(0, len)?;
        let dst_pieces = new_loc.slice(0, len)?;
        let (mut si, mut di) = (0usize, 0usize);
        let (mut s_used, mut d_used) = (0u64, 0u64);
        let mut remaining = len;
        while remaining > 0 {
            let (s_node, s_c) = &src_pieces[si];
            let (d_node, d_c) = &dst_pieces[di];
            let nbytes = (s_c.len - s_used).min(d_c.len - d_used).min(remaining);
            let op = if s_node == d_node { 0u8 } else { 1u8 };
            self.kcall(
                ctx,
                *s_node,
                FN_MEMCPY,
                Enc::new()
                    .u8(op)
                    .u64(s_c.addr + s_used)
                    .u64(nbytes)
                    .u32(*d_node as u32)
                    .u64(d_c.addr + d_used)
                    .done(),
            )?;
            s_used += nbytes;
            d_used += nbytes;
            remaining -= nbytes;
            if s_used == s_c.len {
                si += 1;
                s_used = 0;
            }
            if d_used == d_c.len {
                di += 1;
                d_used = 0;
            }
        }
        // Swap the record, free the old storage, invalidate mappers.
        let Some((id, old_loc, mapped)) =
            self.kernel
                .swap_master_location(&entry.name, self.kernel.node(), new_loc.clone())
        else {
            self.exit(ctx);
            return Err(LiteError::NotMaster);
        };
        let mut by_node: std::collections::HashMap<NodeId, Vec<u64>> = Default::default();
        for (node, c) in &old_loc.extents {
            by_node.entry(*node).or_default().push(c.addr);
        }
        for (node, addrs) in by_node {
            let mut e = Enc::new().u32(addrs.len() as u32);
            for a in addrs {
                e = e.u64(a);
            }
            self.kcall(ctx, node, FN_FREE_CHUNKS, e.done())?;
        }
        for node in mapped {
            let _ = self.kcall(
                ctx,
                node,
                FN_INVALIDATE,
                Enc::new().u32(id.node).u32(id.idx).done(),
            );
        }
        // Re-install our own (fresh) lh in place.
        self.kernel.remove_lh(self.pid, lh).ok();
        let new_lh = self.kernel.install_lh(
            self.pid,
            LhEntry {
                id,
                name: entry.name.clone(),
                location: new_loc,
                perm: Perm::MASTER,
                stale: false,
                relocated: false,
            },
        );
        // Keep the caller's lh number stable by aliasing: re-register the
        // fresh entry under the original lh id as well.
        let fresh = self.kernel.lookup_lh(self.pid, new_lh)?;
        self.kernel.reinstall_lh(self.pid, lh, fresh);
        self.kernel.remove_lh(self.pid, new_lh).ok();
        self.exit(ctx);
        Ok(())
    }

    /// Grants `perm` on a named LMR to `node` (master only).
    pub fn lt_grant(&mut self, ctx: &mut Ctx, lh: Lh, node: NodeId, perm: Perm) -> LiteResult<()> {
        self.enter(ctx);
        let entry = self.kernel.lookup_lh(self.pid, lh)?;
        if !entry.perm.master {
            self.exit(ctx);
            return Err(LiteError::NotMaster);
        }
        self.kcall(
            ctx,
            entry.id.node as NodeId,
            FN_GRANT,
            Enc::new()
                .bytes(entry.name.as_bytes())
                .u32(node as u32)
                .u8(perm_to_byte(perm))
                .done(),
        )?;
        self.exit(ctx);
        Ok(())
    }

    /// LT_write: blocking one-sided write of `data` at `offset` in the
    /// LMR. Returns when the data is remotely visible (§4.2).
    pub fn lt_write(&mut self, ctx: &mut Ctx, lh: Lh, offset: u64, data: &[u8]) -> LiteResult<()> {
        self.enter(ctx);
        // Lookup/permission/bounds failures return before any side
        // effect and are not recorded in the history (a no-effect op
        // adds no constraint); failures past this point may have
        // partially applied and are recorded as failed writes.
        let start = ctx.now();
        let mut entry = self.kernel.lookup_lh(self.pid, lh)?;
        let mut result = Err(LiteError::Relocated);
        for attempt in 0..3 {
            if attempt > 0 {
                // The location moved under tiering: re-fetch it from the
                // master and redo the access against the fresh pieces.
                if let Err(e) = self.refresh_lh(ctx, lh) {
                    self.exit(ctx);
                    return Err(e);
                }
                entry = self.kernel.lookup_lh(self.pid, lh)?;
            }
            let pieces = match entry.check(offset, data.len(), Perm::RW) {
                Ok(p) => p,
                Err(LiteError::Relocated) => continue,
                Err(e) => {
                    self.exit(ctx);
                    return Err(e);
                }
            };
            // Pins are taken before any byte is posted, so a Relocated
            // here (or from check) retries with zero side effects.
            let _pins = match self.pin_pieces(ctx, &entry, offset, &pieces) {
                Ok(g) => g,
                Err(LiteError::Relocated) => continue,
                Err(e) => {
                    self.exit(ctx);
                    return Err(e);
                }
            };
            result = self.write_pieces(ctx, &pieces, data);
            break;
        }
        self.record_hist(
            crate::verify::Key::Reg {
                node: entry.id.node,
                idx: entry.id.idx,
                offset,
                len: data.len() as u64,
            },
            crate::verify::OpKind::Write {
                fp: crate::verify::fingerprint(data),
            },
            0,
            result.is_ok(),
            start,
            ctx.now(),
        );
        self.exit(ctx);
        result
    }

    fn write_pieces(
        &mut self,
        ctx: &mut Ctx,
        pieces: &[(NodeId, Chunk)],
        data: &[u8],
    ) -> LiteResult<()> {
        let staged = self.stage(data)?;
        let mut off = 0u64;
        let mut vec_pieces = Vec::with_capacity(pieces.len());
        for (node, c) in pieces {
            vec_pieces.push((
                *node,
                c.addr,
                Chunk {
                    addr: staged + off,
                    len: c.len,
                },
            ));
            off += c.len;
        }
        // Multi-extent writes towards one node chain into a single
        // doorbell batch; single-extent writes post as before.
        let last = self.kernel.rdma_write_vec(ctx, self.prio, &vec_pieces)?;
        self.finish_blocking(ctx, last);
        Ok(())
    }

    /// LT_read: blocking one-sided read into `buf` from `offset`.
    pub fn lt_read(
        &mut self,
        ctx: &mut Ctx,
        lh: Lh,
        offset: u64,
        buf: &mut [u8],
    ) -> LiteResult<()> {
        self.enter(ctx);
        let start = ctx.now();
        let mut entry = self.kernel.lookup_lh(self.pid, lh)?;
        let mut result = Err(LiteError::Relocated);
        for attempt in 0..3 {
            if attempt > 0 {
                if let Err(e) = self.refresh_lh(ctx, lh) {
                    self.exit(ctx);
                    return Err(e);
                }
                entry = self.kernel.lookup_lh(self.pid, lh)?;
            }
            let pieces = match entry.check(offset, buf.len(), Perm::RO) {
                Ok(p) => p,
                Err(LiteError::Relocated) => continue,
                Err(e) => {
                    self.exit(ctx);
                    return Err(e);
                }
            };
            let _pins = match self.pin_pieces(ctx, &entry, offset, &pieces) {
                Ok(g) => g,
                Err(LiteError::Relocated) => continue,
                Err(e) => {
                    self.exit(ctx);
                    return Err(e);
                }
            };
            result = self.read_pieces(ctx, &pieces, buf);
            break;
        }
        self.record_hist(
            crate::verify::Key::Reg {
                node: entry.id.node,
                idx: entry.id.idx,
                offset,
                len: buf.len() as u64,
            },
            crate::verify::OpKind::Read {
                // Failed reads are excluded by the checker; fp is
                // meaningful only on the ok path.
                fp: if result.is_ok() {
                    crate::verify::fingerprint(buf)
                } else {
                    0
                },
            },
            0,
            result.is_ok(),
            start,
            ctx.now(),
        );
        self.exit(ctx);
        result
    }

    fn read_pieces(
        &mut self,
        ctx: &mut Ctx,
        pieces: &[(NodeId, Chunk)],
        buf: &mut [u8],
    ) -> LiteResult<()> {
        Self::ensure(&self.kernel, &mut self.staging, buf.len())?;
        let staged = self.staging.addr;
        let mut off = 0u64;
        let mut last = ctx.now();
        for (node, c) in pieces {
            let dst = [Chunk {
                addr: staged + off,
                len: c.len,
            }];
            let comp =
                self.kernel
                    .rdma_read(ctx, self.prio, *node, c.addr, &dst, c.len as usize)?;
            last = last.max(comp);
            off += c.len;
        }
        self.finish_blocking(ctx, last);
        self.unstage(staged, buf)?;
        Ok(())
    }

    fn finish_blocking(&self, ctx: &mut Ctx, comp: Nanos) {
        ctx.wait_until(comp);
        ctx.work(self.kernel.fabric().cost().cq_poll_ns);
    }

    /// LT_memset: sets `len` bytes at `offset` to `byte`, executed at the
    /// node(s) storing the LMR (§7.1).
    pub fn lt_memset(
        &mut self,
        ctx: &mut Ctx,
        lh: Lh,
        offset: u64,
        len: usize,
        byte: u8,
    ) -> LiteResult<()> {
        self.enter(ctx);
        let mut result = Err(LiteError::Relocated);
        'attempt: for attempt in 0..3 {
            if attempt > 0 {
                if let Err(e) = self.refresh_lh(ctx, lh) {
                    self.exit(ctx);
                    return Err(e);
                }
            }
            let entry = self.kernel.lookup_lh(self.pid, lh)?;
            let pieces = match entry.check(offset, len, Perm::RW) {
                Ok(p) => p,
                Err(LiteError::Relocated) => continue,
                Err(e) => {
                    self.exit(ctx);
                    return Err(e);
                }
            };
            // The remote handler fences each range itself and answers
            // Relocated when a chunk is mid-migration; redoing all the
            // pieces after a refresh is idempotent.
            for (node, c) in pieces {
                match self.kcall(
                    ctx,
                    node,
                    FN_MEMSET,
                    Enc::new().u64(c.addr).u64(c.len).u8(byte).done(),
                ) {
                    Ok(_) => {}
                    Err(LiteError::Relocated) => continue 'attempt,
                    Err(e) => {
                        self.exit(ctx);
                        return Err(e);
                    }
                }
            }
            result = Ok(());
            break;
        }
        self.exit(ctx);
        result
    }

    /// LT_memcpy: copies between LMRs. Each source piece is pushed by the
    /// node that stores it — locally if source and destination are
    /// co-located, with a one-sided write otherwise (§7.1).
    pub fn lt_memcpy(
        &mut self,
        ctx: &mut Ctx,
        src_lh: Lh,
        src_off: u64,
        dst_lh: Lh,
        dst_off: u64,
        len: usize,
    ) -> LiteResult<()> {
        self.copy_ranges(ctx, src_lh, src_off, dst_lh, dst_off, len, false)
    }

    /// Shared body of `lt_memcpy`/`lt_memmove`. `reverse` issues the
    /// per-piece copies from the highest address down — each FN_MEMCPY
    /// call buffers its whole subrange before writing, so segment order
    /// is the only thing that matters for overlapping ranges.
    #[allow(clippy::too_many_arguments)]
    fn copy_ranges(
        &mut self,
        ctx: &mut Ctx,
        src_lh: Lh,
        src_off: u64,
        dst_lh: Lh,
        dst_off: u64,
        len: usize,
        reverse: bool,
    ) -> LiteResult<()> {
        self.enter(ctx);
        let mut result = Err(LiteError::Relocated);
        'attempt: for attempt in 0..3 {
            if attempt > 0 {
                // Either handle's cached location may be the stale one;
                // refresh both (a fresh refresh is a cheap no-op) and
                // redo the whole copy — re-copying bytes is idempotent.
                if let Err(e) = self
                    .refresh_lh(ctx, src_lh)
                    .and_then(|()| self.refresh_lh(ctx, dst_lh))
                {
                    self.exit(ctx);
                    return Err(e);
                }
            }
            let src_entry = self.kernel.lookup_lh(self.pid, src_lh)?;
            let dst_entry = self.kernel.lookup_lh(self.pid, dst_lh)?;
            let src_pieces = match src_entry.check(src_off, len, Perm::RO) {
                Ok(p) => p,
                Err(LiteError::Relocated) => continue,
                Err(e) => {
                    self.exit(ctx);
                    return Err(e);
                }
            };
            let dst_pieces = match dst_entry.check(dst_off, len, Perm::RW) {
                Ok(p) => p,
                Err(LiteError::Relocated) => continue,
                Err(e) => {
                    self.exit(ctx);
                    return Err(e);
                }
            };
            // Walk both piece lists in lockstep to build the per-call
            // segments, then issue them in copy order. A retry after
            // Relocated rebuilds from fresh pieces, so a stale segment
            // list is never re-issued.
            let (mut si, mut di) = (0usize, 0usize);
            let (mut s_used, mut d_used) = (0u64, 0u64);
            let mut remaining = len as u64;
            let mut segs: Vec<(NodeId, u64, NodeId, u64, u64)> = Vec::new();
            while remaining > 0 {
                let (s_node, s_c) = &src_pieces[si];
                let (d_node, d_c) = &dst_pieces[di];
                let n = (s_c.len - s_used).min(d_c.len - d_used).min(remaining);
                segs.push((*s_node, s_c.addr + s_used, *d_node, d_c.addr + d_used, n));
                s_used += n;
                d_used += n;
                remaining -= n;
                if s_used == s_c.len {
                    si += 1;
                    s_used = 0;
                }
                if d_used == d_c.len {
                    di += 1;
                    d_used = 0;
                }
            }
            if reverse {
                segs.reverse();
            }
            for (s_node, s_addr, d_node, d_addr, n) in segs {
                let op = if s_node == d_node { 0u8 } else { 1u8 };
                match self.kcall(
                    ctx,
                    s_node,
                    FN_MEMCPY,
                    Enc::new()
                        .u8(op)
                        .u64(s_addr)
                        .u64(n)
                        .u32(d_node as u32)
                        .u64(d_addr)
                        .done(),
                ) {
                    Ok(_) => {}
                    Err(LiteError::Relocated) => continue 'attempt,
                    Err(e) => {
                        self.exit(ctx);
                        return Err(e);
                    }
                }
            }
            result = Ok(());
            break;
        }
        self.exit(ctx);
        result
    }

    /// LT_memmove: memcpy with memmove semantics for overlapping ranges
    /// inside one LMR. Each FN_MEMCPY call buffers its whole subrange
    /// before writing, so a single segment can never tear itself; the
    /// overlap hazard is *between* segments — a later segment reading
    /// source bytes an earlier segment already overwrote. Copying
    /// ascending is safe when the destination sits below the source;
    /// descending when it sits above (exactly `memmove`'s rule).
    pub fn lt_memmove(
        &mut self,
        ctx: &mut Ctx,
        src_lh: Lh,
        src_off: u64,
        dst_lh: Lh,
        dst_off: u64,
        len: usize,
    ) -> LiteResult<()> {
        let same_lmr = {
            let src_entry = self.kernel.lookup_lh(self.pid, src_lh)?;
            let dst_entry = self.kernel.lookup_lh(self.pid, dst_lh)?;
            src_entry.id == dst_entry.id
        };
        let overlaps = same_lmr && src_off < dst_off + len as u64 && dst_off < src_off + len as u64;
        let reverse = overlaps && dst_off > src_off;
        self.copy_ranges(ctx, src_lh, src_off, dst_lh, dst_off, len, reverse)
    }

    // ------------------------------------------------------------------
    // RPC / messaging
    // ------------------------------------------------------------------

    /// LT_regRPC: binds `func` (≥ [`USER_FUNC_MIN`]) on this node.
    pub fn register_rpc(&self, func: u8) -> LiteResult<()> {
        self.kernel.register_rpc(func)
    }

    /// LT_RPC: calls `func` on `server`; returns the reply.
    pub fn lt_rpc(
        &mut self,
        ctx: &mut Ctx,
        server: NodeId,
        func: u8,
        input: &[u8],
        max_reply: usize,
    ) -> LiteResult<Vec<u8>> {
        if func < USER_FUNC_MIN {
            return Err(LiteError::ReservedFunc { func });
        }
        self.enter(ctx);
        let out = self.call_raw(ctx, server, func, input, max_reply, false)?;
        self.exit(ctx);
        Ok(out)
    }

    /// LT_recvRPC: receives the next call for `func`. The payload move
    /// out of the ring is the single memory move of §5.2.
    pub fn lt_recv_rpc(&mut self, ctx: &mut Ctx, func: u8) -> LiteResult<RpcCall> {
        self.enter(ctx);
        let timeout = self.kernel.config.op_timeout;
        let inc = self.kernel.pop_rpc(ctx, func, timeout)?;
        let call = self.finish_recv(ctx, inc)?;
        self.exit(ctx);
        Ok(call)
    }

    fn finish_recv(&mut self, ctx: &mut Ctx, inc: crate::kernel::Incoming) -> LiteResult<RpcCall> {
        let client = inc.hdr.src_node as NodeId;
        let input = self.kernel.read_ring_payload(client, &inc)?;
        ctx.work(self.kernel.fabric().cost().memcpy_time(input.len() as u64));
        ctx.work(self.kernel.config.rpc_meta_ns);
        // For remote two-way calls with batching on, defer the
        // ring-release head update: the reply path chains it with the
        // reply into one doorbell batch (one post for §5.1 steps e+f).
        let defer =
            self.kernel.config.batch_posting && inc.hdr.slot != 0 && client != self.kernel.node();
        let pending_head = if defer {
            self.kernel.release_ring_op(client, &inc)
        } else {
            self.kernel.release_ring(ctx, client, &inc)?;
            None
        };
        Ok(RpcCall {
            input,
            src_node: client,
            src_pid: inc.hdr.src_pid,
            route: ReplyRoute::of_hdr(&inc.hdr),
            pending_head: Mutex::new(pending_head),
        })
    }

    /// Non-blocking LT_recvRPC: returns `Ok(None)` when no call is
    /// queued. Lets servers interleave RPC service with other work.
    pub fn lt_try_recv_rpc(&mut self, ctx: &mut Ctx, func: u8) -> LiteResult<Option<RpcCall>> {
        self.enter(ctx);
        let inc = self.kernel.try_pop_rpc(ctx, func)?;
        let out = match inc {
            Some(inc) => Some(self.finish_recv(ctx, inc)?),
            None => None,
        };
        self.exit(ctx);
        Ok(out)
    }

    /// LT_replyRPC: sends the return value for `call`.
    pub fn lt_reply_rpc(&mut self, ctx: &mut Ctx, call: &RpcCall, output: &[u8]) -> LiteResult<()> {
        self.enter(ctx);
        ctx.work(self.kernel.config.rpc_meta_ns);
        let staged = self.stage(output)?;
        let chunks = [Chunk {
            addr: staged,
            len: output.len() as u64,
        }];
        let head = call.pending_head.lock().take();
        self.kernel
            .send_reply_with(ctx, self.prio, call.route, &chunks, output.len(), head)?;
        self.exit(ctx);
        Ok(())
    }

    /// The combined reply-and-receive of §5.2 (one crossing for both).
    pub fn lt_reply_recv(
        &mut self,
        ctx: &mut Ctx,
        call: &RpcCall,
        output: &[u8],
        func: u8,
    ) -> LiteResult<RpcCall> {
        self.enter(ctx);
        ctx.work(self.kernel.config.rpc_meta_ns);
        let staged = self.stage(output)?;
        let chunks = [Chunk {
            addr: staged,
            len: output.len() as u64,
        }];
        let head = call.pending_head.lock().take();
        self.kernel
            .send_reply_with(ctx, self.prio, call.route, &chunks, output.len(), head)?;
        let timeout = self.kernel.config.op_timeout;
        let inc = self.kernel.pop_rpc(ctx, func, timeout)?;
        let next = self.finish_recv(ctx, inc)?;
        self.exit(ctx);
        Ok(next)
    }

    /// LT_send: one-way message to `node` (received via
    /// [`LiteHandle::lt_recv_msg`]).
    pub fn lt_send(&mut self, ctx: &mut Ctx, node: NodeId, data: &[u8]) -> LiteResult<()> {
        self.enter(ctx);
        self.call_raw(ctx, node, FN_MSG, data, 0, true)?;
        self.exit(ctx);
        Ok(())
    }

    /// Receives the next message sent to this node with LT_send.
    pub fn lt_recv_msg(&mut self, ctx: &mut Ctx) -> LiteResult<(NodeId, Vec<u8>)> {
        self.enter(ctx);
        let timeout = self.kernel.config.op_timeout;
        let inc = self.kernel.pop_rpc(ctx, FN_MSG, timeout)?;
        let call = self.finish_recv(ctx, inc)?;
        self.exit(ctx);
        Ok((call.src_node, call.input))
    }

    /// Multicast RPC (§8.4): issues the same call to several servers
    /// concurrently and gathers every reply.
    ///
    /// All-or-nothing view of [`LiteHandle::lt_multicast_rpc_partial`]:
    /// if any destination fails, the first error is returned and the
    /// successful replies are discarded. Replication layers that must
    /// stay available when one destination is down want the partial
    /// variant instead.
    pub fn lt_multicast_rpc(
        &mut self,
        ctx: &mut Ctx,
        servers: &[NodeId],
        func: u8,
        input: &[u8],
        max_reply: usize,
    ) -> LiteResult<Vec<Vec<u8>>> {
        let results = self.lt_multicast_rpc_partial(ctx, servers, func, input, max_reply)?;
        let mut outs = Vec::with_capacity(results.len());
        let mut first_err = None;
        for r in results {
            match r {
                Ok(reply) => outs.push(reply),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(outs),
        }
    }

    /// Multicast RPC with per-destination outcomes, in `servers` order.
    ///
    /// The outer `Err` covers only call-wide preconditions (reserved
    /// func, staging/reply-scratch growth); everything per-destination —
    /// ring reservation, posting, the reply wait — lands in that
    /// destination's slot of the returned vector, and a failure towards
    /// one server never blocks the posts to (or discards the replies
    /// from) the others. Every transient resource (completion slots,
    /// header staging cells) is released on every path; a mid-fan-out
    /// error must not leak the resources of the destinations already
    /// posted. Reply cells come from a persistent per-handle scratch
    /// region, so a straggler reply arriving after a slot timeout can
    /// never land in allocator memory that was reused by someone else.
    pub fn lt_multicast_rpc_partial(
        &mut self,
        ctx: &mut Ctx,
        servers: &[NodeId],
        func: u8,
        input: &[u8],
        max_reply: usize,
    ) -> LiteResult<Vec<LiteResult<Vec<u8>>>> {
        if func < USER_FUNC_MIN {
            return Err(LiteError::ReservedFunc { func });
        }
        self.enter(ctx);
        let cfg = self.kernel.config.clone();
        ctx.work(cfg.rpc_meta_ns);
        // Stage input once; carve one reply cell per destination out of
        // the persistent multicast scratch.
        let cell = max_reply.max(1);
        let prep = (|| {
            let staged = self.stage(input)?;
            if self.mcast_reply.is_none() {
                self.mcast_reply = Some(Scratch {
                    addr: self.kernel.alloc.lock().alloc(INIT_SCRATCH as u64)?,
                    cap: INIT_SCRATCH,
                });
            }
            let scratch = self.mcast_reply.as_mut().expect("just initialized");
            Self::ensure(&self.kernel, scratch, cell.saturating_mul(servers.len()))?;
            Ok((staged, scratch.addr))
        })();
        let (staged, reply_base) = match prep {
            Ok(v) => v,
            Err(e) => {
                self.exit(ctx);
                return Err(e);
            }
        };
        let total = HEADER_BYTES as u64 + input.len() as u64;
        // Fan-out: per destination, a posted completion slot or the
        // error that stopped it. Failed destinations keep their entry so
        // the gather below stays index-aligned with `servers`.
        let mut pending = Vec::with_capacity(servers.len());
        for (i, &server) in servers.iter().enumerate() {
            let raddr = reply_base + (i * cell) as u64;
            let r = match self.kernel.reserve_ring(ctx, server, total) {
                Ok(r) => r,
                Err(e) => {
                    pending.push(Err(e));
                    continue;
                }
            };
            let (slot_id, slot) = self.kernel.alloc_slot();
            let hdr = MsgHeader {
                func,
                slot: slot_id,
                len: input.len() as u32,
                reply_addr: raddr,
                reply_max: max_reply as u32,
                src_node: self.kernel.node() as u32,
                src_pid: self.pid,
                skip: r.skip as u32,
            };
            // Header goes through a tiny transient staging cell so the
            // shared input staging stays untouched.
            let hdr_addr = match self.kernel.alloc.lock().alloc(HEADER_BYTES as u64) {
                Ok(a) => a,
                Err(e) => {
                    self.kernel.free_slot(slot_id);
                    pending.push(Err(LiteError::from(e)));
                    continue;
                }
            };
            let post = self
                .kernel
                .fabric()
                .mem(self.kernel.node())
                .write(hdr_addr, &hdr.encode())
                .map_err(LiteError::from)
                .and_then(|()| {
                    let chunks = [
                        Chunk {
                            addr: hdr_addr,
                            len: HEADER_BYTES as u64,
                        },
                        Chunk {
                            addr: staged,
                            len: input.len() as u64,
                        },
                    ];
                    let dst = self.kernel.ring_remote_addr(server, r.offset)?;
                    let imm = Imm::Request {
                        granule: (r.offset / crate::wire::RING_GRANULE) as u32,
                    };
                    self.kernel.post_write_imm(
                        ctx,
                        self.prio,
                        server,
                        dst,
                        &chunks,
                        total as usize,
                        imm,
                    )
                });
            if self.kernel.alloc.lock().free(hdr_addr).is_err() {
                self.kernel.note_cleanup_failure(server, ctx.now());
            }
            match post {
                Ok(_) => pending.push(Ok((slot_id, slot))),
                Err(e) => {
                    self.kernel.free_slot(slot_id);
                    pending.push(Err(e));
                }
            }
        }
        // Gather replies; every posted slot is waited on and freed
        // whatever its outcome.
        let mut results = Vec::with_capacity(pending.len());
        for (i, posted) in pending.into_iter().enumerate() {
            let result = match posted {
                Ok((slot_id, slot)) => {
                    let waited = slot.wait(ctx, &cfg, cfg.op_timeout);
                    self.kernel.free_slot(slot_id);
                    match waited {
                        Ok(r) if r.ok => {
                            let mut buf = vec![0u8; (r.len as usize).min(cell)];
                            self.unstage(reply_base + (i * cell) as u64, &mut buf)
                                .map(|()| buf)
                        }
                        Ok(_) => Err(LiteError::UnknownRpc { func }),
                        Err(e) => Err(e),
                    }
                }
                Err(e) => Err(e),
            };
            results.push(result);
        }
        self.exit(ctx);
        Ok(results)
    }

    // ------------------------------------------------------------------
    // Synchronization (§7.2)
    // ------------------------------------------------------------------

    /// Creates a distributed lock owned by this node.
    pub fn lt_create_lock(&mut self, ctx: &mut Ctx) -> LiteResult<LockId> {
        self.enter(ctx);
        let (addr, _idx) = self.kernel.alloc_lock_cell()?;
        self.exit(ctx);
        Ok(LockId {
            node: self.kernel.node(),
            addr,
        })
    }

    /// LT_lock: fetch-add fast path; FIFO enqueue at the owner otherwise.
    ///
    /// Fault behavior: an `Err` means this handle does **not** hold the
    /// lock and the lock word has been restored (unwound) whenever the
    /// owner was reachable; retrying `lt_lock` is always safe. The one
    /// unrecoverable case — the owner unreachable with our enqueue fate
    /// unknown — is counted in [`crate::KernelStats::sync_leaks`].
    pub fn lt_lock(&mut self, ctx: &mut Ctx, lock: LockId) -> LiteResult<()> {
        self.enter(ctx);
        let start = ctx.now();
        let result = self.lock_inner(ctx, lock);
        let end = ctx.now();
        self.record_hist(
            crate::verify::Key::Lock {
                node: lock.node,
                addr: lock.addr,
            },
            crate::verify::OpKind::Lock,
            0,
            result.is_ok(),
            start,
            end,
        );
        if result.is_ok() {
            self.span(OpClass::Lock, lock.node, start, end);
        }
        self.exit(ctx);
        result
    }

    fn lock_inner(&mut self, ctx: &mut Ctx, lock: LockId) -> LiteResult<()> {
        let old = self
            .kernel
            .fetch_add(ctx, self.prio, lock.node, lock.addr, 1)?;
        if old == 0 {
            return Ok(());
        }
        // Contended: wait in the owner's FIFO queue (reply == grant).
        // The token names this enqueue attempt; on failure it lets the
        // abort ask the owner what actually happened.
        let token = self.kernel.next_sync_token();
        match self.kcall(
            ctx,
            lock.node,
            FN_LOCK,
            Enc::new().u8(1).u64(lock.addr).u64(token).done(),
        ) {
            Ok(_) => Ok(()),
            Err(e) => {
                // The enqueue's fate is unknown: the request or the
                // grant may have been dropped, or we may merely have
                // timed out while still queued. The per-pair ring is
                // FIFO and drops are terminal, so by the time the abort
                // runs the enqueue either ran or never will.
                match self.lock_abort(ctx, lock, token) {
                    // The grant won the race — we hold the lock.
                    Ok(1) => Ok(()),
                    // Dequeued (0) or never arrived (2): we don't hold
                    // it; roll our fetch_add back so the word stays
                    // consistent.
                    Ok(_) => {
                        self.unwind_lock_word(ctx, lock);
                        Err(e)
                    }
                    // Owner unreachable: our queue entry (if any) is
                    // stranded and the word may stay elevated.
                    Err(_) => {
                        self.kernel.note_sync_leak(lock.node, ctx.now());
                        Err(e)
                    }
                }
            }
        }
    }

    /// Asks the lock owner to cancel enqueue `token`; returns the
    /// owner's answer (0 = dequeued, 1 = already granted, 2 = never
    /// arrived). The owner memoizes the answer per token, so the
    /// bounded retries here are idempotent.
    fn lock_abort(&mut self, ctx: &mut Ctx, lock: LockId, token: u64) -> LiteResult<u8> {
        let payload = Enc::new().u8(3).u64(lock.addr).u64(token).done();
        let mut last = LiteError::Timeout;
        for _ in 0..3 {
            match self.kcall(ctx, lock.node, FN_LOCK, payload.clone()) {
                Ok(resp) => return resp.first().copied().ok_or(LiteError::Remote(0xFB)),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Best-effort rollback of a failed acquire's `fetch_add`.
    fn unwind_lock_word(&mut self, ctx: &mut Ctx, lock: LockId) {
        match self
            .kernel
            .fetch_add(ctx, self.prio, lock.node, lock.addr, u64::MAX)
        {
            Ok(_) => self.kernel.note_lock_unwind(),
            Err(_) => self.kernel.note_sync_leak(lock.node, ctx.now()),
        }
    }

    /// LT_unlock: fetch-sub; hands the lock to the next waiter if any.
    ///
    /// Fault behavior: the release carries a token the owner dedups on,
    /// so the handover is retried internally without ever granting two
    /// waiters. An `Err` means the release state is indeterminate — the
    /// lock is poisoned and the caller must **not** call `lt_unlock`
    /// again (the internal retries are already exhausted; another call
    /// would decrement the lock word a second time). Counted in
    /// [`crate::KernelStats::sync_leaks`].
    pub fn lt_unlock(&mut self, ctx: &mut Ctx, lock: LockId) -> LiteResult<()> {
        self.enter(ctx);
        let start = ctx.now();
        let result = self.unlock_inner(ctx, lock);
        self.record_hist(
            crate::verify::Key::Lock {
                node: lock.node,
                addr: lock.addr,
            },
            crate::verify::OpKind::Unlock,
            0,
            result.is_ok(),
            start,
            ctx.now(),
        );
        self.exit(ctx);
        result
    }

    fn unlock_inner(&mut self, ctx: &mut Ctx, lock: LockId) -> LiteResult<()> {
        let old = self
            .kernel
            .fetch_add(ctx, self.prio, lock.node, lock.addr, u64::MAX)?; // -1
        if old == 0 {
            // Unlock of a free lock (app bug or a forbidden retry after
            // a poisoned unlock): restore the word — leaving it at
            // `u64::MAX` would let every subsequent acquire fast-path.
            let _ = self
                .kernel
                .fetch_add(ctx, self.prio, lock.node, lock.addr, 1);
            return Err(LiteError::Internal("unlock of a free lock"));
        }
        if old == 1 {
            return Ok(()); // no waiters
        }
        // Another increment is outstanding: hand the lock over. The
        // release token is generated once and reused verbatim across
        // retries — the owner's dedup on consumed tokens is what makes
        // the retries safe (a release whose ack was lost cannot grant a
        // second waiter). "No waiter yet" (sub-code 3) means the
        // winner's enqueue is still in flight *or* its increment was
        // unwound by an abort; re-reading the word tells the two apart
        // (0 = nothing outstanding, the lock is simply free).
        let token = self.kernel.next_sync_token();
        let payload = Enc::new().u8(2).u64(lock.addr).u64(token).done();
        // Each failed kcall already burns up to one op_timeout, so the
        // attempt budget (not the deadline) bounds the error path; the
        // deadline bounds the fast "no waiter yet" polling loop.
        let deadline = std::time::Instant::now() + self.kernel.config.op_timeout * 4;
        let mut errs = 0;
        let mut last = None;
        loop {
            match self.kcall(ctx, lock.node, FN_LOCK, payload.clone()) {
                Ok(resp) if resp.first() == Some(&3) => {
                    match self
                        .kernel
                        .fetch_add(ctx, self.prio, lock.node, lock.addr, 0)
                    {
                        Ok(0) => return Ok(()),
                        Ok(_) => {}
                        Err(e) => last = Some(e),
                    }
                }
                Ok(_) => return Ok(()),
                Err(e) => {
                    errs += 1;
                    last = Some(e);
                    if errs >= 3 {
                        break;
                    }
                }
            }
            if std::time::Instant::now() >= deadline {
                break;
            }
            // Back off before re-asking: the in-flight enqueue (or the
            // aborting waiter's unwind) needs time to land.
            ctx.work(2_000);
            std::thread::yield_now();
        }
        // The word is already decremented but the handover may or may
        // not have been processed: indeterminate — poisoned.
        self.kernel.note_sync_leak(lock.node, ctx.now());
        Err(last.unwrap_or(LiteError::Timeout))
    }

    /// LT_barrier: blocks until `count` participants arrive at barrier
    /// `id` (coordinated by the manager node).
    pub fn lt_barrier(&mut self, ctx: &mut Ctx, id: u64, count: u32) -> LiteResult<()> {
        self.enter(ctx);
        let start = ctx.now();
        let result = self
            .kcall(
                ctx,
                MANAGER_NODE,
                FN_BARRIER,
                Enc::new().u64(id).u32(count).done(),
            )
            .map(|_| ());
        let end = ctx.now();
        self.record_hist(
            crate::verify::Key::Barrier { id },
            crate::verify::OpKind::Barrier { count },
            0,
            result.is_ok(),
            start,
            end,
        );
        if result.is_ok() {
            self.span(OpClass::Barrier, MANAGER_NODE, start, end);
        }
        self.exit(ctx);
        result
    }

    /// LT_fetch-add on a u64 inside an LMR; returns the previous value.
    pub fn lt_fetch_add(
        &mut self,
        ctx: &mut Ctx,
        lh: Lh,
        offset: u64,
        delta: u64,
    ) -> LiteResult<u64> {
        self.enter(ctx);
        let mut result = Err(LiteError::Relocated);
        for attempt in 0..3 {
            if attempt > 0 {
                if let Err(e) = self.refresh_lh(ctx, lh) {
                    self.exit(ctx);
                    return Err(e);
                }
            }
            let entry = self.kernel.lookup_lh(self.pid, lh)?;
            let pieces = match entry.check(offset, 8, Perm::RW) {
                Ok(p) => p,
                Err(LiteError::Relocated) => continue,
                Err(e) => {
                    self.exit(ctx);
                    return Err(e);
                }
            };
            // The pin is taken before the atomic posts, so a retry after
            // Relocated never re-applies a landed fetch-add — and the
            // target address is only read out of the piece list *after*
            // the pin has verified that list against the live mapping.
            // (Extracting it first reads from a snapshot a concurrent
            // eviction may already have invalidated; the pin would still
            // catch it, but only because nothing was cached before it.)
            let pin = match self.pin_pieces(ctx, &entry, offset, &pieces) {
                Ok(g) => g,
                Err(LiteError::Relocated) => continue,
                Err(e) => {
                    self.exit(ctx);
                    return Err(e);
                }
            };
            let (node, c) = match single_piece(offset, &pieces) {
                Ok(p) => p,
                Err(e) => {
                    self.exit(ctx);
                    return Err(e);
                }
            };
            result = self.kernel.fetch_add(ctx, self.prio, node, c.addr, delta);
            // The guard must outlive the post: eviction drains pins, so
            // the chunk cannot move (or be freed) mid-atomic.
            drop(pin);
            break;
        }
        self.exit(ctx);
        result
    }

    /// LT_test-set on a u64 inside an LMR: compare-and-swap
    /// `expect -> new`; returns the previous value (acquired iff it
    /// equals `expect`). A convenience alias of [`Self::lt_cmp_swap`],
    /// kept for the paper's API surface (Table 1).
    pub fn lt_test_set(
        &mut self,
        ctx: &mut Ctx,
        lh: Lh,
        offset: u64,
        expect: u64,
        new: u64,
    ) -> LiteResult<u64> {
        self.lt_cmp_swap(ctx, lh, offset, expect, new)
    }

    /// Compare-and-swap on a u64 inside an LMR: atomically replaces the
    /// word with `new` iff it currently equals `expect`; returns the
    /// previous value (the CAS won iff it equals `expect`). This is the
    /// primitive OCC commit protocols build on (lock-word acquire and
    /// version-check release), exposed with the same Relocated-healing
    /// and pin discipline as [`Self::lt_fetch_add`]; the datapath records
    /// the CAS in the verification history so `lite::verify` sees lock
    /// traffic.
    pub fn lt_cmp_swap(
        &mut self,
        ctx: &mut Ctx,
        lh: Lh,
        offset: u64,
        expect: u64,
        new: u64,
    ) -> LiteResult<u64> {
        self.enter(ctx);
        let mut result = Err(LiteError::Relocated);
        for attempt in 0..3 {
            if attempt > 0 {
                if let Err(e) = self.refresh_lh(ctx, lh) {
                    self.exit(ctx);
                    return Err(e);
                }
            }
            let entry = self.kernel.lookup_lh(self.pid, lh)?;
            let pieces = match entry.check(offset, 8, Perm::RW) {
                Ok(p) => p,
                Err(LiteError::Relocated) => continue,
                Err(e) => {
                    self.exit(ctx);
                    return Err(e);
                }
            };
            // Same discipline as `lt_fetch_add`: pin first, then read
            // the target address out of the now-verified piece list, and
            // hold the guard across the post.
            let pin = match self.pin_pieces(ctx, &entry, offset, &pieces) {
                Ok(g) => g,
                Err(LiteError::Relocated) => continue,
                Err(e) => {
                    self.exit(ctx);
                    return Err(e);
                }
            };
            let (node, c) = match single_piece(offset, &pieces) {
                Ok(p) => p,
                Err(e) => {
                    self.exit(ctx);
                    return Err(e);
                }
            };
            result = self
                .kernel
                .cmp_swap(ctx, self.prio, node, c.addr, expect, new);
            drop(pin);
            break;
        }
        self.exit(ctx);
        result
    }
}

impl Drop for LiteHandle {
    fn drop(&mut self) {
        let node = self.kernel.node();
        let mut failures = 0;
        {
            let mut a = self.kernel.alloc.lock();
            let mcast = self.mcast_reply.as_ref().map(|s| s.addr);
            for addr in [self.staging.addr, self.reply.addr]
                .into_iter()
                .chain(mcast)
            {
                if a.free(addr).is_err() {
                    failures += 1;
                }
            }
        }
        // Count leaked scratch regions (outside the allocator lock —
        // note_cleanup_failure walks the observability surface). No Ctx
        // in Drop, so the trace stamp is 0.
        for _ in 0..failures {
            self.kernel.note_cleanup_failure(node, 0);
        }
    }
}

/// Atomics operate on one 8-byte word, which must therefore live inside
/// a single chunk of the LMR; `check` has already bounds/permission
/// checked the range, so more than one piece means the word straddles a
/// chunk boundary.
fn single_piece(offset: u64, pieces: &[(NodeId, Chunk)]) -> LiteResult<(NodeId, &Chunk)> {
    if pieces.len() != 1 {
        return Err(LiteError::StraddlesChunk { offset, len: 8 });
    }
    Ok((pieces[0].0, &pieces[0].1))
}

fn map_status(code: u8) -> LiteError {
    match code {
        1 => LiteError::Remote(1),
        2 => LiteError::NameNotFound {
            name: String::new(),
        },
        3 => LiteError::NotMaster,
        4 => LiteError::Relocated,
        other => LiteError::Remote(other),
    }
}

fn named_err(e: LiteError, name: &str) -> LiteError {
    match e {
        LiteError::NameNotFound { .. } => LiteError::NameNotFound {
            name: name.to_string(),
        },
        other => other,
    }
}
