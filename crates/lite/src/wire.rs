//! LITE's RPC wire format: the ring-message header and the 32-bit IMM
//! encoding (§5.1: "LITE uses the IMM value to include the RPC function ID
//! and the offset where the data starts in the LMR").

use crate::error::{LiteError, LiteResult};

/// Ring messages are rounded up to this granule; IMM offsets are in
/// granules, so 30 bits of offset cover 64 GB of ring.
pub const RING_GRANULE: u64 = 64;

/// Serialized size of [`MsgHeader`].
pub const HEADER_BYTES: usize = 40;

/// Magic tag at the start of every ring message.
pub const MAGIC: u32 = 0x4C49_5445; // "LITE"

/// Kind of an immediate value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Imm {
    /// A request landed in the server's ring at `granule * RING_GRANULE`.
    Request {
        /// Ring offset in granules.
        granule: u32,
    },
    /// A reply landed in the buffer registered under `slot`.
    Reply {
        /// The completion slot id.
        slot: u32,
    },
    /// Ring-head update: the peer freed our ring up to
    /// `granule * RING_GRANULE`.
    Head {
        /// New head position in granules (truncated to 30 bits).
        granule: u32,
    },
    /// The RPC failed remotely (no handler bound, bad function id, ...).
    ReplyErr {
        /// The completion slot id.
        slot: u32,
    },
}

const KIND_REQUEST: u32 = 0;
const KIND_REPLY: u32 = 1;
const KIND_HEAD: u32 = 2;
const KIND_REPLY_ERR: u32 = 3;
const PAYLOAD_MASK: u32 = (1 << 30) - 1;

impl Imm {
    /// Encodes into the 32-bit immediate.
    pub fn encode(self) -> u32 {
        match self {
            Imm::Request { granule } => (KIND_REQUEST << 30) | (granule & PAYLOAD_MASK),
            Imm::Reply { slot } => (KIND_REPLY << 30) | (slot & PAYLOAD_MASK),
            Imm::Head { granule } => (KIND_HEAD << 30) | (granule & PAYLOAD_MASK),
            Imm::ReplyErr { slot } => (KIND_REPLY_ERR << 30) | (slot & PAYLOAD_MASK),
        }
    }

    /// Decodes from the 32-bit immediate (total: every value is valid).
    pub fn decode(v: u32) -> Imm {
        let payload = v & PAYLOAD_MASK;
        match v >> 30 {
            KIND_REQUEST => Imm::Request { granule: payload },
            KIND_REPLY => Imm::Reply { slot: payload },
            KIND_HEAD => Imm::Head { granule: payload },
            _ => Imm::ReplyErr { slot: payload },
        }
    }
}

/// Header written at the front of every ring message.
///
/// Carries what the IMM cannot: payload length, the *reply route* (the
/// physical address at the client where the server should RDMA-write the
/// return value — §5.1 step 2), and the caller's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgHeader {
    /// RPC function id (0..16 reserved for the kernel).
    pub func: u8,
    /// Completion slot at the client; 0 for one-way messages.
    pub slot: u32,
    /// Payload length in bytes.
    pub len: u32,
    /// Physical address of the client's reply buffer (global-MR address).
    pub reply_addr: u64,
    /// Capacity of the reply buffer.
    pub reply_max: u32,
    /// Client node id.
    pub src_node: u32,
    /// Client process id.
    pub src_pid: u32,
    /// Bytes the client skipped at the ring wrap just before this message
    /// (lets the server reclaim the skipped span).
    pub skip: u32,
}

impl MsgHeader {
    /// Serializes to exactly [`HEADER_BYTES`] bytes.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut b = [0u8; HEADER_BYTES];
        b[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        b[4] = self.func;
        b[8..12].copy_from_slice(&self.slot.to_le_bytes());
        b[12..16].copy_from_slice(&self.len.to_le_bytes());
        b[16..24].copy_from_slice(&self.reply_addr.to_le_bytes());
        b[24..28].copy_from_slice(&self.reply_max.to_le_bytes());
        b[28..32].copy_from_slice(&self.src_node.to_le_bytes());
        b[32..36].copy_from_slice(&self.src_pid.to_le_bytes());
        b[36..40].copy_from_slice(&self.skip.to_le_bytes());
        b
    }

    /// Deserializes, verifying the magic.
    pub fn decode(b: &[u8]) -> LiteResult<MsgHeader> {
        if b.len() < HEADER_BYTES {
            return Err(LiteError::Remote(0xFE));
        }
        let magic = u32::from_le_bytes(b[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(LiteError::Remote(0xFD));
        }
        Ok(MsgHeader {
            func: b[4],
            slot: u32::from_le_bytes(b[8..12].try_into().expect("4")),
            len: u32::from_le_bytes(b[12..16].try_into().expect("4")),
            reply_addr: u64::from_le_bytes(b[16..24].try_into().expect("8")),
            reply_max: u32::from_le_bytes(b[24..28].try_into().expect("4")),
            src_node: u32::from_le_bytes(b[28..32].try_into().expect("4")),
            src_pid: u32::from_le_bytes(b[32..36].try_into().expect("4")),
            skip: u32::from_le_bytes(b[36..40].try_into().expect("4")),
        })
    }
}

/// Rounds a ring message length up to the granule.
pub fn round_granule(len: u64) -> u64 {
    len.div_ceil(RING_GRANULE) * RING_GRANULE
}

// ---------------------------------------------------------------------
// Little-endian payload codec for kernel-service messages.
// ---------------------------------------------------------------------

/// Incremental little-endian writer for kernel-service payloads.
///
/// Builder-style: each method consumes and returns `self`, so payloads
/// read as one chained expression ending in [`Enc::done`].
#[derive(Default)]
pub struct Enc(pub Vec<u8>);

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc(Vec::new())
    }
    /// Appends one byte.
    pub fn u8(mut self, v: u8) -> Self {
        self.0.push(v);
        self
    }
    /// Appends a little-endian u32.
    pub fn u32(mut self, v: u32) -> Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    /// Appends a little-endian u64.
    pub fn u64(mut self, v: u64) -> Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    /// Appends a length-prefixed byte string.
    pub fn bytes(mut self, v: &[u8]) -> Self {
        self = self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
        self
    }
    /// Finishes, returning the encoded payload.
    pub fn done(self) -> Vec<u8> {
        self.0
    }
}

/// Incremental reader matching [`Enc`]. Truncated input surfaces as
/// `LiteError::Remote(0xFC)` — the same error a remote decoder raises.
pub struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `b`.
    pub fn new(b: &'a [u8]) -> Self {
        Dec { b, pos: 0 }
    }
    fn take(&mut self, n: usize) -> LiteResult<&'a [u8]> {
        if self.pos + n > self.b.len() {
            return Err(LiteError::Remote(0xFC));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    /// Reads one byte.
    pub fn u8(&mut self) -> LiteResult<u8> {
        Ok(self.take(1)?[0])
    }
    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> LiteResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> LiteResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> LiteResult<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imm_roundtrip() {
        for imm in [
            Imm::Request { granule: 0 },
            Imm::Request { granule: 123_456 },
            Imm::Reply {
                slot: (1 << 30) - 1,
            },
            Imm::Head { granule: 42 },
            Imm::ReplyErr { slot: 7 },
        ] {
            assert_eq!(Imm::decode(imm.encode()), imm);
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = MsgHeader {
            func: 200,
            slot: 0x3FFF_FFFF,
            len: 4096,
            reply_addr: 0xDEAD_BEEF_0000,
            reply_max: 1 << 20,
            src_node: 7,
            src_pid: 99,
            skip: 64,
        };
        let enc = h.encode();
        assert_eq!(MsgHeader::decode(&enc).unwrap(), h);
        // Corrupt magic is rejected.
        let mut bad = enc;
        bad[0] ^= 1;
        assert!(MsgHeader::decode(&bad).is_err());
        assert!(MsgHeader::decode(&enc[..10]).is_err());
    }

    #[test]
    fn granule_rounding() {
        assert_eq!(round_granule(1), 64);
        assert_eq!(round_granule(64), 64);
        assert_eq!(round_granule(65), 128);
        assert_eq!(round_granule(0), 0);
    }

    #[test]
    fn codec_roundtrip() {
        let v = Enc::new()
            .u8(7)
            .u32(0xAABBCCDD)
            .u64(0x1122334455667788)
            .bytes(b"hello")
            .done();
        let mut d = Dec::new(&v);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xAABBCCDD);
        assert_eq!(d.u64().unwrap(), 0x1122334455667788);
        assert_eq!(d.bytes().unwrap(), b"hello");
        assert!(d.u8().is_err(), "exhausted");
    }
}
