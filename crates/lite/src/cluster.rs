//! Cluster construction: fabric, kernels, shared QP mesh, RPC rings.

use std::sync::{Arc, Weak};

use rnic::{IbConfig, IbFabric, NodeId, QpType};

use crate::api::LiteHandle;
use crate::config::LiteConfig;
use crate::error::{LiteError, LiteResult};
use crate::kernel::LiteKernel;
use crate::qos::{QosConfig, QosMode};
use crate::ring::{ClientRing, ServerRing};

/// A running LITE cluster: one fabric, one kernel per node.
pub struct LiteCluster {
    fabric: Arc<IbFabric>,
    kernels: Vec<Arc<LiteKernel>>,
}

impl LiteCluster {
    /// Starts a cluster of `nodes` nodes with default configuration.
    pub fn start(nodes: usize) -> LiteResult<Arc<Self>> {
        Self::start_with(
            IbConfig::with_nodes(nodes),
            LiteConfig::default(),
            QosConfig::default(),
        )
    }

    /// Starts a cluster with explicit fabric / LITE / QoS configuration.
    pub fn start_with(ib: IbConfig, config: LiteConfig, qos: QosConfig) -> LiteResult<Arc<Self>> {
        let fabric = IbFabric::new(ib);
        let n = fabric.num_nodes();
        let kernels: Vec<Arc<LiteKernel>> = (0..n)
            .map(|node| {
                LiteKernel::new(node, config.clone(), qos.clone(), Arc::clone(&fabric))
                    .map(Arc::new)
            })
            .collect::<LiteResult<_>>()?;

        // Exchange global rkeys and head sinks.
        let rkeys: Vec<u32> = kernels.iter().map(|k| k.global_rkey()).collect();
        let sinks: Vec<u64> = kernels.iter().map(|k| k.head_sink_addr()).collect();

        // Build the shared QP mesh: K RC QPs per unordered pair, attached
        // to each node's shared CQs and shared receive queue (§6.1).
        let mut pools: Vec<Vec<Vec<Arc<rnic::Qp>>>> = (0..n)
            .map(|_| (0..n).map(|_| Vec::new()).collect())
            .collect();
        for a in 0..n {
            for b in (a + 1)..n {
                for _ in 0..config.qp_factor {
                    let (sa, ra, rqa) = kernels[a].shared_queues();
                    let (sb, rb, rqb) = kernels[b].shared_queues();
                    let qa = fabric.nic(a).create_qp_with(QpType::Rc, sa, ra, rqa);
                    let qb = fabric.nic(b).create_qp_with(QpType::Rc, sb, rb, rqb);
                    fabric.connect(&qa, &qb);
                    pools[a][b].push(qa);
                    pools[b][a].push(qb);
                }
            }
        }

        // RPC rings for every ordered pair, including self (loop-back).
        let mut client_rings: Vec<Vec<Option<ClientRing>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut server_rings: Vec<Vec<Option<ServerRing>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for client in 0..n {
            for server in 0..n {
                let base = kernels[server].alloc_ring(client)?;
                let size = config.rpc_ring_bytes;
                server_rings[server][client] = Some(ServerRing::new(base, size)?);
                client_rings[client][server] = Some(ClientRing::new(base, size)?);
            }
        }

        // Hand each kernel its wiring and start its poller. Kernels also
        // learn every peer's QoS state (receiver-side SW-Pri policies).
        let all_qos: Vec<_> = kernels.iter().map(|k| k.qos_arc()).collect();
        let all_mm: Vec<_> = kernels.iter().map(|k| k.mm_arc()).collect();
        for (node, kernel) in kernels.iter().enumerate() {
            kernel.finish_setup(
                std::mem::take(&mut pools[node]),
                std::mem::take(&mut client_rings[node]),
                std::mem::take(&mut server_rings[node]),
                rkeys.clone(),
                sinks.clone(),
                all_qos.clone(),
                all_mm.clone(),
            )?;
        }

        // Install the QP reconnector on every datapath. Re-establishing a
        // broken shared QP touches *both* kernels' pools, so the closure
        // lives here, where both ends are reachable (through weak refs —
        // the kernels outlive the datapaths that hold these closures).
        // One cluster-wide lock serializes repairs; the pool-membership
        // check makes the repair idempotent when both ends of a broken
        // pair race into their retry loops.
        let reconnect_lock = Arc::new(parking_lot::Mutex::new(()));
        for (node, kernel) in kernels.iter().enumerate() {
            let peers: Vec<Weak<LiteKernel>> = kernels.iter().map(Arc::downgrade).collect();
            let fab = Arc::clone(&fabric);
            let lock = Arc::clone(&reconnect_lock);
            let me = node;
            kernel
                .datapath()
                .set_reconnector(Box::new(move |peer, broken| {
                    let _g = lock.lock();
                    let (Some(a), Some(b)) =
                        (peers[me].upgrade(), peers.get(peer).and_then(Weak::upgrade))
                    else {
                        return Err(LiteError::NodeDown { node: peer });
                    };
                    // Already repaired from the other end?
                    if !a.datapath().remove_qp(peer, broken) {
                        return Ok(false);
                    }
                    // Tear down both halves of the broken pair...
                    if let Ok(qp) = fab.nic(me).qp(broken) {
                        if let Ok((_, peer_qp)) = qp.peer() {
                            b.datapath().remove_qp(me, peer_qp);
                            if let Ok(pqp) = fab.nic(peer).qp(peer_qp) {
                                fab.nic(peer).destroy_qp(&pqp);
                            }
                        }
                        fab.nic(me).destroy_qp(&qp);
                    }
                    // ...and wire a fresh one on the same shared queues.
                    let (sa, ra, rqa) = a.shared_queues();
                    let (sb, rb, rqb) = b.shared_queues();
                    let qa = fab.nic(me).create_qp_with(QpType::Rc, sa, ra, rqa);
                    let qb = fab.nic(peer).create_qp_with(QpType::Rc, sb, rb, rqb);
                    fab.connect(&qa, &qb);
                    a.datapath().add_qp(peer, qa);
                    b.datapath().add_qp(me, qb);
                    Ok(true)
                }));
        }

        Ok(Arc::new(LiteCluster { fabric, kernels }))
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kernels.len()
    }

    /// The underlying fabric (for baselines sharing the cluster).
    pub fn fabric(&self) -> &Arc<IbFabric> {
        &self.fabric
    }

    /// The kernel on `node`.
    ///
    /// Panics if `node` is out of range; use [`LiteCluster::try_kernel`]
    /// for a fallible lookup.
    pub fn kernel(&self, node: NodeId) -> &Arc<LiteKernel> {
        self.try_kernel(node).expect("node id within the cluster")
    }

    /// The kernel on `node`, or [`LiteError::NodeDown`] for an id
    /// outside the cluster.
    pub fn try_kernel(&self, node: NodeId) -> LiteResult<&Arc<LiteKernel>> {
        self.kernels.get(node).ok_or(LiteError::NodeDown { node })
    }

    /// The transport-agnostic datapath of `node` — the same op plane the
    /// kernel posts through, exposed for consumers that select backends
    /// via the [`DataPath`](crate::kernel::datapath::DataPath) trait.
    ///
    /// Panics if `node` is out of range.
    pub fn datapath(&self, node: NodeId) -> Arc<dyn crate::kernel::datapath::DataPath> {
        Arc::clone(self.kernel(node).datapath()) as _
    }

    /// Attaches a user-level process on `node` (LT_join).
    pub fn attach(&self, node: NodeId) -> LiteResult<LiteHandle> {
        LiteHandle::new(Arc::clone(self.try_kernel(node)?), true)
    }

    /// Attaches a kernel-level user on `node` (LITE serves kernel
    /// applications too, without syscall crossings — LITE-DSM uses this).
    pub fn attach_kernel(&self, node: NodeId) -> LiteResult<LiteHandle> {
        LiteHandle::new(Arc::clone(self.try_kernel(node)?), false)
    }

    /// Arms history recording for the linearizability checker
    /// ([`crate::verify`]): installs one shared [`HistoryLog`] on every
    /// node and returns it. Arm *before* the first synchronization op —
    /// the checker's register spec assumes recorded locations start
    /// zero-filled. Recording stays on for the cluster's lifetime; a
    /// second call returns a new log only if none was installed (first
    /// install wins on every node).
    ///
    /// [`HistoryLog`]: crate::verify::HistoryLog
    pub fn record_history(&self) -> LiteResult<Arc<crate::verify::HistoryLog>> {
        let log = Arc::new(crate::verify::HistoryLog::new());
        for k in &self.kernels {
            let obs = k
                .observe()
                .ok_or(LiteError::Internal("datapath not initialized"))?;
            obs.install_history(Arc::clone(&log));
        }
        Ok(log)
    }

    /// Switches the QoS mode on every node.
    pub fn set_qos_mode(&self, mode: QosMode) {
        for k in &self.kernels {
            k.qos().set_mode(mode);
        }
    }
}

impl Drop for LiteCluster {
    fn drop(&mut self) {
        for k in &self.kernels {
            k.stop();
        }
        self.fabric.shutdown();
    }
}
