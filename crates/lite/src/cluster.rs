//! Cluster construction: fabric, kernels, and the membership directory.
//!
//! Boot is **incremental**: starting a node creates its kernel, registers
//! its membership record in the [`ClusterDirectory`], and starts its
//! poller — O(1) work per node, O(N) for the cluster. The shared QP mesh
//! and the ordered-pair RPC rings of the old eager bring-up are *not*
//! built here; each pair is wired on first use by the datapath
//! ([`RnicDataPath::ensure_qps`](crate::kernel::datapath::RnicDataPath))
//! and the RPC layer (`ensure_ring`), both under the directory's single
//! connect lock. Set [`LiteConfig::eager_mesh`] to pre-wire every pair at
//! boot (the paper's original setup; useful for latency-floor baselines).
//!
//! Nodes can also join at runtime: [`LiteCluster::start_partial`] boots a
//! prefix of the fabric and [`LiteCluster::join_node`] brings up the rest
//! on demand, which is what makes thousand-node scale-out affordable —
//! see `DESIGN.md` §12 and the `scale` bench.

use std::sync::{Arc, OnceLock};

use rnic::{IbConfig, IbFabric, NodeId};

use crate::api::LiteHandle;
use crate::config::LiteConfig;
use crate::directory::{ClusterDirectory, DirEntry};
use crate::error::{LiteError, LiteResult};
use crate::kernel::LiteKernel;
use crate::qos::{QosConfig, QosMode};

/// A running LITE cluster: one fabric, one kernel per joined node, one
/// membership directory.
pub struct LiteCluster {
    fabric: Arc<IbFabric>,
    config: LiteConfig,
    qos_cfg: QosConfig,
    dir: Arc<ClusterDirectory>,
    /// Write-once kernel slot per fabric node; empty until the node
    /// joins (at boot or via [`LiteCluster::join_node`]).
    nodes: Box<[OnceLock<Arc<LiteKernel>>]>,
    /// History log handed to late joiners so runtime joins see the same
    /// recording state as boot nodes.
    history: OnceLock<Arc<crate::verify::HistoryLog>>,
}

impl LiteCluster {
    /// Starts a cluster of `nodes` nodes with default configuration.
    pub fn start(nodes: usize) -> LiteResult<Arc<Self>> {
        Self::start_with(
            IbConfig::with_nodes(nodes),
            LiteConfig::default(),
            QosConfig::default(),
        )
    }

    /// Starts a cluster with explicit fabric / LITE / QoS configuration.
    /// Every fabric node joins at boot.
    pub fn start_with(ib: IbConfig, config: LiteConfig, qos: QosConfig) -> LiteResult<Arc<Self>> {
        let boot = ib.nodes;
        Self::start_partial(ib, config, qos, boot)
    }

    /// Starts a cluster in which only nodes `0..boot_nodes` join at
    /// boot; the rest of the fabric's capacity stays dark until
    /// [`LiteCluster::join_node`] brings a node up. Boot cost is
    /// O(boot_nodes), independent of fabric capacity.
    pub fn start_partial(
        ib: IbConfig,
        config: LiteConfig,
        qos: QosConfig,
        boot_nodes: usize,
    ) -> LiteResult<Arc<Self>> {
        let fabric = IbFabric::new(ib);
        let capacity = fabric.num_nodes();
        let boot = boot_nodes.min(capacity);
        let cluster = Arc::new(LiteCluster {
            fabric,
            dir: Arc::new(ClusterDirectory::new(capacity)),
            nodes: (0..capacity).map(|_| OnceLock::new()).collect(),
            history: OnceLock::new(),
            config,
            qos_cfg: qos,
        });
        for node in 0..boot {
            cluster.join_node(node)?;
        }
        if cluster.config.eager_mesh {
            cluster.wire_full_mesh(boot)?;
        }
        Ok(cluster)
    }

    /// Brings `node` up at runtime: creates its kernel, registers its
    /// membership record, and starts its poller — all under the
    /// directory's connect lock so concurrent joins and lazy pair wiring
    /// serialize. Idempotent: joining a running node returns its kernel.
    pub fn join_node(&self, node: NodeId) -> LiteResult<Arc<LiteKernel>> {
        let slot = self.nodes.get(node).ok_or(LiteError::NodeDown { node })?;
        if let Some(k) = slot.get() {
            return Ok(Arc::clone(k));
        }
        let kernel = Arc::new(LiteKernel::new(
            node,
            self.config.clone(),
            self.qos_cfg.clone(),
            Arc::clone(&self.fabric),
        )?);
        {
            // Register + finish under one lock hold: a peer that finds
            // the record can rely on the kernel being fully wired,
            // because reaching it (ensure_qps / ensure_ring) takes this
            // same lock.
            let _g = self.dir.lock_connect();
            if let Some(k) = slot.get() {
                return Ok(Arc::clone(k)); // lost a join race — fine
            }
            self.dir.register(
                node,
                DirEntry {
                    kernel: Arc::downgrade(&kernel),
                    rkey: kernel.global_rkey(),
                    head_sink: kernel.head_sink_addr(),
                    qos: kernel.qos_arc(),
                    mm: kernel.mm_arc(),
                },
            );
            kernel.finish_setup(&self.dir)?;
            let _ = slot.set(Arc::clone(&kernel));
        }
        if let Some(log) = self.history.get() {
            if let Some(obs) = kernel.observe() {
                obs.install_history(Arc::clone(log));
            }
        }
        Ok(kernel)
    }

    /// Pre-wires every QP pool and ring pair among nodes `0..n` — the
    /// paper's original eager bring-up, behind
    /// [`LiteConfig::eager_mesh`].
    fn wire_full_mesh(&self, n: usize) -> LiteResult<()> {
        for a in 0..n {
            let k = self.try_kernel(a)?;
            for b in 0..n {
                if a != b {
                    k.datapath().ensure_qps(b)?;
                }
                k.ensure_ring(b)?;
            }
        }
        Ok(())
    }

    /// Nodes joined so far (boot nodes plus runtime joins).
    pub fn num_nodes(&self) -> usize {
        self.dir.joined()
    }

    /// Fabric node capacity (joined or not).
    pub fn capacity(&self) -> usize {
        self.dir.capacity()
    }

    /// The membership directory (boot gauges, join state).
    pub fn directory(&self) -> &Arc<ClusterDirectory> {
        &self.dir
    }

    /// The underlying fabric (for baselines sharing the cluster).
    pub fn fabric(&self) -> &Arc<IbFabric> {
        &self.fabric
    }

    /// The kernel on `node`.
    ///
    /// Panics if `node` has not joined; use [`LiteCluster::try_kernel`]
    /// for a fallible lookup.
    pub fn kernel(&self, node: NodeId) -> &Arc<LiteKernel> {
        self.try_kernel(node).expect("node joined the cluster")
    }

    /// The kernel on `node`, or [`LiteError::NodeDown`] for a node that
    /// has not joined (or an id outside the fabric).
    pub fn try_kernel(&self, node: NodeId) -> LiteResult<&Arc<LiteKernel>> {
        self.nodes
            .get(node)
            .and_then(OnceLock::get)
            .ok_or(LiteError::NodeDown { node })
    }

    /// The transport-agnostic datapath of `node` — the same op plane the
    /// kernel posts through, exposed for consumers that select backends
    /// via the [`DataPath`](crate::kernel::datapath::DataPath) trait.
    ///
    /// Panics if `node` has not joined.
    pub fn datapath(&self, node: NodeId) -> Arc<dyn crate::kernel::datapath::DataPath> {
        Arc::clone(self.kernel(node).datapath()) as _
    }

    /// Attaches a user-level process on `node` (LT_join).
    pub fn attach(&self, node: NodeId) -> LiteResult<LiteHandle> {
        LiteHandle::new(Arc::clone(self.try_kernel(node)?), true)
    }

    /// Attaches a kernel-level user on `node` (LITE serves kernel
    /// applications too, without syscall crossings — LITE-DSM uses this).
    pub fn attach_kernel(&self, node: NodeId) -> LiteResult<LiteHandle> {
        LiteHandle::new(Arc::clone(self.try_kernel(node)?), false)
    }

    /// Arms history recording for the linearizability checker
    /// ([`crate::verify`]): installs one shared [`HistoryLog`] on every
    /// joined node (and every later joiner) and returns it. Arm *before*
    /// the first synchronization op — the checker's register spec assumes
    /// recorded locations start zero-filled. Recording stays on for the
    /// cluster's lifetime; a second call returns a new log only if none
    /// was installed (first install wins on every node).
    ///
    /// [`HistoryLog`]: crate::verify::HistoryLog
    pub fn record_history(&self) -> LiteResult<Arc<crate::verify::HistoryLog>> {
        let log = Arc::new(crate::verify::HistoryLog::new());
        let _ = self.history.set(Arc::clone(&log));
        for slot in self.nodes.iter() {
            let Some(k) = slot.get() else { continue };
            let obs = k
                .observe()
                .ok_or(LiteError::Internal("datapath not initialized"))?;
            obs.install_history(Arc::clone(&log));
        }
        Ok(log)
    }

    /// Switches the QoS mode on every joined node.
    pub fn set_qos_mode(&self, mode: QosMode) {
        for slot in self.nodes.iter() {
            if let Some(k) = slot.get() {
                k.qos().set_mode(mode);
            }
        }
    }
}

impl Drop for LiteCluster {
    fn drop(&mut self) {
        for slot in self.nodes.iter() {
            if let Some(k) = slot.get() {
                k.stop();
            }
        }
        self.fabric.shutdown();
    }
}
