//! `lite::mm` — per-node memory tiering for LMR chunks.
//!
//! The paper's §4 indirection argument is that opaque `lh` handles free
//! the kernel to move, evict, and swap LMR chunks without application
//! involvement. This module is that freedom exercised: a per-node memory
//! manager that enforces a physical-memory budget
//! ([`crate::LiteConfig::mem_budget_bytes`]), tracks chunk temperature
//! with an LRU ([`simnet::Lru`]), evicts cold chunks of locally-mastered
//! LMRs to swap nodes over the existing datapath, transparently redirects
//! or faults accesses that land on evicted chunks, and rebalances hot
//! chunks toward their heaviest accessor (NP-RDMA's on-demand
//! materialization + RDMAbox's remote paging, folded into LITE).
//!
//! # Residency state machine
//!
//! Every tracked *segment* (one physically-consecutive piece of an LMR,
//! initially 1:1 with its allocation chunks) is in one of five states:
//!
//! ```text
//!             evict: drain pins, copy out, update record
//!   Resident ──────────▶ Evicting ──────────▶ Remote
//!    ▲ ▲  │                  ▲                  │
//!    │ │  │ bg unpin (cold,  │ evict            │
//!    │ │  │  lazy mode)      │                  │
//!    │ │  ▼                  │                  │
//!    │ └─ Unpinned ──────────┘                  │
//!    │   first-touch fault (pages pin on pin()) │
//!    └────────── FetchingBack ◀─────────────────┘
//!          fetch-back: drain pins, copy home, update record
//! ```
//!
//! `Unpinned` is the pin-free registration tier
//! ([`crate::LiteConfig::lazy_pinning`], NP-RDMA's first-touch model):
//! the bytes are home but their pages hold no pin — registration was
//! O(1). The first access faults the touched pages in (the datapath
//! charges the NIC page-fault cost) and promotes the segment to
//! `Resident`; the sweeper demotes cold, pin-free segments back to
//! `Unpinned`, releasing their page pins. Eviction may start from either
//! tier — `Unpinned` segments are the cheapest victims.
//!
//! `Evicting`/`FetchingBack` fence new accesses (pins wait); in-flight
//! accesses hold a pin that the migrator drains before moving bytes.
//! Because one-sided op effects apply synchronously during `post()`, a
//! pin held across stage+post is a sound fence. A migrated-away range
//! leaves a `Moved` tombstone in the address map, so accesses through a
//! stale cached location observe [`crate::LiteError::Relocated`] and the
//! API layer re-fetches the mapping from the master and retries.
//!
//! Budget is policy, not capacity: allocation never fails because of the
//! budget, so forward progress is guaranteed even when eviction cannot
//! keep up (swap nodes dead, pins never draining).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rnic::NodeId;
use simnet::{Ctx, Lru};
use smem::Chunk;

use crate::api::LiteHandle;
use crate::config::LiteConfig;
use crate::error::{LiteError, LiteResult};
use crate::kernel::LiteKernel;
use crate::lmr::{LmrId, Location};
use crate::observe::{ConcurrentHistogram, LatencySummary};

/// How long a migrator waits for in-flight pins to drain before giving
/// up on this attempt (the segment reverts to its previous state).
const DRAIN_DEADLINE: Duration = Duration::from_secs(1);

/// How long an access waits on an `Evicting`/`FetchingBack` segment
/// before reporting `Relocated` and letting the API refresh-retry.
const PIN_DEADLINE: Duration = Duration::from_secs(2);

/// Track at most this many segments in the recency list; beyond it the
/// LRU sheds recency info (victim selection falls back to map order).
const LRU_CAPACITY: usize = 65_536;

/// Residency of one tracked segment, from its master node's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Bytes live on the master node.
    Resident,
    /// An eviction/rebalance is draining pins and copying out.
    Evicting,
    /// Bytes live on a swap node (the segment's current host).
    Remote,
    /// A fetch-back is draining pins and copying home.
    FetchingBack,
    /// Bytes are home but their pages hold no pin (lazy mode): the next
    /// access faults them in; the background sweeper parks cold segments
    /// here.
    Unpinned,
}

const R_RESIDENT: u8 = 0;
const R_EVICTING: u8 = 1;
const R_REMOTE: u8 = 2;
const R_FETCHING: u8 = 3;
const R_UNPINNED: u8 = 4;

fn residency_of(v: u8) -> Residency {
    match v {
        R_EVICTING => Residency::Evicting,
        R_REMOTE => Residency::Remote,
        R_FETCHING => Residency::FetchingBack,
        R_UNPINNED => Residency::Unpinned,
        _ => Residency::Resident,
    }
}

/// Logical identity of a segment: which LMR, at which byte offset.
/// Stable across migration — the physical address changes, the key does
/// not, which is what keeps linearizability histories joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegKey {
    /// Owning LMR.
    pub id: LmrId,
    /// Byte offset of the segment within the LMR.
    pub off: u64,
}

/// One tracked physically-consecutive piece of an LMR. Shared (`Arc`)
/// between the master node's logical table and whichever node currently
/// hosts the bytes, so pins taken at the host fence the master's
/// migrations too.
pub struct Segment {
    key: SegKey,
    len: u64,
    /// Physical address of the bytes on the current host.
    addr: AtomicU64,
    /// Node the bytes currently live on.
    host: AtomicUsize,
    residency: AtomicU8,
    /// In-flight accesses through this segment (API-layer fencing).
    pins: AtomicU32,
    /// Set when the owning LMR is unregistered (free / move / record
    /// takeover) or its storage freed while a migration may be in
    /// flight: the migrator re-checks it under the state lock and rolls
    /// back instead of committing segments of a dead LMR.
    dead: AtomicBool,
    /// Per-node access counts (rebalancer input).
    heat: Vec<AtomicU64>,
    /// Sweep epoch of the last access (background-unpinner input: a
    /// segment untouched for a full epoch is cold enough to unpin).
    last_touch: AtomicU64,
}

impl Segment {
    fn new(key: SegKey, len: u64, addr: u64, host: NodeId, residency: u8, nodes: usize) -> Self {
        Segment {
            key,
            len,
            addr: AtomicU64::new(addr),
            host: AtomicUsize::new(host),
            residency: AtomicU8::new(residency),
            pins: AtomicU32::new(0),
            dead: AtomicBool::new(false),
            heat: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            last_touch: AtomicU64::new(0),
        }
    }

    /// Logical identity.
    pub fn key(&self) -> SegKey {
        self.key
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the segment is empty (never true for tracked segments).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current residency.
    pub fn residency(&self) -> Residency {
        residency_of(self.residency.load(Ordering::Acquire))
    }

    fn top_accessor(&self) -> Option<(NodeId, u64)> {
        self.heat
            .iter()
            .enumerate()
            .map(|(n, h)| (n, h.load(Ordering::Relaxed)))
            .max_by_key(|&(_, h)| h)
            .filter(|&(_, h)| h > 0)
    }

    fn heat_of(&self, node: NodeId) -> u64 {
        self.heat
            .get(node)
            .map(|h| h.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    fn reset_heat(&self) {
        for h in &self.heat {
            h.store(0, Ordering::Relaxed);
        }
    }
}

/// A held pin: the segment cannot migrate until this drops.
pub struct PinGuard {
    seg: Arc<Segment>,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.seg.pins.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Outcome of fencing one physical access range.
pub enum PinOutcome {
    /// The range is not managed by this node's manager — proceed.
    Untracked,
    /// Pinned; hold the guard across the access.
    Pinned(PinGuard),
    /// The range was migrated (tombstone), is mid-migration past the
    /// wait deadline, or belongs to a different LMR than expected —
    /// the caller's cached location is stale.
    Relocated,
}

/// One entry of the per-node physical address map.
enum Slot {
    /// A tracked segment whose bytes live here.
    Entry(Arc<Segment>),
    /// Bytes moved away; the range was freed. Kept as a tombstone so
    /// stale cached locations fault instead of touching recycled memory;
    /// scrubbed when the range is re-registered or re-freed.
    Moved(u64),
}

impl Slot {
    fn len(&self) -> u64 {
        match self {
            Slot::Entry(s) => s.len,
            Slot::Moved(len) => *len,
        }
    }
}

/// An asynchronous request to the manager thread.
#[derive(Debug, Clone, Copy)]
pub enum MmRequest {
    /// Evict the segment of LMR `idx` containing byte `off`
    /// (`off == u64::MAX`: every resident segment of the LMR).
    Evict {
        /// Local master-table index.
        idx: u32,
        /// Byte offset within the LMR.
        off: u64,
    },
    /// Fetch every remote segment of LMR `idx` back home.
    FetchBack {
        /// Local master-table index.
        idx: u32,
    },
}

struct MmState {
    /// Local physical space: segments hosted here (ours or foreign) and
    /// tombstones of ranges migrated away.
    by_addr: BTreeMap<u64, Slot>,
    /// Logical segments of locally-mastered LMRs (resident or remote).
    segs: HashMap<SegKey, Arc<Segment>>,
    /// Recency over locally-resident owned segments.
    lru: Lru<SegKey, ()>,
    /// Remote map-faults per locally-mastered LMR (fetch-back trigger).
    faults: HashMap<u32, u32>,
    resident_bytes: u64,
    evicted_bytes: u64,
    hosted_bytes: u64,
}

impl MmState {
    /// The slot covering `addr`, with its start address.
    fn covering(&self, addr: u64) -> Option<(u64, &Slot)> {
        let (&start, slot) = self.by_addr.range(..=addr).next_back()?;
        (addr < start + slot.len()).then_some((start, slot))
    }

    /// Removes tombstones overlapping `[addr, addr+len)` so a fresh
    /// registration owns the range (ABA closure: a tombstone only
    /// survives until something tracked reclaims the space).
    fn scrub_moved(&mut self, addr: u64, len: u64) {
        let doomed: Vec<u64> = self
            .by_addr
            .range(..addr + len)
            .rev()
            .take_while(|(&s, slot)| s + slot.len() > addr)
            .filter(|(_, slot)| matches!(slot, Slot::Moved(_)))
            .map(|(&s, _)| s)
            .collect();
        for s in doomed {
            self.by_addr.remove(&s);
        }
    }
}

/// The per-node memory manager. Created disabled (budget 0) unless the
/// config sets a budget; a disabled manager tracks nothing and its hot
/// path hooks return immediately — the ablation baseline.
pub struct MemManager {
    node: NodeId,
    nodes: usize,
    budget: u64,
    /// Pin-free registration ([`crate::LiteConfig::lazy_pinning`]).
    lazy: bool,
    fetch_back_faults: u32,
    rebalance_threshold: u64,
    swap_nodes: Vec<NodeId>,
    next_swap: AtomicUsize,
    state: Mutex<MmState>,
    /// Peer managers via cluster membership (normal wiring).
    dir: OnceLock<Arc<crate::directory::ClusterDirectory>>,
    /// Peer managers as an explicit vector (standalone tests).
    cluster: OnceLock<Vec<Arc<MemManager>>>,
    queue: StdMutex<VecDeque<MmRequest>>,
    wake: Condvar,
    shutdown: AtomicBool,
    evictions: AtomicU64,
    fetch_backs: AtomicU64,
    rebalances: AtomicU64,
    redirects: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    fetch_back_lat: ConcurrentHistogram,
    /// Page-granular pin accounting for tracked ranges on this node.
    pins: smem::PinTable,
    /// Sweep epoch: bumped once per manager sweep; cold detection input.
    epoch: AtomicU64,
    first_touch_faults: AtomicU64,
    bg_unpins: AtomicU64,
    /// Registration (`lt_malloc`/`lt_map`) latency, virtual ns.
    reg_lat: ConcurrentHistogram,
}

impl MemManager {
    /// Creates the manager for `node` in a cluster of `nodes` nodes.
    pub(crate) fn new(node: NodeId, nodes: usize, config: &LiteConfig) -> Self {
        MemManager {
            node,
            nodes,
            budget: config.mem_budget_bytes,
            lazy: config.lazy_pinning,
            fetch_back_faults: config.mm_fetch_back_faults.max(1),
            rebalance_threshold: config.mm_rebalance_threshold,
            swap_nodes: config.mm_swap_nodes.clone(),
            next_swap: AtomicUsize::new(0),
            state: Mutex::new(MmState {
                by_addr: BTreeMap::new(),
                segs: HashMap::new(),
                lru: Lru::new(LRU_CAPACITY),
                faults: HashMap::new(),
                resident_bytes: 0,
                evicted_bytes: 0,
                hosted_bytes: 0,
            }),
            dir: OnceLock::new(),
            cluster: OnceLock::new(),
            queue: StdMutex::new(VecDeque::new()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            evictions: AtomicU64::new(0),
            fetch_backs: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            redirects: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fetch_back_lat: ConcurrentHistogram::new(),
            pins: smem::PinTable::new(),
            epoch: AtomicU64::new(1),
            first_touch_faults: AtomicU64::new(0),
            bg_unpins: AtomicU64::new(0),
            reg_lat: ConcurrentHistogram::new(),
        }
    }

    /// Whether tiering is on (a budget was configured).
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// Whether this manager tracks segments at all: tiering (budget) or
    /// pin-free registration (lazy) — either needs the residency machine
    /// and the manager thread.
    pub fn tracking(&self) -> bool {
        self.budget > 0 || self.lazy
    }

    /// Whether pin-free (lazy) registration is on.
    pub fn lazy(&self) -> bool {
        self.lazy
    }

    fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The configured budget in bytes (0 = disabled).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Wires peer-manager lookup through the cluster directory (normal
    /// boot path; resolves late joiners too).
    pub(crate) fn set_directory(&self, dir: Arc<crate::directory::ClusterDirectory>) {
        let _ = self.dir.set(dir);
    }

    /// Wires peer-manager lookup through an explicit vector (standalone
    /// unit tests that run managers without kernels).
    #[cfg(test)]
    pub(crate) fn set_cluster(&self, all: Vec<Arc<MemManager>>) {
        let _ = self.cluster.set(all);
    }

    pub(crate) fn peer(&self, node: NodeId) -> Option<&Arc<MemManager>> {
        if let Some(dir) = self.dir.get() {
            return dir.mm(node);
        }
        self.cluster.get()?.get(node)
    }

    // ------------------------------------------------------------------
    // Registration (master-record lifecycle hooks)
    // ------------------------------------------------------------------

    /// Tracks the locally-resident extents of a freshly created
    /// locally-mastered LMR. Remote extents (cross-node LMRs) stay
    /// untracked, exactly as before this module existed.
    pub(crate) fn register(&self, id: LmrId, location: &Location) {
        if !self.tracking() || id.node as NodeId != self.node {
            return;
        }
        // Lazy mode registers pin-free: segments start Unpinned and the
        // datapath faults their pages in on first touch. Eager mode pins
        // the whole extent now (the Figure 8 register-time cost).
        let residency = if self.lazy { R_UNPINNED } else { R_RESIDENT };
        let epoch = self.current_epoch();
        let mut st = self.state.lock();
        let mut off = 0u64;
        for (node, c) in &location.extents {
            if *node == self.node && c.len > 0 {
                let key = SegKey { id, off };
                let seg = Arc::new(Segment::new(
                    key, c.len, c.addr, self.node, residency, self.nodes,
                ));
                seg.last_touch.store(epoch, Ordering::Relaxed);
                if !self.lazy {
                    self.pins.fault_in(c.addr, c.len);
                }
                st.scrub_moved(c.addr, c.len);
                st.by_addr.insert(c.addr, Slot::Entry(Arc::clone(&seg)));
                st.segs.insert(key, seg);
                st.lru.insert(key, ());
                st.resident_bytes += c.len;
            }
            off += c.len;
        }
    }

    /// Drops every segment of LMR `idx` (free / move / record takeover).
    /// Hosted copies at other nodes are cleaned up by the `FN_FREE_CHUNKS`
    /// traffic that accompanies the free/move.
    pub(crate) fn unregister_lmr(&self, idx: u32) {
        if !self.tracking() {
            return;
        }
        let mut st = self.state.lock();
        let keys: Vec<SegKey> = st
            .segs
            .keys()
            .filter(|k| k.id.idx == idx && k.id.node as NodeId == self.node)
            .copied()
            .collect();
        for key in keys {
            let Some(seg) = st.segs.remove(&key) else {
                continue;
            };
            seg.dead.store(true, Ordering::Release);
            st.lru.remove(&key);
            if seg.host.load(Ordering::Acquire) == self.node {
                let addr = seg.addr.load(Ordering::Acquire);
                if matches!(st.by_addr.get(&addr), Some(Slot::Entry(e)) if Arc::ptr_eq(e, &seg)) {
                    st.by_addr.remove(&addr);
                }
                self.pins.unpin_all(addr, seg.len);
                st.resident_bytes = st.resident_bytes.saturating_sub(seg.len);
            } else {
                st.evicted_bytes = st.evicted_bytes.saturating_sub(seg.len);
            }
        }
        st.faults.remove(&idx);
    }

    /// A chunk at `addr` was freed through the allocator service. Drops
    /// the segment that covered it but leaves a `Moved` tombstone in its
    /// place (and keeps an existing one): the freed range is exactly
    /// where a stale mapper view may still point, and removing the slot
    /// would let that view pin `Untracked` — no fence at all — and post
    /// into recycled memory. The tombstone bounces it `Relocated` into a
    /// refresh instead, and is scrubbed when the range is next handed
    /// out (`on_alloc` / `register` / the migration stages).
    pub(crate) fn on_free(&self, addr: u64) {
        if !self.tracking() {
            return;
        }
        let mut st = self.state.lock();
        let Some(Slot::Entry(seg)) = st.by_addr.get(&addr) else {
            return;
        };
        let seg = Arc::clone(seg);
        st.by_addr.insert(addr, Slot::Moved(seg.len));
        seg.dead.store(true, Ordering::Release);
        self.pins.unpin_all(addr, seg.len);
        if seg.key.id.node as NodeId == self.node {
            let key = seg.key;
            // A staged landing (mid-migration) lives in by_addr only:
            // it never counted toward resident_bytes and must not
            // decrement it — or evict a committed segment that happens
            // to share its key.
            if matches!(st.segs.get(&key), Some(e) if Arc::ptr_eq(e, &seg)) {
                st.resident_bytes = st.resident_bytes.saturating_sub(seg.len);
                st.segs.remove(&key);
                st.lru.remove(&key);
            }
        } else {
            st.hosted_bytes = st.hosted_bytes.saturating_sub(seg.len);
        }
    }

    /// Chunks at these addresses were just handed out by the local
    /// allocator service (`FN_MALLOC`): scrub any `Moved` tombstones
    /// they cover, since the range now has a fresh owner (ABA closure
    /// for ranges that are never `register()`ed here, e.g. cross-node
    /// LMR storage).
    pub(crate) fn on_alloc(&self, chunks: &[Chunk]) {
        if !self.tracking() {
            return;
        }
        let mut st = self.state.lock();
        for c in chunks {
            st.scrub_moved(c.addr, c.len);
        }
    }

    // ------------------------------------------------------------------
    // Hot-path hooks (datapath / API)
    // ------------------------------------------------------------------

    /// Records one access to `[addr, addr+len)` from node `from`:
    /// promotes the segment in the LRU and feeds the rebalancer's heat.
    pub(crate) fn touch(&self, addr: u64, _len: u64, from: NodeId) {
        if !self.tracking() {
            return;
        }
        let mut st = self.state.lock();
        let Some((_, slot)) = st.covering(addr) else {
            return;
        };
        let Slot::Entry(seg) = slot else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let seg = Arc::clone(seg);
        if let Some(h) = seg.heat.get(from) {
            h.fetch_add(1, Ordering::Relaxed);
        }
        seg.last_touch
            .store(self.current_epoch(), Ordering::Relaxed);
        if seg.key.id.node as NodeId == self.node {
            st.lru.touch(&seg.key);
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fences an access to `[addr, addr+len)` that the caller believes
    /// belongs to LMR `id` at byte offset `lmr_off`. Verifying the
    /// identity closes the ABA window where the range was freed and
    /// recycled for a different tracked LMR.
    #[cfg(test)]
    pub(crate) fn pin(&self, addr: u64, len: u64, id: LmrId, lmr_off: u64) -> PinOutcome {
        self.pin_inner(addr, len, Some((id, lmr_off)), true).0
    }

    /// Like [`MemManager::pin`], but also reports how many pages the
    /// access faulted in (lazy mode's first-touch pins), so the caller
    /// can charge the NIC page-fault cost in virtual time.
    pub(crate) fn pin_touch(
        &self,
        addr: u64,
        len: u64,
        id: LmrId,
        lmr_off: u64,
    ) -> (PinOutcome, usize) {
        self.pin_inner(addr, len, Some((id, lmr_off)), true)
    }

    /// Fences a raw physical range (kernel services that operate on raw
    /// addresses, e.g. `FN_MEMSET`): no identity expectation, and no
    /// waiting — these run on the poller, which must never block, so a
    /// mid-migration range answers `Relocated` immediately and the
    /// caller retries after a refresh. Also reports first-touch faults.
    pub(crate) fn pin_raw_nowait(&self, addr: u64, len: u64) -> (PinOutcome, usize) {
        self.pin_inner(addr, len, None, false)
    }

    fn pin_inner(
        &self,
        addr: u64,
        len: u64,
        expect: Option<(LmrId, u64)>,
        wait: bool,
    ) -> (PinOutcome, usize) {
        if !self.tracking() {
            return (PinOutcome::Untracked, 0);
        }
        let deadline = Instant::now() + PIN_DEADLINE;
        loop {
            {
                let st = self.state.lock();
                let Some((start, slot)) = st.covering(addr) else {
                    return (PinOutcome::Untracked, 0);
                };
                let Slot::Entry(seg) = slot else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    self.redirects.fetch_add(1, Ordering::Relaxed);
                    return (PinOutcome::Relocated, 0);
                };
                if addr + len > start + seg.len {
                    // Straddles out of the tracked range — stale view.
                    self.redirects.fetch_add(1, Ordering::Relaxed);
                    return (PinOutcome::Relocated, 0);
                }
                if let Some((id, lmr_off)) = expect {
                    let actual_off = seg.key.off + (addr - start);
                    if seg.key.id != id || actual_off != lmr_off {
                        self.redirects.fetch_add(1, Ordering::Relaxed);
                        return (PinOutcome::Relocated, 0);
                    }
                }
                match seg.residency.load(Ordering::Acquire) {
                    R_EVICTING | R_FETCHING => { /* wait below, lock released */ }
                    r => {
                        // Lazy mode: fault the touched pages in (only the
                        // ones not yet resident) and promote an Unpinned
                        // segment. Done under the state lock, so the
                        // background unpinner (which also holds it) can
                        // never unpin between fault-in and the pin.
                        let mut faulted = 0;
                        if self.lazy {
                            faulted = self.pins.fault_in(addr, len);
                            if faulted > 0 {
                                self.first_touch_faults
                                    .fetch_add(faulted as u64, Ordering::Relaxed);
                            }
                            if r == R_UNPINNED {
                                seg.residency.store(R_RESIDENT, Ordering::Release);
                            }
                        }
                        seg.last_touch
                            .store(self.current_epoch(), Ordering::Relaxed);
                        seg.pins.fetch_add(1, Ordering::SeqCst);
                        // Our state lock only serializes against claims
                        // on segments WE master. A hosted copy is the
                        // origin's Arc: its evict/fetch-back claim runs
                        // under the origin's lock, so it can land between
                        // the residency read above and the increment —
                        // with its pin drain reading zero in that window
                        // and migrating under a live pin. Publish the pin
                        // first, then re-validate; both sides are SeqCst
                        // RMW-then-load, so at least one observes the
                        // other (see drain_pins).
                        if matches!(
                            seg.residency.load(Ordering::SeqCst),
                            R_EVICTING | R_FETCHING
                        ) {
                            seg.pins.fetch_sub(1, Ordering::AcqRel);
                            // Lost to a claim: wait below, lock released.
                        } else {
                            return (
                                PinOutcome::Pinned(PinGuard {
                                    seg: Arc::clone(seg),
                                }),
                                faulted,
                            );
                        }
                    }
                }
            }
            if !wait || Instant::now() >= deadline {
                self.redirects.fetch_add(1, Ordering::Relaxed);
                return (PinOutcome::Relocated, 0);
            }
            std::thread::sleep(Duration::from_micros(20));
        }
    }

    /// The logical identity of the byte at `addr`, if tracked: the
    /// owning LMR and the byte's offset within it. Used to key atomic
    /// histories by logical location so they survive migration.
    pub(crate) fn logical_cell(&self, addr: u64) -> Option<(LmrId, u64)> {
        if !self.tracking() {
            return None;
        }
        let st = self.state.lock();
        let (start, slot) = st.covering(addr)?;
        match slot {
            Slot::Entry(seg) => Some((seg.key.id, seg.key.off + (addr - start))),
            Slot::Moved(_) => None,
        }
    }

    /// Counts one remote map-fault on locally-mastered LMR `idx` (a
    /// mapper re-fetched a location with remote extents). Enough faults
    /// trigger a fetch-back on the next sweep.
    pub(crate) fn note_map_fault(&self, idx: u32) {
        if !self.tracking() {
            return;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        *self.state.lock().faults.entry(idx).or_insert(0) += 1;
    }

    // ------------------------------------------------------------------
    // Requests and gauges
    // ------------------------------------------------------------------

    /// Enqueues an asynchronous request for the manager thread.
    pub fn request(&self, req: MmRequest) {
        if !self.tracking() {
            return;
        }
        self.queue.lock().expect("mm queue").push_back(req);
        self.wake.notify_one();
    }

    fn drain_requests(&self, interval: Duration) -> Vec<MmRequest> {
        let q = self.queue.lock().expect("mm queue");
        if q.is_empty() && !self.shutdown.load(Ordering::Acquire) {
            let (mut q, _) = self.wake.wait_timeout(q, interval).expect("mm queue");
            return q.drain(..).collect();
        }
        let mut q = q;
        q.drain(..).collect()
    }

    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake.notify_all();
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Records one registration's virtual latency (whole `lt_malloc` /
    /// `lt_map` call) into the `reg_lat` histogram.
    pub(crate) fn record_reg_latency(&self, ns: u64) {
        self.reg_lat.record(ns.max(1));
    }

    /// Memory-tiering gauges (folded into [`crate::StatsReport`]).
    pub fn stats(&self) -> MmReport {
        let (resident_bytes, evicted_bytes, hosted_bytes, resident_chunks, evicted_chunks) = {
            let st = self.state.lock();
            let evicted = st
                .segs
                .values()
                .filter(|s| s.host.load(Ordering::Relaxed) != self.node)
                .count();
            (
                st.resident_bytes,
                st.evicted_bytes,
                st.hosted_bytes,
                st.segs.len() - evicted,
                evicted,
            )
        };
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        MmReport {
            enabled: self.enabled(),
            lazy: self.lazy,
            budget_bytes: self.budget,
            resident_bytes,
            evicted_bytes,
            hosted_bytes,
            resident_chunks,
            evicted_chunks,
            evictions: self.evictions.load(Ordering::Relaxed),
            fetch_backs: self.fetch_backs.load(Ordering::Relaxed),
            rebalances: self.rebalances.load(Ordering::Relaxed),
            redirects: self.redirects.load(Ordering::Relaxed),
            lru_hits: hits,
            lru_misses: misses,
            hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            pinned_pages: self.pins.pinned_pages(),
            first_touch_faults: self.first_touch_faults.load(Ordering::Relaxed),
            bg_unpins: self.bg_unpins.load(Ordering::Relaxed),
            fetch_back_lat: LatencySummary::of(&self.fetch_back_lat),
            reg_lat: LatencySummary::of(&self.reg_lat),
        }
    }

    // ------------------------------------------------------------------
    // Victim / target selection
    // ------------------------------------------------------------------

    /// Bytes of locally-resident tracked segments over the budget.
    /// Always zero without a budget (lazy-only mode must not evict).
    fn pressure(&self) -> u64 {
        if self.budget == 0 {
            return 0;
        }
        self.state.lock().resident_bytes.saturating_sub(self.budget)
    }

    /// The coldest locally-resident segment (LRU order, falling back to
    /// map order for segments the LRU shed). Unpinned segments qualify —
    /// they are the cheapest victims (no pages to release).
    fn pick_victim(&self) -> Option<SegKey> {
        let st = self.state.lock();
        let resident = |key: &SegKey| {
            st.segs.get(key).is_some_and(|s| {
                matches!(s.residency.load(Ordering::Acquire), R_RESIDENT | R_UNPINNED)
            })
        };
        if let Some(key) = st.lru.iter_lru().find(|k| resident(k)).copied() {
            return Some(key);
        }
        st.segs
            .iter()
            .filter(|(k, _)| resident(k))
            .map(|(k, _)| *k)
            .next()
    }

    /// Picks the swap node for the next eviction: the configured list,
    /// or round-robin over alive peers.
    fn pick_swap_node(&self, alive: impl Fn(NodeId) -> bool) -> Option<NodeId> {
        let candidates: Vec<NodeId> = if self.swap_nodes.is_empty() {
            (0..self.nodes).filter(|&n| n != self.node).collect()
        } else {
            self.swap_nodes
                .iter()
                .copied()
                .filter(|&n| n != self.node && n < self.nodes)
                .collect()
        };
        if candidates.is_empty() {
            return None;
        }
        let start = self.next_swap.fetch_add(1, Ordering::Relaxed);
        (0..candidates.len())
            .map(|i| candidates[(start + i) % candidates.len()])
            .find(|&n| alive(n))
    }

    // ------------------------------------------------------------------
    // Migration primitives (called from the manager thread only)
    // ------------------------------------------------------------------

    /// Claims `key` for eviction: Resident/Unpinned → Evicting. Returns
    /// the segment and the state it came from (for rollback); `None`
    /// when the segment is gone or mid-transition.
    fn begin_evict(&self, key: &SegKey) -> Option<(Arc<Segment>, u8)> {
        let st = self.state.lock();
        let seg = st.segs.get(key)?;
        for from in [R_RESIDENT, R_UNPINNED] {
            // SeqCst pairs with pin_inner's publish-then-revalidate: the
            // claim RMW and the drain's pin load must order as a unit
            // against the pin RMW and its residency re-load.
            if seg
                .residency
                .compare_exchange(from, R_EVICTING, Ordering::SeqCst, Ordering::Acquire)
                .is_ok()
            {
                return Some((Arc::clone(seg), from));
            }
        }
        None
    }

    /// Claims `key` for fetch-back: Remote → FetchingBack.
    fn begin_fetch_back(&self, key: &SegKey) -> Option<Arc<Segment>> {
        let st = self.state.lock();
        let seg = st.segs.get(key)?;
        seg.residency
            .compare_exchange(R_REMOTE, R_FETCHING, Ordering::SeqCst, Ordering::Acquire)
            .ok()?;
        Some(Arc::clone(seg))
    }

    fn abort_transition(&self, seg: &Segment, back_to: u8) {
        seg.residency.store(back_to, Ordering::Release);
    }

    /// Waits for in-flight pins to drain; `false` on deadline.
    fn drain_pins(&self, seg: &Segment) -> bool {
        let deadline = Instant::now() + DRAIN_DEADLINE;
        // SeqCst: see pin_inner's publish-then-revalidate. If a pin's
        // increment is not visible here, the claim preceding this load
        // is visible to that pin's residency re-check, and it backs off.
        while seg.pins.load(Ordering::SeqCst) != 0 {
            if Instant::now() >= deadline || self.stopping() {
                return false;
            }
            std::thread::sleep(Duration::from_micros(20));
        }
        true
    }

    /// Builds one per-chunk segment for a migration landing zone,
    /// created directly in claimed state `state` so datapath pins block
    /// (or bounce, for no-wait pins) instead of posting unfenced against
    /// bytes that are still being copied.
    fn landing_segs(
        &self,
        seg: &Segment,
        chunks: &[Chunk],
        host: NodeId,
        state: u8,
    ) -> Vec<Arc<Segment>> {
        let mut staged = Vec::with_capacity(chunks.len());
        let mut off = seg.key.off;
        for c in chunks {
            staged.push(Arc::new(Segment::new(
                SegKey {
                    id: seg.key.id,
                    off,
                },
                c.len,
                c.addr,
                host,
                state,
                self.nodes,
            )));
            off += c.len;
        }
        staged
    }

    /// Stages an outbound migration's landing range at the target
    /// *before* the data copy: hosted entries in the claimed Evicting
    /// state. Without this, the window between `replace_extents` (which
    /// publishes the new location) and registration — and, worse, a
    /// stale view of a recycled address whose `Moved` tombstone the
    /// landing `FN_MALLOC` just scrubbed — pins `Untracked` and posts
    /// unfenced while the bytes are in flight: a concurrent claim's
    /// pin drain reads zero and migrates under a live access, losing
    /// the op's effect. `finish_evict` flips the stage Remote once the
    /// record points at it; `unstage_hosted` removes it on any abort.
    fn stage_hosted(&self, seg: &Segment, target: NodeId, chunks: &[Chunk]) -> Vec<Arc<Segment>> {
        let staged = self.landing_segs(seg, chunks, target, R_EVICTING);
        if let Some(peer) = self.peer(target) {
            let mut pst = peer.state.lock();
            for s in &staged {
                let addr = s.addr.load(Ordering::Relaxed);
                pst.scrub_moved(addr, s.len);
                peer.pins.fault_in(addr, s.len);
                pst.by_addr.insert(addr, Slot::Entry(Arc::clone(s)));
                pst.hosted_bytes += s.len;
            }
        }
        staged
    }

    /// Rolls a staged outbound landing back out of the target's address
    /// map (aborted copy, vanished record, or dead LMR).
    fn unstage_hosted(&self, target: NodeId, staged: &[Arc<Segment>]) {
        if let Some(peer) = self.peer(target) {
            let mut pst = peer.state.lock();
            for s in staged {
                let addr = s.addr.load(Ordering::Relaxed);
                if matches!(pst.by_addr.get(&addr), Some(Slot::Entry(e)) if Arc::ptr_eq(e, s)) {
                    pst.by_addr.remove(&addr);
                    peer.pins.unpin_all(addr, s.len);
                    pst.hosted_bytes = pst.hosted_bytes.saturating_sub(s.len);
                }
            }
        }
    }

    /// Finalizes an outbound migration: tombstones the local range and
    /// replaces `seg` with the staged hosted segments, flipped Remote
    /// now that the record points at them (releasing any pins that
    /// queued against the stage during the copy). Returns the local
    /// address to free — or `None` when the LMR was unregistered
    /// (freed/moved/taken) mid-flight, in which case the stage is
    /// rolled back: committing would resurrect segments of a dead LMR
    /// (leaking `evicted_bytes`) and leave hosted entries over chunks
    /// the dropper frees at the target.
    fn finish_evict(
        &self,
        seg: &Arc<Segment>,
        target: NodeId,
        staged: &[Arc<Segment>],
    ) -> Option<u64> {
        let old_addr = seg.addr.load(Ordering::Acquire);
        let mut st = self.state.lock();
        // Re-verify liveness under our own lock: unregister_lmr/on_free
        // serialize on it, so a dead or replaced segment is definitely
        // visible here. (Target lock and ours are never held at once,
        // so cross-node managers cannot deadlock on each other.)
        if seg.dead.load(Ordering::Acquire)
            || !matches!(st.segs.get(&seg.key), Some(e) if Arc::ptr_eq(e, seg))
        {
            drop(st);
            self.unstage_hosted(target, staged);
            return None;
        }
        st.segs.remove(&seg.key);
        st.lru.remove(&seg.key);
        if matches!(st.by_addr.get(&old_addr), Some(Slot::Entry(e)) if Arc::ptr_eq(e, seg)) {
            st.by_addr.insert(old_addr, Slot::Moved(seg.len));
        }
        // The local pages are about to be freed: release whatever pins
        // they held (all of them eager, only the faulted subset lazy).
        self.pins.unpin_all(old_addr, seg.len);
        st.resident_bytes = st.resident_bytes.saturating_sub(seg.len);
        st.evicted_bytes += seg.len;
        for s in staged {
            st.segs.insert(s.key, Arc::clone(s));
            s.residency.store(R_REMOTE, Ordering::Release);
        }
        Some(old_addr)
    }

    /// Stages an inbound migration's landing range in our own address
    /// map *before* the data copy (claimed FetchingBack entries), for
    /// the same reason as [`MemManager::stage_hosted`]: a stale view of
    /// the recycled local address must block on the stage, not pin
    /// `Untracked` and post unfenced against bytes still in flight.
    fn stage_local(&self, seg: &Segment, chunks: &[Chunk]) -> Vec<Arc<Segment>> {
        let staged = self.landing_segs(seg, chunks, self.node, R_FETCHING);
        let mut st = self.state.lock();
        for s in &staged {
            let addr = s.addr.load(Ordering::Relaxed);
            st.scrub_moved(addr, s.len);
            self.pins.fault_in(addr, s.len);
            st.by_addr.insert(addr, Slot::Entry(Arc::clone(s)));
        }
        staged
    }

    /// Rolls a staged inbound landing back out of our address map. The
    /// chunks themselves stay allocated — the caller (or, when the LMR
    /// died after `replace_extents` adopted them, the dropper) frees
    /// them.
    fn unstage_local(&self, staged: &[Arc<Segment>]) {
        let mut st = self.state.lock();
        for s in staged {
            let addr = s.addr.load(Ordering::Relaxed);
            if matches!(st.by_addr.get(&addr), Some(Slot::Entry(e)) if Arc::ptr_eq(e, s)) {
                st.by_addr.remove(&addr);
                self.pins.unpin_all(addr, s.len);
            }
        }
    }

    /// Finalizes an inbound migration: replaces the remote `seg` with
    /// the staged local segments (flipped Resident now that the record
    /// points at them), tombstones the range at the old host, and
    /// returns the remote address to free there — or `None` when the
    /// LMR was unregistered mid-flight (the stage is rolled back; the
    /// caller still frees the remote copy, while the landed local
    /// chunks belong to the record and are freed by the dropper).
    fn finish_fetch_back(
        &self,
        seg: &Arc<Segment>,
        host: NodeId,
        staged: &[Arc<Segment>],
    ) -> Option<u64> {
        let remote_addr = seg.addr.load(Ordering::Acquire);
        if let Some(peer) = self.peer(host) {
            let mut pst = peer.state.lock();
            if matches!(pst.by_addr.get(&remote_addr), Some(Slot::Entry(e)) if Arc::ptr_eq(e, seg))
            {
                pst.by_addr.insert(remote_addr, Slot::Moved(seg.len));
                peer.pins.unpin_all(remote_addr, seg.len);
                pst.hosted_bytes = pst.hosted_bytes.saturating_sub(seg.len);
            }
        }
        let mut st = self.state.lock();
        // Same liveness re-check as finish_evict: committing resident
        // segments of a dead LMR would resurrect it in segs/by_addr.
        if seg.dead.load(Ordering::Acquire)
            || !matches!(st.segs.get(&seg.key), Some(e) if Arc::ptr_eq(e, seg))
        {
            drop(st);
            self.unstage_local(staged);
            return None;
        }
        st.segs.remove(&seg.key);
        st.evicted_bytes = st.evicted_bytes.saturating_sub(seg.len);
        for s in staged {
            // The bytes just DMAed in, so they land pinned (the stage
            // faulted them) and warm (a fetch-back is demand-driven).
            s.last_touch
                .store(self.epoch.load(Ordering::Relaxed), Ordering::Relaxed);
            st.segs.insert(s.key, Arc::clone(s));
            st.lru.insert(s.key, ());
            st.resident_bytes += s.len;
            s.residency.store(R_RESIDENT, Ordering::Release);
        }
        Some(remote_addr)
    }

    /// Segments of LMR `idx` matching `off` (`u64::MAX` = all) that are
    /// currently resident here.
    fn resident_segs_of(&self, idx: u32, off: u64) -> Vec<SegKey> {
        let st = self.state.lock();
        st.segs
            .values()
            .filter(|s| {
                s.key.id.idx == idx
                    && s.host.load(Ordering::Relaxed) == self.node
                    && (off == u64::MAX || (s.key.off <= off && off < s.key.off + s.len))
            })
            .map(|s| s.key)
            .collect()
    }

    /// Remote segments of LMR `idx`.
    fn remote_segs_of(&self, idx: u32) -> Vec<SegKey> {
        let st = self.state.lock();
        st.segs
            .values()
            .filter(|s| s.key.id.idx == idx && s.host.load(Ordering::Relaxed) != self.node)
            .map(|s| s.key)
            .collect()
    }

    /// LMRs whose remote map-faults crossed the fetch-back threshold and
    /// whose remote bytes fit under the budget. Consumes the counts.
    fn take_fetch_back_candidates(&self) -> Vec<u32> {
        let mut st = self.state.lock();
        let resident = st.resident_bytes;
        let threshold = self.fetch_back_faults;
        let ready: Vec<u32> = st
            .faults
            .iter()
            .filter(|&(_, &n)| n >= threshold)
            .map(|(&idx, _)| idx)
            .collect();
        let mut headroom = self.budget.saturating_sub(resident);
        let mut out = Vec::new();
        for idx in ready {
            let need: u64 = st
                .segs
                .values()
                .filter(|s| s.key.id.idx == idx && s.host.load(Ordering::Relaxed) != self.node)
                .map(|s| s.len)
                .sum();
            if need > 0 && need <= headroom {
                headroom -= need;
                out.push(idx);
                st.faults.remove(&idx);
            } else if need == 0 {
                st.faults.remove(&idx);
            }
        }
        out
    }

    /// Resident segments whose heaviest accessor is another (alive)
    /// node past the rebalance threshold, with their targets.
    fn rebalance_candidates(&self, alive: impl Fn(NodeId) -> bool) -> Vec<(SegKey, NodeId)> {
        if self.rebalance_threshold == 0 {
            return Vec::new();
        }
        let st = self.state.lock();
        st.segs
            .values()
            .filter(|s| s.residency.load(Ordering::Relaxed) == R_RESIDENT)
            .filter_map(|s| {
                let (top, heat) = s.top_accessor()?;
                (top != self.node
                    && heat >= self.rebalance_threshold
                    && heat > s.heat_of(self.node)
                    && alive(top))
                .then_some((s.key, top))
            })
            .collect()
    }

    /// Background unpinner (lazy mode only): closes the sweep epoch and
    /// demotes locally-resident segments that went a full epoch without
    /// a touch and have no pins in flight — Resident → Unpinned, pages
    /// released. Runs entirely under the state lock, so it can never
    /// interleave with `pin_inner`'s fault-in/pin sequence: a segment is
    /// either demoted before a pin (the pin refaults it) or after (the
    /// pin count blocks the demotion).
    fn bg_unpin_sweep(&self) {
        if !self.lazy {
            return;
        }
        // `prev` is the epoch that just ended; anything last touched
        // before it has been cold for at least one full sweep interval.
        let prev = self.epoch.fetch_add(1, Ordering::AcqRel);
        let st = self.state.lock();
        for seg in st.segs.values() {
            if seg.host.load(Ordering::Relaxed) != self.node
                || seg.pins.load(Ordering::Acquire) != 0
                || seg.last_touch.load(Ordering::Relaxed) >= prev
                || seg
                    .residency
                    .compare_exchange(R_RESIDENT, R_UNPINNED, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
            {
                continue;
            }
            let released = self
                .pins
                .unpin_all(seg.addr.load(Ordering::Acquire), seg.len);
            if released > 0 {
                self.bg_unpins.fetch_add(released as u64, Ordering::Relaxed);
            }
        }
    }
}

/// Memory-tiering gauges for one node.
#[derive(Debug, Clone, Default)]
pub struct MmReport {
    /// Whether a budget is configured.
    pub enabled: bool,
    /// Whether pin-free (lazy) registration is on.
    pub lazy: bool,
    /// The configured budget, bytes.
    pub budget_bytes: u64,
    /// Bytes of tracked chunks resident on this node.
    pub resident_bytes: u64,
    /// Bytes of this node's LMR chunks currently evicted to swap nodes.
    pub evicted_bytes: u64,
    /// Bytes this node hosts on behalf of other nodes' evictions.
    pub hosted_bytes: u64,
    /// Tracked chunks resident here.
    pub resident_chunks: usize,
    /// This node's chunks living remotely.
    pub evicted_chunks: usize,
    /// Chunks evicted over the node's lifetime.
    pub evictions: u64,
    /// Chunks fetched back over the node's lifetime.
    pub fetch_backs: u64,
    /// Chunks migrated toward their heaviest accessor.
    pub rebalances: u64,
    /// Accesses that landed on migrated chunks and were redirected
    /// (refresh + retry) instead of served in place.
    pub redirects: u64,
    /// Accesses that found their chunk resident.
    pub lru_hits: u64,
    /// Accesses/faults that missed (evicted chunk or map-fault).
    pub lru_misses: u64,
    /// `lru_hits / (lru_hits + lru_misses)`, 0.0 when idle.
    pub hit_rate: f64,
    /// Pages of tracked memory currently pinned on this node.
    pub pinned_pages: usize,
    /// Pages pinned at the datapath by lazy first-touch faults.
    pub first_touch_faults: u64,
    /// Pages released by the background unpinner.
    pub bg_unpins: u64,
    /// Fetch-back latency (virtual nanoseconds, whole operation).
    pub fetch_back_lat: LatencySummary,
    /// Registration latency (virtual nanoseconds, whole `lt_malloc`).
    pub reg_lat: LatencySummary,
}

impl MmReport {
    /// JSON object fragment (same hand-rolled style as the rest of the
    /// stats report).
    pub fn json(&self) -> String {
        format!(
            "{{\"enabled\":{},\"lazy\":{},\"budget_bytes\":{},\"resident_bytes\":{},\"evicted_bytes\":{},\"hosted_bytes\":{},\"resident_chunks\":{},\"evicted_chunks\":{},\"evictions\":{},\"fetch_backs\":{},\"rebalances\":{},\"redirects\":{},\"lru_hits\":{},\"lru_misses\":{},\"hit_rate\":{:.4},\"pinned_pages\":{},\"first_touch_faults\":{},\"bg_unpins\":{},\"fetch_back_lat\":{{\"count\":{},\"mean_ns\":{:.1},\"p50\":{},\"p99\":{}}},\"reg_lat\":{{\"count\":{},\"mean_ns\":{:.1},\"p50\":{},\"p99\":{}}}}}",
            self.enabled,
            self.lazy,
            self.budget_bytes,
            self.resident_bytes,
            self.evicted_bytes,
            self.hosted_bytes,
            self.resident_chunks,
            self.evicted_chunks,
            self.evictions,
            self.fetch_backs,
            self.rebalances,
            self.redirects,
            self.lru_hits,
            self.lru_misses,
            self.hit_rate,
            self.pinned_pages,
            self.first_touch_faults,
            self.bg_unpins,
            self.fetch_back_lat.count,
            self.fetch_back_lat.mean_ns,
            self.fetch_back_lat.p50,
            self.fetch_back_lat.p99,
            self.reg_lat.count,
            self.reg_lat.mean_ns,
            self.reg_lat.p50,
            self.reg_lat.p99,
        )
    }
}

// ---------------------------------------------------------------------
// The manager thread
// ---------------------------------------------------------------------

/// Why a segment is being migrated (decides which counter ticks).
#[derive(Clone, Copy, PartialEq, Eq)]
enum MigrateWhy {
    Evict,
    Rebalance,
}

/// The body of the `lite-mm-{node}` thread: drains requests, relieves
/// budget pressure, pulls faulted LMRs home, and rebalances hot chunks.
/// Spawned by `finish_setup` only when a budget is configured.
pub(crate) fn run(kernel: Arc<LiteKernel>) {
    let mm = Arc::clone(kernel.mm());
    let mut ctx = Ctx::new();
    let Ok(mut handle) = LiteHandle::new(Arc::clone(&kernel), false) else {
        return;
    };
    let interval = kernel.config().mm_sweep_interval;
    while !mm.stopping() {
        for req in mm.drain_requests(interval) {
            if mm.stopping() {
                break;
            }
            match req {
                MmRequest::Evict { idx, off } => {
                    for key in mm.resident_segs_of(idx, off) {
                        let _ = evict_one(&kernel, &mut ctx, &mut handle, key, None);
                    }
                }
                MmRequest::FetchBack { idx } => {
                    for key in mm.remote_segs_of(idx) {
                        let _ = fetch_back_one(&kernel, &mut ctx, &mut handle, key);
                    }
                }
            }
        }
        if mm.stopping() {
            break;
        }
        sweep(&kernel, &mut ctx, &mut handle);
    }
}

fn sweep(kernel: &Arc<LiteKernel>, ctx: &mut Ctx, handle: &mut LiteHandle) {
    let mm = Arc::clone(kernel.mm());
    // 1. Budget pressure: evict coldest-first until under budget (or
    //    nothing evictable / a migration fails — retried next sweep).
    let mut guard = 0;
    while mm.pressure() > 0 && !mm.stopping() && guard < 1_024 {
        guard += 1;
        let Some(victim) = mm.pick_victim() else {
            break;
        };
        if evict_one(kernel, ctx, handle, victim, None).is_err() {
            break;
        }
    }
    // 2. Fault-driven fetch-back: LMRs whose mappers keep faulting on
    //    remote extents come home when the budget has headroom.
    for idx in mm.take_fetch_back_candidates() {
        if mm.stopping() {
            return;
        }
        for key in mm.remote_segs_of(idx) {
            let _ = fetch_back_one(kernel, ctx, handle, key);
        }
    }
    // 3. Rebalance: migrate hot chunks toward their heaviest accessor.
    let alive = |n: NodeId| kernel.try_datapath().is_ok_and(|dp| !dp.peer_is_dead(n));
    for (key, target) in mm.rebalance_candidates(alive) {
        if mm.stopping() {
            return;
        }
        let _ = evict_one(kernel, ctx, handle, key, Some(target));
    }
    // 4. Lazy mode: release pins of segments cold for a full epoch.
    mm.bg_unpin_sweep();
}

/// Remote-allocates `len` bytes on `target` through the kernel allocator
/// service; returns the landed chunks.
fn remote_alloc(
    kernel: &Arc<LiteKernel>,
    ctx: &mut Ctx,
    handle: &mut LiteHandle,
    target: NodeId,
    len: u64,
) -> LiteResult<Vec<Chunk>> {
    let payload = crate::wire::Enc::new()
        .u64(len)
        .u64(kernel.config().max_lmr_chunk)
        .done();
    let reply = handle.kcall(ctx, target, crate::kernel::FN_MALLOC, payload)?;
    let mut d = crate::wire::Dec::new(&reply);
    let n = d.u32()?;
    let mut chunks = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let addr = d.u64()?;
        let clen = d.u64()?;
        chunks.push(Chunk { addr, len: clen });
    }
    Ok(chunks)
}

/// Best-effort remote free of `chunks` on `node` (rollback paths).
fn remote_free(
    kernel: &Arc<LiteKernel>,
    ctx: &mut Ctx,
    handle: &mut LiteHandle,
    node: NodeId,
    chunks: &[Chunk],
) {
    let mut e = crate::wire::Enc::new().u32(chunks.len() as u32);
    for c in chunks {
        e = e.u64(c.addr);
    }
    if handle
        .kcall(ctx, node, crate::kernel::FN_FREE_CHUNKS, e.done())
        .is_err()
    {
        kernel.note_cleanup_failure(node, ctx.now());
    }
}

/// Tells every mapper of `idx` (and local handles) that the LMR's
/// location changed under them — kind 1: refreshable, not fatal.
fn invalidate_mappers(
    kernel: &Arc<LiteKernel>,
    ctx: &mut Ctx,
    handle: &mut LiteHandle,
    id: LmrId,
    mappers: &[NodeId],
) {
    kernel.invalidate_lmr_relocated(id);
    for &m in mappers {
        if m == kernel.node() {
            continue;
        }
        let payload = crate::wire::Enc::new()
            .u32(id.node)
            .u32(id.idx)
            .u8(1)
            .done();
        if handle
            .kcall(ctx, m, crate::kernel::FN_INVALIDATE, payload)
            .is_err()
        {
            kernel.note_cleanup_failure(m, ctx.now());
        }
    }
}

/// Migrates one resident segment to a swap node (eviction) or to an
/// explicit `target` (rebalance): drain pins, remote-allocate, copy out
/// over the datapath, update the master record, register the hosted
/// copy, tombstone and free the local range, invalidate mappers.
fn evict_one(
    kernel: &Arc<LiteKernel>,
    ctx: &mut Ctx,
    handle: &mut LiteHandle,
    key: SegKey,
    target: Option<NodeId>,
) -> LiteResult<()> {
    let mm = Arc::clone(kernel.mm());
    let why = if target.is_some() {
        MigrateWhy::Rebalance
    } else {
        MigrateWhy::Evict
    };
    let alive = |n: NodeId| kernel.try_datapath().is_ok_and(|dp| !dp.peer_is_dead(n));
    let Some(target) = target.or_else(|| mm.pick_swap_node(alive)) else {
        return Err(LiteError::Internal("no alive swap node"));
    };
    let Some((seg, was)) = mm.begin_evict(&key) else {
        return Ok(()); // gone or mid-transition; nothing to do
    };
    if !mm.drain_pins(&seg) {
        mm.abort_transition(&seg, was);
        return Err(LiteError::Timeout);
    }
    let src_addr = seg.addr.load(Ordering::Acquire);
    // Land space on the swap node.
    let chunks = match remote_alloc(kernel, ctx, handle, target, seg.len) {
        Ok(c) => c,
        Err(e) => {
            mm.abort_transition(&seg, was);
            return Err(e);
        }
    };
    // Fence the landing range at the target before any byte moves, so
    // a stale (or freshly-refreshed) view of those addresses blocks on
    // the staged entries instead of posting unfenced mid-copy.
    let staged = mm.stage_hosted(&seg, target, &chunks);
    // Copy out over the datapath (one-sided writes from the segment's
    // own physical range — no staging copy).
    let mut done = 0u64;
    for c in &chunks {
        let src = [Chunk {
            addr: src_addr + done,
            len: c.len,
        }];
        match kernel.rdma_write(ctx, Priority::Low, target, c.addr, &src, c.len as usize) {
            Ok(comp) => ctx.wait_until(comp),
            Err(e) => {
                mm.unstage_hosted(target, &staged);
                remote_free(kernel, ctx, handle, target, &chunks);
                mm.abort_transition(&seg, was);
                return Err(e);
            }
        }
        done += c.len;
    }
    // Point the master record at the new home. Failure means the record
    // vanished (freed/moved concurrently) — roll back.
    let repl: Vec<(NodeId, Chunk)> = chunks.iter().map(|c| (target, *c)).collect();
    if !kernel.replace_extents(key.id.idx, key.off, seg.len, &repl) {
        mm.unstage_hosted(target, &staged);
        remote_free(kernel, ctx, handle, target, &chunks);
        mm.abort_transition(&seg, was);
        return Err(LiteError::Internal("record vanished during migration"));
    }
    let mappers = kernel.record_mappers(key.id.idx).unwrap_or_default();
    let Some(old_addr) = mm.finish_evict(&seg, target, &staged) else {
        // The LMR was freed/moved after replace_extents pointed its
        // record at the landed chunks: the dropper owns (and frees)
        // those, but nothing else releases our local copy.
        if kernel.alloc.lock().free(src_addr).is_err() {
            kernel.note_cleanup_failure(kernel.node(), ctx.now());
        }
        return Err(LiteError::Internal("record vanished during migration"));
    };
    // Release the local pages last: the tombstone is already in place.
    let freed = kernel.alloc.lock().free(old_addr).is_ok();
    if !freed {
        kernel.note_cleanup_failure(kernel.node(), ctx.now());
    }
    match why {
        MigrateWhy::Evict => mm.evictions.fetch_add(1, Ordering::Relaxed),
        MigrateWhy::Rebalance => mm.rebalances.fetch_add(1, Ordering::Relaxed),
    };
    seg.reset_heat();
    invalidate_mappers(kernel, ctx, handle, key.id, &mappers);
    Ok(())
}

/// Pulls one remote segment home: drain pins, local-allocate, read the
/// bytes back over the datapath, update the master record, free the
/// remote copy, invalidate mappers. Latency lands in the fetch-back
/// histogram cell.
fn fetch_back_one(
    kernel: &Arc<LiteKernel>,
    ctx: &mut Ctx,
    handle: &mut LiteHandle,
    key: SegKey,
) -> LiteResult<()> {
    let mm = Arc::clone(kernel.mm());
    let Some(seg) = mm.begin_fetch_back(&key) else {
        return Ok(());
    };
    let started = ctx.now();
    let host = seg.host.load(Ordering::Acquire);
    if !mm.drain_pins(&seg) {
        mm.abort_transition(&seg, R_REMOTE);
        return Err(LiteError::Timeout);
    }
    // Land local space straight from our allocator (no RPC to self).
    let local = {
        let mut a = kernel.alloc.lock();
        a.alloc_chunked(seg.len, kernel.config().max_lmr_chunk)
    };
    let local = match local {
        Ok(c) => c,
        Err(e) => {
            mm.abort_transition(&seg, R_REMOTE);
            return Err(e.into());
        }
    };
    // Fence the landing range before any byte moves (see stage_hosted
    // for why): a stale view of a recycled local address must block on
    // the stage, not post unfenced against a half-copied range.
    let staged = mm.stage_local(&seg, &local);
    let remote_addr = seg.addr.load(Ordering::Acquire);
    let mut done = 0u64;
    for c in &local {
        let dst = [*c];
        match kernel.rdma_read(
            ctx,
            Priority::High,
            host,
            remote_addr + done,
            &dst,
            c.len as usize,
        ) {
            Ok(comp) => ctx.wait_until(comp),
            Err(e) => {
                mm.unstage_local(&staged);
                let mut a = kernel.alloc.lock();
                let _ = a.free_chunks(&local);
                drop(a);
                mm.abort_transition(&seg, R_REMOTE);
                return Err(e);
            }
        }
        done += c.len;
    }
    let repl: Vec<(NodeId, Chunk)> = local.iter().map(|c| (kernel.node(), *c)).collect();
    if !kernel.replace_extents(key.id.idx, key.off, seg.len, &repl) {
        mm.unstage_local(&staged);
        let mut a = kernel.alloc.lock();
        let _ = a.free_chunks(&local);
        drop(a);
        mm.abort_transition(&seg, R_REMOTE);
        return Err(LiteError::Internal("record vanished during fetch-back"));
    }
    let mappers = kernel.record_mappers(key.id.idx).unwrap_or_default();
    let Some(freed_remote) = mm.finish_fetch_back(&seg, host, &staged) else {
        // The LMR was freed after replace_extents pointed its record at
        // the landed local chunks: the dropper frees those; the remote
        // copy is still ours to release.
        remote_free(
            kernel,
            ctx,
            handle,
            host,
            &[Chunk {
                addr: seg.addr.load(Ordering::Acquire),
                len: seg.len,
            }],
        );
        return Err(LiteError::Internal("record vanished during fetch-back"));
    };
    remote_free(
        kernel,
        ctx,
        handle,
        host,
        &[Chunk {
            addr: freed_remote,
            len: seg.len,
        }],
    );
    mm.fetch_backs.fetch_add(1, Ordering::Relaxed);
    mm.fetch_back_lat
        .record(ctx.now().saturating_sub(started).max(1));
    invalidate_mappers(kernel, ctx, handle, key.id, &mappers);
    Ok(())
}

use crate::qos::Priority;

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(budget: u64) -> LiteConfig {
        LiteConfig {
            mem_budget_bytes: budget,
            ..Default::default()
        }
    }

    fn loc(node: NodeId, extents: &[(u64, u64)]) -> Location {
        Location {
            extents: extents
                .iter()
                .map(|&(addr, len)| (node, Chunk { addr, len }))
                .collect(),
        }
    }

    #[test]
    fn disabled_manager_tracks_nothing() {
        let mm = MemManager::new(0, 2, &cfg(0));
        let id = LmrId { node: 0, idx: 1 };
        mm.register(id, &loc(0, &[(0x1000, 4096)]));
        assert!(matches!(mm.pin(0x1000, 64, id, 0), PinOutcome::Untracked));
        let r = mm.stats();
        assert!(!r.enabled);
        assert_eq!(r.resident_bytes, 0);
    }

    #[test]
    fn register_pin_and_identity_check() {
        let mm = MemManager::new(0, 2, &cfg(1 << 20));
        let id = LmrId { node: 0, idx: 1 };
        mm.register(id, &loc(0, &[(0x1000, 4096), (0x4000, 4096)]));
        assert_eq!(mm.stats().resident_bytes, 8192);
        assert_eq!(mm.stats().resident_chunks, 2);
        // Pin inside the second chunk: lmr offset 4096 + 16.
        match mm.pin(0x4010, 32, id, 4096 + 16) {
            PinOutcome::Pinned(_) => {}
            _ => panic!("expected pin"),
        }
        // Wrong identity → Relocated.
        let other = LmrId { node: 0, idx: 9 };
        assert!(matches!(mm.pin(0x1000, 8, other, 0), PinOutcome::Relocated));
        // Wrong offset → Relocated.
        assert!(matches!(mm.pin(0x1000, 8, id, 64), PinOutcome::Relocated));
        // Outside tracked space → Untracked.
        assert!(matches!(mm.pin(0x9000, 8, id, 0), PinOutcome::Untracked));
    }

    #[test]
    fn logical_cell_maps_addresses() {
        let mm = MemManager::new(0, 2, &cfg(1 << 20));
        let id = LmrId { node: 0, idx: 3 };
        mm.register(id, &loc(0, &[(0x1000, 128), (0x8000, 128)]));
        assert_eq!(mm.logical_cell(0x1008), Some((id, 8)));
        assert_eq!(mm.logical_cell(0x8000), Some((id, 128)));
        assert_eq!(mm.logical_cell(0x500), None);
    }

    #[test]
    fn unregister_and_on_free_clean_up() {
        let mm = MemManager::new(0, 2, &cfg(1 << 20));
        let id = LmrId { node: 0, idx: 1 };
        mm.register(id, &loc(0, &[(0x1000, 4096)]));
        mm.on_free(0x1000);
        assert_eq!(mm.stats().resident_bytes, 0);
        mm.register(id, &loc(0, &[(0x2000, 4096)]));
        mm.unregister_lmr(1);
        assert_eq!(mm.stats().resident_bytes, 0);
        assert!(matches!(mm.pin(0x2000, 8, id, 0), PinOutcome::Untracked));
    }

    #[test]
    fn touch_feeds_lru_and_heat() {
        let mm = MemManager::new(0, 3, &cfg(1 << 20));
        let id = LmrId { node: 0, idx: 1 };
        mm.register(id, &loc(0, &[(0x1000, 4096), (0x4000, 4096)]));
        mm.touch(0x1000, 64, 2);
        mm.touch(0x1080, 64, 2);
        mm.touch(0x4000, 64, 0);
        let r = mm.stats();
        assert_eq!(r.lru_hits, 3);
        // The coldest segment is the one at 0x4000? No: 0x4000 touched
        // last, so the 0x1000 segment is colder only by insertion; both
        // were touched. Victim selection still returns something.
        assert!(mm.pick_victim().is_some());
        let st = mm.state.lock();
        let seg = st.segs.get(&SegKey { id, off: 0 }).unwrap();
        assert_eq!(seg.heat_of(2), 2);
        assert_eq!(seg.heat_of(0), 0);
    }

    #[test]
    fn tombstone_relocates_and_scrubs() {
        let mm = MemManager::new(0, 2, &cfg(1 << 20));
        let id = LmrId { node: 0, idx: 1 };
        mm.register(id, &loc(0, &[(0x1000, 4096)]));
        {
            let mut st = mm.state.lock();
            st.by_addr.insert(0x1000, Slot::Moved(4096));
            st.segs.clear();
            st.resident_bytes = 0;
        }
        assert!(matches!(
            mm.pin(0x1800, 8, id, 0x800),
            PinOutcome::Relocated
        ));
        assert!(mm.stats().redirects >= 1);
        // Re-registration scrubs the tombstone.
        mm.register(id, &loc(0, &[(0x1000, 4096)]));
        assert!(matches!(mm.pin(0x1000, 8, id, 0), PinOutcome::Pinned(_)));
    }

    #[test]
    fn pin_blocks_until_transition_ends() {
        let mm = Arc::new(MemManager::new(0, 2, &cfg(1 << 20)));
        let id = LmrId { node: 0, idx: 1 };
        mm.register(id, &loc(0, &[(0x1000, 4096)]));
        let key = SegKey { id, off: 0 };
        let (seg, was) = mm.begin_evict(&key).expect("claim");
        assert_eq!(was, R_RESIDENT);
        let mm2 = Arc::clone(&mm);
        let t = std::thread::spawn(move || {
            // Blocks while Evicting, succeeds once reverted.
            matches!(mm2.pin(0x1000, 8, id, 0), PinOutcome::Pinned(_))
        });
        std::thread::sleep(Duration::from_millis(5));
        mm.abort_transition(&seg, R_RESIDENT);
        assert!(t.join().unwrap());
    }

    #[test]
    fn victim_is_coldest() {
        let mm = MemManager::new(0, 2, &cfg(1));
        let id = LmrId { node: 0, idx: 1 };
        mm.register(id, &loc(0, &[(0x1000, 4096), (0x4000, 4096)]));
        // Touch the first; the second becomes the LRU victim.
        mm.touch(0x1000, 8, 0);
        assert_eq!(mm.pick_victim(), Some(SegKey { id, off: 4096 }));
    }

    #[test]
    fn on_alloc_scrubs_tombstones() {
        let mm = MemManager::new(0, 2, &cfg(1 << 20));
        {
            let mut st = mm.state.lock();
            st.by_addr.insert(0x1000, Slot::Moved(4096));
        }
        // Recycling the range through the allocator service (e.g. for a
        // cross-node LMR that is never register()ed here) must clear the
        // tombstone, or every access would answer Relocated forever.
        mm.on_alloc(&[Chunk {
            addr: 0x1000,
            len: 4096,
        }]);
        assert!(matches!(
            mm.pin_raw_nowait(0x1000, 64).0,
            PinOutcome::Untracked
        ));
    }

    fn pair() -> (Arc<MemManager>, Arc<MemManager>) {
        let a = Arc::new(MemManager::new(0, 2, &cfg(1 << 20)));
        let b = Arc::new(MemManager::new(1, 2, &cfg(1 << 20)));
        let cluster = vec![Arc::clone(&a), Arc::clone(&b)];
        a.set_cluster(cluster.clone());
        b.set_cluster(cluster);
        (a, b)
    }

    #[test]
    fn finish_evict_rolls_back_when_lmr_dies() {
        let (a, b) = pair();
        let id = LmrId { node: 0, idx: 1 };
        a.register(id, &loc(0, &[(0x1000, 4096)]));
        let key = SegKey { id, off: 0 };
        let (seg, _) = a.begin_evict(&key).expect("claim");
        let landed = [Chunk {
            addr: 0x9000,
            len: 4096,
        }];
        let staged = a.stage_hosted(&seg, 1, &landed);
        // The LMR is freed while the migration is mid-flight.
        a.unregister_lmr(1);
        assert!(a.finish_evict(&seg, 1, &staged).is_none());
        // Nothing resurrected on the master, nothing left at the target.
        assert_eq!(a.stats().evicted_bytes, 0);
        assert_eq!(a.stats().resident_bytes, 0);
        assert!(a.state.lock().segs.is_empty());
        assert_eq!(b.stats().hosted_bytes, 0);
        assert!(b.state.lock().by_addr.is_empty());
    }

    #[test]
    fn finish_fetch_back_rolls_back_when_lmr_dies() {
        let (a, b) = pair();
        let id = LmrId { node: 0, idx: 2 };
        let key = SegKey { id, off: 0 };
        let seg = Arc::new(Segment::new(key, 4096, 0x9000, 1, R_REMOTE, 2));
        {
            let mut st = a.state.lock();
            st.segs.insert(key, Arc::clone(&seg));
            st.evicted_bytes = 4096;
        }
        {
            let mut st = b.state.lock();
            st.by_addr.insert(0x9000, Slot::Entry(Arc::clone(&seg)));
            st.hosted_bytes = 4096;
        }
        let seg = a.begin_fetch_back(&key).expect("claim");
        let landed = [Chunk {
            addr: 0x2000,
            len: 4096,
        }];
        let staged = a.stage_local(&seg, &landed);
        a.unregister_lmr(2);
        assert!(a.finish_fetch_back(&seg, 1, &staged).is_none());
        assert_eq!(a.stats().resident_bytes, 0);
        assert_eq!(a.stats().evicted_bytes, 0);
        assert!(a.state.lock().segs.is_empty());
        // The rolled-back stage leaves no pinned pages or address slots.
        assert_eq!(a.stats().pinned_pages, 0);
        assert!(!a.state.lock().by_addr.contains_key(&0x2000));
    }

    #[test]
    fn fetch_back_candidates_respect_budget() {
        let mm = MemManager::new(0, 2, &cfg(8192));
        let id = LmrId { node: 0, idx: 7 };
        // One remote segment of 4096 bytes.
        {
            let mut st = mm.state.lock();
            let seg = Arc::new(Segment::new(
                SegKey { id, off: 0 },
                4096,
                0x9000,
                1,
                R_REMOTE,
                2,
            ));
            st.segs.insert(seg.key, seg);
            st.evicted_bytes = 4096;
        }
        for _ in 0..3 {
            mm.note_map_fault(7);
        }
        assert_eq!(mm.take_fetch_back_candidates(), vec![7]);
        // Counts consumed.
        assert!(mm.take_fetch_back_candidates().is_empty());
    }
}
