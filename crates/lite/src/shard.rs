//! Sharded hash maps for the kernel's hot tables.
//!
//! Every kernel table used to be one `Mutex<HashMap>` — fine at the
//! paper's 10-machine scale, a global serialization point once hundreds
//! of nodes and thousands of client contexts hammer the same kernel
//! (RDMAvisor's argument, and Storm's per-connection-state lesson). A
//! [`ShardedMap`] splits the table into a fixed power-of-two number of
//! shards ([`crate::LiteConfig::kernel_shards`]), each behind its own
//! `parking_lot` mutex, routed by key hash. An op on one key locks
//! exactly one shard; ops on keys in different shards never contend.
//!
//! # Lock-ordering rule
//!
//! Holding two shard locks of the *same* map is forbidden (the closure
//! APIs make it structurally hard), and no caller may invoke anything
//! that takes another kernel lock from inside [`ShardedMap::with_shard_of`]
//! — compute an action inside the closure, act after it returns. This
//! is the rule DESIGN.md §12 documents; the FN_LOCK/FN_BARRIER handlers
//! are the reference pattern.
//!
//! # Iteration
//!
//! [`ShardedMap::for_each_mut`] and friends iterate **snapshot-per-shard**:
//! one shard is locked, visited, and released before the next is taken.
//! There is no global freeze — entries inserted into an already-visited
//! shard during iteration are missed, entries removed from an unvisited
//! one are skipped. Every current consumer (lh invalidation, the mm
//! sweeper, stats gauges) tolerates that weaker snapshot.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use parking_lot::Mutex;

/// A hash map split into power-of-two shards with per-shard locks.
pub struct ShardedMap<K, V> {
    shards: Box<[Mutex<HashMap<K, V>>]>,
    mask: u64,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// Creates a map with `shards` shards, rounded up to a power of two
    /// (minimum 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedMap {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        // A fixed-seed SipHash: shard routing must agree with itself
        // across calls, and must not depend on process-global hasher
        // state (the simulation is otherwise deterministic).
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() & self.mask) as usize]
    }

    /// Inserts, returning the previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard_of(&key).lock().insert(key, value)
    }

    /// Inserts only if the key is absent; `true` when inserted.
    pub fn insert_if_absent(&self, key: K, value: V) -> bool {
        let shard = self.shard_of(&key);
        let mut m = shard.lock();
        match m.entry(key) {
            Entry::Occupied(_) => false,
            Entry::Vacant(e) => {
                e.insert(value);
                true
            }
        }
    }

    /// Removes, returning the value.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard_of(key).lock().remove(key)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard_of(key).lock().contains_key(key)
    }

    /// Runs `f` with the key's shard locked. The single entry point for
    /// entry-style read-modify-write; `f` must not take other kernel
    /// locks (see the module-level lock-ordering rule).
    pub fn with_shard_of<R>(&self, key: &K, f: impl FnOnce(&mut HashMap<K, V>) -> R) -> R {
        f(&mut self.shard_of(key).lock())
    }

    /// Visits every entry mutably, snapshot-per-shard (no global freeze).
    pub fn for_each_mut(&self, mut f: impl FnMut(&K, &mut V)) {
        for shard in self.shards.iter() {
            for (k, v) in shard.lock().iter_mut() {
                f(k, v);
            }
        }
    }

    /// Keeps only entries for which `f` returns true, shard by shard.
    pub fn retain(&self, mut f: impl FnMut(&K, &mut V) -> bool) {
        for shard in self.shards.iter() {
            shard.lock().retain(|k, v| f(k, v));
        }
    }

    /// Total entries (summed across shards; a racy gauge, not a fence).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty (racy, like [`ShardedMap::len`]).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    /// Clone of the value under `key`. The clone is deliberate: handing
    /// out references would pin the shard lock at the caller.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard_of(key).lock().get(key).cloned()
    }

    /// Clones every entry, snapshot-per-shard.
    pub fn snapshot(&self) -> Vec<(K, V)>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            for (k, v) in shard.lock().iter() {
                out.push((k.clone(), v.clone()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedMap::<u64, u64>::new(0).shard_count(), 1);
        assert_eq!(ShardedMap::<u64, u64>::new(1).shard_count(), 1);
        assert_eq!(ShardedMap::<u64, u64>::new(3).shard_count(), 4);
        assert_eq!(ShardedMap::<u64, u64>::new(16).shard_count(), 16);
        assert_eq!(ShardedMap::<u64, u64>::new(17).shard_count(), 32);
    }

    #[test]
    fn basic_map_semantics() {
        let m: ShardedMap<u64, String> = ShardedMap::new(8);
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a".into()), None);
        assert_eq!(m.insert(1, "b".into()), Some("a".into()));
        assert_eq!(m.get(&1), Some("b".into()));
        assert!(m.contains_key(&1));
        assert!(!m.insert_if_absent(1, "c".into()));
        assert!(m.insert_if_absent(2, "c".into()));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(&1), Some("b".into()));
        assert_eq!(m.get(&1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn with_shard_of_entry_style() {
        let m: ShardedMap<u64, Vec<u32>> = ShardedMap::new(4);
        for i in 0..100u32 {
            m.with_shard_of(&(i as u64 % 10), |s| {
                s.entry(i as u64 % 10).or_default().push(i)
            });
        }
        for k in 0..10u64 {
            assert_eq!(m.get(&k).unwrap().len(), 10);
        }
    }

    #[test]
    fn iteration_and_retain_cover_all_shards() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(16);
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        let mut sum = 0u64;
        m.for_each_mut(|_, v| {
            *v += 1;
            sum += 1;
        });
        assert_eq!(sum, 1000);
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.len(), 500);
        assert_eq!(m.snapshot().len(), 500);
        assert_eq!(m.get(&10), Some(21));
        assert_eq!(m.get(&11), None);
    }

    #[test]
    fn concurrent_hammering_stays_consistent() {
        let m: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new(8));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let k = (t * 2_000 + i) % 512;
                        m.insert(k, t);
                        let _ = m.get(&k);
                        m.with_shard_of(&k, |s| {
                            if let Some(v) = s.get_mut(&k) {
                                *v = v.wrapping_add(1);
                            }
                        });
                        if i % 7 == 0 {
                            m.remove(&k);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // No panics, no deadlocks, and the map is still coherent.
        assert!(m.len() <= 512);
    }
}
