//! Deterministic history checking for LITE synchronization — the
//! correctness oracle behind the chaos tests.
//!
//! The chaos layer (PR 2) injects seeded faults and asserts *liveness*
//! (everything completes) and counter equalities. Neither catches a
//! stranded lock, a double-granted waiter, or a lost wakeup that happens
//! to terminate. This module closes that gap with three pieces:
//!
//! 1. **History capture.** When [`crate::LiteCluster::record_history`]
//!    is armed, every synchronization and atomic operation appends one
//!    [`HistOp`] — operation kind and arguments, return value, success
//!    flag, and its virtual-time `[invoke, response]` interval — to a
//!    shared [`HistoryLog`]. Lock/unlock/barrier and `lt_read`/`lt_write`
//!    record at the API layer; fetch-add/compare-and-swap record at the
//!    datapath `post()` so lock-word traffic is captured too.
//!
//! 2. **A Wing–Gong linearizability checker.** [`History::check`]
//!    partitions the history by key (P-compositionality: each lock word,
//!    atomic cell, barrier id, and `(LMR, offset, len)` register is
//!    checked independently) and searches for a linearization of each
//!    partition against a sequential spec: a mutex for
//!    `lt_lock`/`lt_unlock`, a 64-bit cell for
//!    `lt_fetch_add`/`lt_test_set`, a last-write-wins register (by data
//!    fingerprint) for `lt_read`/`lt_write`, and a closed-form
//!    generation check for `lt_barrier`. Failed operations are treated
//!    as *pending*: they may have taken effect at any point after their
//!    invocation, or never — both branches are explored, so fault-path
//!    ambiguity can never produce a false violation.
//!
//! 3. **Seeded schedule exploration.** [`explore`] reruns a workload
//!    across many seeds — [`run_mixed`] builds the canonical mixed
//!    lock / fetch-add / test-set / barrier / read / write workload
//!    under a seeded [`FaultPlan`] — and feeds every history through the
//!    checker, keeping the failing histories for replay.
//!
//! 4. **Transaction-level serializability.** The `lite-txn` OCC layer
//!    records whole transactions — version-checked read set, staged
//!    write set, outcome — into a [`TxnLog`], and
//!    [`TxnHistory::check`] runs the same interval-respecting
//!    Wing–Gong search at transaction granularity against a multi-key
//!    map spec. Committed transactions must take effect atomically at
//!    one point inside their interval; cleanly aborted ones must have
//!    no effect; [`TxnOutcome::Indeterminate`] ones (committer crashed
//!    before learning the decision) are explored as pending. This is
//!    the oracle that catches write skew, lost updates, and dirty
//!    reads that per-key linearizability cannot see.
//!
//! Soundness of the intervals rests on a substrate guarantee added with
//! this module: conflicting atomics on one node produce completion
//! stamps that are monotone in actual apply order (see
//! `PhysMem::fetch_add_u64_stamped`). Without it, host-thread scheduling
//! could order two virtual-time intervals against the order the memory
//! system actually applied them and flag a correct run.
//!
//! Histories record *completed calls only* (the workload joins its
//! threads), and the register spec assumes the checked locations start
//! zero-filled — arm the log before the first synchronization op.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Duration;

use parking_lot::Mutex;
use rnic::{FaultPlan, FaultRule, IbConfig, NodeId};
use simnet::{Ctx, Nanos};

use crate::cluster::LiteCluster;
use crate::config::LiteConfig;
use crate::error::{LiteError, LiteResult};
use crate::lmr::Perm;
use crate::qos::QosConfig;

// ---------------------------------------------------------------------
// History model
// ---------------------------------------------------------------------

/// The partition key of one operation — P-compositionality checks each
/// key's subhistory independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Key {
    /// A distributed lock word (owner node + cell address).
    Lock {
        /// Owner node of the lock.
        node: NodeId,
        /// Physical address of the lock word on the owner.
        addr: u64,
    },
    /// A 64-bit atomic cell (fetch-add / test-set target).
    Cell {
        /// Node storing the cell.
        node: NodeId,
        /// Physical address of the cell.
        addr: u64,
    },
    /// A 64-bit atomic cell identified by its *logical* location — the
    /// owning LMR and the cell's byte offset within it. Used for cells
    /// in tracked (tierable) LMR chunks: the physical address changes
    /// when the chunk migrates, this key does not, so the cell's
    /// history stays joined across eviction/fetch-back/rebalance.
    LogicalCell {
        /// LMR-id node half.
        node: u32,
        /// LMR-id index half.
        idx: u32,
        /// Byte offset of the cell within the LMR.
        off: u64,
    },
    /// A barrier id (coordinated by the manager node).
    Barrier {
        /// The barrier id.
        id: u64,
    },
    /// One `(LMR, offset, len)` register accessed by `lt_read`/`lt_write`.
    /// Overlapping-but-unequal ranges form distinct keys and are not
    /// cross-checked (documented limitation).
    Reg {
        /// LMR-id node half.
        node: u32,
        /// LMR-id index half.
        idx: u32,
        /// Byte offset within the LMR.
        offset: u64,
        /// Access length in bytes.
        len: u64,
    },
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Lock { node, addr } => write!(f, "lock:{node}:{addr:#x}"),
            Key::Cell { node, addr } => write!(f, "cell:{node}:{addr:#x}"),
            Key::LogicalCell { node, idx, off } => write!(f, "cell:{node}.{idx}+{off:#x}"),
            Key::Barrier { id } => write!(f, "barrier:{id}"),
            Key::Reg {
                node,
                idx,
                offset,
                len,
            } => write!(f, "reg:{node}.{idx}+{offset}x{len}"),
        }
    }
}

/// What one recorded operation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `lt_lock` (acquire).
    Lock,
    /// `lt_unlock` (release).
    Unlock,
    /// `lt_fetch_add`; `ret` is the previous cell value.
    FetchAdd {
        /// The addend.
        delta: u64,
    },
    /// `lt_test_set` (compare-and-swap); `ret` is the previous value.
    TestSet {
        /// Expected previous value.
        expect: u64,
        /// Value stored on match.
        new: u64,
    },
    /// `lt_barrier` arrival.
    Barrier {
        /// Participant count of the barrier.
        count: u32,
    },
    /// `lt_write`; `fp` fingerprints the written bytes.
    Write {
        /// Data fingerprint (see [`fingerprint`]).
        fp: u64,
    },
    /// `lt_read`; `fp` fingerprints the bytes returned.
    Read {
        /// Data fingerprint (see [`fingerprint`]).
        fp: u64,
    },
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Lock => write!(f, "lock"),
            OpKind::Unlock => write!(f, "unlock"),
            OpKind::FetchAdd { delta } => write!(f, "fetch_add+{delta}"),
            OpKind::TestSet { expect, new } => write!(f, "test_set {expect}->{new}"),
            OpKind::Barrier { count } => write!(f, "barrier/{count}"),
            OpKind::Write { fp } => write!(f, "write fp={fp:#x}"),
            OpKind::Read { fp } => write!(f, "read fp={fp:#x}"),
        }
    }
}

/// One invocation/response pair in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistOp {
    /// The invoking process: `(node << 32) | pid` (pid 0 = the kernel
    /// datapath itself).
    pub proc: u64,
    /// Partition key.
    pub key: Key,
    /// Operation and arguments.
    pub kind: OpKind,
    /// Return value (previous cell value for atomics; 0 otherwise).
    pub ret: u64,
    /// Whether the call returned `Ok`. Failed calls are *pending*: the
    /// checker explores both "took effect" and "never happened".
    pub ok: bool,
    /// Virtual-time invocation stamp.
    pub invoke: Nanos,
    /// Virtual-time response stamp.
    pub response: Nanos,
}

/// Builds the `proc` identity for a [`HistOp`].
pub fn proc_id(node: NodeId, pid: u32) -> u64 {
    ((node as u64) << 32) | pid as u64
}

/// FNV-1a fingerprint of a data buffer for the register spec. All-zero
/// buffers map to 0 (the fingerprint of untouched memory); anything else
/// is forced non-zero so a fresh read can never alias a real write.
pub fn fingerprint(data: &[u8]) -> u64 {
    if data.iter().all(|&b| b == 0) {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h | 1
}

/// The shared, append-only log a cluster records [`HistOp`]s into.
#[derive(Default)]
pub struct HistoryLog {
    ops: Mutex<Vec<HistOp>>,
}

impl HistoryLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one operation (called from API and datapath hot paths).
    pub fn record(&self, op: HistOp) {
        self.ops.lock().push(op);
    }

    /// Number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.ops.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.lock().is_empty()
    }

    /// Drains the log into a [`History`] (subsequent records start a new
    /// history).
    pub fn take(&self) -> History {
        History {
            ops: std::mem::take(&mut *self.ops.lock()),
        }
    }

    /// Copies the current contents without draining.
    pub fn snapshot(&self) -> History {
        History {
            ops: self.ops.lock().clone(),
        }
    }
}

/// A complete recorded history, ready for checking or replay.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// The recorded operations, in recording order.
    pub ops: Vec<HistOp>,
}

impl History {
    /// Partitions by key and checks every partition against its
    /// sequential spec.
    pub fn check(&self) -> CheckOutcome {
        let mut parts: HashMap<Key, Vec<HistOp>> = HashMap::new();
        for op in &self.ops {
            parts.entry(op.key).or_default().push(*op);
        }
        let mut outcome = CheckOutcome {
            partitions: parts.len(),
            ..Default::default()
        };
        // Deterministic report order regardless of hash iteration.
        let mut keys: Vec<Key> = parts.keys().copied().collect();
        keys.sort_by_key(|k| format!("{k}"));
        for key in keys {
            let ops = &parts[&key];
            match check_partition(key, ops) {
                PartitionResult::Ok => outcome.checked += 1,
                PartitionResult::Skipped(why) => {
                    outcome.skipped += 1;
                    outcome.skip_reasons.push((key, why));
                }
                PartitionResult::Violation(reason) => {
                    outcome.checked += 1;
                    outcome.violations.push(Violation {
                        key,
                        reason,
                        ops: ops.clone(),
                    });
                }
            }
        }
        outcome
    }

    /// Hand-rolled JSON dump (CI artifacts, bench reports).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64 + self.ops.len() * 96);
        s.push_str("{\"ops\":[");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"proc\":{},\"key\":\"{}\",\"kind\":\"{}\",\"ret\":{},\"ok\":{},\"invoke\":{},\"response\":{}}}",
                op.proc, op.key, op.kind, op.ret, op.ok, op.invoke, op.response
            ));
        }
        s.push_str("]}");
        s
    }
}

// ---------------------------------------------------------------------
// Check outcome
// ---------------------------------------------------------------------

/// One partition the checker rejected.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The partition's key.
    pub key: Key,
    /// Why no linearization exists.
    pub reason: String,
    /// The partition's operations (for replay / dumps).
    pub ops: Vec<HistOp>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.key, self.reason)?;
        for op in &self.ops {
            writeln!(
                f,
                "  proc {:#x} {} -> {} ok={} [{}, {}]",
                op.proc, op.kind, op.ret, op.ok, op.invoke, op.response
            )?;
        }
        Ok(())
    }
}

/// Result of checking one history.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    /// Partitions in the history.
    pub partitions: usize,
    /// Partitions fully checked (including violated ones).
    pub checked: usize,
    /// Partitions skipped as inconclusive (failed writes or failed
    /// barrier arrivals make the spec ambiguous, or the search budget
    /// ran out) — never counted as violations.
    pub skipped: usize,
    /// Why each skipped partition was skipped.
    pub skip_reasons: Vec<(Key, String)>,
    /// Partitions with no valid linearization.
    pub violations: Vec<Violation>,
}

impl CheckOutcome {
    /// Whether every checked partition linearized.
    pub fn is_linearizable(&self) -> bool {
        self.violations.is_empty()
    }
}

// ---------------------------------------------------------------------
// Sequential specs + the Wing–Gong search
// ---------------------------------------------------------------------

/// Abstract state of one partition's sequential spec.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SpecState {
    /// Free / held-by-proc mutex.
    Mutex(Option<u64>),
    /// A 64-bit cell value.
    Cell(u64),
    /// Last written fingerprint (0 = untouched zero-filled memory).
    Reg(u64),
}

/// Applies `op` to `state`; `None` when the spec forbids it there.
/// Failed (pending) atomics apply their effect while ignoring the
/// (meaningless) return value.
fn apply(state: &SpecState, op: &HistOp) -> Option<SpecState> {
    match (state, &op.kind) {
        (SpecState::Mutex(holder), OpKind::Lock) => match holder {
            None => Some(SpecState::Mutex(Some(op.proc))),
            Some(_) => None,
        },
        (SpecState::Mutex(holder), OpKind::Unlock) => {
            if *holder == Some(op.proc) {
                Some(SpecState::Mutex(None))
            } else {
                None
            }
        }
        (SpecState::Cell(v), OpKind::FetchAdd { delta }) => {
            if op.ok && op.ret != *v {
                None
            } else {
                Some(SpecState::Cell(v.wrapping_add(*delta)))
            }
        }
        (SpecState::Cell(v), OpKind::TestSet { expect, new }) => {
            if op.ok && op.ret != *v {
                None
            } else {
                Some(SpecState::Cell(if v == expect { *new } else { *v }))
            }
        }
        (SpecState::Reg(_), OpKind::Write { fp }) => Some(SpecState::Reg(*fp)),
        (SpecState::Reg(cur), OpKind::Read { fp }) => {
            if *fp == *cur {
                Some(SpecState::Reg(*cur))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Exploration cap: total `apply` attempts per partition before the
/// search declares itself inconclusive instead of running away.
const SEARCH_BUDGET: usize = 4_000_000;

enum PartitionResult {
    Ok,
    Skipped(String),
    Violation(String),
}

fn check_partition(key: Key, ops: &[HistOp]) -> PartitionResult {
    match key {
        Key::Barrier { .. } => check_barrier(ops),
        Key::Lock { .. } => wing_gong(ops, SpecState::Mutex(None)),
        Key::Cell { .. } | Key::LogicalCell { .. } => wing_gong(ops, SpecState::Cell(0)),
        Key::Reg { .. } => {
            // A failed write may have applied some pieces of a
            // multi-chunk range: the resulting bytes match neither the
            // old nor the new fingerprint, so the register spec cannot
            // model it. Failed reads carry no constraint and no effect.
            if ops
                .iter()
                .any(|o| !o.ok && matches!(o.kind, OpKind::Write { .. }))
            {
                return PartitionResult::Skipped("failed write (possible partial data)".into());
            }
            let ok_or_write: Vec<HistOp> = ops.iter().filter(|o| o.ok).copied().collect();
            wing_gong(&ok_or_write, SpecState::Reg(0))
        }
    }
}

/// Barrier check (closed form, no search): generations are disjoint
/// groups of exactly `count` arrivals, and within a generation every
/// interval must contain the release point — `max(invoke) <=
/// min(response)`. A failed arrival may or may not have been counted by
/// the manager, which shifts every later generation boundary, so any
/// failure makes the partition inconclusive.
fn check_barrier(ops: &[HistOp]) -> PartitionResult {
    if ops.iter().any(|o| !o.ok) {
        return PartitionResult::Skipped("failed barrier arrival (generation ambiguity)".into());
    }
    let mut count = None;
    for op in ops {
        let OpKind::Barrier { count: c } = op.kind else {
            return PartitionResult::Violation("non-barrier op under a barrier key".into());
        };
        match count {
            None => count = Some(c),
            Some(prev) if prev != c => {
                return PartitionResult::Violation(format!(
                    "mismatched participant counts {prev} vs {c}"
                ));
            }
            _ => {}
        }
    }
    let Some(count) = count else {
        return PartitionResult::Ok; // empty partition
    };
    if count == 0 {
        return PartitionResult::Violation("zero participant count".into());
    }
    if !ops.len().is_multiple_of(count as usize) {
        return PartitionResult::Violation(format!(
            "{} successful arrivals is not a multiple of count {count}",
            ops.len()
        ));
    }
    let mut sorted: Vec<&HistOp> = ops.iter().collect();
    sorted.sort_by_key(|o| (o.response, o.invoke));
    for (g, gen) in sorted.chunks(count as usize).enumerate() {
        let max_invoke = gen.iter().map(|o| o.invoke).max().unwrap_or(0);
        let min_response = gen.iter().map(|o| o.response).min().unwrap_or(0);
        if max_invoke > min_response {
            return PartitionResult::Violation(format!(
                "generation {g} released before all {count} participants arrived \
                 (max invoke {max_invoke} > min response {min_response})"
            ));
        }
    }
    PartitionResult::Ok
}

/// Compact bitset over partition ops (partitions can exceed 64 ops).
type Bits = Box<[u64]>;

fn bit_get(b: &Bits, i: usize) -> bool {
    b[i / 64] >> (i % 64) & 1 != 0
}

fn bit_clear(b: &mut Bits, i: usize) {
    b[i / 64] &= !(1u64 << (i % 64));
}

fn bit_set(b: &mut Bits, i: usize) {
    b[i / 64] |= 1u64 << (i % 64);
}

/// Wing–Gong search: repeatedly pick a *minimal* remaining op (one whose
/// invocation precedes every remaining effective response) and try to
/// linearize it next; memoize (remaining-set, state) pairs. Failed ops
/// have effective response ∞ and may also be dropped without applying.
fn wing_gong(ops: &[HistOp], init: SpecState) -> PartitionResult {
    let mut ops: Vec<HistOp> = ops.to_vec();
    ops.sort_by_key(|o| (o.invoke, o.response, o.proc));
    let n = ops.len();
    if n == 0 {
        return PartitionResult::Ok;
    }
    let eff_resp: Vec<Nanos> = ops
        .iter()
        .map(|o| if o.ok { o.response } else { Nanos::MAX })
        .collect();
    let mut remaining: Bits = vec![u64::MAX; n.div_ceil(64)].into_boxed_slice();
    for i in n..remaining.len() * 64 {
        bit_clear(&mut remaining, i);
    }
    let mut memo: HashSet<(Bits, SpecState)> = HashSet::new();
    let mut budget = SEARCH_BUDGET;
    match search(
        &ops,
        &eff_resp,
        &mut remaining,
        init,
        &mut memo,
        &mut budget,
    ) {
        Some(true) => PartitionResult::Ok,
        Some(false) => PartitionResult::Violation("no valid linearization".into()),
        None => PartitionResult::Skipped("search budget exhausted".into()),
    }
}

/// Returns `Some(linearizable)` or `None` when the budget ran out.
fn search(
    ops: &[HistOp],
    eff_resp: &[Nanos],
    remaining: &mut Bits,
    state: SpecState,
    memo: &mut HashSet<(Bits, SpecState)>,
    budget: &mut usize,
) -> Option<bool> {
    if remaining.iter().all(|&w| w == 0) {
        return Some(true);
    }
    if !memo.insert((remaining.clone(), state.clone())) {
        return Some(false);
    }
    let min_resp = (0..ops.len())
        .filter(|&i| bit_get(remaining, i))
        .map(|i| eff_resp[i])
        .min()
        .unwrap_or(Nanos::MAX);
    for i in 0..ops.len() {
        if !bit_get(remaining, i) || ops[i].invoke > min_resp {
            continue;
        }
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        // Branch 1: the op takes effect here.
        if let Some(next) = apply(&state, &ops[i]) {
            bit_clear(remaining, i);
            let r = search(ops, eff_resp, remaining, next, memo, budget);
            bit_set(remaining, i);
            match r {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
        }
        // Branch 2: a failed op may simply never have happened.
        if !ops[i].ok {
            bit_clear(remaining, i);
            let r = search(ops, eff_resp, remaining, state.clone(), memo, budget);
            bit_set(remaining, i);
            match r {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
        }
    }
    Some(false)
}

// ---------------------------------------------------------------------
// Transaction-level serializability
// ---------------------------------------------------------------------

/// Outcome of one transaction attempt, as known to its issuer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// `commit()` returned success: the write set is durable and was
    /// applied atomically.
    Committed,
    /// The transaction aborted cleanly (lock conflict, validation
    /// failure, or explicit abort): no write may be visible, and the
    /// read set carries no constraint (validation rejected it).
    Aborted,
    /// The issuer never learned the decision — committer crash or lost
    /// completion mid-protocol. The checker explores both "committed at
    /// some point after invocation" and "never happened".
    Indeterminate,
}

/// One recorded transaction: the version-checked read set and staged
/// write set, with the `[invoke, response]` interval spanning the whole
/// attempt (first buffered read to the commit/abort return).
#[derive(Debug, Clone)]
pub struct TxnOp {
    /// The issuing process (see [`proc_id`]).
    pub proc: u64,
    /// `(record key, observed value)` pairs the commit validated.
    pub reads: Vec<(u64, u64)>,
    /// `(record key, new value)` pairs the commit applied.
    pub writes: Vec<(u64, u64)>,
    /// How the attempt ended.
    pub outcome: TxnOutcome,
    /// Virtual-time invocation stamp.
    pub invoke: Nanos,
    /// Virtual-time response stamp.
    pub response: Nanos,
}

/// Shared, append-only log of transactions (armed by the `lite-txn`
/// layer; one [`TxnOp`] per `commit()`/`abort()` return).
#[derive(Default)]
pub struct TxnLog {
    txns: Mutex<Vec<TxnOp>>,
}

impl TxnLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one finished transaction.
    pub fn record(&self, txn: TxnOp) {
        self.txns.lock().push(txn);
    }

    /// Number of transactions recorded so far.
    pub fn len(&self) -> usize {
        self.txns.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.txns.lock().is_empty()
    }

    /// Drains the log into a [`TxnHistory`].
    pub fn take(&self) -> TxnHistory {
        TxnHistory {
            txns: std::mem::take(&mut *self.txns.lock()),
        }
    }
}

/// Result of checking one transaction history.
#[derive(Debug, Clone, Default)]
pub struct TxnCheckOutcome {
    /// Transactions in the history.
    pub total: usize,
    /// Committed transactions.
    pub committed: usize,
    /// Cleanly aborted transactions (excluded from the search).
    pub aborted: usize,
    /// Indeterminate transactions (explored as pending).
    pub indeterminate: usize,
    /// Why the history is not serializable (`None` = serializable).
    pub violation: Option<String>,
    /// The search budget ran out before a verdict; `violation` is
    /// `None` but the history is *not* certified.
    pub inconclusive: bool,
}

impl TxnCheckOutcome {
    /// Whether a serial witness order was found (or the history is
    /// trivially empty). `false` when violated *or* inconclusive.
    pub fn is_serializable(&self) -> bool {
        self.violation.is_none() && !self.inconclusive
    }
}

/// A complete transaction history, ready for checking.
#[derive(Debug, Clone, Default)]
pub struct TxnHistory {
    /// The recorded transactions, in recording order.
    pub txns: Vec<TxnOp>,
}

impl TxnHistory {
    /// Strict-serializability check: searches for a serial order of the
    /// committed (and optionally the indeterminate) transactions that
    /// respects real-time — a transaction whose response precedes
    /// another's invocation must serialize first — and in which every
    /// committed read set matches the map state at the transaction's
    /// serialization point. Keys absent from the map read as 0 (records
    /// start zero-filled).
    pub fn check(&self) -> TxnCheckOutcome {
        let mut out = TxnCheckOutcome {
            total: self.txns.len(),
            ..Default::default()
        };
        for t in &self.txns {
            match t.outcome {
                TxnOutcome::Committed => out.committed += 1,
                TxnOutcome::Aborted => out.aborted += 1,
                TxnOutcome::Indeterminate => out.indeterminate += 1,
            }
        }
        let mut txns: Vec<TxnOp> = self
            .txns
            .iter()
            .filter(|t| t.outcome != TxnOutcome::Aborted)
            .cloned()
            .collect();
        txns.sort_by_key(|a| (a.invoke, a.response, a.proc));
        let n = txns.len();
        if n == 0 {
            return out;
        }
        let eff_resp: Vec<Nanos> = txns
            .iter()
            .map(|t| match t.outcome {
                TxnOutcome::Committed => t.response,
                _ => Nanos::MAX,
            })
            .collect();
        let mut remaining: Bits = vec![u64::MAX; n.div_ceil(64)].into_boxed_slice();
        for i in n..remaining.len() * 64 {
            bit_clear(&mut remaining, i);
        }
        let mut memo: HashSet<(Bits, Vec<(u64, u64)>)> = HashSet::new();
        let mut budget = SEARCH_BUDGET;
        match txn_search(
            &txns,
            &eff_resp,
            &mut remaining,
            Vec::new(),
            &mut memo,
            &mut budget,
        ) {
            Some(true) => {}
            Some(false) => {
                out.violation = Some(format!(
                    "no serial order explains {} committed + {} indeterminate txns",
                    out.committed, out.indeterminate
                ));
            }
            None => out.inconclusive = true,
        }
        out
    }

    /// Hand-rolled JSON dump (CI artifacts, bench reports).
    pub fn to_json(&self) -> String {
        let pairs = |set: &[(u64, u64)]| {
            let body: Vec<String> = set.iter().map(|(k, v)| format!("[{k},{v}]")).collect();
            format!("[{}]", body.join(","))
        };
        let mut s = String::with_capacity(64 + self.txns.len() * 128);
        s.push_str("{\"txns\":[");
        for (i, t) in self.txns.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"proc\":{},\"reads\":{},\"writes\":{},\"outcome\":\"{:?}\",\"invoke\":{},\"response\":{}}}",
                t.proc,
                pairs(&t.reads),
                pairs(&t.writes),
                t.outcome,
                t.invoke,
                t.response
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Map-state lookup: absent keys read as 0.
fn txn_state_get(state: &[(u64, u64)], key: u64) -> u64 {
    state
        .binary_search_by_key(&key, |e| e.0)
        .map(|i| state[i].1)
        .unwrap_or(0)
}

/// Applies one transaction to the sorted map state: every read must
/// observe the current value, then the writes land atomically. Zero
/// values are normalized to absence so memoization cannot split states
/// that are observationally identical.
fn txn_apply(state: &[(u64, u64)], t: &TxnOp) -> Option<Vec<(u64, u64)>> {
    for &(k, v) in &t.reads {
        if txn_state_get(state, k) != v {
            return None;
        }
    }
    let mut next = state.to_vec();
    for &(k, v) in &t.writes {
        match next.binary_search_by_key(&k, |e| e.0) {
            Ok(i) => next[i].1 = v,
            Err(i) => next.insert(i, (k, v)),
        }
    }
    next.retain(|e| e.1 != 0);
    Some(next)
}

/// The txn-level Wing–Gong step, structurally identical to [`search`]
/// with the multi-key map spec: committed txns must take effect,
/// indeterminate ones may also be dropped.
fn txn_search(
    txns: &[TxnOp],
    eff_resp: &[Nanos],
    remaining: &mut Bits,
    state: Vec<(u64, u64)>,
    memo: &mut HashSet<(Bits, Vec<(u64, u64)>)>,
    budget: &mut usize,
) -> Option<bool> {
    if remaining.iter().all(|&w| w == 0) {
        return Some(true);
    }
    if !memo.insert((remaining.clone(), state.clone())) {
        return Some(false);
    }
    let min_resp = (0..txns.len())
        .filter(|&i| bit_get(remaining, i))
        .map(|i| eff_resp[i])
        .min()
        .unwrap_or(Nanos::MAX);
    for i in 0..txns.len() {
        if !bit_get(remaining, i) || txns[i].invoke > min_resp {
            continue;
        }
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        // Branch 1: the transaction serializes here.
        if let Some(next) = txn_apply(&state, &txns[i]) {
            bit_clear(remaining, i);
            let r = txn_search(txns, eff_resp, remaining, next, memo, budget);
            bit_set(remaining, i);
            match r {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
        }
        // Branch 2: an indeterminate commit may never have happened.
        if txns[i].outcome == TxnOutcome::Indeterminate {
            bit_clear(remaining, i);
            let r = txn_search(txns, eff_resp, remaining, state.clone(), memo, budget);
            bit_set(remaining, i);
            match r {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
        }
    }
    Some(false)
}

// ---------------------------------------------------------------------
// Seeded schedule exploration
// ---------------------------------------------------------------------

/// The canonical mixed synchronization workload for schedule
/// exploration: `threads` workers spread round-robin over `nodes` nodes
/// share one distributed lock, one fetch-add counter, one test-set
/// cell, one lock-protected 8-byte register, and one (reused) barrier
/// id.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    /// Cluster size (≥ 2).
    pub nodes: usize,
    /// Worker threads (one handle each, round-robin over nodes).
    pub threads: usize,
    /// Rounds per worker.
    pub rounds: usize,
    /// Hit the barrier every this many rounds (0 = never).
    pub barrier_every: usize,
    /// Per-WR drop probability of the seeded fault plan (0.0 = no plan).
    pub drop_prob: f64,
    /// Cap on fired drops.
    pub max_drops: u64,
    /// Per-WR delay probability (same plan).
    pub delay_prob: f64,
    /// Injected delay in virtual nanoseconds.
    pub delay_ns: Nanos,
    /// Per-node physical-memory budget handed to `lite::mm`
    /// (`LiteConfig::mem_budget_bytes`); 0 leaves tiering off. A small
    /// budget forces chunk eviction and fetch-back *under* the recorded
    /// workload, so the checker also proves histories stay linearizable
    /// across migration.
    pub mem_budget: u64,
}

impl Default for MixedWorkload {
    fn default() -> Self {
        MixedWorkload {
            nodes: 3,
            threads: 3,
            rounds: 8,
            barrier_every: 4,
            drop_prob: 0.0,
            max_drops: 0,
            delay_prob: 0.2,
            delay_ns: 3_000,
            mem_budget: 0,
        }
    }
}

/// splitmix64 — deterministic per-(seed, thread, round) jitter without
/// pulling RNG state into the workload.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Runs the mixed workload once under `seed` (fault schedule + virtual
/// think-time jitter) and returns the recorded history.
pub fn run_mixed(seed: u64, w: &MixedWorkload) -> LiteResult<History> {
    let config = LiteConfig {
        op_timeout: Duration::from_millis(400),
        stats_sample_rate: 1_000,
        mem_budget_bytes: w.mem_budget,
        // Sweep aggressively when tiering is on so a short run still
        // migrates chunks under the recorded ops.
        mm_sweep_interval: if w.mem_budget > 0 {
            Duration::from_micros(200)
        } else {
            LiteConfig::default().mm_sweep_interval
        },
        ..Default::default()
    };
    let cluster = LiteCluster::start_with(
        IbConfig::with_nodes(w.nodes.max(2)),
        config,
        QosConfig::default(),
    )?;
    let log = cluster.record_history()?;
    if w.drop_prob > 0.0 || w.delay_prob > 0.0 {
        let mut plan = FaultPlan::seeded(seed);
        if w.drop_prob > 0.0 {
            plan = plan.with(FaultRule::DropWr {
                src: None,
                dst: None,
                prob: w.drop_prob,
                max_drops: w.max_drops,
            });
        }
        if w.delay_prob > 0.0 {
            plan = plan.with(FaultRule::DelayWr {
                src: None,
                dst: None,
                prob: w.delay_prob,
                delay_ns: w.delay_ns,
            });
        }
        cluster.fabric().install_fault_plan(plan);
    }

    // Shared state: the lock lives on the last node, the cells + data
    // register on node 1 (distinct from the manager when possible).
    // Under a memory budget the LMR's storage is co-located with its
    // master record (the attach node) — `lite::mm` only tiers
    // locally-mastered chunks, so this is what puts the recorded ops on
    // evictable memory.
    let owner = w.nodes.max(2) - 1;
    let mut setup = cluster.attach_kernel(owner)?;
    let mut sctx = Ctx::new();
    let lock = setup.lt_create_lock(&mut sctx)?;
    let cells_node = if w.mem_budget > 0 {
        owner
    } else {
        1 % w.nodes.max(2)
    };
    let _master = setup.lt_malloc(&mut sctx, cells_node, 4096, "verify.cells", Perm::RW)?;

    let threads = w.threads.max(1);
    std::thread::scope(|scope| -> LiteResult<()> {
        let mut handles = Vec::new();
        for t in 0..threads {
            let cluster = &cluster;
            let w = w.clone();
            handles.push(scope.spawn(move || -> LiteResult<()> {
                let node = t % w.nodes.max(2);
                let mut h = cluster.attach_kernel(node)?;
                let mut ctx = Ctx::new();
                let lh = h.lt_map(&mut ctx, "verify.cells")?;
                for r in 0..w.rounds {
                    ctx.work(mix(seed ^ (t as u64) << 32 ^ r as u64) % 2_000);
                    // Lock-protected read-modify-write of the data
                    // register at offset 64: couples the mutex spec to
                    // the register spec — any mutual-exclusion hole
                    // shows up as a torn register linearization too.
                    if h.lt_lock(&mut ctx, lock).is_ok() {
                        let mut buf = [0u8; 8];
                        let _ = h.lt_read(&mut ctx, lh, 64, &mut buf);
                        let tag = ((t as u64 + 1) << 32 | (r as u64 + 1)).to_le_bytes();
                        let _ = h.lt_write(&mut ctx, lh, 64, &tag);
                        let _ = h.lt_fetch_add(&mut ctx, lh, 0, (t + 1) as u64);
                        let _ = h.lt_unlock(&mut ctx, lock);
                    }
                    // Unprotected atomics on their own cells.
                    let _ = h.lt_test_set(&mut ctx, lh, 8, r as u64, r as u64 + 1);
                    let _ = h.lt_fetch_add(&mut ctx, lh, 16, 1);
                    if w.barrier_every > 0 && (r + 1) % w.barrier_every == 0 {
                        // Same id every time: generations must still
                        // separate cleanly (id-reuse is checked).
                        let _ = h.lt_barrier(&mut ctx, 7, threads as u32);
                    }
                }
                Ok(())
            }));
        }
        let mut first_err = None;
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err = first_err.or(Some(LiteError::Internal("workload thread panicked")))
                }
            }
        }
        match first_err {
            // Op-level errors inside the loop are tolerated (recorded as
            // failed history ops); only setup errors surface here.
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;
    // With tiering requested, refuse to certify a run where the
    // machinery never engaged: the budget sits below the cells LMR, so
    // the sweeper must have evicted at least once (usually mid-run;
    // the deadline only covers a slow first sweep).
    if w.mem_budget > 0 {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while cluster.kernel(owner).mm_stats().evictions == 0 {
            if std::time::Instant::now() >= deadline {
                return Err(LiteError::Internal("tiering enabled but nothing evicted"));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    cluster.fabric().clear_fault_plan();
    Ok(log.take())
}

/// One seed's worth of exploration.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// Checker outcome for the seed's history.
    pub outcome: CheckOutcome,
    /// The history itself (kept for replay / artifact dumps).
    pub history: History,
}

/// Aggregate of one [`explore`] sweep.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Per-seed outcomes, in seed order.
    pub reports: Vec<SeedReport>,
    /// Seeds whose workload failed to run at all (setup errors).
    pub run_errors: Vec<(u64, LiteError)>,
}

impl ExploreReport {
    /// Whether every seed produced a linearizable history.
    pub fn all_linearizable(&self) -> bool {
        self.reports.iter().all(|r| r.outcome.is_linearizable())
    }

    /// The seeds whose histories were rejected.
    pub fn failing_seeds(&self) -> Vec<u64> {
        self.reports
            .iter()
            .filter(|r| !r.outcome.is_linearizable())
            .map(|r| r.seed)
            .collect()
    }
}

/// Runs `run` once per seed and checks every resulting history. `run`
/// is any seeded workload returning a [`History`]; pair with
/// [`run_mixed`] for the canonical sweep.
pub fn explore<F>(seeds: impl IntoIterator<Item = u64>, mut run: F) -> ExploreReport
where
    F: FnMut(u64) -> LiteResult<History>,
{
    let mut report = ExploreReport::default();
    for seed in seeds {
        match run(seed) {
            Ok(history) => {
                let outcome = history.check();
                report.reports.push(SeedReport {
                    seed,
                    outcome,
                    history,
                });
            }
            Err(e) => report.run_errors.push((seed, e)),
        }
    }
    report
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    const L: Key = Key::Lock { node: 0, addr: 64 };
    const C: Key = Key::Cell { node: 0, addr: 128 };

    fn op(
        proc: u64,
        key: Key,
        kind: OpKind,
        ret: u64,
        ok: bool,
        invoke: Nanos,
        response: Nanos,
    ) -> HistOp {
        HistOp {
            proc,
            key,
            kind,
            ret,
            ok,
            invoke,
            response,
        }
    }

    fn check(ops: Vec<HistOp>) -> CheckOutcome {
        History { ops }.check()
    }

    #[test]
    fn sequential_lock_history_linearizes() {
        let out = check(vec![
            op(1, L, OpKind::Lock, 0, true, 0, 10),
            op(1, L, OpKind::Unlock, 0, true, 20, 30),
            op(2, L, OpKind::Lock, 0, true, 40, 50),
            op(2, L, OpKind::Unlock, 0, true, 60, 70),
        ]);
        assert!(out.is_linearizable(), "{:?}", out.violations);
        assert_eq!(out.checked, 1);
    }

    #[test]
    fn overlapping_holds_rejected() {
        // Two successful acquisitions whose critical sections overlap
        // entirely: no interleaving of the unlocks can save it.
        let out = check(vec![
            op(1, L, OpKind::Lock, 0, true, 0, 10),
            op(2, L, OpKind::Lock, 0, true, 20, 30),
            op(1, L, OpKind::Unlock, 0, true, 100, 110),
            op(2, L, OpKind::Unlock, 0, true, 120, 130),
        ]);
        assert!(!out.is_linearizable());
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].key, L);
    }

    #[test]
    fn pending_lock_may_take_effect_or_not() {
        // A failed lock followed by a successful one: linearizable by
        // dropping the pending op.
        let out = check(vec![
            op(1, L, OpKind::Lock, 0, false, 0, 10),
            op(2, L, OpKind::Lock, 0, true, 20, 30),
            op(2, L, OpKind::Unlock, 0, true, 40, 50),
        ]);
        assert!(out.is_linearizable(), "{:?}", out.violations);
    }

    #[test]
    fn fetch_add_return_values_must_chain() {
        let good = check(vec![
            op(1, C, OpKind::FetchAdd { delta: 1 }, 0, true, 0, 100),
            op(2, C, OpKind::FetchAdd { delta: 1 }, 1, true, 10, 90),
            op(3, C, OpKind::FetchAdd { delta: 1 }, 2, true, 20, 80),
        ]);
        assert!(good.is_linearizable(), "{:?}", good.violations);

        // ret 2 then ret 0 with disjoint intervals cannot chain.
        let bad = check(vec![
            op(1, C, OpKind::FetchAdd { delta: 1 }, 2, true, 0, 10),
            op(2, C, OpKind::FetchAdd { delta: 1 }, 0, true, 20, 30),
        ]);
        assert!(!bad.is_linearizable());
    }

    #[test]
    fn disjoint_intervals_fix_the_order() {
        // Value order says B then A, but A responds before B invokes:
        // real-time order forbids the only value-consistent order.
        let out = check(vec![
            op(1, C, OpKind::FetchAdd { delta: 1 }, 1, true, 0, 10),
            op(2, C, OpKind::FetchAdd { delta: 1 }, 0, true, 20, 30),
        ]);
        assert!(!out.is_linearizable());
    }

    #[test]
    fn failed_atomic_is_ambiguous() {
        // The failed op may or may not have bumped the cell; both
        // continuations appear in the history and must be accepted.
        let applied = check(vec![
            op(1, C, OpKind::FetchAdd { delta: 1 }, 0, false, 0, 10),
            op(2, C, OpKind::FetchAdd { delta: 1 }, 1, true, 20, 30),
        ]);
        assert!(applied.is_linearizable(), "{:?}", applied.violations);
        let dropped = check(vec![
            op(1, C, OpKind::FetchAdd { delta: 1 }, 0, false, 0, 10),
            op(2, C, OpKind::FetchAdd { delta: 1 }, 0, true, 20, 30),
        ]);
        assert!(dropped.is_linearizable(), "{:?}", dropped.violations);
    }

    #[test]
    fn test_set_semantics() {
        let out = check(vec![
            op(1, C, OpKind::TestSet { expect: 0, new: 7 }, 0, true, 0, 10),
            // Losing CAS: returns current value 7, does not store.
            op(2, C, OpKind::TestSet { expect: 0, new: 9 }, 7, true, 20, 30),
            op(3, C, OpKind::FetchAdd { delta: 1 }, 7, true, 40, 50),
        ]);
        assert!(out.is_linearizable(), "{:?}", out.violations);
    }

    #[test]
    fn register_reads_see_latest_write() {
        let r = Key::Reg {
            node: 0,
            idx: 1,
            offset: 64,
            len: 8,
        };
        let a = fingerprint(b"aaaaaaaa");
        let b = fingerprint(b"bbbbbbbb");
        let good = check(vec![
            op(1, r, OpKind::Write { fp: a }, 0, true, 0, 10),
            op(2, r, OpKind::Read { fp: a }, 0, true, 20, 30),
            op(1, r, OpKind::Write { fp: b }, 0, true, 40, 50),
            op(2, r, OpKind::Read { fp: b }, 0, true, 60, 70),
        ]);
        assert!(good.is_linearizable(), "{:?}", good.violations);

        // Reading the old value strictly after a write completed.
        let bad = check(vec![
            op(1, r, OpKind::Write { fp: a }, 0, true, 0, 10),
            op(1, r, OpKind::Write { fp: b }, 0, true, 20, 30),
            op(2, r, OpKind::Read { fp: a }, 0, true, 40, 50),
        ]);
        assert!(!bad.is_linearizable());

        // A fresh read of untouched memory fingerprints to 0.
        let fresh = check(vec![op(2, r, OpKind::Read { fp: 0 }, 0, true, 0, 10)]);
        assert!(fresh.is_linearizable(), "{:?}", fresh.violations);
    }

    #[test]
    fn barrier_generations_and_id_reuse() {
        let b = Key::Barrier { id: 7 };
        let arr = |p: u64, inv: Nanos, resp: Nanos| {
            op(p, b, OpKind::Barrier { count: 2 }, 0, true, inv, resp)
        };
        // Two clean generations under one reused id.
        let good = check(vec![
            arr(1, 0, 50),
            arr(2, 10, 50),
            arr(1, 100, 150),
            arr(2, 110, 150),
        ]);
        assert!(good.is_linearizable(), "{:?}", good.violations);

        // Second generation released before its second arrival: the
        // response of the gen-2 first arrival precedes gen-2's other
        // invoke — a lost-wakeup / premature-release shape.
        let bad = check(vec![
            arr(1, 0, 50),
            arr(2, 10, 50),
            arr(1, 100, 120),
            arr(2, 200, 250),
        ]);
        assert!(!bad.is_linearizable());

        // Any failed arrival makes the partition inconclusive.
        let mixed = check(vec![
            arr(1, 0, 50),
            op(2, b, OpKind::Barrier { count: 2 }, 0, false, 10, 400),
        ]);
        assert!(mixed.is_linearizable());
        assert_eq!(mixed.skipped, 1);
    }

    #[test]
    fn partitions_are_independent() {
        let c2 = Key::Cell { node: 1, addr: 8 };
        let out = check(vec![
            op(1, C, OpKind::FetchAdd { delta: 1 }, 0, true, 0, 10),
            op(1, c2, OpKind::FetchAdd { delta: 1 }, 0, true, 0, 10),
            op(2, C, OpKind::FetchAdd { delta: 1 }, 1, true, 20, 30),
            // Violation confined to c2.
            op(2, c2, OpKind::FetchAdd { delta: 1 }, 5, true, 20, 30),
        ]);
        assert_eq!(out.partitions, 2);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].key, c2);
    }

    #[test]
    fn logical_cell_keys_partition_structurally() {
        // Under the former (1<<63)|(idx<<40)|off packing these two keys
        // collided (an offset >= 2^40 overflows into the idx field) and
        // their histories merged into one bogus partition. As struct
        // keys they stay independent.
        let k1 = Key::LogicalCell {
            node: 0,
            idx: 1,
            off: 1 << 40,
        };
        let k2 = Key::LogicalCell {
            node: 0,
            idx: 2,
            off: 0,
        };
        assert_ne!(k1, k2);
        let out = check(vec![
            op(1, k1, OpKind::FetchAdd { delta: 1 }, 0, true, 0, 10),
            op(2, k2, OpKind::FetchAdd { delta: 1 }, 0, true, 20, 30),
        ]);
        assert_eq!(out.partitions, 2);
        assert!(out.is_linearizable(), "{:?}", out.violations);
    }

    #[test]
    fn prefix_unlock_double_decrement_history_rejected() {
        // The pre-fix lt_unlock fault path, replayed: P1 holds, P2 is
        // queued at the owner. P1's first unlock decrements the lock
        // word and its one-way grant *lands* (P2 is granted and runs)
        // but the post reports failure, so the caller retries: the
        // second unlock decrements again (2 -> 1 -> 0), sees "no
        // waiters", and succeeds. The zeroed lock word then lets P3
        // fast-path straight into P2's still-running critical section.
        let out = check(vec![
            op(1, L, OpKind::Lock, 0, true, 0, 10),
            op(2, L, OpKind::Lock, 0, true, 15, 35),
            op(1, L, OpKind::Unlock, 0, false, 20, 30),
            op(1, L, OpKind::Unlock, 0, true, 40, 50),
            op(3, L, OpKind::Lock, 0, true, 60, 70),
            op(2, L, OpKind::Unlock, 0, true, 100, 110),
            op(3, L, OpKind::Unlock, 0, true, 200, 210),
        ]);
        assert!(
            !out.is_linearizable(),
            "the checker must reject the pre-fix double-decrement history"
        );
        assert_eq!(out.violations[0].key, L);
    }

    #[test]
    fn fingerprint_properties() {
        assert_eq!(fingerprint(&[0; 32]), 0);
        assert_ne!(fingerprint(b"x"), 0);
        assert_ne!(fingerprint(b"x") & 1, 0, "non-zero data => odd fp");
        assert_ne!(fingerprint(b"ab"), fingerprint(b"ba"));
    }

    #[test]
    fn history_json_shape() {
        let h = History {
            ops: vec![op(1, L, OpKind::Lock, 0, true, 0, 10)],
        };
        let j = h.to_json();
        assert!(j.starts_with("{\"ops\":["));
        assert!(j.contains("\"key\":\"lock:0:0x40\""));
        assert!(j.contains("\"ok\":true"));
    }

    fn txn(
        proc: u64,
        reads: &[(u64, u64)],
        writes: &[(u64, u64)],
        outcome: TxnOutcome,
        invoke: Nanos,
        response: Nanos,
    ) -> TxnOp {
        TxnOp {
            proc,
            reads: reads.to_vec(),
            writes: writes.to_vec(),
            outcome,
            invoke,
            response,
        }
    }

    fn txn_check(txns: Vec<TxnOp>) -> TxnCheckOutcome {
        TxnHistory { txns }.check()
    }

    use TxnOutcome::{Aborted, Committed, Indeterminate};

    #[test]
    fn sequential_txns_serialize() {
        let out = txn_check(vec![
            txn(1, &[(1, 0)], &[(1, 5)], Committed, 0, 10),
            txn(2, &[(1, 5)], &[(1, 6), (2, 1)], Committed, 20, 30),
            txn(1, &[(1, 6), (2, 1)], &[], Committed, 40, 50),
        ]);
        assert!(out.is_serializable(), "{:?}", out.violation);
        assert_eq!(out.committed, 3);
    }

    #[test]
    fn write_skew_rejected() {
        // Classic write skew: T1 and T2 each read {x=1, y=1} and
        // concurrently zero the *other* key. Any serial order makes the
        // second transaction's read set stale, so full-read-set
        // validation must have aborted one of them — a history where
        // both committed is non-serializable.
        let out = txn_check(vec![
            txn(1, &[], &[(1, 1), (2, 1)], Committed, 0, 10),
            txn(2, &[(1, 1), (2, 1)], &[(2, 0)], Committed, 20, 60),
            txn(3, &[(1, 1), (2, 1)], &[(1, 0)], Committed, 25, 55),
        ]);
        assert!(!out.is_serializable());
        assert!(out.violation.is_some());
    }

    #[test]
    fn lost_update_rejected() {
        // Both transactions claim to have read 0 and written back 1:
        // one increment was lost. Neither order explains both reads.
        let out = txn_check(vec![
            txn(1, &[(7, 0)], &[(7, 1)], Committed, 0, 30),
            txn(2, &[(7, 0)], &[(7, 1)], Committed, 10, 40),
        ]);
        assert!(!out.is_serializable());
    }

    #[test]
    fn dirty_read_rejected() {
        // T2 observed a value only ever staged by the *aborted* T1.
        // Aborted transactions must leave no trace, so there is no
        // serial source for T2's read.
        let out = txn_check(vec![
            txn(1, &[], &[(3, 7)], Aborted, 0, 100),
            txn(2, &[(3, 7)], &[], Committed, 10, 20),
        ]);
        assert!(!out.is_serializable());
        assert_eq!(out.aborted, 1);
    }

    #[test]
    fn clean_abort_leaves_no_trace() {
        // Same shape, but T2 reads the *pre-abort* value: serializable.
        let out = txn_check(vec![
            txn(1, &[], &[(3, 7)], Aborted, 0, 100),
            txn(2, &[(3, 0)], &[], Committed, 10, 20),
        ]);
        assert!(out.is_serializable(), "{:?}", out.violation);
    }

    #[test]
    fn indeterminate_commit_explored_both_ways() {
        // A committer that crashed mid-protocol may or may not have
        // decided commit; later reads seeing either world are fine.
        let applied = txn_check(vec![
            txn(1, &[], &[(5, 9)], Indeterminate, 0, 50),
            txn(2, &[(5, 9)], &[], Committed, 60, 70),
        ]);
        assert!(applied.is_serializable(), "{:?}", applied.violation);
        let dropped = txn_check(vec![
            txn(1, &[], &[(5, 9)], Indeterminate, 0, 50),
            txn(2, &[(5, 0)], &[], Committed, 60, 70),
        ]);
        assert!(dropped.is_serializable(), "{:?}", dropped.violation);
        // But it cannot do both at once for the same key.
        let both = txn_check(vec![
            txn(1, &[], &[(5, 9)], Indeterminate, 0, 50),
            txn(2, &[(5, 9)], &[], Committed, 60, 70),
            txn(3, &[(5, 0)], &[], Committed, 80, 90),
        ]);
        assert!(!both.is_serializable());
    }

    #[test]
    fn txn_real_time_order_is_enforced() {
        // Strictness: T2 starts after T1's commit completed, so it must
        // observe T1's write even though value order alone would allow
        // serializing T2 first.
        let out = txn_check(vec![
            txn(1, &[], &[(9, 1)], Committed, 0, 10),
            txn(2, &[(9, 0)], &[], Committed, 20, 30),
        ]);
        assert!(!out.is_serializable());
    }

    #[test]
    fn prefix_atomic_double_apply_history_rejected() {
        // The pre-fix blind-retry bug, replayed against the existing
        // cell spec: a fetch-add whose ack was lost applied once, the
        // retry applied it again, so the old-value stream has a gap —
        // values 1 and 2 were returned but nobody ever saw 0. No
        // linearization of two increments from a zero cell explains it.
        let out = check(vec![
            op(1, C, OpKind::FetchAdd { delta: 1 }, 1, true, 0, 30),
            op(2, C, OpKind::FetchAdd { delta: 1 }, 2, true, 10, 40),
        ]);
        assert!(
            !out.is_linearizable(),
            "the checker must reject the double-apply old-value gap"
        );
    }

    #[test]
    fn txn_json_shape() {
        let h = TxnHistory {
            txns: vec![txn(1, &[(1, 0)], &[(1, 5)], Committed, 0, 10)],
        };
        let j = h.to_json();
        assert!(j.starts_with("{\"txns\":["));
        assert!(j.contains("\"reads\":[[1,0]]"));
        assert!(j.contains("\"outcome\":\"Committed\""));
    }

    #[test]
    fn explore_aggregates_outcomes() {
        let report = explore(0..3, |seed| {
            Ok(History {
                ops: vec![op(
                    1,
                    C,
                    OpKind::FetchAdd { delta: 1 },
                    if seed == 1 { 9 } else { 0 },
                    true,
                    0,
                    10,
                )],
            })
        });
        assert_eq!(report.reports.len(), 3);
        assert_eq!(report.failing_seeds(), vec![1]);
        assert!(!report.all_linearizable());
    }
}
