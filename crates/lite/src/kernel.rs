//! The per-node LITE kernel module: composition root.
//!
//! One `LiteKernel` per node owns everything the paper's loadable module
//! owns: the node's physical allocator, the single *global physical MR*
//! (§4.1), K shared RC QPs per peer attached to one shared receive CQ
//! (§6.1), per-peer RPC rings (§5.1), the shared polling thread, the lh
//! tables, master records, and the kernel-internal services (naming,
//! mapping, locks, barriers, memory ops) that the LITE API is built on.
//!
//! This file only holds the struct, construction, and cluster wiring;
//! the behavior lives in focused submodules:
//!
//! * [`datapath`] — op descriptors, the [`datapath::DataPath`] trait,
//!   and the verbs/TCP implementations (one-sided plane + batching).
//! * [`rpc`] — rings, completion slots, reply routing, the poll loop.
//! * [`msg`] — kernel services (naming, mapping, locks, barriers).
//! * [`chunkio`] — gather/scatter between chunk lists and memory.
//! * [`stats`] — hot-path counters and the stats snapshot.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};
use rnic::qp::{RecvEntry, RecvQueue};
use rnic::{Cq, IbFabric, NodeId};
use simnet::{CpuMeter, Ctx};
use smem::{PhysAllocator, PhysMem};

use crate::config::LiteConfig;
use crate::directory::ClusterDirectory;
use crate::error::{LiteError, LiteResult};
use crate::mm::MemManager;
use crate::observe::{self, Observability, QosReport, StatsReport};
use crate::qos::{QosConfig, QosState};
use crate::ring::{ClientRing, ServerRing};
use crate::shard::ShardedMap;

pub(crate) mod chunkio;
pub mod datapath;
mod msg;
mod rpc;
mod stats;

pub use rpc::Incoming;
pub use stats::KernelStats;

pub(crate) use msg::{byte_to_perm, perm_to_byte};
pub(crate) use rpc::ReplyRoute;

use datapath::RnicDataPath;
use msg::{BarrierState, LockState, MasterTable};
use rpc::{CallSlot, RpcQueue};
use stats::KernelCounters;

// ---------------------------------------------------------------------
// Kernel-internal RPC function ids (< USER_FUNC_MIN).
// ---------------------------------------------------------------------

/// One-way messaging (LT_send / LT_recv).
pub const FN_MSG: u8 = 1;
pub(crate) const FN_MALLOC: u8 = 2;
pub(crate) const FN_FREE_CHUNKS: u8 = 3;
pub(crate) const FN_INVALIDATE: u8 = 4;
pub(crate) const FN_REGNAME: u8 = 5;
pub(crate) const FN_QUERYNAME: u8 = 6;
pub(crate) const FN_MAP: u8 = 7;
pub(crate) const FN_UNMAP: u8 = 8;
pub(crate) const FN_MEMSET: u8 = 9;
pub(crate) const FN_MEMCPY: u8 = 10;
pub(crate) const FN_LOCK: u8 = 11;
pub(crate) const FN_BARRIER: u8 = 12;
pub(crate) const FN_TAKE_RECORD: u8 = 13;
pub(crate) const FN_GRANT: u8 = 14;
pub(crate) const FN_UNREGNAME: u8 = 15;
/// Asks a node's memory manager to evict a chunk of one of its LMRs.
pub(crate) const FN_EVICT: u8 = 16;
/// Asks a node's memory manager to fetch an evicted LMR back home.
pub(crate) const FN_FETCH_BACK: u8 = 17;
/// First function id available to applications.
pub const USER_FUNC_MIN: u8 = 18;

/// The cluster-manager node (name registry; §3.3's management service).
pub const MANAGER_NODE: NodeId = 0;

/// Number of pre-allocated lock cells per node.
const LOCK_CELLS: u64 = 4_096;

// ---------------------------------------------------------------------
// The kernel proper.
// ---------------------------------------------------------------------

/// The LITE kernel module instance on one node.
pub struct LiteKernel {
    pub(crate) node: NodeId,
    pub(crate) config: LiteConfig,
    pub(crate) fabric: Arc<IbFabric>,
    pub(crate) alloc: Arc<Mutex<PhysAllocator>>,
    global_mr: rnic::Mr,
    datapath: OnceLock<Arc<RnicDataPath>>,
    /// Cluster membership directory (rkeys, head sinks, peer kernels).
    dir: OnceLock<Arc<ClusterDirectory>>,
    pub(crate) shared_recv_cq: Arc<Cq>,
    shared_send_cq: Arc<Cq>,
    shared_rq: Arc<RecvQueue>,
    /// Client-side ring views, indexed by server node. Slots fill lazily
    /// on the first RPC towards a peer (under the directory's connect
    /// lock); the `RwLock` read on the fast path is uncontended.
    client_rings: RwLock<Vec<Option<Arc<ClientRing>>>>,
    /// Server-side ring state, indexed by client node; filled lazily by
    /// the *client's* `ensure_ring`.
    server_rings: RwLock<Vec<Option<Arc<ServerRing>>>>,
    /// This node's 64-byte head-update sink cell.
    head_sink: u64,
    /// Base of the lock-cell array.
    lock_cells: u64,
    next_lock: AtomicU64,
    slots: ShardedMap<u32, Arc<CallSlot>>,
    next_slot: AtomicU32,
    queues: ShardedMap<u8, Arc<RpcQueue>>,
    locks: ShardedMap<u64, LockState>,
    barriers: ShardedMap<u64, BarrierState>,
    masters: MasterTable,
    names: ShardedMap<String, u32>,
    lhs: ShardedMap<(u32, u64), crate::lmr::LhEntry>,
    next_pid: AtomicU32,
    next_lh: AtomicU64,
    pub(crate) qos: Arc<QosState>,
    /// Memory-tiering manager (budget, residency, eviction policy).
    mm: Arc<MemManager>,
    mm_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    shutdown: AtomicBool,
    poller: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// CPU meter of the shared polling thread.
    pub poller_cpu: Arc<CpuMeter>,
    counters: KernelCounters,
    /// Sequence half of the cluster-unique synchronization tokens
    /// (enqueue / release identities on the lock fault paths).
    next_sync_token: AtomicU64,
    /// Host-wall nanoseconds this node's `finish_setup` took (gauge).
    boot_host_ns: AtomicU64,
    /// Host-wall nanoseconds spent wiring rings lazily (gauge; QP
    /// wiring time is tracked by the datapath).
    mesh_host_ns: AtomicU64,
}

impl LiteKernel {
    /// Creates the kernel for `node`; the cluster finishes wiring with
    /// [`LiteKernel::finish_setup`].
    pub(crate) fn new(
        node: NodeId,
        config: LiteConfig,
        qos_cfg: QosConfig,
        fabric: Arc<IbFabric>,
    ) -> LiteResult<Self> {
        let mem_size = fabric.mem(node).size();
        let alloc = Arc::new(Mutex::new(PhysAllocator::new(0, mem_size)));
        let mut ctx = Ctx::new();
        let nic = fabric.nic(node);
        // The heart of §4.1: one MR covering all physical memory,
        // registered with physical addresses. With the ablation switch
        // off, this MR is still created but LMR traffic goes through
        // per-LMR virtual MRs instead (see `ablation` tests).
        let global_mr = nic.register_phys_mr(&mut ctx, 0, mem_size, rnic::Access::RW)?;
        let (head_sink, lock_cells) = {
            let mut a = alloc.lock();
            (a.alloc(64)?, a.alloc(LOCK_CELLS * 8)?)
        };
        let link = fabric.cost().link_bytes_per_sec;
        let mm = Arc::new(MemManager::new(node, fabric.num_nodes(), &config));
        let shards = config.kernel_shards;
        let capacity = fabric.num_nodes();
        let kernel = LiteKernel {
            node,
            config,
            fabric,
            alloc,
            global_mr,
            datapath: OnceLock::new(),
            dir: OnceLock::new(),
            shared_recv_cq: Arc::new(Cq::new()),
            shared_send_cq: Arc::new(Cq::new()),
            shared_rq: Arc::new(RecvQueue::new()),
            client_rings: RwLock::new(vec![None; capacity]),
            server_rings: RwLock::new(vec![None; capacity]),
            head_sink,
            lock_cells,
            next_lock: AtomicU64::new(0),
            slots: ShardedMap::new(shards),
            next_slot: AtomicU32::new(1),
            queues: ShardedMap::new(shards),
            locks: ShardedMap::new(shards),
            barriers: ShardedMap::new(shards),
            masters: MasterTable::new(shards),
            names: ShardedMap::new(shards),
            lhs: ShardedMap::new(shards),
            next_pid: AtomicU32::new(1),
            next_lh: AtomicU64::new(1),
            qos: Arc::new(QosState::new(qos_cfg, link)),
            mm,
            mm_thread: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            poller: Mutex::new(None),
            poller_cpu: Arc::new(CpuMeter::new()),
            counters: KernelCounters::new(),
            next_sync_token: AtomicU64::new(1),
            boot_host_ns: AtomicU64::new(0),
            mesh_host_ns: AtomicU64::new(0),
        };
        // FN_MSG delivers through a queue like user functions do.
        kernel.queues.insert(FN_MSG, Arc::new(RpcQueue::new()));
        Ok(kernel)
    }

    /// Node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The LITE configuration.
    pub fn config(&self) -> &LiteConfig {
        &self.config
    }

    /// The fabric under this kernel.
    pub fn fabric(&self) -> &Arc<IbFabric> {
        &self.fabric
    }

    /// QoS control surface.
    pub fn qos(&self) -> &QosState {
        &self.qos
    }

    /// Shared handle to this node's QoS state (cluster wiring).
    pub(crate) fn qos_arc(&self) -> Arc<QosState> {
        Arc::clone(&self.qos)
    }

    /// The node's memory-tiering manager.
    pub fn mm(&self) -> &Arc<MemManager> {
        &self.mm
    }

    /// Shared handle to this node's memory manager (cluster wiring).
    pub(crate) fn mm_arc(&self) -> Arc<MemManager> {
        Arc::clone(&self.mm)
    }

    /// Memory-tiering gauges.
    pub fn mm_stats(&self) -> crate::mm::MmReport {
        self.mm.stats()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> KernelStats {
        let mut s = match self.datapath.get() {
            Some(dp) => {
                let mut s = self
                    .counters
                    .snapshot(dp.num_qps(), Some(dp.retry_counters()));
                s.mesh_ns = self.mesh_host_ns.load(Ordering::Relaxed) + dp.mesh_host_ns();
                s.lazy_connects = dp.lazy_connects();
                s
            }
            None => self.counters.snapshot(0, None),
        };
        s.boot_ns = self.boot_host_ns.load(Ordering::Relaxed);
        s
    }

    /// Structured observability report: per-class × priority latency
    /// percentiles, per-peer gauges and liveness, trace-ring occupancy,
    /// and QoS state. Before cluster wiring the report is empty (no
    /// classes, no peers, zero-capacity ring).
    pub fn lt_stats(&self) -> StatsReport {
        let qos = QosReport {
            mode: self.qos.mode(),
            rtt_ewma_ns: self.qos.rtt_estimate(),
        };
        match self.datapath.get() {
            Some(dp) => observe::build_report(
                self.node,
                self.stats(),
                dp.observer(),
                |peer| !dp.peer_is_dead(peer),
                qos,
                self.mm.stats(),
            ),
            None => StatsReport {
                node: self.node,
                kernel: self.stats(),
                classes: Vec::new(),
                peers: Vec::new(),
                trace: Default::default(),
                qos,
                mm: self.mm.stats(),
                sample_rate: self.config.stats_sample_rate,
            },
        }
    }

    /// The node's observability state (op traces + histograms), once the
    /// cluster has wired the datapath.
    pub fn observe(&self) -> Option<&Arc<Observability>> {
        self.datapath.get().map(|dp| dp.observer())
    }

    /// A cluster-unique synchronization token: node id in the top bits,
    /// a local sequence below. One token names one enqueue attempt or
    /// one release, which is what makes lock fault-path recovery
    /// (idempotent grants, definite aborts) possible.
    pub(crate) fn next_sync_token(&self) -> u64 {
        ((self.node as u64) << 40) | self.next_sync_token.fetch_add(1, Ordering::Relaxed)
    }

    /// Counts a swallowed cleanup failure (allocation rollback, handle
    /// teardown) and emits a Mgmt/Failed trace event so leaks are
    /// observable instead of silent.
    pub(crate) fn note_cleanup_failure(&self, peer: NodeId, stamp: simnet::Nanos) {
        self.counters.count_cleanup_failure();
        if let Some(obs) = self.observe() {
            let id = obs.next_op_id();
            obs.trace(
                id,
                crate::observe::OpClass::Mgmt,
                crate::observe::EventKind::Failed,
                crate::qos::Priority::Low,
                peer,
                stamp,
            );
        }
    }

    /// Counts a lock-word unwind (a failed acquire rolled its
    /// `fetch_add` back so the lock word stays consistent).
    pub(crate) fn note_lock_unwind(&self) {
        self.counters.count_lock_unwind();
    }

    /// Counts a committed OCC transaction. Public: the transaction layer
    /// (`lite-txn`) lives outside the kernel, entirely on the `lt_*`
    /// API, and reports outcomes through these gauges so they show up in
    /// [`LiteKernel::lt_stats`] next to the datapath counters.
    pub fn note_txn_commit(&self) {
        self.counters.count_txn_commit();
    }

    /// Counts an aborted OCC transaction; `validation_fail` marks the
    /// aborts caused by read-set validation (the OCC conflict signal),
    /// as opposed to lock conflicts, faults, or explicit aborts.
    pub fn note_txn_abort(&self, validation_fail: bool) {
        self.counters.count_txn_abort(validation_fail);
    }

    /// Counts a KV write applied by a `lite-kv` replica on this node.
    /// Public for the same reason as [`LiteKernel::note_txn_commit`]:
    /// the service layer lives outside the kernel, entirely on the
    /// `lt_*` API, and reports through these gauges so its traffic shows
    /// up in [`LiteKernel::lt_stats`] next to the datapath counters.
    pub fn note_kv_put(&self) {
        self.counters.count_kv_put();
    }

    /// Counts a KV read served by a `lite-kv` replica on this node.
    pub fn note_kv_get(&self) {
        self.counters.count_kv_get();
    }

    /// Publishes the `lite-kv` leader's current replication lag
    /// (committed writes minus the slowest follower's acknowledged seq).
    /// A gauge — each call overwrites the previous value.
    pub fn set_kv_replication_lag(&self, lag: u64) {
        self.counters.set_kv_replication_lag(lag);
    }

    /// Free bytes in this node's kernel scratch allocator (staging
    /// cells, reply buffers, ring space). A leak detector for tests:
    /// any `lt_*` call that returns — successfully or not — must leave
    /// this balance where it found it.
    pub fn scratch_free_bytes(&self) -> u64 {
        self.alloc.lock().free_bytes()
    }

    /// Counts a synchronization-state leak: a lock fault path that could
    /// not restore consistency (abort unreachable, unwind failed, or a
    /// release grant undeliverable). Also traced as Mgmt/Failed.
    pub(crate) fn note_sync_leak(&self, peer: NodeId, stamp: simnet::Nanos) {
        self.counters.count_sync_leak();
        if let Some(obs) = self.observe() {
            let id = obs.next_op_id();
            obs.trace(
                id,
                crate::observe::OpClass::Mgmt,
                crate::observe::EventKind::Failed,
                crate::qos::Priority::Low,
                peer,
                stamp,
            );
        }
    }

    fn mem(&self) -> &Arc<PhysMem> {
        self.fabric.mem(self.node)
    }

    // ------------------------------------------------------------------
    // Cluster wiring
    // ------------------------------------------------------------------

    /// Second-phase setup, run once per node under the directory's
    /// connect lock: builds the datapath (empty QP pools — peers are
    /// wired lazily on first use), wires the self-loopback RPC ring,
    /// pre-posts receive credits, and starts the poller. O(1) per node,
    /// which is what makes cluster boot O(N) instead of the old O(N²·K)
    /// full-mesh bring-up. Running it twice (or failing to spawn the
    /// poller) is reported as [`LiteError::Internal`] instead of
    /// panicking, so a misused builder degrades to a failed start.
    pub(crate) fn finish_setup(self: &Arc<Self>, dir: &Arc<ClusterDirectory>) -> LiteResult<()> {
        let boot_start = std::time::Instant::now();
        let once = LiteError::Internal("cluster setup ran twice on one node");
        self.dir.set(Arc::clone(dir)).map_err(|_| once.clone())?;
        self.mm.set_directory(Arc::clone(dir));
        let dp = Arc::new(RnicDataPath::new(
            Arc::clone(&self.fabric),
            self.node,
            &self.config,
            self.global_mr.lkey(),
            Arc::clone(&self.qos),
            Arc::clone(&self.alloc),
            Arc::clone(dir),
            Arc::downgrade(self),
        ));
        self.datapath.set(dp).map_err(|_| once)?;
        // The self-loopback ring is wired eagerly: kernel services RPC
        // their own node (manager calls on node 0, local lock homes),
        // and a node is always a member of itself.
        let base = self.alloc_ring(self.node)?;
        let size = self.config.rpc_ring_bytes;
        self.server_rings.write()[self.node] = Some(Arc::new(ServerRing::new(base, size)?));
        self.client_rings.write()[self.node] = Some(Arc::new(ClientRing::new(base, size)?));
        // Pre-post receive credits for write-imm (the paper's background
        // IMM-buffer posting).
        for _ in 0..self.config.recv_credits {
            self.shared_rq.post(RecvEntry {
                wr_id: 0,
                sge: None,
            });
        }
        let me = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("lite-poller-{}", self.node))
            .spawn(move || me.poll_loop())
            .map_err(|_| LiteError::Internal("could not spawn the polling thread"))?;
        *self.poller.lock() = Some(handle);
        // The tiering manager only runs when it has work — a budget to
        // enforce or lazy pins to reap — so default clusters (neither)
        // get no extra thread and byte-identical behavior.
        if self.mm.tracking() {
            let me = Arc::clone(self);
            let mm_handle = std::thread::Builder::new()
                .name(format!("lite-mm-{}", self.node))
                .spawn(move || crate::mm::run(me))
                .map_err(|_| LiteError::Internal("could not spawn the memory manager"))?;
            *self.mm_thread.lock() = Some(mm_handle);
        }
        let ns = boot_start.elapsed().as_nanos() as u64;
        self.boot_host_ns.store(ns, Ordering::Relaxed);
        dir.note_boot(ns);
        Ok(())
    }

    /// The cluster directory, once this node has joined.
    pub(crate) fn try_dir(&self) -> LiteResult<&Arc<ClusterDirectory>> {
        self.dir
            .get()
            .ok_or(LiteError::Internal("op posted before cluster wiring"))
    }

    /// Installs the server-side ring state for messages from `client`.
    /// Called by the *client's* `ensure_ring` (under the directory's
    /// connect lock) before it builds its own view, so a request can
    /// never arrive at a server without ring state.
    pub(crate) fn install_server_ring(&self, client: NodeId, ring: Arc<ServerRing>) {
        if let Some(slot) = self.server_rings.write().get_mut(client) {
            *slot = Some(ring);
        }
    }

    /// Adds host-wall nanoseconds to the lazy ring-wiring gauge.
    pub(crate) fn note_mesh_ns(&self, ns: u64) {
        self.mesh_host_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Gives the cluster what it needs to wire this node: the shared CQs
    /// and receive queue for QP creation.
    pub(crate) fn shared_queues(&self) -> (Arc<Cq>, Arc<Cq>, Arc<RecvQueue>) {
        (
            Arc::clone(&self.shared_send_cq),
            Arc::clone(&self.shared_recv_cq),
            Arc::clone(&self.shared_rq),
        )
    }

    /// This node's head-sink physical address (for the cluster exchange).
    pub(crate) fn head_sink_addr(&self) -> u64 {
        self.head_sink
    }

    /// This node's global rkey (for the cluster exchange).
    pub(crate) fn global_rkey(&self) -> u32 {
        self.global_mr.rkey()
    }

    /// Allocates the server-side ring for messages from `client`.
    pub(crate) fn alloc_ring(&self, _client: NodeId) -> LiteResult<u64> {
        Ok(self.alloc.lock().alloc(self.config.rpc_ring_bytes)?)
    }

    /// Begins shutdown: stops the memory manager (it issues kernel calls
    /// of its own, so it must quiesce while the pollers still run), then
    /// the poller, then closes CQs.
    pub(crate) fn stop(&self) {
        self.mm.begin_shutdown();
        if let Some(h) = self.mm_thread.lock().take() {
            let _ = h.join();
        }
        self.shutdown.store(true, Ordering::Release);
        self.shared_recv_cq.close();
        if let Some(h) = self.poller.lock().take() {
            let _ = h.join();
        }
    }
}
