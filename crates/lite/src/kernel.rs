//! The per-node LITE kernel module: composition root.
//!
//! One `LiteKernel` per node owns everything the paper's loadable module
//! owns: the node's physical allocator, the single *global physical MR*
//! (§4.1), K shared RC QPs per peer attached to one shared receive CQ
//! (§6.1), per-peer RPC rings (§5.1), the shared polling thread, the lh
//! tables, master records, and the kernel-internal services (naming,
//! mapping, locks, barriers, memory ops) that the LITE API is built on.
//!
//! This file only holds the struct, construction, and cluster wiring;
//! the behavior lives in focused submodules:
//!
//! * [`datapath`] — op descriptors, the [`datapath::DataPath`] trait,
//!   and the verbs/TCP implementations (one-sided plane + batching).
//! * [`rpc`] — rings, completion slots, reply routing, the poll loop.
//! * [`msg`] — kernel services (naming, mapping, locks, barriers).
//! * [`chunkio`] — gather/scatter between chunk lists and memory.
//! * [`stats`] — hot-path counters and the stats snapshot.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};
use rnic::qp::{RecvEntry, RecvQueue};
use rnic::{Cq, IbFabric, NodeId, Qp};
use simnet::{CpuMeter, Ctx};
use smem::{PhysAllocator, PhysMem};

use crate::config::LiteConfig;
use crate::error::{LiteError, LiteResult};
use crate::mm::MemManager;
use crate::observe::{self, Observability, QosReport, StatsReport};
use crate::qos::{QosConfig, QosState};
use crate::ring::{ClientRing, ServerRing};

pub(crate) mod chunkio;
pub mod datapath;
mod msg;
mod rpc;
mod stats;

pub use rpc::Incoming;
pub use stats::KernelStats;

pub(crate) use msg::{byte_to_perm, perm_to_byte};
pub(crate) use rpc::ReplyRoute;

use datapath::RnicDataPath;
use msg::{BarrierState, LockState, MasterTable};
use rpc::{CallSlot, RpcQueue};
use stats::KernelCounters;

// ---------------------------------------------------------------------
// Kernel-internal RPC function ids (< USER_FUNC_MIN).
// ---------------------------------------------------------------------

/// One-way messaging (LT_send / LT_recv).
pub const FN_MSG: u8 = 1;
pub(crate) const FN_MALLOC: u8 = 2;
pub(crate) const FN_FREE_CHUNKS: u8 = 3;
pub(crate) const FN_INVALIDATE: u8 = 4;
pub(crate) const FN_REGNAME: u8 = 5;
pub(crate) const FN_QUERYNAME: u8 = 6;
pub(crate) const FN_MAP: u8 = 7;
pub(crate) const FN_UNMAP: u8 = 8;
pub(crate) const FN_MEMSET: u8 = 9;
pub(crate) const FN_MEMCPY: u8 = 10;
pub(crate) const FN_LOCK: u8 = 11;
pub(crate) const FN_BARRIER: u8 = 12;
pub(crate) const FN_TAKE_RECORD: u8 = 13;
pub(crate) const FN_GRANT: u8 = 14;
pub(crate) const FN_UNREGNAME: u8 = 15;
/// Asks a node's memory manager to evict a chunk of one of its LMRs.
pub(crate) const FN_EVICT: u8 = 16;
/// Asks a node's memory manager to fetch an evicted LMR back home.
pub(crate) const FN_FETCH_BACK: u8 = 17;
/// First function id available to applications.
pub const USER_FUNC_MIN: u8 = 18;

/// The cluster-manager node (name registry; §3.3's management service).
pub const MANAGER_NODE: NodeId = 0;

/// Number of pre-allocated lock cells per node.
const LOCK_CELLS: u64 = 4_096;

// ---------------------------------------------------------------------
// The kernel proper.
// ---------------------------------------------------------------------

/// The LITE kernel module instance on one node.
pub struct LiteKernel {
    pub(crate) node: NodeId,
    pub(crate) config: LiteConfig,
    pub(crate) fabric: Arc<IbFabric>,
    pub(crate) alloc: Arc<Mutex<PhysAllocator>>,
    global_mr: rnic::Mr,
    datapath: OnceLock<Arc<RnicDataPath>>,
    head_sinks: OnceLock<Vec<u64>>,
    pub(crate) shared_recv_cq: Arc<Cq>,
    shared_send_cq: Arc<Cq>,
    shared_rq: Arc<RecvQueue>,
    client_rings: OnceLock<Vec<Option<ClientRing>>>,
    server_rings: OnceLock<Vec<Option<ServerRing>>>,
    /// This node's 64-byte head-update sink cell.
    head_sink: u64,
    /// Base of the lock-cell array.
    lock_cells: u64,
    next_lock: AtomicU64,
    slots: Mutex<HashMap<u32, Arc<CallSlot>>>,
    next_slot: AtomicU32,
    queues: RwLock<HashMap<u8, Arc<RpcQueue>>>,
    locks: Mutex<HashMap<u64, LockState>>,
    barriers: Mutex<HashMap<u64, BarrierState>>,
    masters: Mutex<MasterTable>,
    names: Mutex<HashMap<String, u32>>,
    lhs: Mutex<HashMap<(u32, u64), crate::lmr::LhEntry>>,
    next_pid: AtomicU32,
    next_lh: AtomicU64,
    pub(crate) qos: Arc<QosState>,
    /// Memory-tiering manager (budget, residency, eviction policy).
    mm: Arc<MemManager>,
    mm_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    shutdown: AtomicBool,
    poller: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// CPU meter of the shared polling thread.
    pub poller_cpu: Arc<CpuMeter>,
    counters: KernelCounters,
    /// Sequence half of the cluster-unique synchronization tokens
    /// (enqueue / release identities on the lock fault paths).
    next_sync_token: AtomicU64,
}

impl LiteKernel {
    /// Creates the kernel for `node`; the cluster finishes wiring with
    /// [`LiteKernel::finish_setup`].
    pub(crate) fn new(
        node: NodeId,
        config: LiteConfig,
        qos_cfg: QosConfig,
        fabric: Arc<IbFabric>,
    ) -> LiteResult<Self> {
        let mem_size = fabric.mem(node).size();
        let alloc = Arc::new(Mutex::new(PhysAllocator::new(0, mem_size)));
        let mut ctx = Ctx::new();
        let nic = fabric.nic(node);
        // The heart of §4.1: one MR covering all physical memory,
        // registered with physical addresses. With the ablation switch
        // off, this MR is still created but LMR traffic goes through
        // per-LMR virtual MRs instead (see `ablation` tests).
        let global_mr = nic.register_phys_mr(&mut ctx, 0, mem_size, rnic::Access::RW)?;
        let (head_sink, lock_cells) = {
            let mut a = alloc.lock();
            (a.alloc(64)?, a.alloc(LOCK_CELLS * 8)?)
        };
        let link = fabric.cost().link_bytes_per_sec;
        let mm = Arc::new(MemManager::new(node, fabric.num_nodes(), &config));
        let kernel = LiteKernel {
            node,
            config,
            fabric,
            alloc,
            global_mr,
            datapath: OnceLock::new(),
            head_sinks: OnceLock::new(),
            shared_recv_cq: Arc::new(Cq::new()),
            shared_send_cq: Arc::new(Cq::new()),
            shared_rq: Arc::new(RecvQueue::new()),
            client_rings: OnceLock::new(),
            server_rings: OnceLock::new(),
            head_sink,
            lock_cells,
            next_lock: AtomicU64::new(0),
            slots: Mutex::new(HashMap::new()),
            next_slot: AtomicU32::new(1),
            queues: RwLock::new(HashMap::new()),
            locks: Mutex::new(HashMap::new()),
            barriers: Mutex::new(HashMap::new()),
            masters: Mutex::new(MasterTable::new()),
            names: Mutex::new(HashMap::new()),
            lhs: Mutex::new(HashMap::new()),
            next_pid: AtomicU32::new(1),
            next_lh: AtomicU64::new(1),
            qos: Arc::new(QosState::new(qos_cfg, link)),
            mm,
            mm_thread: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            poller: Mutex::new(None),
            poller_cpu: Arc::new(CpuMeter::new()),
            counters: KernelCounters::new(),
            next_sync_token: AtomicU64::new(1),
        };
        // FN_MSG delivers through a queue like user functions do.
        kernel
            .queues
            .write()
            .insert(FN_MSG, Arc::new(RpcQueue::new()));
        Ok(kernel)
    }

    /// Node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The LITE configuration.
    pub fn config(&self) -> &LiteConfig {
        &self.config
    }

    /// The fabric under this kernel.
    pub fn fabric(&self) -> &Arc<IbFabric> {
        &self.fabric
    }

    /// QoS control surface.
    pub fn qos(&self) -> &QosState {
        &self.qos
    }

    /// Shared handle to this node's QoS state (cluster wiring).
    pub(crate) fn qos_arc(&self) -> Arc<QosState> {
        Arc::clone(&self.qos)
    }

    /// The node's memory-tiering manager.
    pub fn mm(&self) -> &Arc<MemManager> {
        &self.mm
    }

    /// Shared handle to this node's memory manager (cluster wiring).
    pub(crate) fn mm_arc(&self) -> Arc<MemManager> {
        Arc::clone(&self.mm)
    }

    /// Memory-tiering gauges.
    pub fn mm_stats(&self) -> crate::mm::MmReport {
        self.mm.stats()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> KernelStats {
        match self.datapath.get() {
            Some(dp) => self
                .counters
                .snapshot(dp.num_qps(), Some(dp.retry_counters())),
            None => self.counters.snapshot(0, None),
        }
    }

    /// Structured observability report: per-class × priority latency
    /// percentiles, per-peer gauges and liveness, trace-ring occupancy,
    /// and QoS state. Before cluster wiring the report is empty (no
    /// classes, no peers, zero-capacity ring).
    pub fn lt_stats(&self) -> StatsReport {
        let qos = QosReport {
            mode: self.qos.mode(),
            rtt_ewma_ns: self.qos.rtt_estimate(),
        };
        match self.datapath.get() {
            Some(dp) => observe::build_report(
                self.node,
                self.stats(),
                dp.observer(),
                |peer| !dp.peer_is_dead(peer),
                qos,
                self.mm.stats(),
            ),
            None => StatsReport {
                node: self.node,
                kernel: self.stats(),
                classes: Vec::new(),
                peers: Vec::new(),
                trace: Default::default(),
                qos,
                mm: self.mm.stats(),
                sample_rate: self.config.stats_sample_rate,
            },
        }
    }

    /// The node's observability state (op traces + histograms), once the
    /// cluster has wired the datapath.
    pub fn observe(&self) -> Option<&Arc<Observability>> {
        self.datapath.get().map(|dp| dp.observer())
    }

    /// A cluster-unique synchronization token: node id in the top bits,
    /// a local sequence below. One token names one enqueue attempt or
    /// one release, which is what makes lock fault-path recovery
    /// (idempotent grants, definite aborts) possible.
    pub(crate) fn next_sync_token(&self) -> u64 {
        ((self.node as u64) << 40) | self.next_sync_token.fetch_add(1, Ordering::Relaxed)
    }

    /// Counts a swallowed cleanup failure (allocation rollback, handle
    /// teardown) and emits a Mgmt/Failed trace event so leaks are
    /// observable instead of silent.
    pub(crate) fn note_cleanup_failure(&self, peer: NodeId, stamp: simnet::Nanos) {
        self.counters.count_cleanup_failure();
        if let Some(obs) = self.observe() {
            let id = obs.next_op_id();
            obs.trace(
                id,
                crate::observe::OpClass::Mgmt,
                crate::observe::EventKind::Failed,
                crate::qos::Priority::Low,
                peer,
                stamp,
            );
        }
    }

    /// Counts a lock-word unwind (a failed acquire rolled its
    /// `fetch_add` back so the lock word stays consistent).
    pub(crate) fn note_lock_unwind(&self) {
        self.counters.count_lock_unwind();
    }

    /// Counts a synchronization-state leak: a lock fault path that could
    /// not restore consistency (abort unreachable, unwind failed, or a
    /// release grant undeliverable). Also traced as Mgmt/Failed.
    pub(crate) fn note_sync_leak(&self, peer: NodeId, stamp: simnet::Nanos) {
        self.counters.count_sync_leak();
        if let Some(obs) = self.observe() {
            let id = obs.next_op_id();
            obs.trace(
                id,
                crate::observe::OpClass::Mgmt,
                crate::observe::EventKind::Failed,
                crate::qos::Priority::Low,
                peer,
                stamp,
            );
        }
    }

    fn mem(&self) -> &Arc<PhysMem> {
        self.fabric.mem(self.node)
    }

    // ------------------------------------------------------------------
    // Cluster wiring
    // ------------------------------------------------------------------

    /// Second-phase setup, run once by the cluster: the datapath (QP
    /// pools, global rkeys, QoS views), rings, head sinks, initial
    /// receive credits, and the poller. Running it twice (or failing to
    /// spawn the poller) is reported as [`LiteError::Internal`] instead
    /// of panicking, so a misused builder degrades to a failed start.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_setup(
        self: &Arc<Self>,
        qp_pools: Vec<Vec<Arc<Qp>>>,
        client_rings: Vec<Option<ClientRing>>,
        server_rings: Vec<Option<ServerRing>>,
        global_rkeys: Vec<u32>,
        head_sinks: Vec<u64>,
        all_qos: Vec<Arc<QosState>>,
        all_mm: Vec<Arc<MemManager>>,
    ) -> LiteResult<()> {
        self.mm.set_cluster(all_mm.clone());
        let dp = Arc::new(RnicDataPath::new(
            Arc::clone(&self.fabric),
            self.node,
            &self.config,
            self.global_mr.lkey(),
            global_rkeys,
            qp_pools,
            Arc::clone(&self.qos),
            all_qos,
            all_mm,
            Arc::clone(&self.alloc),
        ));
        let once = LiteError::Internal("cluster setup ran twice on one node");
        self.datapath.set(dp).map_err(|_| once.clone())?;
        self.client_rings
            .set(client_rings)
            .map_err(|_| once.clone())?;
        self.server_rings
            .set(server_rings)
            .map_err(|_| once.clone())?;
        self.head_sinks.set(head_sinks).map_err(|_| once)?;
        // Pre-post receive credits for write-imm (the paper's background
        // IMM-buffer posting).
        for _ in 0..self.config.recv_credits {
            self.shared_rq.post(RecvEntry {
                wr_id: 0,
                sge: None,
            });
        }
        let me = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("lite-poller-{}", self.node))
            .spawn(move || me.poll_loop())
            .map_err(|_| LiteError::Internal("could not spawn the polling thread"))?;
        *self.poller.lock() = Some(handle);
        // The tiering manager only runs when a budget is configured, so
        // budget-0 clusters (the default, and the ablation baseline) get
        // no extra thread and byte-identical behavior.
        if self.mm.enabled() {
            let me = Arc::clone(self);
            let mm_handle = std::thread::Builder::new()
                .name(format!("lite-mm-{}", self.node))
                .spawn(move || crate::mm::run(me))
                .map_err(|_| LiteError::Internal("could not spawn the memory manager"))?;
            *self.mm_thread.lock() = Some(mm_handle);
        }
        Ok(())
    }

    /// Gives the cluster what it needs to wire this node: the shared CQs
    /// and receive queue for QP creation.
    pub(crate) fn shared_queues(&self) -> (Arc<Cq>, Arc<Cq>, Arc<RecvQueue>) {
        (
            Arc::clone(&self.shared_send_cq),
            Arc::clone(&self.shared_recv_cq),
            Arc::clone(&self.shared_rq),
        )
    }

    /// This node's head-sink physical address (for the cluster exchange).
    pub(crate) fn head_sink_addr(&self) -> u64 {
        self.head_sink
    }

    /// This node's global rkey (for the cluster exchange).
    pub(crate) fn global_rkey(&self) -> u32 {
        self.global_mr.rkey()
    }

    /// Allocates the server-side ring for messages from `client`.
    pub(crate) fn alloc_ring(&self, _client: NodeId) -> LiteResult<u64> {
        Ok(self.alloc.lock().alloc(self.config.rpc_ring_bytes)?)
    }

    /// Begins shutdown: stops the memory manager (it issues kernel calls
    /// of its own, so it must quiesce while the pollers still run), then
    /// the poller, then closes CQs.
    pub(crate) fn stop(&self) {
        self.mm.begin_shutdown();
        if let Some(h) = self.mm_thread.lock().take() {
            let _ = h.join();
        }
        self.shutdown.store(true, Ordering::Release);
        self.shared_recv_cq.close();
        if let Some(h) = self.poller.lock().take() {
            let _ = h.join();
        }
    }
}
