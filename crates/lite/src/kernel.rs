//! The per-node LITE kernel module.
//!
//! One `LiteKernel` per node owns everything the paper's loadable module
//! owns: the node's physical allocator, the single *global physical MR*
//! (§4.1), K shared RC QPs per peer attached to one shared receive CQ
//! (§6.1), per-peer RPC rings (§5.1), the shared polling thread, the lh
//! tables, master records, and the kernel-internal services (naming,
//! mapping, locks, barriers, memory ops) that the LITE API is built on.
//!
//! Kernel-internal services are *event-driven handlers executed by the
//! polling thread* — none of them blocks, and multi-step operations (e.g.
//! `LT_malloc` + name registration) are driven by the calling thread as a
//! sequence of RPCs, so the poller can never deadlock.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};
use rnic::qp::{RecvEntry, RecvQueue};
use rnic::{Cq, IbFabric, NodeId, Qp, RemoteAddr, Sge, Wc, WcOpcode};
use simnet::{CpuMeter, Ctx, Nanos};
use smem::{Chunk, PhysAllocator, PhysMem};

use crate::config::LiteConfig;
use crate::error::{LiteError, LiteResult};
use crate::lmr::{LhEntry, LmrId, Location, MasterRecord, Perm};
use crate::qos::{Priority, QosConfig, QosMode, QosState};
use crate::ring::{ClientRing, Reservation, ServerRing};
use crate::wire::{Imm, MsgHeader, HEADER_BYTES, RING_GRANULE};

// ---------------------------------------------------------------------
// Kernel-internal RPC function ids (< USER_FUNC_MIN).
// ---------------------------------------------------------------------

/// One-way messaging (LT_send / LT_recv).
pub const FN_MSG: u8 = 1;
pub(crate) const FN_MALLOC: u8 = 2;
pub(crate) const FN_FREE_CHUNKS: u8 = 3;
pub(crate) const FN_INVALIDATE: u8 = 4;
pub(crate) const FN_REGNAME: u8 = 5;
pub(crate) const FN_QUERYNAME: u8 = 6;
pub(crate) const FN_MAP: u8 = 7;
pub(crate) const FN_UNMAP: u8 = 8;
pub(crate) const FN_MEMSET: u8 = 9;
pub(crate) const FN_MEMCPY: u8 = 10;
pub(crate) const FN_LOCK: u8 = 11;
pub(crate) const FN_BARRIER: u8 = 12;
pub(crate) const FN_TAKE_RECORD: u8 = 13;
pub(crate) const FN_GRANT: u8 = 14;
pub(crate) const FN_UNREGNAME: u8 = 15;
/// First function id available to applications.
pub const USER_FUNC_MIN: u8 = 16;

/// The cluster-manager node (name registry; §3.3's management service).
pub const MANAGER_NODE: NodeId = 0;

/// Number of pre-allocated lock cells per node.
const LOCK_CELLS: u64 = 4_096;

/// Simulation-internal cost of a loop-back delivery (RPC to self).
const LOOPBACK_NS: Nanos = 400;

// ---------------------------------------------------------------------
// Small wire codec for kernel-service payloads.
// ---------------------------------------------------------------------

pub(crate) mod codec {
    //! Hand-rolled little-endian payload codec for kernel services.

    use crate::error::{LiteError, LiteResult};

    /// Incremental writer.
    #[derive(Default)]
    pub struct Enc(pub Vec<u8>);

    impl Enc {
        pub fn new() -> Self {
            Enc(Vec::new())
        }
        pub fn u8(mut self, v: u8) -> Self {
            self.0.push(v);
            self
        }
        pub fn u32(mut self, v: u32) -> Self {
            self.0.extend_from_slice(&v.to_le_bytes());
            self
        }
        pub fn u64(mut self, v: u64) -> Self {
            self.0.extend_from_slice(&v.to_le_bytes());
            self
        }
        pub fn bytes(mut self, v: &[u8]) -> Self {
            self = self.u32(v.len() as u32);
            self.0.extend_from_slice(v);
            self
        }
        pub fn done(self) -> Vec<u8> {
            self.0
        }
    }

    /// Incremental reader.
    pub struct Dec<'a> {
        b: &'a [u8],
        pos: usize,
    }

    impl<'a> Dec<'a> {
        pub fn new(b: &'a [u8]) -> Self {
            Dec { b, pos: 0 }
        }
        fn take(&mut self, n: usize) -> LiteResult<&'a [u8]> {
            if self.pos + n > self.b.len() {
                return Err(LiteError::Remote(0xFC));
            }
            let s = &self.b[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }
        pub fn u8(&mut self) -> LiteResult<u8> {
            Ok(self.take(1)?[0])
        }
        pub fn u32(&mut self) -> LiteResult<u32> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
        }
        pub fn u64(&mut self) -> LiteResult<u64> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
        }
        pub fn bytes(&mut self) -> LiteResult<&'a [u8]> {
            let n = self.u32()? as usize;
            self.take(n)
        }
    }
}

use codec::{Dec, Enc};

// ---------------------------------------------------------------------
// Completion slots, queues, managers.
// ---------------------------------------------------------------------

/// A per-call completion slot: the simulation analogue of §5.2's shared
/// user/kernel page through which the LITE library observes completion
/// without a kernel-to-user crossing.
pub(crate) struct CallSlot {
    state: Mutex<Option<SlotResult>>,
    cv: Condvar,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotResult {
    pub stamp: Nanos,
    pub len: u32,
    pub ok: bool,
}

impl CallSlot {
    fn new() -> Self {
        CallSlot {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn complete(&self, r: SlotResult) {
        *self.state.lock() = Some(r);
        self.cv.notify_all();
    }

    /// Blocks for the result; models the adaptive busy-check-then-sleep
    /// wait of the LITE library (§5.2).
    pub(crate) fn wait(
        &self,
        ctx: &mut Ctx,
        cfg: &LiteConfig,
        timeout: Duration,
    ) -> LiteResult<SlotResult> {
        let mut st = self.state.lock();
        while st.is_none() {
            if self.cv.wait_for(&mut st, timeout).timed_out() && st.is_none() {
                return Err(LiteError::Timeout);
            }
        }
        let r = st.expect("checked above");
        drop(st);
        let gap = r.stamp.saturating_sub(ctx.now());
        if cfg.adaptive_poll {
            // Busy-check briefly, then sleep until completion.
            ctx.cpu.charge(gap.min(cfg.adaptive_spin_ns));
        } else {
            ctx.cpu.charge(gap);
        }
        ctx.wait_until(r.stamp);
        Ok(r)
    }
}

/// An incoming RPC parked in a function queue, payload still in the ring.
#[derive(Debug, Clone)]
pub struct Incoming {
    /// Decoded header.
    pub hdr: MsgHeader,
    /// Ring byte offset of the message start.
    pub ring_offset: u64,
    /// Virtual arrival stamp.
    pub stamp: Nanos,
}

/// Queue of incoming calls for one RPC function id.
pub(crate) struct RpcQueue {
    q: Mutex<VecDeque<Incoming>>,
    cv: Condvar,
}

impl RpcQueue {
    fn new() -> Self {
        RpcQueue {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, inc: Incoming) {
        self.q.lock().push_back(inc);
        self.cv.notify_one();
    }

    fn pop(&self, timeout: Duration) -> Option<Incoming> {
        let mut q = self.q.lock();
        loop {
            if let Some(inc) = q.pop_front() {
                return Some(inc);
            }
            if self.cv.wait_for(&mut q, timeout).timed_out() {
                return q.pop_front();
            }
        }
    }

    fn try_pop(&self) -> Option<Incoming> {
        self.q.lock().pop_front()
    }
}

/// Where to send a (possibly delayed) reply.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplyRoute {
    pub node: u32,
    pub slot: u32,
    pub reply_addr: u64,
    pub reply_max: u32,
}

impl ReplyRoute {
    pub(crate) fn of_hdr(hdr: &MsgHeader) -> Self {
        ReplyRoute {
            node: hdr.src_node,
            slot: hdr.slot,
            reply_addr: hdr.reply_addr,
            reply_max: hdr.reply_max,
        }
    }
}

#[derive(Default)]
struct LockState {
    waiters: VecDeque<ReplyRoute>,
    credits: u32,
}

struct BarrierState {
    routes: Vec<ReplyRoute>,
    count: u32,
}

struct MasterTable {
    records: HashMap<u32, MasterRecord>,
    by_name: HashMap<String, u32>,
    next_idx: u32,
}

/// Aggregate kernel statistics.
#[derive(Debug, Default, Clone)]
pub struct KernelStats {
    /// RPC requests dispatched by the poller.
    pub rpc_dispatched: u64,
    /// One-sided writes issued through LITE.
    pub lt_writes: u64,
    /// One-sided reads issued through LITE.
    pub lt_reads: u64,
    /// Bytes moved by LITE one-sided ops.
    pub lt_bytes: u64,
    /// Total RC QPs this kernel created (K × (N-1)).
    pub qps: usize,
}

// ---------------------------------------------------------------------
// The kernel proper.
// ---------------------------------------------------------------------

/// The LITE kernel module instance on one node.
pub struct LiteKernel {
    pub(crate) node: NodeId,
    pub(crate) config: LiteConfig,
    pub(crate) fabric: Arc<IbFabric>,
    pub(crate) alloc: Arc<Mutex<PhysAllocator>>,
    global_mr: rnic::Mr,
    global_rkeys: OnceLock<Vec<u32>>,
    head_sinks: OnceLock<Vec<u64>>,
    qp_pools: OnceLock<Vec<Vec<Arc<Qp>>>>,
    pub(crate) shared_recv_cq: Arc<Cq>,
    shared_send_cq: Arc<Cq>,
    shared_rq: Arc<RecvQueue>,
    client_rings: OnceLock<Vec<Option<ClientRing>>>,
    server_rings: OnceLock<Vec<Option<ServerRing>>>,
    /// This node's 64-byte head-update sink cell.
    head_sink: u64,
    /// Base of the lock-cell array.
    lock_cells: u64,
    next_lock: AtomicU64,
    slots: Mutex<HashMap<u32, Arc<CallSlot>>>,
    next_slot: AtomicU32,
    queues: RwLock<HashMap<u8, Arc<RpcQueue>>>,
    locks: Mutex<HashMap<u64, LockState>>,
    barriers: Mutex<HashMap<u64, BarrierState>>,
    masters: Mutex<MasterTable>,
    names: Mutex<HashMap<String, u32>>,
    lhs: Mutex<HashMap<(u32, u64), LhEntry>>,
    next_pid: AtomicU32,
    next_lh: AtomicU64,
    pub(crate) qos: Arc<QosState>,
    all_qos: OnceLock<Vec<Arc<QosState>>>,
    rr: AtomicUsize,
    shutdown: AtomicBool,
    poller: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// CPU meter of the shared polling thread.
    pub poller_cpu: Arc<CpuMeter>,
    // stats
    s_rpc: AtomicU64,
    s_writes: AtomicU64,
    s_reads: AtomicU64,
    s_bytes: AtomicU64,
}

impl LiteKernel {
    /// Creates the kernel for `node`; the cluster finishes wiring with
    /// [`LiteKernel::finish_setup`].
    pub(crate) fn new(
        node: NodeId,
        config: LiteConfig,
        qos_cfg: QosConfig,
        fabric: Arc<IbFabric>,
    ) -> LiteResult<Self> {
        let mem_size = fabric.mem(node).size();
        let alloc = Arc::new(Mutex::new(PhysAllocator::new(0, mem_size)));
        let mut ctx = Ctx::new();
        let nic = fabric.nic(node);
        // The heart of §4.1: one MR covering all physical memory,
        // registered with physical addresses. With the ablation switch
        // off, this MR is still created but LMR traffic goes through
        // per-LMR virtual MRs instead (see `ablation` tests).
        let global_mr = nic.register_phys_mr(&mut ctx, 0, mem_size, rnic::Access::RW)?;
        let (head_sink, lock_cells) = {
            let mut a = alloc.lock();
            (a.alloc(64)?, a.alloc(LOCK_CELLS * 8)?)
        };
        let link = fabric.cost().link_bytes_per_sec;
        let kernel = LiteKernel {
            node,
            config,
            fabric,
            alloc,
            global_mr,
            global_rkeys: OnceLock::new(),
            head_sinks: OnceLock::new(),
            qp_pools: OnceLock::new(),
            shared_recv_cq: Arc::new(Cq::new()),
            shared_send_cq: Arc::new(Cq::new()),
            shared_rq: Arc::new(RecvQueue::new()),
            client_rings: OnceLock::new(),
            server_rings: OnceLock::new(),
            head_sink,
            lock_cells,
            next_lock: AtomicU64::new(0),
            slots: Mutex::new(HashMap::new()),
            next_slot: AtomicU32::new(1),
            queues: RwLock::new(HashMap::new()),
            locks: Mutex::new(HashMap::new()),
            barriers: Mutex::new(HashMap::new()),
            masters: Mutex::new(MasterTable {
                records: HashMap::new(),
                by_name: HashMap::new(),
                next_idx: 1,
            }),
            names: Mutex::new(HashMap::new()),
            lhs: Mutex::new(HashMap::new()),
            next_pid: AtomicU32::new(1),
            next_lh: AtomicU64::new(1),
            qos: Arc::new(QosState::new(qos_cfg, link)),
            all_qos: OnceLock::new(),
            rr: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            poller: Mutex::new(None),
            poller_cpu: Arc::new(CpuMeter::new()),
            s_rpc: AtomicU64::new(0),
            s_writes: AtomicU64::new(0),
            s_reads: AtomicU64::new(0),
            s_bytes: AtomicU64::new(0),
        };
        // FN_MSG delivers through a queue like user functions do.
        kernel
            .queues
            .write()
            .insert(FN_MSG, Arc::new(RpcQueue::new()));
        Ok(kernel)
    }

    /// Node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The LITE configuration.
    pub fn config(&self) -> &LiteConfig {
        &self.config
    }

    /// The fabric under this kernel.
    pub fn fabric(&self) -> &Arc<IbFabric> {
        &self.fabric
    }

    /// QoS control surface.
    pub fn qos(&self) -> &QosState {
        &self.qos
    }

    /// Shared handle to this node's QoS state (cluster wiring).
    pub(crate) fn qos_arc(&self) -> Arc<QosState> {
        Arc::clone(&self.qos)
    }

    /// The QoS state of a peer node (receiver-side SW-Pri policies).
    fn qos_of(&self, node: NodeId) -> &QosState {
        match self.all_qos.get() {
            Some(v) => &v[node],
            None => &self.qos,
        }
    }

    /// Applies QoS before an op of `bytes` towards `dst`: HW-Sep
    /// partitions the sender; SW-Pri consults the *receiver's* monitor
    /// (the paper's policy 3 explicitly uses receiver-side information).
    fn qos_before(&self, ctx: &mut Ctx, prio: Priority, dst: NodeId, bytes: u64) {
        match self.qos.mode() {
            QosMode::SwPri => self.qos_of(dst).before_op(ctx, prio, bytes),
            _ => self.qos.before_op(ctx, prio, bytes),
        }
    }

    /// Records a completed high-priority op at the receiver's monitor.
    fn qos_after_high(&self, dst: NodeId, finish: Nanos, bytes: u64, latency: Nanos) {
        self.qos_of(dst).after_high_op(finish, bytes, latency);
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> KernelStats {
        KernelStats {
            rpc_dispatched: self.s_rpc.load(Ordering::Relaxed),
            lt_writes: self.s_writes.load(Ordering::Relaxed),
            lt_reads: self.s_reads.load(Ordering::Relaxed),
            lt_bytes: self.s_bytes.load(Ordering::Relaxed),
            qps: self
                .qp_pools
                .get()
                .map_or(0, |p| p.iter().map(Vec::len).sum()),
        }
    }

    fn mem(&self) -> &Arc<PhysMem> {
        self.fabric.mem(self.node)
    }

    pub(crate) fn global_lkey(&self) -> u32 {
        self.global_mr.lkey()
    }

    pub(crate) fn global_rkey_of(&self, node: NodeId) -> u32 {
        self.global_rkeys.get().expect("setup complete")[node]
    }

    fn client_ring(&self, server: NodeId) -> &ClientRing {
        self.client_rings.get().expect("setup")[server]
            .as_ref()
            .expect("ring exists")
    }

    fn server_ring(&self, client: NodeId) -> &ServerRing {
        self.server_rings.get().expect("setup")[client]
            .as_ref()
            .expect("ring exists")
    }

    // ------------------------------------------------------------------
    // Cluster wiring
    // ------------------------------------------------------------------

    /// Second-phase setup, run once by the cluster: QP pools, rings,
    /// global rkeys, head sinks, initial receive credits, and the poller.
    pub(crate) fn finish_setup(
        self: &Arc<Self>,
        qp_pools: Vec<Vec<Arc<Qp>>>,
        client_rings: Vec<Option<ClientRing>>,
        server_rings: Vec<Option<ServerRing>>,
        global_rkeys: Vec<u32>,
        head_sinks: Vec<u64>,
        all_qos: Vec<Arc<QosState>>,
    ) {
        self.all_qos.set(all_qos).ok().expect("setup once");
        self.qp_pools.set(qp_pools).ok().expect("setup once");
        self.client_rings
            .set(client_rings)
            .ok()
            .expect("setup once");
        self.server_rings
            .set(server_rings)
            .ok()
            .expect("setup once");
        self.global_rkeys
            .set(global_rkeys)
            .ok()
            .expect("setup once");
        self.head_sinks.set(head_sinks).ok().expect("setup once");
        // Pre-post receive credits for write-imm (the paper's background
        // IMM-buffer posting).
        for _ in 0..self.config.recv_credits {
            self.shared_rq.post(RecvEntry {
                wr_id: 0,
                sge: None,
            });
        }
        let me = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("lite-poller-{}", self.node))
            .spawn(move || me.poll_loop())
            .expect("spawn poller");
        *self.poller.lock() = Some(handle);
    }

    /// Gives the cluster what it needs to wire this node: the shared CQs
    /// and receive queue for QP creation.
    pub(crate) fn shared_queues(&self) -> (Arc<Cq>, Arc<Cq>, Arc<RecvQueue>) {
        (
            Arc::clone(&self.shared_send_cq),
            Arc::clone(&self.shared_recv_cq),
            Arc::clone(&self.shared_rq),
        )
    }

    /// This node's head-sink physical address (for the cluster exchange).
    pub(crate) fn head_sink_addr(&self) -> u64 {
        self.head_sink
    }

    /// This node's global rkey (for the cluster exchange).
    pub(crate) fn global_rkey(&self) -> u32 {
        self.global_mr.rkey()
    }

    /// Allocates the server-side ring for messages from `client`.
    pub(crate) fn alloc_ring(&self, _client: NodeId) -> LiteResult<u64> {
        Ok(self.alloc.lock().alloc(self.config.rpc_ring_bytes)?)
    }

    /// Begins shutdown: stops the poller and closes CQs.
    pub(crate) fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.shared_recv_cq.close();
        if let Some(h) = self.poller.lock().take() {
            let _ = h.join();
        }
    }

    // ------------------------------------------------------------------
    // QP selection (§6.1 sharing, §6.2 HW-Sep partitioning)
    // ------------------------------------------------------------------

    pub(crate) fn qp_to(&self, peer: NodeId, prio: Priority) -> LiteResult<Arc<Qp>> {
        let pools = self.qp_pools.get().expect("setup");
        let pool = pools
            .get(peer)
            .filter(|p| !p.is_empty())
            .ok_or(LiteError::NodeDown { node: peer })?;
        let k = pool.len();
        let (lo, hi) = if self.qos.mode() == QosMode::HwSep {
            let (h, _) = self.qos.hw_partition(k);
            match prio {
                Priority::High => (0, h),
                Priority::Low => {
                    if h < k {
                        (h, k)
                    } else {
                        (0, k)
                    }
                }
            }
        } else {
            (0, k)
        };
        let n = hi - lo;
        let idx = lo + self.rr.fetch_add(1, Ordering::Relaxed) % n;
        Ok(Arc::clone(&pool[idx]))
    }

    // ------------------------------------------------------------------
    // One-sided data plane
    // ------------------------------------------------------------------

    /// RDMA-writes `len` bytes from local physical `src_chunks` to
    /// `(dst_node, dst_addr)`. Returns the completion stamp; the caller
    /// decides whether to block on it (LT_write always does).
    pub(crate) fn rdma_write(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        dst_node: NodeId,
        dst_addr: u64,
        src_chunks: &[Chunk],
        len: usize,
    ) -> LiteResult<Nanos> {
        self.s_writes.fetch_add(1, Ordering::Relaxed);
        self.s_bytes.fetch_add(len as u64, Ordering::Relaxed);
        let start = ctx.now();
        ctx.work(self.config.map_check_ns);
        if dst_node == self.node {
            // Local LMR: plain memory copy, no NIC.
            let cost = self.fabric.cost();
            let data = read_chunks(self.mem(), src_chunks, len)?;
            self.mem().write(dst_addr, &data)?;
            ctx.work(cost.memcpy_time(len as u64));
            return Ok(ctx.now());
        }
        self.qos_before(ctx, prio, dst_node, len as u64);
        let qp = self.qp_to(dst_node, prio)?;
        let sge = Sge::Phys {
            lkey: self.global_lkey(),
            chunks: src_chunks.to_vec(),
        };
        let comp = self.fabric.nic(self.node).post_write(
            ctx,
            &qp,
            0,
            &sge,
            RemoteAddr {
                rkey: self.global_rkey_of(dst_node),
                addr: dst_addr,
            },
            None,
            false,
        )?;
        if prio == Priority::High {
            self.qos_after_high(dst_node, comp, len as u64, comp.saturating_sub(start));
        }
        Ok(comp)
    }

    /// RDMA-reads `len` bytes from `(src_node, src_addr)` into local
    /// physical `dst_chunks`.
    pub(crate) fn rdma_read(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        src_node: NodeId,
        src_addr: u64,
        dst_chunks: &[Chunk],
        len: usize,
    ) -> LiteResult<Nanos> {
        self.s_reads.fetch_add(1, Ordering::Relaxed);
        self.s_bytes.fetch_add(len as u64, Ordering::Relaxed);
        let start = ctx.now();
        ctx.work(self.config.map_check_ns);
        if src_node == self.node {
            let cost = self.fabric.cost();
            let mut data = vec![0u8; len];
            self.mem().read(src_addr, &mut data)?;
            write_chunks(self.mem(), dst_chunks, &data)?;
            ctx.work(cost.memcpy_time(len as u64));
            return Ok(ctx.now());
        }
        self.qos_before(ctx, prio, src_node, len as u64);
        let qp = self.qp_to(src_node, prio)?;
        let sge = Sge::Phys {
            lkey: self.global_lkey(),
            chunks: dst_chunks.to_vec(),
        };
        let comp = self.fabric.nic(self.node).post_read(
            ctx,
            &qp,
            0,
            &sge,
            RemoteAddr {
                rkey: self.global_rkey_of(src_node),
                addr: src_addr,
            },
            false,
        )?;
        if prio == Priority::High {
            self.qos_after_high(src_node, comp, len as u64, comp.saturating_sub(start));
        }
        Ok(comp)
    }

    /// One-sided fetch-and-add on a u64 anywhere in the cluster.
    pub(crate) fn fetch_add(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        node: NodeId,
        addr: u64,
        delta: u64,
    ) -> LiteResult<u64> {
        ctx.work(self.config.map_check_ns);
        if node == self.node {
            ctx.work(120);
            return Ok(self.mem().fetch_add_u64(addr, delta)?);
        }
        let qp = self.qp_to(node, prio)?;
        Ok(self.fabric.nic(self.node).fetch_add(
            ctx,
            &qp,
            RemoteAddr {
                rkey: self.global_rkey_of(node),
                addr,
            },
            delta,
        )?)
    }

    /// One-sided compare-and-swap on a u64 anywhere in the cluster.
    pub(crate) fn cmp_swap(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        node: NodeId,
        addr: u64,
        expect: u64,
        new: u64,
    ) -> LiteResult<u64> {
        ctx.work(self.config.map_check_ns);
        if node == self.node {
            ctx.work(120);
            return Ok(self.mem().cas_u64(addr, expect, new)?);
        }
        let qp = self.qp_to(node, prio)?;
        Ok(self.fabric.nic(self.node).cmp_swap(
            ctx,
            &qp,
            RemoteAddr {
                rkey: self.global_rkey_of(node),
                addr,
            },
            expect,
            new,
        )?)
    }

    // ------------------------------------------------------------------
    // RPC data plane
    // ------------------------------------------------------------------

    /// Posts a write-imm carrying `len` bytes from `src_chunks` to
    /// `(dst_node, dst_addr)`. Loop-back (self) deliveries bypass the NIC
    /// but flow through the same shared CQ and poller.
    pub(crate) fn post_write_imm(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        dst_node: NodeId,
        dst_addr: u64,
        src_chunks: &[Chunk],
        len: usize,
        imm: Imm,
    ) -> LiteResult<Nanos> {
        if dst_node == self.node {
            let data = read_chunks(self.mem(), src_chunks, len)?;
            self.mem().write(dst_addr, &data)?;
            let cost = self.fabric.cost();
            ctx.work(cost.memcpy_time(len as u64));
            let stamp = ctx.now() + LOOPBACK_NS;
            let mut wc = Wc::new(0, WcOpcode::RecvRdmaWithImm, len, stamp);
            wc.imm = Some(imm.encode());
            wc.src = Some((self.node, u64::MAX)); // loopback marker
            self.shared_recv_cq.push(wc);
            return Ok(stamp);
        }
        self.qos_before(ctx, prio, dst_node, len as u64);
        let qp = self.qp_to(dst_node, prio)?;
        let sge = Sge::Phys {
            lkey: self.global_lkey(),
            chunks: src_chunks.to_vec(),
        };
        // RNR (exhausted credits at the receiver) is transient: the remote
        // poller reposts credits continuously. Retry briefly.
        let mut tries = 0;
        loop {
            match self.fabric.nic(self.node).post_write(
                ctx,
                &qp,
                0,
                &sge,
                RemoteAddr {
                    rkey: self.global_rkey_of(dst_node),
                    addr: dst_addr,
                },
                Some(imm.encode()),
                false,
            ) {
                Ok(stamp) => return Ok(stamp),
                Err(rnic::VerbsError::ReceiverNotReady) if tries < 1000 => {
                    tries += 1;
                    std::thread::yield_now();
                    ctx.clock.advance(200);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Reserves ring space towards `server`, waiting (bounded) for head
    /// updates when the ring is full.
    pub(crate) fn reserve_ring(
        &self,
        ctx: &mut Ctx,
        server: NodeId,
        total_len: u64,
    ) -> LiteResult<Reservation> {
        let ring = self.client_ring(server);
        let deadline = std::time::Instant::now() + self.config.op_timeout;
        loop {
            match ring.try_reserve(total_len) {
                Ok(r) => return Ok(r),
                Err(LiteError::RingFull) => {
                    if std::time::Instant::now() > deadline {
                        return Err(LiteError::RingFull);
                    }
                    let (_, stamp) = ring.head();
                    ctx.wait_until(stamp);
                    std::thread::yield_now();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Ring slot → physical address at the server.
    pub(crate) fn ring_remote_addr(&self, server: NodeId, offset: u64) -> u64 {
        self.client_ring(server).remote_base + offset
    }

    /// Registers a fresh completion slot.
    pub(crate) fn alloc_slot(&self) -> (u32, Arc<CallSlot>) {
        loop {
            let id = self.next_slot.fetch_add(1, Ordering::Relaxed) & ((1 << 30) - 1);
            if id == 0 {
                continue;
            }
            let slot = Arc::new(CallSlot::new());
            let mut slots = self.slots.lock();
            if slots.contains_key(&id) {
                continue;
            }
            slots.insert(id, Arc::clone(&slot));
            return (id, slot);
        }
    }

    /// Drops a completion slot (after wait or timeout).
    pub(crate) fn free_slot(&self, id: u32) {
        self.slots.lock().remove(&id);
    }

    /// Binds an RPC function id to a fresh queue (LT_regRPC).
    pub fn register_rpc(&self, func: u8) -> LiteResult<()> {
        if func < USER_FUNC_MIN {
            return Err(LiteError::ReservedFunc { func });
        }
        self.queues
            .write()
            .entry(func)
            .or_insert_with(|| Arc::new(RpcQueue::new()));
        Ok(())
    }

    pub(crate) fn queue_of(&self, func: u8) -> LiteResult<Arc<RpcQueue>> {
        self.queues
            .read()
            .get(&func)
            .cloned()
            .ok_or(LiteError::UnknownRpc { func })
    }

    /// Blocking dequeue of the next call for `func` (LT_recvRPC's kernel
    /// half).
    pub(crate) fn pop_rpc(
        &self,
        ctx: &mut Ctx,
        func: u8,
        timeout: Duration,
    ) -> LiteResult<Incoming> {
        let q = self.queue_of(func)?;
        let inc = q.pop(timeout).ok_or(LiteError::Timeout)?;
        let gap = inc.stamp.saturating_sub(ctx.now());
        if self.config.adaptive_poll {
            ctx.cpu.charge(gap.min(self.config.adaptive_spin_ns));
        } else {
            ctx.cpu.charge(gap);
        }
        ctx.wait_until(inc.stamp);
        Ok(inc)
    }

    /// Non-blocking dequeue (used by servers that interleave work).
    pub(crate) fn try_pop_rpc(&self, ctx: &mut Ctx, func: u8) -> LiteResult<Option<Incoming>> {
        let q = self.queue_of(func)?;
        Ok(q.try_pop().inspect(|inc| {
            ctx.wait_until(inc.stamp);
        }))
    }

    /// Copies a parked message's payload out of the ring.
    pub(crate) fn read_ring_payload(&self, client: NodeId, inc: &Incoming) -> LiteResult<Vec<u8>> {
        let ring = self.server_ring(client);
        let mut buf = vec![0u8; inc.hdr.len as usize];
        self.mem()
            .read(ring.base + inc.ring_offset + HEADER_BYTES as u64, &mut buf)?;
        Ok(buf)
    }

    /// Frees the ring span of a consumed message and pushes the head
    /// update to the client (§5.1 step f).
    pub(crate) fn release_ring(
        &self,
        ctx: &mut Ctx,
        client: NodeId,
        inc: &Incoming,
    ) -> LiteResult<()> {
        let total = HEADER_BYTES as u64 + inc.hdr.len as u64;
        let ring = self.server_ring(client);
        if let Some(head) = ring.consume(inc.ring_offset, total, inc.hdr.skip as u64) {
            let sink = self.head_sinks.get().expect("setup")[client];
            let imm = Imm::Head {
                granule: ((head / RING_GRANULE) & ((1 << 30) - 1)) as u32,
            };
            self.post_write_imm(ctx, Priority::High, client, sink, &[], 0, imm)?;
        }
        Ok(())
    }

    /// Sends a reply (LT_replyRPC's kernel half): writes the payload to
    /// the client's reply buffer and signals its slot.
    pub(crate) fn send_reply(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        route: ReplyRoute,
        src_chunks: &[Chunk],
        len: usize,
    ) -> LiteResult<Nanos> {
        if route.slot == 0 {
            return Ok(ctx.now()); // one-way message: nothing to send
        }
        if len > route.reply_max as usize {
            return Err(LiteError::TooLarge {
                len,
                max: route.reply_max as usize,
            });
        }
        self.post_write_imm(
            ctx,
            prio,
            route.node as NodeId,
            route.reply_addr,
            src_chunks,
            len,
            Imm::Reply { slot: route.slot },
        )
    }

    /// Sends an error reply (consumes no reply-buffer space).
    fn send_error_reply(&self, ctx: &mut Ctx, route: ReplyRoute) -> LiteResult<()> {
        if route.slot == 0 {
            return Ok(());
        }
        self.post_write_imm(
            ctx,
            Priority::High,
            route.node as NodeId,
            route.reply_addr,
            &[],
            0,
            Imm::ReplyErr { slot: route.slot },
        )?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // lh table
    // ------------------------------------------------------------------

    /// Creates a process on this node; returns its pid.
    pub(crate) fn alloc_pid(&self) -> u32 {
        self.next_pid.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn install_lh(&self, pid: u32, entry: LhEntry) -> u64 {
        let lh = self.next_lh.fetch_add(1, Ordering::Relaxed);
        self.lhs.lock().insert((pid, lh), entry);
        lh
    }

    pub(crate) fn lookup_lh(&self, pid: u32, lh: u64) -> LiteResult<LhEntry> {
        self.lhs
            .lock()
            .get(&(pid, lh))
            .cloned()
            .ok_or(LiteError::BadLh { lh })
    }

    pub(crate) fn reinstall_lh(&self, pid: u32, lh: u64, entry: LhEntry) {
        self.lhs.lock().insert((pid, lh), entry);
    }

    pub(crate) fn remove_lh(&self, pid: u32, lh: u64) -> LiteResult<LhEntry> {
        self.lhs
            .lock()
            .remove(&(pid, lh))
            .ok_or(LiteError::BadLh { lh })
    }

    fn invalidate_lmr(&self, id: LmrId) {
        for entry in self.lhs.lock().values_mut() {
            if entry.id == id {
                entry.stale = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Master records
    // ------------------------------------------------------------------

    /// Removes a master record created on this node (rollback path).
    pub(crate) fn remove_master_record(&self, idx: u32) {
        let mut t = self.masters.lock();
        if let Some(rec) = t.records.remove(&idx) {
            if let Some(name) = rec.name {
                t.by_name.remove(&name);
            }
        }
    }

    /// Swaps the physical location of a master record held on this node
    /// (LT_move). Returns the old location, or `None` if the record is
    /// gone or the requester lacks master rights.
    pub(crate) fn swap_master_location(
        &self,
        name: &str,
        requester: NodeId,
        new_location: Location,
    ) -> Option<(LmrId, Location, Vec<NodeId>)> {
        let mut t = self.masters.lock();
        let idx = *t.by_name.get(name)?;
        let rec = t.records.get_mut(&idx)?;
        if requester != self.node && !rec.perm_for(requester).master {
            return None;
        }
        let old = std::mem::replace(&mut rec.location, new_location);
        Some((rec.id, old, rec.mapped_by.clone()))
    }

    /// Installs a master record for a freshly allocated LMR.
    pub(crate) fn create_master_record(
        &self,
        location: Location,
        name: Option<String>,
        default_perm: Perm,
    ) -> LmrId {
        let mut t = self.masters.lock();
        let idx = t.next_idx;
        t.next_idx += 1;
        let id = LmrId {
            node: self.node as u32,
            idx,
        };
        if let Some(n) = &name {
            t.by_name.insert(n.clone(), idx);
        }
        t.records.insert(
            idx,
            MasterRecord {
                id,
                location,
                name,
                default_perm,
                grants: HashMap::new(),
                mapped_by: vec![self.node],
            },
        );
        id
    }

    // ------------------------------------------------------------------
    // Locks
    // ------------------------------------------------------------------

    /// Allocates a lock cell on this node; returns its physical address
    /// and index.
    pub(crate) fn alloc_lock_cell(&self) -> LiteResult<(u64, u64)> {
        let idx = self.next_lock.fetch_add(1, Ordering::Relaxed);
        if idx >= LOCK_CELLS {
            return Err(LiteError::Mem(smem::MemError::OutOfMemory { requested: 8 }));
        }
        let addr = self.lock_cells + idx * 8;
        self.mem().store_u64(addr, 0)?;
        Ok((addr, idx))
    }

    // ------------------------------------------------------------------
    // The shared polling thread (§5.1/§6.1: one per node).
    // ------------------------------------------------------------------

    fn poll_loop(self: Arc<Self>) {
        let mut ctx = Ctx::with_meter(Arc::clone(&self.poller_cpu));
        let cost = self.fabric.cost().clone();
        let spin = !self.config.adaptive_poll;
        while !self.shutdown.load(Ordering::Acquire) {
            let Some(wc) =
                self.shared_recv_cq
                    .poll_blocking(&mut ctx, &cost, spin, Duration::from_millis(50))
            else {
                if self.shared_recv_cq.is_closed() {
                    break;
                }
                continue;
            };
            let (src_node, src_qp) = wc.src.unwrap_or((self.node, u64::MAX));
            // Repost the consumed receive credit (not for loop-backs,
            // which never consumed one).
            if src_qp != u64::MAX {
                self.shared_rq.post(RecvEntry {
                    wr_id: 0,
                    sge: None,
                });
                ctx.work(cost.post_wr_ns);
            }
            ctx.work(self.config.imm_dispatch_ns);
            match Imm::decode(wc.imm.unwrap_or(0)) {
                Imm::Request { granule } => {
                    self.s_rpc.fetch_add(1, Ordering::Relaxed);
                    let offset = granule as u64 * RING_GRANULE;
                    self.handle_request(&mut ctx, src_node, offset, wc.ready_at);
                }
                Imm::Reply { slot } => {
                    if let Some(s) = self.slots.lock().get(&slot) {
                        s.complete(SlotResult {
                            stamp: ctx.now(),
                            len: wc.byte_len as u32,
                            ok: true,
                        });
                    }
                }
                Imm::ReplyErr { slot } => {
                    if let Some(s) = self.slots.lock().get(&slot) {
                        s.complete(SlotResult {
                            stamp: ctx.now(),
                            len: 0,
                            ok: false,
                        });
                    }
                }
                Imm::Head { granule } => {
                    let rings = self.client_rings.get().expect("setup");
                    if let Some(ring) = rings.get(src_node).and_then(|r| r.as_ref()) {
                        let (cur, _) = ring.head();
                        ring.update_head(reconstruct_head(cur, granule), ctx.now());
                    }
                }
            }
        }
    }

    fn handle_request(&self, ctx: &mut Ctx, client: NodeId, offset: u64, stamp: Nanos) {
        let ring_base = self.server_ring(client).base;
        let mut hbuf = [0u8; HEADER_BYTES];
        if self.mem().read(ring_base + offset, &mut hbuf).is_err() {
            return;
        }
        let Ok(hdr) = MsgHeader::decode(&hbuf) else {
            return;
        };
        let inc = Incoming {
            hdr,
            ring_offset: offset,
            stamp,
        };
        if hdr.func >= USER_FUNC_MIN || hdr.func == FN_MSG {
            match self.queues.read().get(&hdr.func) {
                Some(q) => q.push(inc),
                None => {
                    // No handler bound: error-reply and release the ring.
                    let _ = self.release_ring(ctx, client, &inc);
                    let _ = self.send_error_reply(ctx, ReplyRoute::of_hdr(&hdr));
                }
            }
            return;
        }
        // Kernel service: read payload, free the ring, run the handler.
        let payload = match self.read_ring_payload(client, &inc) {
            Ok(p) => p,
            Err(_) => return,
        };
        let _ = self.release_ring(ctx, client, &inc);
        ctx.work(self.config.rpc_meta_ns);
        let route = ReplyRoute::of_hdr(&hdr);
        match self.kernel_service(ctx, &hdr, &payload) {
            Ok(Some(resp)) => {
                let _ = self.reply_bytes(ctx, route, &resp);
            }
            Ok(None) => {} // delayed reply (locks, barriers) or one-way
            Err(_) => {
                let _ = self.send_error_reply(ctx, route);
            }
        }
    }

    /// Stages `bytes` in a scratch allocation and write-imm's them as a
    /// reply. Used by poller-side handlers (user replies go through the
    /// caller's staging buffer instead).
    fn reply_bytes(&self, ctx: &mut Ctx, route: ReplyRoute, bytes: &[u8]) -> LiteResult<()> {
        if route.slot == 0 {
            return Ok(());
        }
        let addr = {
            let mut a = self.alloc.lock();
            a.alloc(bytes.len().max(1) as u64)?
        };
        self.mem().write(addr, bytes)?;
        let chunks = [Chunk {
            addr,
            len: bytes.len() as u64,
        }];
        let r = self.send_reply(ctx, Priority::High, route, &chunks, bytes.len());
        self.alloc.lock().free(addr)?;
        r.map(|_| ())
    }

    // ------------------------------------------------------------------
    // Kernel services (run on the poller; must never block)
    // ------------------------------------------------------------------

    fn kernel_service(
        &self,
        ctx: &mut Ctx,
        hdr: &MsgHeader,
        payload: &[u8],
    ) -> LiteResult<Option<Vec<u8>>> {
        let mut d = Dec::new(payload);
        match hdr.func {
            FN_MALLOC => {
                let size = d.u64()?;
                let max_chunk = d.u64()?;
                match self.alloc.lock().alloc_chunked(size, max_chunk) {
                    Ok(chunks) => {
                        let mut e = Enc::new().u8(0).u32(chunks.len() as u32);
                        for c in &chunks {
                            e = e.u64(c.addr).u64(c.len);
                        }
                        Ok(Some(e.done()))
                    }
                    Err(_) => Ok(Some(Enc::new().u8(1).done())),
                }
            }
            FN_FREE_CHUNKS => {
                let n = d.u32()?;
                let mut a = self.alloc.lock();
                let mut status = 0u8;
                for _ in 0..n {
                    let addr = d.u64()?;
                    if a.free(addr).is_err() {
                        status = 1;
                    }
                }
                Ok(Some(Enc::new().u8(status).done()))
            }
            FN_INVALIDATE => {
                let node = d.u32()?;
                let idx = d.u32()?;
                self.invalidate_lmr(LmrId { node, idx });
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_REGNAME => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                let master = d.u32()?;
                let mut names = self.names.lock();
                if names.contains_key(&name) {
                    Ok(Some(Enc::new().u8(1).done()))
                } else {
                    names.insert(name, master);
                    Ok(Some(Enc::new().u8(0).done()))
                }
            }
            FN_UNREGNAME => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                self.names.lock().remove(&name);
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_QUERYNAME => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                match self.names.lock().get(&name) {
                    Some(&node) => Ok(Some(Enc::new().u8(0).u32(node).done())),
                    None => Ok(Some(Enc::new().u8(2).done())),
                }
            }
            FN_MAP => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                let mut t = self.masters.lock();
                let Some(&idx) = t.by_name.get(&name) else {
                    return Ok(Some(Enc::new().u8(2).done()));
                };
                let rec = t.records.get_mut(&idx).expect("indexed");
                let perm = rec.perm_for(hdr.src_node as NodeId);
                if !rec.mapped_by.contains(&(hdr.src_node as NodeId)) {
                    rec.mapped_by.push(hdr.src_node as NodeId);
                }
                let mut e = Enc::new()
                    .u8(0)
                    .u32(rec.id.node)
                    .u32(rec.id.idx)
                    .u8(perm_to_byte(perm))
                    .u32(rec.location.extents.len() as u32);
                for (node, c) in &rec.location.extents {
                    e = e.u32(*node as u32).u64(c.addr).u64(c.len);
                }
                Ok(Some(e.done()))
            }
            FN_UNMAP => {
                let idx = d.u32()?;
                let node = d.u32()?;
                let mut t = self.masters.lock();
                if let Some(rec) = t.records.get_mut(&idx) {
                    rec.mapped_by.retain(|&n| n != node as NodeId);
                }
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_TAKE_RECORD => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                let mut t = self.masters.lock();
                let Some(&idx) = t.by_name.get(&name) else {
                    return Ok(Some(Enc::new().u8(2).done()));
                };
                let rec = t.records.get(&idx).expect("indexed");
                let requester = hdr.src_node as NodeId;
                let is_master = requester == self.node || rec.perm_for(requester).master;
                if !is_master {
                    return Ok(Some(Enc::new().u8(3).done()));
                }
                let rec = t.records.remove(&idx).expect("present");
                t.by_name.remove(&name);
                let mut e = Enc::new()
                    .u8(0)
                    .u32(rec.id.node)
                    .u32(rec.id.idx)
                    .u32(rec.location.extents.len() as u32);
                for (node, c) in &rec.location.extents {
                    e = e.u32(*node as u32).u64(c.addr).u64(c.len);
                }
                e = e.u32(rec.mapped_by.len() as u32);
                for n in &rec.mapped_by {
                    e = e.u32(*n as u32);
                }
                Ok(Some(e.done()))
            }
            FN_GRANT => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                let node = d.u32()?;
                let perm = byte_to_perm(d.u8()?);
                let mut t = self.masters.lock();
                let Some(&idx) = t.by_name.get(&name) else {
                    return Ok(Some(Enc::new().u8(2).done()));
                };
                let rec = t.records.get_mut(&idx).expect("indexed");
                let requester = hdr.src_node as NodeId;
                if requester != self.node && !rec.perm_for(requester).master {
                    return Ok(Some(Enc::new().u8(3).done()));
                }
                rec.grants.insert(node as NodeId, perm);
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_MEMSET => {
                let addr = d.u64()?;
                let len = d.u64()?;
                let byte = d.u8()?;
                self.mem().fill(addr, len as usize, byte)?;
                ctx.work(self.fabric.cost().memcpy_time(len));
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_MEMCPY => {
                let op = d.u8()?;
                let src = d.u64()?;
                let len = d.u64()?;
                let dst_node = d.u32()? as NodeId;
                let dst = d.u64()?;
                let mut data = vec![0u8; len as usize];
                self.mem().read(src, &mut data)?;
                if op == 0 || dst_node == self.node {
                    self.mem().write(dst, &data)?;
                    ctx.work(self.fabric.cost().memcpy_time(len));
                } else {
                    // Push to the destination node with a one-sided write;
                    // LT_memcpy returns only once the copy is durable.
                    let chunks = [Chunk { addr: src, len }];
                    let comp =
                        self.rdma_write(ctx, Priority::High, dst_node, dst, &chunks, len as usize)?;
                    ctx.wait_until(comp);
                }
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_LOCK => {
                let op = d.u8()?;
                let idx = d.u64()?;
                let mut locks = self.locks.lock();
                let st = locks.entry(idx).or_default();
                match op {
                    1 => {
                        // Enqueue a waiter; reply only when granted.
                        if st.credits > 0 {
                            st.credits -= 1;
                            drop(locks);
                            let _ = self.reply_bytes(ctx, ReplyRoute::of_hdr(hdr), &[0]);
                        } else {
                            st.waiters.push_back(ReplyRoute::of_hdr(hdr));
                        }
                        Ok(None)
                    }
                    2 => {
                        // Grant the next waiter (one-way from the unlocker).
                        let next = st.waiters.pop_front();
                        match next {
                            Some(route) => {
                                drop(locks);
                                let _ = self.reply_bytes(ctx, route, &[0]);
                            }
                            None => st.credits += 1,
                        }
                        Ok(None)
                    }
                    _ => Err(LiteError::Remote(1)),
                }
            }
            FN_BARRIER => {
                let id = d.u64()?;
                let count = d.u32()?;
                let mut barriers = self.barriers.lock();
                let st = barriers.entry(id).or_insert(BarrierState {
                    routes: Vec::new(),
                    count,
                });
                st.routes.push(ReplyRoute::of_hdr(hdr));
                if st.routes.len() as u32 >= st.count {
                    let st = barriers.remove(&id).expect("present");
                    drop(barriers);
                    for route in st.routes {
                        let _ = self.reply_bytes(ctx, route, &[0]);
                    }
                }
                Ok(None)
            }
            other => Err(LiteError::UnknownRpc { func: other }),
        }
    }
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

pub(crate) fn perm_to_byte(p: Perm) -> u8 {
    (p.read as u8) | ((p.write as u8) << 1) | ((p.master as u8) << 2)
}

pub(crate) fn byte_to_perm(b: u8) -> Perm {
    Perm {
        read: b & 1 != 0,
        write: b & 2 != 0,
        master: b & 4 != 0,
    }
}

/// Reconstructs a monotonic head position from its truncated 30-bit
/// granule counter, relative to the current head (which it can only be
/// ahead of, by less than the wrap period).
fn reconstruct_head(cur: u64, granule30: u32) -> u64 {
    let cur_g = (cur / RING_GRANULE) & ((1 << 30) - 1);
    let delta = (granule30 as u64).wrapping_sub(cur_g) & ((1 << 30) - 1);
    // Heads only move forward; a stale (reordered) update decodes as a
    // huge delta — ignore it by treating > half the period as stale.
    if delta > (1 << 29) {
        return cur;
    }
    cur + delta * RING_GRANULE
}

pub(crate) fn read_chunks(mem: &PhysMem, chunks: &[Chunk], len: usize) -> LiteResult<Vec<u8>> {
    let mut out = vec![0u8; len];
    let mut off = 0usize;
    for c in chunks {
        if off >= len {
            break;
        }
        let n = (c.len as usize).min(len - off);
        mem.read(c.addr, &mut out[off..off + n])?;
        off += n;
    }
    Ok(out)
}

pub(crate) fn write_chunks(mem: &PhysMem, chunks: &[Chunk], data: &[u8]) -> LiteResult<()> {
    let mut off = 0usize;
    for c in chunks {
        if off >= data.len() {
            break;
        }
        let n = (c.len as usize).min(data.len() - off);
        mem.write(c.addr, &data[off..off + n])?;
        off += n;
    }
    Ok(())
}

/// QPs this kernel should create towards each peer, honoring QoS needs:
/// K RC QPs per peer (§6.1). Used by the cluster builder's tests and by
/// external tooling that inspects the sharing scheme.
#[allow(dead_code)]
pub(crate) fn qp_plan(nodes: usize, me: NodeId, k: usize) -> Vec<(NodeId, usize)> {
    (0..nodes).filter(|&p| p != me).map(|p| (p, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrip() {
        let v = Enc::new()
            .u8(7)
            .u32(0xAABBCCDD)
            .u64(0x1122334455667788)
            .bytes(b"hello")
            .done();
        let mut d = Dec::new(&v);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xAABBCCDD);
        assert_eq!(d.u64().unwrap(), 0x1122334455667788);
        assert_eq!(d.bytes().unwrap(), b"hello");
        assert!(d.u8().is_err(), "exhausted");
    }

    #[test]
    fn perm_byte_roundtrip() {
        for p in [Perm::RO, Perm::RW, Perm::MASTER] {
            assert_eq!(byte_to_perm(perm_to_byte(p)), p);
        }
    }

    #[test]
    fn head_reconstruction() {
        // Simple forward movement.
        assert_eq!(reconstruct_head(0, 10), 10 * RING_GRANULE);
        let cur = 100 * RING_GRANULE;
        assert_eq!(reconstruct_head(cur, 100), cur, "no movement");
        assert_eq!(reconstruct_head(cur, 150), 150 * RING_GRANULE);
        // Stale update (behind current) is ignored.
        assert_eq!(reconstruct_head(cur, 50), cur);
        // Across the 30-bit wrap.
        let near_wrap = ((1u64 << 30) - 2) * RING_GRANULE;
        let new = reconstruct_head(near_wrap, 3);
        assert_eq!(new, near_wrap + 5 * RING_GRANULE);
    }

    #[test]
    fn qp_plan_counts() {
        let plan = qp_plan(4, 1, 2);
        assert_eq!(plan, vec![(0, 2), (2, 2), (3, 2)]);
        assert_eq!(plan.iter().map(|(_, k)| k).sum::<usize>(), 6);
    }
}
