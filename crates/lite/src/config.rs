//! LITE configuration, including the ablation switches called out in
//! DESIGN.md §5.

use simnet::Nanos;

/// Tunables of the LITE kernel module.
#[derive(Debug, Clone)]
pub struct LiteConfig {
    /// K, the number of shared RC QPs per peer node (§6.1: LITE uses K×N
    /// QPs per node; 1..=4 measured best).
    pub qp_factor: usize,
    /// Size of each per-client RPC ring LMR at a server node (§5.1 uses
    /// 16 MB).
    pub rpc_ring_bytes: u64,
    /// Receive-credit pool pre-posted per QP (write-imm consumes one; the
    /// polling thread reposts in the background).
    pub recv_credits: usize,
    /// Maximum physically-consecutive chunk of an LMR (§4.1 splits large
    /// LMRs to avoid external fragmentation).
    pub max_lmr_chunk: u64,
    /// One user/kernel crossing (§5.2 measures ~0.17 µs for the two
    /// crossings left on the RPC fast path).
    pub syscall_crossing_ns: Nanos,
    /// Kernel-side mapping + permission check for a one-sided op (§4.2:
    /// "less than 0.3 µs" for RPC metadata; one-sided is cheaper).
    pub map_check_ns: Nanos,
    /// RPC metadata handling (mapping + protection for an RPC).
    pub rpc_meta_ns: Nanos,
    /// Poller cost to parse an IMM and dispatch to a queue.
    pub imm_dispatch_ns: Nanos,
    /// How long a user thread busy-checks the shared completion page
    /// before sleeping (the "adaptive" thread model of §5.2).
    pub adaptive_spin_ns: Nanos,
    /// Maximum RPC payload (input or reply).
    pub max_rpc_payload: usize,
    /// Liveness bound on any blocking LITE call, in host wall time.
    pub op_timeout: std::time::Duration,

    // ---- scale-out (DESIGN.md §12 "Sharded kernel state") ----
    /// Shard count for the kernel's hot tables (lh entries, master
    /// records, names, locks, barriers, RPC slots/queues). Rounded up to
    /// a power of two, minimum 1. More shards = less lock contention
    /// between unrelated keys; 16 is plenty up to thousands of contexts.
    pub kernel_shards: usize,
    /// `true` restores the old boot behavior: wire the full O(N²·K) QP
    /// mesh and every RPC ring pair at cluster start instead of lazily
    /// on first use. The ablation baseline for the `scale` bench.
    pub eager_mesh: bool,

    // ---- fault recovery (DESIGN.md "Fault model & recovery") ----
    /// `false` disables the kernel recovery layer: datapath ops fail on
    /// the first transport fault instead of being retried, broken QPs
    /// are never re-established, and peers are never declared dead.
    pub retry_enabled: bool,
    /// Initial retry backoff (virtual time); doubles per failed attempt.
    pub retry_base_ns: Nanos,
    /// Cap on the exponential backoff growth.
    pub retry_max_backoff_ns: Nanos,
    /// Consecutive deadline-exhausted ops towards one peer after which
    /// the peer is declared dead; subsequent ops fail fast with
    /// [`crate::LiteError::PeerDead`] until incoming traffic or a probe
    /// revives it.
    pub peer_dead_threshold: u32,

    // ---- observability (DESIGN.md "Observability") ----
    /// Record 1 in `stats_sample_rate` op latencies into the kernel
    /// histograms (and their posted/completed trace events). Lifecycle
    /// *error* events — retried, reconnected, failed — are always
    /// recorded regardless of the rate, so recovery accounting stays
    /// exact. 1 (the default) records everything; recording costs host
    /// cycles only and never advances virtual clocks.
    pub stats_sample_rate: u32,
    /// Capacity of the per-node op-lifecycle trace ring, in events
    /// (rounded up to a power of two, minimum 64). Oldest events are
    /// evicted once full.
    pub trace_ring_slots: usize,

    // ---- memory tiering (DESIGN.md §11 "Memory tiering") ----
    /// Per-node physical-memory budget for LMR chunks, in bytes. When the
    /// resident bytes of locally-mastered LMRs exceed the budget, the
    /// [`crate::mm`] manager evicts cold chunks to swap nodes over the
    /// datapath. 0 (the default) disables tiering entirely: nothing is
    /// tracked, evicted, or rebalanced — the ablation baseline.
    pub mem_budget_bytes: u64,
    /// How often the background memory manager wakes to check pressure
    /// and rebalance, in host wall time.
    pub mm_sweep_interval: std::time::Duration,
    /// Nodes eligible to host evicted chunks. Empty (the default) means
    /// round-robin over all alive peers.
    pub mm_swap_nodes: Vec<usize>,
    /// Remote map-faults on an evicted LMR after which the manager pulls
    /// its chunks home (fetch-back), budget permitting.
    pub mm_fetch_back_faults: u32,
    /// Minimum per-chunk access count from a single remote peer before
    /// the rebalancer migrates the chunk toward that accessor. 0 (the
    /// default) disables rebalancing.
    pub mm_rebalance_threshold: u64,
    /// Pin-free on-demand registration (DESIGN.md §13). `false` (the
    /// default) pins every LMR page up front, so registration cost
    /// scales with size (the paper's Fig 8 malloc line). `true` defers
    /// pinning to first touch at the datapath — O(1) registration, a
    /// one-time page-fault penalty per touched page, and a background
    /// unpinner that releases pages cold for a full sweep epoch.
    pub lazy_pinning: bool,

    // ---- ablation switches ----
    /// `false` reverts §5.2's crossing optimizations: every RPC pays
    /// 3 syscalls / 6 crossings instead of 2 crossings.
    pub fast_syscalls: bool,
    /// `false` makes the shared polling thread and user waiters burn CPU
    /// for their whole wait (no adaptive sleep) — the Fig 13 ablation.
    pub adaptive_poll: bool,
    /// `false` disables the global physical MR: LITE falls back to
    /// registering each LMR as a native virtual MR, resurrecting the
    /// Fig 4/5 cliffs (DESIGN.md ablation `global_mr`).
    pub use_global_mr: bool,
    /// `false` disables doorbell-batched posting: chains handed to
    /// `DataPath::post_many` degrade to one host post + QP-context touch
    /// per work request instead of one per chain.
    pub batch_posting: bool,
}

impl Default for LiteConfig {
    fn default() -> Self {
        LiteConfig {
            qp_factor: 2,
            rpc_ring_bytes: 16 << 20,
            recv_credits: 4_096,
            max_lmr_chunk: 4 << 20,
            syscall_crossing_ns: 85,
            map_check_ns: 100,
            rpc_meta_ns: 300,
            imm_dispatch_ns: 300,
            adaptive_spin_ns: 2_000,
            max_rpc_payload: 4 << 20,
            op_timeout: std::time::Duration::from_secs(5),
            kernel_shards: 16,
            eager_mesh: false,
            retry_enabled: true,
            retry_base_ns: 2_000,
            retry_max_backoff_ns: 1_000_000,
            peer_dead_threshold: 3,
            stats_sample_rate: 1,
            trace_ring_slots: 4_096,
            mem_budget_bytes: 0,
            mm_sweep_interval: std::time::Duration::from_millis(2),
            mm_swap_nodes: Vec::new(),
            mm_fetch_back_faults: 3,
            mm_rebalance_threshold: 0,
            lazy_pinning: false,
            fast_syscalls: true,
            adaptive_poll: true,
            use_global_mr: true,
            batch_posting: true,
        }
    }
}

impl LiteConfig {
    /// Config with a given QP sharing factor.
    pub fn with_qp_factor(k: usize) -> Self {
        LiteConfig {
            qp_factor: k,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = LiteConfig::default();
        assert_eq!(c.rpc_ring_bytes, 16 << 20);
        assert_eq!(c.max_lmr_chunk, 4 << 20);
        assert!((1..=4).contains(&c.qp_factor));
        // Two crossings ≈ 0.17 µs.
        assert_eq!(2 * c.syscall_crossing_ns, 170);
    }
}
