//! The RPC plane: completion slots, per-function queues, ring
//! reservation/release, reply routing, and the shared polling thread
//! (§5.1, §5.2, §6.1).
//!
//! Everything here speaks [`Op`] descriptors through the node's
//! datapath; the only NIC-adjacent artifact left is the loop-back
//! delivery, which fabricates a completion into the shared receive CQ.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use rnic::qp::RecvEntry;
use rnic::{NodeId, Wc, WcOpcode};
use simnet::{Ctx, Nanos};
use smem::Chunk;

use super::datapath::{DataPath, Op};
use super::{LiteKernel, FN_MSG, USER_FUNC_MIN};
use crate::config::LiteConfig;
use crate::error::{LiteError, LiteResult};
use crate::qos::Priority;
use crate::ring::{ClientRing, Reservation, ServerRing};
use crate::wire::{Imm, MsgHeader, HEADER_BYTES, RING_GRANULE};

/// Simulation-internal cost of a loop-back delivery (RPC to self).
const LOOPBACK_NS: Nanos = 400;

/// A per-call completion slot: the simulation analogue of §5.2's shared
/// user/kernel page through which the LITE library observes completion
/// without a kernel-to-user crossing.
pub(crate) struct CallSlot {
    state: Mutex<Option<SlotResult>>,
    cv: Condvar,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotResult {
    pub stamp: Nanos,
    pub len: u32,
    pub ok: bool,
}

impl CallSlot {
    fn new() -> Self {
        CallSlot {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn complete(&self, r: SlotResult) {
        *self.state.lock() = Some(r);
        self.cv.notify_all();
    }

    /// Blocks for the result; models the adaptive busy-check-then-sleep
    /// wait of the LITE library (§5.2).
    pub(crate) fn wait(
        &self,
        ctx: &mut Ctx,
        cfg: &LiteConfig,
        timeout: Duration,
    ) -> LiteResult<SlotResult> {
        let mut st = self.state.lock();
        let r = loop {
            match *st {
                Some(r) => break r,
                None => {
                    if self.cv.wait_for(&mut st, timeout).timed_out() && st.is_none() {
                        return Err(LiteError::Timeout);
                    }
                }
            }
        };
        drop(st);
        let gap = r.stamp.saturating_sub(ctx.now());
        if cfg.adaptive_poll {
            // Busy-check briefly, then sleep until completion.
            ctx.cpu.charge(gap.min(cfg.adaptive_spin_ns));
        } else {
            ctx.cpu.charge(gap);
        }
        ctx.wait_until(r.stamp);
        Ok(r)
    }
}

/// An incoming RPC parked in a function queue, payload still in the ring.
#[derive(Debug, Clone)]
pub struct Incoming {
    /// Decoded header.
    pub hdr: MsgHeader,
    /// Ring byte offset of the message start.
    pub ring_offset: u64,
    /// Virtual arrival stamp.
    pub stamp: Nanos,
}

/// Queue of incoming calls for one RPC function id.
pub(crate) struct RpcQueue {
    q: Mutex<std::collections::VecDeque<Incoming>>,
    cv: Condvar,
}

impl RpcQueue {
    pub(super) fn new() -> Self {
        RpcQueue {
            q: Mutex::new(std::collections::VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, inc: Incoming) {
        self.q.lock().push_back(inc);
        self.cv.notify_one();
    }

    fn pop(&self, timeout: Duration) -> Option<Incoming> {
        let mut q = self.q.lock();
        loop {
            if let Some(inc) = q.pop_front() {
                return Some(inc);
            }
            if self.cv.wait_for(&mut q, timeout).timed_out() {
                return q.pop_front();
            }
        }
    }

    fn try_pop(&self) -> Option<Incoming> {
        self.q.lock().pop_front()
    }
}

/// Where to send a (possibly delayed) reply.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplyRoute {
    pub node: u32,
    pub slot: u32,
    pub reply_addr: u64,
    pub reply_max: u32,
}

impl ReplyRoute {
    pub(crate) fn of_hdr(hdr: &MsgHeader) -> Self {
        ReplyRoute {
            node: hdr.src_node,
            slot: hdr.slot,
            reply_addr: hdr.reply_addr,
            reply_max: hdr.reply_max,
        }
    }
}

/// Reconstructs a monotonic head position from its truncated 30-bit
/// granule counter, relative to the current head (which it can only be
/// ahead of, by less than the wrap period).
fn reconstruct_head(cur: u64, granule30: u32) -> u64 {
    let cur_g = (cur / RING_GRANULE) & ((1 << 30) - 1);
    let delta = (granule30 as u64).wrapping_sub(cur_g) & ((1 << 30) - 1);
    // Heads only move forward; a stale (reordered) update decodes as a
    // huge delta — ignore it by treating > half the period as stale.
    if delta > (1 << 29) {
        return cur;
    }
    cur + delta * RING_GRANULE
}

impl LiteKernel {
    pub(super) fn client_ring(&self, server: NodeId) -> LiteResult<Arc<ClientRing>> {
        self.client_rings
            .read()
            .get(server)
            .and_then(|r| r.clone())
            .ok_or(LiteError::NodeDown { node: server })
    }

    pub(super) fn server_ring(&self, client: NodeId) -> LiteResult<Arc<ServerRing>> {
        self.server_rings
            .read()
            .get(client)
            .and_then(|r| r.clone())
            .ok_or(LiteError::NodeDown { node: client })
    }

    /// Ensures the RPC ring pair towards `server` exists, wiring it on
    /// first use under the directory's connect lock (incremental
    /// membership: boot wires no rings except self-loopback). The wiring
    /// is client-driven and installs the *server's* ring state before
    /// the local client view, so a request can never arrive at a server
    /// that lacks ring state.
    pub(crate) fn ensure_ring(&self, server: NodeId) -> LiteResult<()> {
        if self
            .client_rings
            .read()
            .get(server)
            .is_some_and(Option::is_some)
        {
            return Ok(());
        }
        let start = std::time::Instant::now();
        let dir = self.try_dir()?;
        let _g = dir.lock_connect();
        // Double-check under the lock (another thread may have wired
        // the pair while this one waited).
        if self
            .client_rings
            .read()
            .get(server)
            .ok_or(LiteError::NodeDown { node: server })?
            .is_some()
        {
            return Ok(());
        }
        let srv = dir
            .kernel(server)
            .ok_or(LiteError::NodeDown { node: server })?;
        let base = srv.alloc_ring(self.node)?;
        let size = srv.config.rpc_ring_bytes;
        srv.install_server_ring(self.node, Arc::new(ServerRing::new(base, size)?));
        self.client_rings.write()[server] = Some(Arc::new(ClientRing::new(base, size)?));
        self.note_mesh_ns(start.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Posts a write-imm carrying `len` bytes from `src_chunks` to
    /// `(dst_node, dst_addr)`. Loop-back (self) deliveries bypass the NIC
    /// but flow through the same shared CQ and poller; remote ones are an
    /// [`Op::Write`] with immediate data.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn post_write_imm(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        dst_node: NodeId,
        dst_addr: u64,
        src_chunks: &[Chunk],
        len: usize,
        imm: Imm,
    ) -> LiteResult<Nanos> {
        if dst_node == self.node {
            let data = super::chunkio::read_chunks(self.mem(), src_chunks, len)?;
            self.mem().write(dst_addr, &data)?;
            let cost = self.fabric.cost();
            ctx.work(cost.memcpy_time(len as u64));
            let stamp = ctx.now() + LOOPBACK_NS;
            let mut wc = Wc::new(0, WcOpcode::RecvRdmaWithImm, len, stamp);
            wc.imm = Some(imm.encode());
            wc.src = Some((self.node, u64::MAX)); // loopback marker
            self.shared_recv_cq.push(wc);
            return Ok(stamp);
        }
        let op = Op::Write {
            dst_node,
            dst_addr,
            src: src_chunks.to_vec(),
            len,
            imm: Some(imm.encode()),
        };
        Ok(self.try_datapath()?.post(ctx, prio, &op)?.stamp)
    }

    /// Reserves ring space towards `server`, waiting (bounded) for head
    /// updates when the ring is full.
    pub(crate) fn reserve_ring(
        &self,
        ctx: &mut Ctx,
        server: NodeId,
        total_len: u64,
    ) -> LiteResult<Reservation> {
        // The single chokepoint every outgoing RPC passes through: wire
        // the ring pair lazily here.
        self.ensure_ring(server)?;
        let ring = self.client_ring(server)?;
        let deadline = std::time::Instant::now() + self.config.op_timeout;
        loop {
            match ring.try_reserve(total_len) {
                Ok(r) => return Ok(r),
                Err(LiteError::RingFull) => {
                    if std::time::Instant::now() > deadline {
                        return Err(LiteError::RingFull);
                    }
                    let (_, stamp) = ring.head();
                    ctx.wait_until(stamp);
                    std::thread::yield_now();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Ring slot → physical address at the server.
    pub(crate) fn ring_remote_addr(&self, server: NodeId, offset: u64) -> LiteResult<u64> {
        Ok(self.client_ring(server)?.remote_base + offset)
    }

    /// Registers a fresh completion slot.
    pub(crate) fn alloc_slot(&self) -> (u32, Arc<CallSlot>) {
        loop {
            let id = self.next_slot.fetch_add(1, Ordering::Relaxed) & ((1 << 30) - 1);
            if id == 0 {
                continue;
            }
            let slot = Arc::new(CallSlot::new());
            if self.slots.insert_if_absent(id, Arc::clone(&slot)) {
                return (id, slot);
            }
        }
    }

    /// Drops a completion slot (after wait or timeout).
    pub(crate) fn free_slot(&self, id: u32) {
        self.slots.remove(&id);
    }

    /// Binds an RPC function id to a fresh queue (LT_regRPC).
    pub fn register_rpc(&self, func: u8) -> LiteResult<()> {
        if func < USER_FUNC_MIN {
            return Err(LiteError::ReservedFunc { func });
        }
        self.queues.with_shard_of(&func, |m| {
            m.entry(func).or_insert_with(|| Arc::new(RpcQueue::new()));
        });
        Ok(())
    }

    pub(crate) fn queue_of(&self, func: u8) -> LiteResult<Arc<RpcQueue>> {
        self.queues.get(&func).ok_or(LiteError::UnknownRpc { func })
    }

    /// Blocking dequeue of the next call for `func` (LT_recvRPC's kernel
    /// half).
    pub(crate) fn pop_rpc(
        &self,
        ctx: &mut Ctx,
        func: u8,
        timeout: Duration,
    ) -> LiteResult<Incoming> {
        let q = self.queue_of(func)?;
        let inc = q.pop(timeout).ok_or(LiteError::Timeout)?;
        let gap = inc.stamp.saturating_sub(ctx.now());
        if self.config.adaptive_poll {
            ctx.cpu.charge(gap.min(self.config.adaptive_spin_ns));
        } else {
            ctx.cpu.charge(gap);
        }
        ctx.wait_until(inc.stamp);
        Ok(inc)
    }

    /// Non-blocking dequeue (used by servers that interleave work).
    pub(crate) fn try_pop_rpc(&self, ctx: &mut Ctx, func: u8) -> LiteResult<Option<Incoming>> {
        let q = self.queue_of(func)?;
        Ok(q.try_pop().inspect(|inc| {
            ctx.wait_until(inc.stamp);
        }))
    }

    /// Copies a parked message's payload out of the ring.
    pub(crate) fn read_ring_payload(&self, client: NodeId, inc: &Incoming) -> LiteResult<Vec<u8>> {
        let ring = self.server_ring(client)?;
        let mut buf = vec![0u8; inc.hdr.len as usize];
        self.mem()
            .read(ring.base + inc.ring_offset + HEADER_BYTES as u64, &mut buf)?;
        Ok(buf)
    }

    /// Frees the ring span of a consumed message and pushes the head
    /// update to the client (§5.1 step f).
    pub(crate) fn release_ring(
        &self,
        ctx: &mut Ctx,
        client: NodeId,
        inc: &Incoming,
    ) -> LiteResult<()> {
        let total = HEADER_BYTES as u64 + inc.hdr.len as u64;
        let ring = self.server_ring(client)?;
        if let Some(head) = ring.consume(inc.ring_offset, total, inc.hdr.skip as u64) {
            let sink = self
                .try_dir()?
                .head_sink(client)
                .ok_or(LiteError::NodeDown { node: client })?;
            let imm = Imm::Head {
                granule: ((head / RING_GRANULE) & ((1 << 30) - 1)) as u32,
            };
            self.post_write_imm(ctx, Priority::High, client, sink, &[], 0, imm)?;
        }
        Ok(())
    }

    /// Like [`LiteKernel::release_ring`], but returns the head-update as
    /// an unposted [`Op`] so the caller can chain it with a reply in one
    /// doorbell batch. Remote clients only — loop-back deliveries must go
    /// through [`LiteKernel::release_ring`]. Deferring a head update is
    /// safe: heads are monotonic cumulative positions, so a later release
    /// covers an earlier one.
    pub(crate) fn release_ring_op(&self, client: NodeId, inc: &Incoming) -> Option<Op> {
        debug_assert_ne!(client, self.node, "loopback releases are not deferrable");
        let total = HEADER_BYTES as u64 + inc.hdr.len as u64;
        let ring = self.server_ring(client).ok()?;
        let head = ring.consume(inc.ring_offset, total, inc.hdr.skip as u64)?;
        let sink = self.try_dir().ok()?.head_sink(client)?;
        let imm = Imm::Head {
            granule: ((head / RING_GRANULE) & ((1 << 30) - 1)) as u32,
        };
        Some(Op::Write {
            dst_node: client,
            dst_addr: sink,
            src: Vec::new(),
            len: 0,
            imm: Some(imm.encode()),
        })
    }

    /// Sends a reply (LT_replyRPC's kernel half): writes the payload to
    /// the client's reply buffer and signals its slot.
    pub(crate) fn send_reply(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        route: ReplyRoute,
        src_chunks: &[Chunk],
        len: usize,
    ) -> LiteResult<Nanos> {
        self.send_reply_with(ctx, prio, route, src_chunks, len, None)
    }

    /// [`LiteKernel::send_reply`] with an optional deferred head-update
    /// op: when present, head and reply are chained through one doorbell
    /// batch towards the client — one host post and one QP-context touch
    /// for both (§5.1 steps e+f amortized).
    pub(crate) fn send_reply_with(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        route: ReplyRoute,
        src_chunks: &[Chunk],
        len: usize,
        head: Option<Op>,
    ) -> LiteResult<Nanos> {
        if route.slot == 0 {
            // One-way message: nothing to send (deferral never happens
            // for slot-0 traffic; flush defensively).
            if let Some(h) = head {
                self.try_datapath()?.post(ctx, Priority::High, &h)?;
            }
            return Ok(ctx.now());
        }
        if len > route.reply_max as usize {
            // The reply fails, but the ring span was consumed: the head
            // update must still reach the client.
            if let Some(h) = head {
                self.try_datapath()?.post(ctx, Priority::High, &h)?;
            }
            return Err(LiteError::TooLarge {
                len,
                max: route.reply_max as usize,
            });
        }
        let dst = route.node as NodeId;
        let reply_imm = Imm::Reply { slot: route.slot };
        if dst == self.node {
            debug_assert!(head.is_none(), "loopback replies are never deferred");
            return self.post_write_imm(
                ctx,
                prio,
                dst,
                route.reply_addr,
                src_chunks,
                len,
                reply_imm,
            );
        }
        let reply = Op::Write {
            dst_node: dst,
            dst_addr: route.reply_addr,
            src: src_chunks.to_vec(),
            len,
            imm: Some(reply_imm.encode()),
        };
        match head {
            Some(h) => {
                let comps = self.try_datapath()?.post_many(ctx, prio, &[h, reply])?;
                let stamp = comps.last().map(|c| c.stamp).unwrap_or_else(|| ctx.now());
                Ok(stamp)
            }
            None => Ok(self.try_datapath()?.post(ctx, prio, &reply)?.stamp),
        }
    }

    /// Sends an error reply (consumes no reply-buffer space).
    pub(super) fn send_error_reply(&self, ctx: &mut Ctx, route: ReplyRoute) -> LiteResult<()> {
        if route.slot == 0 {
            return Ok(());
        }
        self.post_write_imm(
            ctx,
            Priority::High,
            route.node as NodeId,
            route.reply_addr,
            &[],
            0,
            Imm::ReplyErr { slot: route.slot },
        )?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // The shared polling thread (§5.1/§6.1: one per node).
    // ------------------------------------------------------------------

    pub(super) fn poll_loop(self: Arc<Self>) {
        let mut ctx = Ctx::with_meter(Arc::clone(&self.poller_cpu));
        let cost = self.fabric.cost().clone();
        let spin = !self.config.adaptive_poll;
        while !self.shutdown.load(Ordering::Acquire) {
            let Some(wc) =
                self.shared_recv_cq
                    .poll_blocking(&mut ctx, &cost, spin, Duration::from_millis(50))
            else {
                if self.shared_recv_cq.is_closed() {
                    break;
                }
                continue;
            };
            let (src_node, src_qp) = wc.src.unwrap_or((self.node, u64::MAX));
            // Repost the consumed receive credit (not for loop-backs,
            // which never consumed one).
            if src_qp != u64::MAX {
                self.shared_rq.post(RecvEntry {
                    wr_id: 0,
                    sge: None,
                });
                ctx.work(cost.post_wr_ns);
                if src_node != self.node {
                    // Traffic from a peer is proof of life: revive it
                    // for the liveness monitor without waiting for a
                    // probe (a restarted node announces itself with its
                    // first RPC).
                    if let Some(dp) = self.datapath.get() {
                        dp.mark_peer_alive(src_node);
                    }
                }
            }
            ctx.work(self.config.imm_dispatch_ns);
            match Imm::decode(wc.imm.unwrap_or(0)) {
                Imm::Request { granule } => {
                    self.counters.count_rpc();
                    let offset = granule as u64 * RING_GRANULE;
                    self.handle_request(&mut ctx, src_node, offset, wc.ready_at);
                }
                Imm::Reply { slot } => {
                    if let Some(s) = self.slots.get(&slot) {
                        s.complete(SlotResult {
                            stamp: ctx.now(),
                            len: wc.byte_len as u32,
                            ok: true,
                        });
                    }
                }
                Imm::ReplyErr { slot } => {
                    if let Some(s) = self.slots.get(&slot) {
                        s.complete(SlotResult {
                            stamp: ctx.now(),
                            len: 0,
                            ok: false,
                        });
                    }
                }
                Imm::Head { granule } => {
                    if let Ok(ring) = self.client_ring(src_node) {
                        let (cur, _) = ring.head();
                        ring.update_head(reconstruct_head(cur, granule), ctx.now());
                    }
                }
            }
        }
    }

    fn handle_request(&self, ctx: &mut Ctx, client: NodeId, offset: u64, stamp: Nanos) {
        let Ok(ring) = self.server_ring(client) else {
            return;
        };
        let ring_base = ring.base;
        let mut hbuf = [0u8; HEADER_BYTES];
        if self.mem().read(ring_base + offset, &mut hbuf).is_err() {
            return;
        }
        let Ok(hdr) = MsgHeader::decode(&hbuf) else {
            return;
        };
        let inc = Incoming {
            hdr,
            ring_offset: offset,
            stamp,
        };
        if hdr.func >= USER_FUNC_MIN || hdr.func == FN_MSG {
            match self.queues.get(&hdr.func) {
                Some(q) => q.push(inc),
                None => {
                    // No handler bound: error-reply and release the ring.
                    let _ = self.release_ring(ctx, client, &inc);
                    let _ = self.send_error_reply(ctx, ReplyRoute::of_hdr(&hdr));
                }
            }
            return;
        }
        // Kernel service: read payload, free the ring, run the handler.
        let payload = match self.read_ring_payload(client, &inc) {
            Ok(p) => p,
            Err(_) => return,
        };
        let _ = self.release_ring(ctx, client, &inc);
        ctx.work(self.config.rpc_meta_ns);
        let route = ReplyRoute::of_hdr(&hdr);
        match self.kernel_service(ctx, &hdr, &payload) {
            Ok(Some(resp)) => {
                let _ = self.reply_bytes(ctx, route, &resp);
            }
            Ok(None) => {} // delayed reply (locks, barriers) or one-way
            Err(_) => {
                let _ = self.send_error_reply(ctx, route);
            }
        }
    }

    /// Stages `bytes` in a scratch allocation and write-imm's them as a
    /// reply. Used by poller-side handlers (user replies go through the
    /// caller's staging buffer instead).
    pub(super) fn reply_bytes(
        &self,
        ctx: &mut Ctx,
        route: ReplyRoute,
        bytes: &[u8],
    ) -> LiteResult<()> {
        if route.slot == 0 {
            return Ok(());
        }
        let addr = {
            let mut a = self.alloc.lock();
            a.alloc(bytes.len().max(1) as u64)?
        };
        self.mem().write(addr, bytes)?;
        let chunks = [Chunk {
            addr,
            len: bytes.len() as u64,
        }];
        let r = self.send_reply(ctx, Priority::High, route, &chunks, bytes.len());
        self.alloc.lock().free(addr)?;
        r.map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_reconstruction() {
        // Simple forward movement.
        assert_eq!(reconstruct_head(0, 10), 10 * RING_GRANULE);
        let cur = 100 * RING_GRANULE;
        assert_eq!(reconstruct_head(cur, 100), cur, "no movement");
        assert_eq!(reconstruct_head(cur, 150), 150 * RING_GRANULE);
        // Stale update (behind current) is ignored.
        assert_eq!(reconstruct_head(cur, 50), cur);
        // Across the 30-bit wrap.
        let near_wrap = ((1u64 << 30) - 2) * RING_GRANULE;
        let new = reconstruct_head(near_wrap, 3);
        assert_eq!(new, near_wrap + 5 * RING_GRANULE);
    }
}
