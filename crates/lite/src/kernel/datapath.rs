//! The transport-agnostic datapath: op descriptors and their dispatch.
//!
//! The LITE kernel used to call `rnic` verbs directly from a dozen call
//! sites. This module narrows all of that to one seam: callers describe
//! work as [`Op`] descriptors and hand them to a [`DataPath`], which owns
//! transport selection, QoS, QP choice, and posting. Two implementations
//! exist:
//!
//! * [`RnicDataPath`] — the real thing: the global physical MR (§4.1),
//!   K shared RC QPs per peer (§6.1), HW-Sep/SW-Pri QoS (§6.2), and
//!   doorbell-batched posting ([`DataPath::post_many`]) that pays the
//!   host post cost and QP-context touch once per chain.
//! * [`TcpDataPath`] — the same descriptors over a modeled TCP/IPoIB
//!   stack, so baselines and apps can swap transports without touching
//!   their data plane.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rnic::{
    FaultAction, IbConfig, IbFabric, NodeId, Qp, QpId, QpType, RemoteAddr, Sge, VerbsError,
    WritePost,
};
use simnet::{transfer_time, Ctx, Nanos, Resource};
use smem::{PhysAllocator, PhysMem};
use transport::TcpCostModel;

use super::chunkio::{read_chunks, write_chunks};
use super::stats::RetryCounters;
use super::LiteKernel;
use crate::config::LiteConfig;
use crate::directory::ClusterDirectory;
use crate::error::{LiteError, LiteResult};
use crate::observe::{EventKind, Observability, OpClass};
use crate::qos::{Priority, QosMode, QosState};

pub use smem::Chunk;

/// Cost of a local atomic executed by the kernel (no NIC involved).
const LOCAL_ATOMIC_NS: Nanos = 120;

/// A one-sided datapath operation, described in terms of physical
/// addresses under the global MR rather than verbs objects.
#[derive(Debug, Clone)]
pub enum Op {
    /// RDMA-write `len` bytes gathered from local `src` chunks to
    /// `(dst_node, dst_addr)`; optionally carries immediate data (which
    /// consumes a receive credit and wakes the remote poller).
    Write {
        /// Destination node.
        dst_node: NodeId,
        /// Destination physical address.
        dst_addr: u64,
        /// Local source chunks (gather list).
        src: Vec<Chunk>,
        /// Bytes to move.
        len: usize,
        /// Encoded immediate value, if any.
        imm: Option<u32>,
    },
    /// RDMA-read `len` bytes from `(src_node, src_addr)` scattered into
    /// local `dst` chunks.
    Read {
        /// Source node.
        src_node: NodeId,
        /// Source physical address.
        src_addr: u64,
        /// Local destination chunks (scatter list).
        dst: Vec<Chunk>,
        /// Bytes to move.
        len: usize,
    },
    /// One-sided atomic fetch-and-add on a remote u64.
    FetchAdd {
        /// Target node.
        node: NodeId,
        /// Physical address of the u64 cell.
        addr: u64,
        /// Addend.
        delta: u64,
    },
    /// One-sided atomic compare-and-swap on a remote u64.
    CmpSwap {
        /// Target node.
        node: NodeId,
        /// Physical address of the u64 cell.
        addr: u64,
        /// Expected value.
        expect: u64,
        /// Replacement value.
        new: u64,
    },
}

impl Op {
    /// Plain write descriptor (no immediate).
    pub fn write(dst_node: NodeId, dst_addr: u64, src: Vec<Chunk>, len: usize) -> Op {
        Op::Write {
            dst_node,
            dst_addr,
            src,
            len,
            imm: None,
        }
    }

    /// Plain read descriptor.
    pub fn read(src_node: NodeId, src_addr: u64, dst: Vec<Chunk>, len: usize) -> Op {
        Op::Read {
            src_node,
            src_addr,
            dst,
            len,
        }
    }

    /// The remote node this op touches.
    pub fn dst_node(&self) -> NodeId {
        match self {
            Op::Write { dst_node, .. } => *dst_node,
            Op::Read { src_node, .. } => *src_node,
            Op::FetchAdd { node, .. } | Op::CmpSwap { node, .. } => *node,
        }
    }

    /// The observability class this op records under.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Write { .. } => OpClass::Write,
            Op::Read { .. } => OpClass::Read,
            Op::FetchAdd { .. } | Op::CmpSwap { .. } => OpClass::Atomic,
        }
    }

    /// Payload bytes this op moves (8 for atomics).
    pub fn bytes(&self) -> u64 {
        match self {
            Op::Write { len, .. } | Op::Read { len, .. } => *len as u64,
            Op::FetchAdd { .. } | Op::CmpSwap { .. } => 8,
        }
    }
}

/// Outcome of a posted op.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Virtual time at which the op is complete (remotely visible for
    /// writes, locally filled for reads, executed for atomics).
    pub stamp: Nanos,
    /// Returned value for atomics (the previous cell contents); 0 for
    /// reads and writes.
    pub value: u64,
}

/// A transport under the LITE data plane: posts [`Op`] descriptors and
/// reports completion stamps.
///
/// Implementations own everything below the descriptor — QP/socket
/// selection, QoS, retry — so consumers (the kernel itself, `lite-graph`
/// backends, `lite-mr`) never special-case the transport.
pub trait DataPath: Send + Sync {
    /// The node this datapath instance posts from.
    fn node(&self) -> NodeId;

    /// The fabric whose physical memory the descriptors address (staging
    /// buffers are filled through it; moving host bytes into simulated
    /// memory carries no virtual-time cost).
    fn fabric(&self) -> &Arc<IbFabric>;

    /// Allocates `bytes` of remote-accessible physical memory on this
    /// datapath's node; returns its physical address.
    fn alloc(&self, bytes: u64) -> LiteResult<u64>;

    /// Posts one op; returns its completion. The caller's clock advances
    /// through the post path only (block with `ctx.wait_until` on the
    /// stamp when needed); atomics are blocking, like their verbs.
    fn post(&self, ctx: &mut Ctx, prio: Priority, op: &Op) -> LiteResult<Completion>;

    /// Posts a chain of ops. The default issues them one by one;
    /// implementations may amortize (doorbell batching). Completions are
    /// returned in op order.
    fn post_many(&self, ctx: &mut Ctx, prio: Priority, ops: &[Op]) -> LiteResult<Vec<Completion>> {
        ops.iter().map(|op| self.post(ctx, prio, op)).collect()
    }
}

// ---------------------------------------------------------------------
// RNIC implementation
// ---------------------------------------------------------------------

/// Liveness view of one peer node: consecutive deadline-exhausted ops
/// are counted, and past [`LiteConfig::peer_dead_threshold`] the peer is
/// declared dead — subsequent ops fail fast with [`LiteError::PeerDead`]
/// instead of burning a full timeout each. Revival comes from incoming
/// traffic (the poller marks the source alive) or from a rate-limited
/// probe attempt.
#[derive(Default)]
struct PeerHealth {
    consecutive_timeouts: AtomicU32,
    dead: AtomicBool,
    last_probe: Mutex<Option<Instant>>,
}

/// The verbs-backed datapath of the LITE kernel.
pub struct RnicDataPath {
    fabric: Arc<IbFabric>,
    node: NodeId,
    map_check_ns: Nanos,
    batch: bool,
    global_lkey: u32,
    /// Cluster membership: peer rkeys, QoS views, and memory managers
    /// all come from here instead of boot-time broadcast vectors.
    dir: Arc<ClusterDirectory>,
    /// Back-reference to the owning kernel (shared CQs for lazy QP
    /// wiring and repairs).
    kernel: Weak<LiteKernel>,
    /// K, the shared-QP factor per peer pair (§6.1).
    qp_factor: usize,
    /// Per-peer shared QP pools, sized to fabric capacity; empty until
    /// the pair is wired on first use. Mutable so the recovery layer can
    /// swap broken QPs for fresh ones underneath in-flight traffic.
    qp_pools: Vec<Mutex<Vec<Arc<Qp>>>>,
    /// Per-peer wired latch, set on *both* ends when a pair is built so
    /// a pair is wired exactly once no matter which side touches it
    /// first.
    wired: Box<[AtomicBool]>,
    rr: AtomicUsize,
    qos: Arc<QosState>,
    alloc: Arc<Mutex<PhysAllocator>>,
    retry_enabled: bool,
    retry_base_ns: Nanos,
    retry_max_backoff_ns: Nanos,
    peer_dead_threshold: u32,
    op_timeout: Duration,
    health: Vec<PeerHealth>,
    retry: RetryCounters,
    obs: Arc<Observability>,
    /// Host-wall nanoseconds spent wiring QP pairs lazily (gauge).
    mesh_ns: AtomicU64,
    /// Lazy pair connects performed from this end (gauge).
    lazy_connects: AtomicU64,
    /// Per-logical-op sequence for remote atomics. Allocated once in
    /// `post` — *outside* the retry loop — so every retry attempt of the
    /// same fetch-add/cmp-swap carries the same exactly-once token to
    /// the responder NIC's dedup filter.
    atomic_seq: AtomicU64,
}

/// Observability identity of one in-flight op, threaded through the
/// recovery layer so lifecycle events land in the trace ring at exactly
/// the points where the matching counters increment.
#[derive(Clone, Copy)]
struct OpTrace {
    op_id: u64,
    class: OpClass,
    prio: Priority,
}

impl RnicDataPath {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        fabric: Arc<IbFabric>,
        node: NodeId,
        config: &LiteConfig,
        global_lkey: u32,
        qos: Arc<QosState>,
        alloc: Arc<Mutex<PhysAllocator>>,
        dir: Arc<ClusterDirectory>,
        kernel: Weak<LiteKernel>,
    ) -> Self {
        let peers = dir.capacity();
        RnicDataPath {
            fabric,
            node,
            map_check_ns: config.map_check_ns,
            batch: config.batch_posting,
            global_lkey,
            dir,
            kernel,
            qp_factor: config.qp_factor,
            qp_pools: (0..peers).map(|_| Mutex::new(Vec::new())).collect(),
            wired: (0..peers).map(|_| AtomicBool::new(false)).collect(),
            rr: AtomicUsize::new(0),
            qos,
            alloc,
            retry_enabled: config.retry_enabled,
            retry_base_ns: config.retry_base_ns.max(1),
            retry_max_backoff_ns: config.retry_max_backoff_ns.max(1),
            peer_dead_threshold: config.peer_dead_threshold.max(1),
            op_timeout: config.op_timeout,
            health: (0..peers).map(|_| PeerHealth::default()).collect(),
            retry: RetryCounters::default(),
            obs: Arc::new(Observability::new(
                peers,
                config.stats_sample_rate,
                config.trace_ring_slots,
            )),
            mesh_ns: AtomicU64::new(0),
            lazy_connects: AtomicU64::new(0),
            atomic_seq: AtomicU64::new(0),
        }
    }

    /// Host-wall nanoseconds spent wiring QP pairs lazily.
    pub(crate) fn mesh_host_ns(&self) -> u64 {
        self.mesh_ns.load(Ordering::Relaxed)
    }

    /// Lazy pair connects performed from this end.
    pub(crate) fn lazy_connects(&self) -> u64 {
        self.lazy_connects.load(Ordering::Relaxed)
    }

    /// Ensures the K-QP shared pool towards `peer` is wired (§6.1),
    /// establishing the pair on first use under the directory's connect
    /// lock. Wiring installs BOTH ends' pools and latches, so a pair is
    /// built exactly once no matter which side posts first.
    pub(crate) fn ensure_qps(&self, peer: NodeId) -> LiteResult<()> {
        if peer == self.node {
            return Ok(());
        }
        match self.wired.get(peer) {
            Some(w) if w.load(Ordering::Acquire) => return Ok(()),
            Some(_) => {}
            None => return Err(LiteError::NodeDown { node: peer }),
        }
        let start = Instant::now();
        let _g = self.dir.lock_connect();
        // Double-check under the lock (the peer's ensure may have won).
        if self.wired[peer].load(Ordering::Acquire) {
            return Ok(());
        }
        self.wire_peer(peer)?;
        self.mesh_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.lazy_connects.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Builds the K shared QPs between this node and `peer`, installing
    /// both ends' pools. Caller holds the directory's connect lock.
    fn wire_peer(&self, peer: NodeId) -> LiteResult<()> {
        let me = self
            .kernel
            .upgrade()
            .ok_or(LiteError::NodeDown { node: self.node })?;
        let other = self
            .dir
            .kernel(peer)
            .ok_or(LiteError::NodeDown { node: peer })?;
        let other_dp = other.try_datapath()?;
        for _ in 0..self.qp_factor.max(1) {
            let (sa, ra, rqa) = me.shared_queues();
            let (sb, rb, rqb) = other.shared_queues();
            let qa = self
                .fabric
                .nic(self.node)
                .create_qp_with(QpType::Rc, sa, ra, rqa);
            let qb = self
                .fabric
                .nic(peer)
                .create_qp_with(QpType::Rc, sb, rb, rqb);
            self.fabric.connect(&qa, &qb);
            self.add_qp(peer, qa);
            other_dp.add_qp(self.node, qb);
        }
        // Latch both ends so neither side re-wires the pair.
        self.wired[peer].store(true, Ordering::Release);
        if let Some(w) = other_dp.wired.get(self.node) {
            w.store(true, Ordering::Release);
        }
        Ok(())
    }

    /// This node's observability surface (histograms + trace ring).
    pub(crate) fn observer(&self) -> &Arc<Observability> {
        &self.obs
    }

    pub(crate) fn num_qps(&self) -> usize {
        self.qp_pools.iter().map(|p| p.lock().len()).sum()
    }

    fn mem(&self) -> &Arc<PhysMem> {
        self.fabric.mem(self.node)
    }

    /// Feeds the target node's memory manager one access: promotes the
    /// touched chunk in its LRU and adds heat from this node for the
    /// rebalancer. Called once per op (not per retry attempt).
    fn touch_mm(&self, op: &Op) {
        let (node, addr, len) = match op {
            Op::Write {
                dst_node,
                dst_addr,
                len,
                ..
            } => (*dst_node, *dst_addr, *len as u64),
            Op::Read {
                src_node,
                src_addr,
                len,
                ..
            } => (*src_node, *src_addr, *len as u64),
            Op::FetchAdd { node, addr, .. } | Op::CmpSwap { node, addr, .. } => (*node, *addr, 8),
        };
        if let Some(mm) = self.dir.mm(node) {
            mm.touch(addr, len, self.node);
        }
    }

    /// Picks a QP towards `peer` (§6.1 sharing; §6.2 HW-Sep partitions
    /// the pool between priorities).
    pub(crate) fn qp_to(&self, peer: NodeId, prio: Priority) -> LiteResult<Arc<Qp>> {
        let pool = self
            .qp_pools
            .get(peer)
            .ok_or(LiteError::NodeDown { node: peer })?
            .lock();
        if pool.is_empty() {
            // Transient while a reconnect swaps the pool contents, or
            // permanent for an unwired peer — the retry layer decides.
            return Err(LiteError::NodeDown { node: peer });
        }
        let k = pool.len();
        let (lo, hi) = if self.qos.mode() == QosMode::HwSep {
            let (h, _) = self.qos.hw_partition(k);
            match prio {
                Priority::High => (0, h),
                Priority::Low => {
                    if h < k {
                        (h, k)
                    } else {
                        (0, k)
                    }
                }
            }
        } else {
            (0, k)
        };
        let n = hi - lo;
        let idx = lo + self.rr.fetch_add(1, Ordering::Relaxed) % n;
        Ok(Arc::clone(&pool[idx]))
    }

    // ------------------------------------------------------------------
    // Recovery layer: retry/backoff, QP re-establishment, peer liveness.
    // ------------------------------------------------------------------

    /// Live recovery counters (folded into the kernel stats snapshot).
    pub(crate) fn retry_counters(&self) -> &RetryCounters {
        &self.retry
    }

    /// Removes a (broken) QP from the pool towards `peer`; `false` when
    /// it was already gone — the peer's reconnect got there first.
    pub(crate) fn remove_qp(&self, peer: NodeId, qp_id: QpId) -> bool {
        let Some(pool) = self.qp_pools.get(peer) else {
            return false;
        };
        let mut pool = pool.lock();
        let before = pool.len();
        pool.retain(|q| q.id != qp_id);
        pool.len() != before
    }

    /// Adds a freshly connected QP to the pool towards `peer`.
    pub(crate) fn add_qp(&self, peer: NodeId, qp: Arc<Qp>) {
        if let Some(pool) = self.qp_pools.get(peer) {
            pool.lock().push(qp);
        }
    }

    /// Whether the liveness monitor currently considers `peer` dead.
    pub(crate) fn peer_is_dead(&self, peer: NodeId) -> bool {
        self.health
            .get(peer)
            .is_some_and(|h| h.dead.load(Ordering::Acquire))
    }

    /// Evidence of life from `peer` — a completed op or incoming traffic
    /// (the poller calls this on every remote completion it dispatches).
    pub(crate) fn mark_peer_alive(&self, peer: NodeId) {
        let Some(h) = self.health.get(peer) else {
            return;
        };
        h.consecutive_timeouts.store(0, Ordering::Relaxed);
        if h.dead.swap(false, Ordering::AcqRel) {
            *h.last_probe.lock() = None;
        }
    }

    /// Records a deadline-exhausted op towards `peer`; past the threshold
    /// the peer is declared dead.
    fn note_peer_timeout(&self, peer: NodeId) {
        let Some(h) = self.health.get(peer) else {
            return;
        };
        let n = h.consecutive_timeouts.fetch_add(1, Ordering::AcqRel) + 1;
        if n >= self.peer_dead_threshold && !h.dead.swap(true, Ordering::AcqRel) {
            self.retry.peers_marked_dead.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// At most one probe per interval towards a dead peer: the winning
    /// caller gets one real attempt, everyone else fails fast without
    /// touching the fabric.
    fn claim_probe(&self, peer: NodeId) -> bool {
        let Some(h) = self.health.get(peer) else {
            return false;
        };
        let interval = (self.op_timeout / 4).max(Duration::from_millis(5));
        let mut last = h.last_probe.lock();
        let due = last.is_none_or(|t| t.elapsed() >= interval);
        if due {
            *last = Some(Instant::now());
        }
        due
    }

    /// Tears down and re-establishes a broken shared QP pair, touching
    /// both ends' pools through the directory. Serialized by the same
    /// connect lock as lazy wiring and runtime joins; the pool-membership
    /// check makes the repair idempotent when both ends of a broken pair
    /// race into their retry loops. Returns whether this call actually
    /// rebuilt the pair (`false`: the other end got there first).
    fn reconnect_qp(&self, peer: NodeId, qp: QpId) -> LiteResult<bool> {
        let _g = self.dir.lock_connect();
        let me = self
            .kernel
            .upgrade()
            .ok_or(LiteError::NodeDown { node: self.node })?;
        let other = self
            .dir
            .kernel(peer)
            .ok_or(LiteError::NodeDown { node: peer })?;
        let other_dp = other.try_datapath()?;
        // Already repaired from the other end?
        if !self.remove_qp(peer, qp) {
            return Ok(false);
        }
        // Tear down both halves of the broken pair...
        let nic = self.fabric.nic(self.node);
        if let Ok(q) = nic.qp(qp) {
            if let Ok((_, peer_qp)) = q.peer() {
                other_dp.remove_qp(self.node, peer_qp);
                if let Ok(pqp) = self.fabric.nic(peer).qp(peer_qp) {
                    self.fabric.nic(peer).destroy_qp(&pqp);
                }
            }
            nic.destroy_qp(&q);
        }
        // ...and wire a fresh one on the same shared queues.
        let (sa, ra, rqa) = me.shared_queues();
        let (sb, rb, rqb) = other.shared_queues();
        let qa = nic.create_qp_with(QpType::Rc, sa, ra, rqa);
        let qb = self
            .fabric
            .nic(peer)
            .create_qp_with(QpType::Rc, sb, rb, rqb);
        self.fabric.connect(&qa, &qb);
        self.add_qp(peer, qa);
        other_dp.add_qp(self.node, qb);
        self.retry.qp_reconnects.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// The recovery wrapper around every remote post. Faults are injected
    /// before any side effect, so a failed attempt is safe to repeat:
    ///
    /// * transient faults (drops, down nodes, pools mid-swap) retry with
    ///   exponential virtual-time backoff, bounded by the `op_timeout`
    ///   host-wall budget;
    /// * a broken QP is torn down and re-established transparently, then
    ///   the op is replayed;
    /// * a peer past the liveness threshold fails fast with
    ///   [`LiteError::PeerDead`], except for one rate-limited probe that
    ///   can revive it after a restart.
    fn with_retry<T>(
        &self,
        ctx: &mut Ctx,
        peer: NodeId,
        trace: Option<OpTrace>,
        mut attempt: impl FnMut(&Self, &mut Ctx) -> LiteResult<T>,
    ) -> LiteResult<T> {
        // Lifecycle *error* events are recorded unsampled, exactly where
        // the matching counter increments — the chaos tests assert that
        // trace-ring `Retried` events equal `KernelStats.retries`.
        let trace_retry = |t: &OpTrace, at: Nanos| {
            self.obs
                .trace(t.op_id, t.class, EventKind::Retried, t.prio, peer, at);
            self.obs.record_retry(peer);
        };
        if peer == self.node {
            return attempt(self, ctx);
        }
        if !self.retry_enabled {
            return attempt(self, ctx).inspect_err(|_| {
                self.retry.ops_failed.fetch_add(1, Ordering::Relaxed);
            });
        }
        if self.peer_is_dead(peer) {
            if self.claim_probe(peer) {
                if let Ok(v) = attempt(self, ctx) {
                    self.mark_peer_alive(peer);
                    return Ok(v);
                }
            }
            self.retry.ops_failed.fetch_add(1, Ordering::Relaxed);
            return Err(LiteError::PeerDead { node: peer });
        }
        let deadline = Instant::now() + self.op_timeout;
        let mut backoff = self.retry_base_ns;
        loop {
            match attempt(self, ctx) {
                Ok(v) => {
                    self.mark_peer_alive(peer);
                    return Ok(v);
                }
                Err(LiteError::Verbs(VerbsError::QpBroken { qp })) => {
                    match self.reconnect_qp(peer, qp) {
                        Ok(rebuilt) => {
                            if rebuilt {
                                if let Some(t) = &trace {
                                    self.obs.trace(
                                        t.op_id,
                                        t.class,
                                        EventKind::Reconnected,
                                        t.prio,
                                        peer,
                                        ctx.now(),
                                    );
                                }
                            }
                        }
                        Err(e) => {
                            self.retry.ops_failed.fetch_add(1, Ordering::Relaxed);
                            return Err(e);
                        }
                    }
                    self.retry.retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &trace {
                        trace_retry(t, ctx.now());
                    }
                }
                Err(e @ (LiteError::Timeout | LiteError::NodeDown { .. })) => {
                    if Instant::now() >= deadline {
                        self.note_peer_timeout(peer);
                        self.retry.ops_failed.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                    self.retry.retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &trace {
                        trace_retry(t, ctx.now());
                    }
                    ctx.wait_until(ctx.now() + backoff);
                    // A little host-wall pacing so a down peer does not
                    // turn the bounded wait into a hot spin.
                    std::thread::sleep(Duration::from_nanos(backoff.min(100_000)));
                    backoff = (backoff * 2).min(self.retry_max_backoff_ns);
                }
                Err(e) => {
                    self.retry.ops_failed.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
            }
        }
    }

    /// The global rkey of `node`, or a graceful [`LiteError::NodeDown`]
    /// when `node` has not joined the cluster.
    fn rkey(&self, node: NodeId) -> LiteResult<u32> {
        self.dir.rkey(node).ok_or(LiteError::NodeDown { node })
    }

    /// Applies QoS before an op of `bytes` towards `dst`: HW-Sep
    /// partitions the sender; SW-Pri consults the *receiver's* monitor
    /// (the paper's policy 3 explicitly uses receiver-side information).
    /// An unknown `dst` falls back to the sender's own state — the op
    /// itself will fail cleanly at the rkey/QP lookup.
    fn qos_before(&self, ctx: &mut Ctx, prio: Priority, dst: NodeId, bytes: u64) {
        let state = match self.qos.mode() {
            QosMode::SwPri => self.dir.qos(dst).unwrap_or(&self.qos),
            _ => &self.qos,
        };
        state.before_op(ctx, prio, bytes);
    }

    /// Records a completed high-priority op at the receiver's monitor.
    fn qos_after_high(&self, dst: NodeId, finish: Nanos, bytes: u64, latency: Nanos) {
        if let Some(q) = self.dir.qos(dst) {
            q.after_high_op(finish, bytes, latency);
        }
    }

    /// Write-imm posts race with the remote poller's credit reposting;
    /// RNR (exhausted credits) is transient, so retry briefly. The
    /// batched variant is safe to retry whole: `post_write_many` claims
    /// credits atomically and rolls back on failure.
    fn write_many_rnr_retry(
        &self,
        ctx: &mut Ctx,
        qp: &Qp,
        posts: &[WritePost],
    ) -> LiteResult<Vec<rnic::WriteOutcome>> {
        let nic = self.fabric.nic(self.node);
        let mut tries = 0;
        loop {
            match nic.post_write_many(ctx, qp, posts) {
                Ok(outcomes) => return Ok(outcomes),
                Err(rnic::VerbsError::ReceiverNotReady) if tries < 1000 => {
                    tries += 1;
                    std::thread::yield_now();
                    ctx.clock.advance(200);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Posts a doorbell chain of writes towards one peer: per-op mapping
    /// checks and QoS, then one `post_write_many` so the host post cost
    /// and QP-context touch are paid once for the whole run.
    fn post_write_batch(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        dst: NodeId,
        ops: &[Op],
    ) -> LiteResult<Vec<Completion>> {
        let start = ctx.now();
        let mut posts = Vec::with_capacity(ops.len());
        let mut metas = Vec::with_capacity(ops.len());
        for op in ops {
            let Op::Write {
                dst_addr,
                src,
                len,
                imm,
                ..
            } = op
            else {
                unreachable!("batch runs contain only writes");
            };
            if imm.is_none() {
                ctx.work(self.map_check_ns);
            }
            self.qos_before(ctx, prio, dst, *len as u64);
            metas.push((*len as u64, imm.is_none()));
            posts.push(WritePost {
                wr_id: 0,
                sge: Sge::Phys {
                    lkey: self.global_lkey,
                    chunks: src.clone(),
                },
                remote: RemoteAddr {
                    rkey: self.rkey(dst)?,
                    addr: *dst_addr,
                },
                imm: *imm,
                signaled: false,
            });
        }
        let qp = self.qp_to(dst, prio)?;
        let outcomes = self.write_many_rnr_retry(ctx, &qp, &posts)?;
        let mut comps = Vec::with_capacity(outcomes.len());
        for ((bytes, plain), o) in metas.into_iter().zip(outcomes) {
            if plain && prio == Priority::High {
                self.qos_after_high(dst, o.completion, bytes, o.completion.saturating_sub(start));
            }
            comps.push(Completion {
                stamp: o.completion,
                value: 0,
            });
        }
        Ok(comps)
    }

    /// A single posting attempt of one op — the body of `post` before
    /// the recovery layer existed. Faults are injected before any side
    /// effect, so the retry wrapper can replay this safely; local ops
    /// cannot fault and never repeat.
    fn post_once(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        op: &Op,
        aseq: u64,
    ) -> LiteResult<Completion> {
        match op {
            Op::Write {
                dst_node,
                dst_addr,
                src,
                len,
                imm,
            } => {
                if *dst_node == self.node {
                    // Local LMR: plain memory copy, no NIC. (Loop-back
                    // write-imm goes through the kernel's RPC layer, not
                    // here — it must land in the shared receive CQ.)
                    debug_assert!(imm.is_none(), "loopback imm handled by the RPC layer");
                    ctx.work(self.map_check_ns);
                    let cost = self.fabric.cost();
                    let data = read_chunks(self.mem(), src, *len)?;
                    self.mem().write(*dst_addr, &data)?;
                    ctx.work(cost.memcpy_time(*len as u64));
                    return Ok(Completion {
                        stamp: ctx.now(),
                        value: 0,
                    });
                }
                let start = ctx.now();
                if imm.is_none() {
                    // Write-imm paths pay their (cheaper) mapping cost as
                    // part of RPC metadata handling instead.
                    ctx.work(self.map_check_ns);
                }
                self.qos_before(ctx, prio, *dst_node, *len as u64);
                let qp = self.qp_to(*dst_node, prio)?;
                let sge = Sge::Phys {
                    lkey: self.global_lkey,
                    chunks: src.clone(),
                };
                let remote = RemoteAddr {
                    rkey: self.rkey(*dst_node)?,
                    addr: *dst_addr,
                };
                let comp = if imm.is_some() {
                    let posts = [WritePost {
                        wr_id: 0,
                        sge,
                        remote,
                        imm: *imm,
                        signaled: false,
                    }];
                    // Single-element chain: identical to a plain post, but
                    // shares the RNR retry loop.
                    self.write_many_rnr_retry(ctx, &qp, &posts)?[0].completion
                } else {
                    self.fabric
                        .nic(self.node)
                        .post_write(ctx, &qp, 0, &sge, remote, None, false)?
                };
                if imm.is_none() && prio == Priority::High {
                    self.qos_after_high(*dst_node, comp, *len as u64, comp.saturating_sub(start));
                }
                Ok(Completion {
                    stamp: comp,
                    value: 0,
                })
            }
            Op::Read {
                src_node,
                src_addr,
                dst,
                len,
            } => {
                let start = ctx.now();
                ctx.work(self.map_check_ns);
                if *src_node == self.node {
                    let cost = self.fabric.cost();
                    let mut data = vec![0u8; *len];
                    self.mem().read(*src_addr, &mut data)?;
                    write_chunks(self.mem(), dst, &data)?;
                    ctx.work(cost.memcpy_time(*len as u64));
                    return Ok(Completion {
                        stamp: ctx.now(),
                        value: 0,
                    });
                }
                self.qos_before(ctx, prio, *src_node, *len as u64);
                let qp = self.qp_to(*src_node, prio)?;
                let sge = Sge::Phys {
                    lkey: self.global_lkey,
                    chunks: dst.clone(),
                };
                let comp = self.fabric.nic(self.node).post_read(
                    ctx,
                    &qp,
                    0,
                    &sge,
                    RemoteAddr {
                        rkey: self.rkey(*src_node)?,
                        addr: *src_addr,
                    },
                    false,
                )?;
                if prio == Priority::High {
                    self.qos_after_high(*src_node, comp, *len as u64, comp.saturating_sub(start));
                }
                Ok(Completion {
                    stamp: comp,
                    value: 0,
                })
            }
            Op::FetchAdd { node, addr, delta } => {
                ctx.work(self.map_check_ns);
                if *node == self.node {
                    ctx.work(LOCAL_ATOMIC_NS);
                    // Stamped apply: the completion stamp is taken inside
                    // the cell's critical section so conflicting atomics'
                    // stamps follow the real apply order (history-checker
                    // soundness; see `PhysMem::fetch_add_u64_stamped`).
                    let (value, stamp) =
                        self.mem().fetch_add_u64_stamped(*addr, *delta, ctx.now())?;
                    ctx.wait_until(stamp);
                    return Ok(Completion { stamp, value });
                }
                let qp = self.qp_to(*node, prio)?;
                // Tagged with the logical-op sequence: a retry after a
                // lost ack hits the responder's dedup filter instead of
                // applying the delta a second time.
                let value = self.fabric.nic(self.node).fetch_add_tagged(
                    ctx,
                    &qp,
                    RemoteAddr {
                        rkey: self.rkey(*node)?,
                        addr: *addr,
                    },
                    *delta,
                    (self.node, aseq),
                )?;
                Ok(Completion {
                    stamp: ctx.now(),
                    value,
                })
            }
            Op::CmpSwap {
                node,
                addr,
                expect,
                new,
            } => {
                ctx.work(self.map_check_ns);
                if *node == self.node {
                    ctx.work(LOCAL_ATOMIC_NS);
                    let (value, stamp) =
                        self.mem()
                            .cas_u64_stamped(*addr, *expect, *new, ctx.now())?;
                    ctx.wait_until(stamp);
                    return Ok(Completion { stamp, value });
                }
                let qp = self.qp_to(*node, prio)?;
                let value = self.fabric.nic(self.node).cmp_swap_tagged(
                    ctx,
                    &qp,
                    RemoteAddr {
                        rkey: self.rkey(*node)?,
                        addr: *addr,
                    },
                    *expect,
                    *new,
                    (self.node, aseq),
                )?;
                Ok(Completion {
                    stamp: ctx.now(),
                    value,
                })
            }
        }
    }
}

impl DataPath for RnicDataPath {
    fn node(&self) -> NodeId {
        self.node
    }

    fn fabric(&self) -> &Arc<IbFabric> {
        &self.fabric
    }

    fn alloc(&self, bytes: u64) -> LiteResult<u64> {
        Ok(self.alloc.lock().alloc(bytes)?)
    }

    /// One op through the recovery layer — retry/backoff, transparent QP
    /// re-establishment, and the peer-liveness fast path — around a
    /// replayable [`RnicDataPath::post_once`] attempt. The op's lifecycle
    /// (posted/retried/reconnected/completed/failed) is traced and its
    /// post→completion latency recorded per class, priority, and peer.
    fn post(&self, ctx: &mut Ctx, prio: Priority, op: &Op) -> LiteResult<Completion> {
        let peer = op.dst_node();
        if peer != self.node {
            self.ensure_qps(peer)?;
        }
        let class = op.class();
        self.touch_mm(op);
        let start = ctx.now();
        let sampled = self.obs.sample();
        let op_id = self.obs.next_op_id();
        if sampled {
            self.obs
                .trace(op_id, class, EventKind::Posted, prio, peer, start);
        }
        // History capture for the linearizability checker: atomics are
        // recorded here, at the datapath, so lock-word traffic is seen
        // too — not just `lt_fetch_add`/`lt_test_set`. Faults inject
        // before side effects and retries are replay-exact, so an Ok
        // completion's value is the one real apply; an Err is recorded
        // as pending (the checker explores both did/didn't branches).
        let cell_op = match op {
            Op::FetchAdd { node, addr, delta } => Some((
                *node,
                *addr,
                crate::verify::OpKind::FetchAdd { delta: *delta },
            )),
            Op::CmpSwap {
                node,
                addr,
                expect,
                new,
            } => Some((
                *node,
                *addr,
                crate::verify::OpKind::TestSet {
                    expect: *expect,
                    new: *new,
                },
            )),
            _ => None,
        };
        let record_cell = |ret: u64, ok: bool, response: Nanos| {
            if let (Some((node, addr, kind)), Some(log)) = (cell_op, self.obs.history()) {
                // Key atomic histories by *logical* location when the
                // cell lives in a tracked LMR chunk: the physical
                // address changes when the chunk migrates, but the
                // (LMR id, offset) identity does not — so histories on
                // a cell stay one linearizable history across eviction,
                // fetch-back, and rebalance. Untracked cells (lock
                // words, budget-0 runs) keep their physical key,
                // byte-identical to the pre-tiering behavior.
                let key = match self.dir.mm(node).and_then(|mm| mm.logical_cell(addr)) {
                    Some((id, off)) => crate::verify::Key::LogicalCell {
                        node: id.node,
                        idx: id.idx,
                        off,
                    },
                    None => crate::verify::Key::Cell { node, addr },
                };
                log.record(crate::verify::HistOp {
                    proc: crate::verify::proc_id(self.node, 0),
                    key,
                    kind,
                    ret,
                    ok,
                    invoke: start,
                    response,
                });
            }
        };
        let trace = OpTrace { op_id, class, prio };
        // One sequence per *logical* op, minted before the retry loop:
        // every attempt below replays the same exactly-once token.
        let aseq = self.atomic_seq.fetch_add(1, Ordering::Relaxed);
        match self.with_retry(ctx, peer, Some(trace), |dp, ctx| {
            dp.post_once(ctx, prio, op, aseq)
        }) {
            Ok(c) => {
                record_cell(c.value, true, c.stamp);
                self.obs.record_completion(
                    class,
                    prio,
                    peer,
                    op.bytes(),
                    c.stamp.saturating_sub(start),
                    c.stamp,
                    sampled,
                );
                if sampled {
                    self.obs
                        .trace(op_id, class, EventKind::Completed, prio, peer, c.stamp);
                }
                Ok(c)
            }
            Err(e) => {
                record_cell(0, false, ctx.now());
                self.obs.record_failure(peer);
                self.obs
                    .trace(op_id, class, EventKind::Failed, prio, peer, ctx.now());
                Err(e)
            }
        }
    }

    /// Doorbell batching: consecutive remote writes towards the same peer
    /// are chained through one `post_write_many` (one host post, one
    /// QP-context touch, one engine batch — §6.1's sharing taken one step
    /// further). Everything else falls back to sequential posts, as does
    /// the whole chain when `batch_posting` is off.
    fn post_many(&self, ctx: &mut Ctx, prio: Priority, ops: &[Op]) -> LiteResult<Vec<Completion>> {
        if !self.batch || ops.len() < 2 {
            return ops.iter().map(|op| self.post(ctx, prio, op)).collect();
        }
        let mut out = Vec::with_capacity(ops.len());
        let mut i = 0;
        while i < ops.len() {
            let run_dst = match &ops[i] {
                Op::Write { dst_node, .. } if *dst_node != self.node => *dst_node,
                _ => {
                    out.push(self.post(ctx, prio, &ops[i])?);
                    i += 1;
                    continue;
                }
            };
            let mut j = i + 1;
            while j < ops.len() {
                match &ops[j] {
                    Op::Write { dst_node, .. } if *dst_node == run_dst => j += 1,
                    _ => break,
                }
            }
            if j - i >= 2 {
                self.ensure_qps(run_dst)?;
                for op in &ops[i..j] {
                    self.touch_mm(op);
                }
                let start = ctx.now();
                let sampled = self.obs.sample();
                // One op id per chained write; the chain retries as a
                // unit, so retry/failure events carry the first op's id.
                let ids: Vec<u64> = (i..j).map(|_| self.obs.next_op_id()).collect();
                if sampled {
                    for &id in &ids {
                        self.obs
                            .trace(id, OpClass::Write, EventKind::Posted, prio, run_dst, start);
                        self.obs.trace(
                            id,
                            OpClass::Write,
                            EventKind::Batched,
                            prio,
                            run_dst,
                            start,
                        );
                    }
                }
                let trace = OpTrace {
                    op_id: ids[0],
                    class: OpClass::Write,
                    prio,
                };
                // The whole chain retries as a unit: `post_write_batch`
                // claims credits atomically and rolls back on failure.
                let res = self.with_retry(ctx, run_dst, Some(trace), |dp, ctx| {
                    dp.post_write_batch(ctx, prio, run_dst, &ops[i..j])
                });
                match res {
                    Ok(comps) => {
                        for (k, c) in comps.iter().enumerate() {
                            self.obs.record_completion(
                                OpClass::Write,
                                prio,
                                run_dst,
                                ops[i + k].bytes(),
                                c.stamp.saturating_sub(start),
                                c.stamp,
                                sampled,
                            );
                            if sampled {
                                self.obs.trace(
                                    ids[k],
                                    OpClass::Write,
                                    EventKind::Completed,
                                    prio,
                                    run_dst,
                                    c.stamp,
                                );
                            }
                        }
                        out.extend(comps);
                    }
                    Err(e) => {
                        self.obs.record_failure(run_dst);
                        self.obs.trace(
                            ids[0],
                            OpClass::Write,
                            EventKind::Failed,
                            prio,
                            run_dst,
                            ctx.now(),
                        );
                        return Err(e);
                    }
                }
            } else {
                out.push(self.post(ctx, prio, &ops[i])?);
            }
            i = j;
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// TCP implementation
// ---------------------------------------------------------------------

/// Per-node TCP/IPoIB stack resources (mirrors `transport::tcp`).
struct TcpStack {
    kernel: Resource,
    wire: Resource,
}

/// The same op descriptors over a modeled kernel TCP stack on IPoIB.
///
/// One-sided semantics are emulated request/response style: writes push
/// the bytes with one message, reads and atomics pay a round trip. Used
/// by baselines that want LITE's data plane shape without its RDMA
/// substrate — build a set of connected paths with
/// [`TcpDataPath::mesh`].
pub struct TcpDataPath {
    fabric: Arc<IbFabric>,
    node: NodeId,
    cost: TcpCostModel,
    stacks: Arc<Vec<TcpStack>>,
    alloc: Mutex<PhysAllocator>,
}

/// Bytes of a read request / atomic request / atomic response message.
const TCP_CTRL_BYTES: usize = 24;

impl TcpDataPath {
    /// Builds one connected datapath per node over a fresh memory fabric.
    pub fn mesh(nodes: usize, cost: TcpCostModel) -> Vec<Arc<TcpDataPath>> {
        let fabric = IbFabric::new(IbConfig::with_nodes(nodes));
        let stacks = Arc::new(
            (0..nodes)
                .map(|_| TcpStack {
                    kernel: Resource::with_slack("tcp-kernel", 40_000),
                    wire: Resource::with_slack("ipoib-wire", 40_000),
                })
                .collect::<Vec<_>>(),
        );
        (0..nodes)
            .map(|node| {
                let size = fabric.mem(node).size();
                Arc::new(TcpDataPath {
                    fabric: Arc::clone(&fabric),
                    node,
                    cost: cost.clone(),
                    stacks: Arc::clone(&stacks),
                    alloc: Mutex::new(PhysAllocator::new(0, size)),
                })
            })
            .collect()
    }

    fn segs(&self, len: usize) -> u64 {
        len.max(1).div_ceil(self.cost.mss) as u64
    }

    fn copy_time(&self, len: usize) -> Nanos {
        transfer_time(len as u64, self.cost.copy_bytes_per_sec)
    }

    fn wire_time(&self, len: usize) -> Nanos {
        transfer_time(len as u64, self.cost.bytes_per_sec)
    }

    /// Send path from this node, charged to the caller's CPU; returns the
    /// arrival stamp at the peer (post-wakeup, pre-copy).
    fn send_leg(&self, ctx: &mut Ctx, len: usize) -> Nanos {
        let c = &self.cost;
        ctx.work(c.syscall_ns + self.copy_time(len));
        let seg = self.stacks[self.node]
            .kernel
            .acquire(ctx.now(), c.segment_ns * self.segs(len));
        let wire = self.stacks[self.node]
            .wire
            .acquire(seg.finish, self.wire_time(len));
        wire.finish + c.propagation_ns + c.rx_wakeup_ns
    }

    /// Response path from `from`, starting at virtual time `start`
    /// (remote CPU; nothing charged to the caller).
    fn return_leg(&self, from: NodeId, start: Nanos, len: usize) -> Nanos {
        let c = &self.cost;
        let cpu = c.syscall_ns + self.copy_time(len);
        let seg = self.stacks[from]
            .kernel
            .acquire(start + cpu, c.segment_ns * self.segs(len));
        let wire = self.stacks[from]
            .wire
            .acquire(seg.finish, self.wire_time(len));
        wire.finish + c.propagation_ns + c.rx_wakeup_ns
    }

    /// Receiver-side cost folded into the completion stamp.
    fn rx_done(&self, arrive: Nanos, len: usize) -> Nanos {
        arrive + self.cost.syscall_ns + self.copy_time(len)
    }

    /// Mirror of the RNIC datapath's injection point: TCP ops consult
    /// the fabric's fault plan and node-down state before touching the
    /// wire, so both transports honor the same fault model. There is no
    /// QP to break on a socket path, so `BreakQp` rules never match
    /// (`fault_check` is called without a QP).
    fn fault_gate(&self, ctx: &mut Ctx, dst: NodeId) -> LiteResult<()> {
        match self.fabric.fault_check(self.node, dst, None) {
            FaultAction::Delay(d) => ctx.wait_until(ctx.now() + d),
            FaultAction::Drop => return Err(LiteError::Timeout),
            _ => {}
        }
        if self.fabric.is_down(self.node) || self.fabric.is_down(dst) {
            return Err(LiteError::Timeout);
        }
        Ok(())
    }
}

impl DataPath for TcpDataPath {
    fn node(&self) -> NodeId {
        self.node
    }

    fn fabric(&self) -> &Arc<IbFabric> {
        &self.fabric
    }

    fn alloc(&self, bytes: u64) -> LiteResult<u64> {
        Ok(self.alloc.lock().alloc(bytes)?)
    }

    fn post(&self, ctx: &mut Ctx, _prio: Priority, op: &Op) -> LiteResult<Completion> {
        let local_mem = self.fabric.mem(self.node);
        match op {
            Op::Write {
                dst_node,
                dst_addr,
                src,
                len,
                ..
            } => {
                let data = read_chunks(local_mem, src, *len)?;
                if *dst_node == self.node {
                    local_mem.write(*dst_addr, &data)?;
                    ctx.work(self.copy_time(*len));
                    return Ok(Completion {
                        stamp: ctx.now(),
                        value: 0,
                    });
                }
                self.fault_gate(ctx, *dst_node)?;
                let arrive = self.send_leg(ctx, *len);
                self.fabric.mem(*dst_node).write(*dst_addr, &data)?;
                Ok(Completion {
                    stamp: self.rx_done(arrive, *len),
                    value: 0,
                })
            }
            Op::Read {
                src_node,
                src_addr,
                dst,
                len,
            } => {
                if *src_node == self.node {
                    let mut data = vec![0u8; *len];
                    local_mem.read(*src_addr, &mut data)?;
                    write_chunks(local_mem, dst, &data)?;
                    ctx.work(self.copy_time(*len));
                    return Ok(Completion {
                        stamp: ctx.now(),
                        value: 0,
                    });
                }
                self.fault_gate(ctx, *src_node)?;
                let req_arrive = self.send_leg(ctx, TCP_CTRL_BYTES);
                let mut data = vec![0u8; *len];
                self.fabric.mem(*src_node).read(*src_addr, &mut data)?;
                write_chunks(local_mem, dst, &data)?;
                let back = self.return_leg(*src_node, req_arrive, *len);
                Ok(Completion {
                    stamp: self.rx_done(back, *len),
                    value: 0,
                })
            }
            Op::FetchAdd { node, addr, delta } => {
                if *node == self.node {
                    ctx.work(LOCAL_ATOMIC_NS);
                    // Stamped applies keep conflicting atomics' stamps
                    // monotone in apply order (history-checker soundness).
                    let (value, stamp) =
                        local_mem.fetch_add_u64_stamped(*addr, *delta, ctx.now())?;
                    ctx.wait_until(stamp);
                    return Ok(Completion { stamp, value });
                }
                self.fault_gate(ctx, *node)?;
                let req_arrive = self.send_leg(ctx, TCP_CTRL_BYTES);
                let back = self.return_leg(*node, req_arrive, TCP_CTRL_BYTES);
                let done = self.rx_done(back, TCP_CTRL_BYTES);
                let (value, stamp) = self
                    .fabric
                    .mem(*node)
                    .fetch_add_u64_stamped(*addr, *delta, done)?;
                // Response-leg injection point, mirroring the RNIC path:
                // the apply above landed; a dropped ack surfaces as a
                // timeout. The TCP path has no retry layer, so the op
                // fails indeterminate — which is exactly how the history
                // checker treats it (pending, explored both ways).
                if self.fabric.fault_check_ack(self.node, *node) == FaultAction::Drop {
                    return Err(LiteError::Timeout);
                }
                ctx.wait_until(stamp); // atomics are blocking, like their verbs
                Ok(Completion { stamp, value })
            }
            Op::CmpSwap {
                node,
                addr,
                expect,
                new,
            } => {
                if *node == self.node {
                    ctx.work(LOCAL_ATOMIC_NS);
                    let (value, stamp) =
                        local_mem.cas_u64_stamped(*addr, *expect, *new, ctx.now())?;
                    ctx.wait_until(stamp);
                    return Ok(Completion { stamp, value });
                }
                self.fault_gate(ctx, *node)?;
                let req_arrive = self.send_leg(ctx, TCP_CTRL_BYTES);
                let back = self.return_leg(*node, req_arrive, TCP_CTRL_BYTES);
                let done = self.rx_done(back, TCP_CTRL_BYTES);
                let (value, stamp) = self
                    .fabric
                    .mem(*node)
                    .cas_u64_stamped(*addr, *expect, *new, done)?;
                if self.fabric.fault_check_ack(self.node, *node) == FaultAction::Drop {
                    return Err(LiteError::Timeout);
                }
                ctx.wait_until(stamp);
                Ok(Completion { stamp, value })
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shared synchronization helper
// ---------------------------------------------------------------------

/// A sense-free spin barrier built from nothing but [`Op`] descriptors:
/// one cumulative counter cell on a home node, bumped with
/// [`Op::FetchAdd`] and polled with one-sided reads. Lets any
/// [`DataPath`] consumer (the graph and MapReduce apps) synchronize
/// without a second transport-specific mechanism.
///
/// The counter is monotonic: the barrier with sequence `seq` releases
/// once the cell reaches `(seq + 1) * parties`, so one cell serves every
/// round of a run.
pub struct DataPathBarrier {
    dp: Arc<dyn DataPath>,
    home: NodeId,
    cell: u64,
    parties: u64,
    /// Local 8-byte landing pad the polls read into.
    spin: u64,
}

impl DataPathBarrier {
    /// Allocates and zeroes a counter cell on `home`'s node (call once,
    /// share the address with every party).
    pub fn alloc_cell(home: &Arc<dyn DataPath>) -> LiteResult<u64> {
        let cell = home.alloc(8)?;
        home.fabric().mem(home.node()).write(cell, &[0u8; 8])?;
        Ok(cell)
    }

    /// A party's view of the barrier at `cell` on node `home`.
    pub fn new(dp: Arc<dyn DataPath>, home: NodeId, cell: u64, parties: u64) -> LiteResult<Self> {
        let spin = dp.alloc(8)?;
        Ok(DataPathBarrier {
            dp,
            home,
            cell,
            parties,
            spin,
        })
    }

    /// Joins barrier `seq` (0, 1, 2, … over the life of the cell) and
    /// blocks until all parties have.
    pub fn wait(&self, ctx: &mut Ctx, seq: u64) -> LiteResult<()> {
        let target = (seq + 1) * self.parties;
        self.dp.post(
            ctx,
            Priority::High,
            &Op::FetchAdd {
                node: self.home,
                addr: self.cell,
                delta: 1,
            },
        )?;
        let poll = Op::read(
            self.home,
            self.cell,
            vec![Chunk {
                addr: self.spin,
                len: 8,
            }],
            8,
        );
        loop {
            let comp = self.dp.post(ctx, Priority::High, &poll)?;
            ctx.wait_until(comp.stamp);
            let mut b = [0u8; 8];
            self.dp
                .fabric()
                .mem(self.dp.node())
                .read(self.spin, &mut b)?;
            if u64::from_le_bytes(b) >= target {
                return Ok(());
            }
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------
// Kernel wrappers: counters + delegation to the node's RnicDataPath.
// ---------------------------------------------------------------------

impl LiteKernel {
    /// This node's datapath (available after cluster wiring).
    ///
    /// Panics when wiring never ran; op paths use
    /// [`LiteKernel::try_datapath`] so a half-built kernel fails ops
    /// instead of crashing.
    pub(crate) fn datapath(&self) -> &Arc<RnicDataPath> {
        self.datapath.get().expect("setup complete")
    }

    /// Fallible [`LiteKernel::datapath`] for op paths.
    pub(crate) fn try_datapath(&self) -> LiteResult<&Arc<RnicDataPath>> {
        self.datapath
            .get()
            .ok_or(LiteError::Internal("op posted before cluster wiring"))
    }

    /// RDMA-writes `len` bytes from local physical `src_chunks` to
    /// `(dst_node, dst_addr)`. Returns the completion stamp; the caller
    /// decides whether to block on it (LT_write always does).
    pub(crate) fn rdma_write(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        dst_node: NodeId,
        dst_addr: u64,
        src_chunks: &[Chunk],
        len: usize,
    ) -> LiteResult<Nanos> {
        self.counters.count_write(len as u64);
        let op = Op::write(dst_node, dst_addr, src_chunks.to_vec(), len);
        Ok(self.try_datapath()?.post(ctx, prio, &op)?.stamp)
    }

    /// RDMA-reads `len` bytes from `(src_node, src_addr)` into local
    /// physical `dst_chunks`.
    pub(crate) fn rdma_read(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        src_node: NodeId,
        src_addr: u64,
        dst_chunks: &[Chunk],
        len: usize,
    ) -> LiteResult<Nanos> {
        self.counters.count_read(len as u64);
        let op = Op::read(src_node, src_addr, dst_chunks.to_vec(), len);
        Ok(self.try_datapath()?.post(ctx, prio, &op)?.stamp)
    }

    /// Writes a scatter list of `(dst_node, dst_addr, src_chunk)` pieces,
    /// chaining consecutive remote pieces towards the same node into one
    /// doorbell batch. Returns the latest completion stamp.
    pub(crate) fn rdma_write_vec(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        pieces: &[(NodeId, u64, Chunk)],
    ) -> LiteResult<Nanos> {
        let mut last = ctx.now();
        let mut i = 0;
        while i < pieces.len() {
            let node = pieces[i].0;
            let mut j = i + 1;
            while j < pieces.len() && pieces[j].0 == node {
                j += 1;
            }
            let run = &pieces[i..j];
            if run.len() >= 2 && node != self.node {
                let total: u64 = run.iter().map(|(_, _, c)| c.len).sum();
                self.counters.count_writes(run.len() as u64, total);
                let ops: Vec<Op> = run
                    .iter()
                    .map(|(n, addr, c)| Op::write(*n, *addr, vec![*c], c.len as usize))
                    .collect();
                for comp in self.try_datapath()?.post_many(ctx, prio, &ops)? {
                    last = last.max(comp.stamp);
                }
            } else {
                for (n, addr, c) in run {
                    let comp = self.rdma_write(ctx, prio, *n, *addr, &[*c], c.len as usize)?;
                    last = last.max(comp);
                }
            }
            i = j;
        }
        Ok(last)
    }

    /// One-sided fetch-and-add on a u64 anywhere in the cluster.
    pub(crate) fn fetch_add(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        node: NodeId,
        addr: u64,
        delta: u64,
    ) -> LiteResult<u64> {
        let op = Op::FetchAdd { node, addr, delta };
        Ok(self.try_datapath()?.post(ctx, prio, &op)?.value)
    }

    /// One-sided compare-and-swap on a u64 anywhere in the cluster.
    pub(crate) fn cmp_swap(
        &self,
        ctx: &mut Ctx,
        prio: Priority,
        node: NodeId,
        addr: u64,
        expect: u64,
        new: u64,
    ) -> LiteResult<u64> {
        let op = Op::CmpSwap {
            node,
            addr,
            expect,
            new,
        };
        Ok(self.try_datapath()?.post(ctx, prio, &op)?.value)
    }
}

/// QPs this kernel should create towards each peer, honoring QoS needs:
/// K RC QPs per peer (§6.1). Used by the cluster builder's tests and by
/// external tooling that inspects the sharing scheme.
#[allow(dead_code)]
pub(crate) fn qp_plan(nodes: usize, me: NodeId, k: usize) -> Vec<(NodeId, usize)> {
    (0..nodes).filter(|&p| p != me).map(|p| (p, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qp_plan_counts() {
        let plan = qp_plan(4, 1, 2);
        assert_eq!(plan, vec![(0, 2), (2, 2), (3, 2)]);
        assert_eq!(plan.iter().map(|(_, k)| k).sum::<usize>(), 6);
    }

    #[test]
    fn op_descriptor_accessors() {
        let w = Op::write(3, 0x1000, vec![Chunk { addr: 0, len: 64 }], 64);
        assert_eq!(w.dst_node(), 3);
        assert_eq!(w.bytes(), 64);
        let r = Op::read(1, 0x2000, vec![Chunk { addr: 0, len: 9 }], 9);
        assert_eq!(r.dst_node(), 1);
        assert_eq!(r.bytes(), 9);
        let fa = Op::FetchAdd {
            node: 2,
            addr: 8,
            delta: 1,
        };
        assert_eq!((fa.dst_node(), fa.bytes()), (2, 8));
        let cs = Op::CmpSwap {
            node: 0,
            addr: 8,
            expect: 0,
            new: 1,
        };
        assert_eq!((cs.dst_node(), cs.bytes()), (0, 8));
    }

    #[test]
    fn tcp_mesh_moves_bytes_and_counts_time() {
        let paths = TcpDataPath::mesh(2, TcpCostModel::default());
        let dst = paths[1].alloc(4096).unwrap();
        let src = paths[0].alloc(4096).unwrap();
        paths[0]
            .fabric()
            .mem(0)
            .write(src, b"over the socket")
            .unwrap();
        let mut ctx = Ctx::new();
        let comp = paths[0]
            .post(
                &mut ctx,
                Priority::High,
                &Op::write(1, dst, vec![Chunk { addr: src, len: 15 }], 15),
            )
            .unwrap();
        // Kernel TCP write-path: tens of microseconds end to end.
        assert!(comp.stamp > 10_000, "stamp {}", comp.stamp);
        let mut back = [0u8; 15];
        paths[1].fabric().mem(1).read(dst, &mut back).unwrap();
        assert_eq!(&back, b"over the socket");

        // Round trip the same bytes with a read from the other side.
        let hole = paths[0].alloc(64).unwrap();
        let mut c0 = Ctx::new();
        let rc = paths[0]
            .post(
                &mut c0,
                Priority::High,
                &Op::read(
                    1,
                    dst,
                    vec![Chunk {
                        addr: hole,
                        len: 15,
                    }],
                    15,
                ),
            )
            .unwrap();
        assert!(rc.stamp > comp.stamp - comp.stamp / 2);
        let mut got = [0u8; 15];
        paths[0].fabric().mem(0).read(hole, &mut got).unwrap();
        assert_eq!(&got, b"over the socket");

        // Atomics return the previous value and block the caller.
        let cell = paths[1].alloc(64).unwrap();
        let fa = paths[0]
            .post(
                &mut c0,
                Priority::High,
                &Op::FetchAdd {
                    node: 1,
                    addr: cell,
                    delta: 5,
                },
            )
            .unwrap();
        assert_eq!(fa.value, 0);
        assert_eq!(c0.now(), fa.stamp);
        let cs = paths[0]
            .post(
                &mut c0,
                Priority::High,
                &Op::CmpSwap {
                    node: 1,
                    addr: cell,
                    expect: 5,
                    new: 9,
                },
            )
            .unwrap();
        assert_eq!(cs.value, 5);
    }
}
