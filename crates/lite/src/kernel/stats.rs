//! Kernel statistics: lock-free counters updated on the hot paths and
//! the aggregate snapshot handed to benchmarks.
//!
//! # Snapshot consistency contract
//!
//! Each counter is updated independently, so a snapshot is **not** a
//! point-in-time cut across all of them. The one cross-counter invariant
//! readers may rely on is `bytes` vs the op counters: every hot-path
//! update bumps the op counter (relaxed) *before* adding to `bytes` with
//! `Release`, and the snapshot loads `bytes` first with `Acquire` before
//! the op counters. Every byte visible in a snapshot therefore belongs
//! to an op already visible in it — derived rates like bytes/op can
//! *under*-estimate in-flight traffic but never attribute bytes to ops
//! the snapshot has not counted. All remaining counters are monotonic
//! relaxed totals with no ordering relative to one another.

use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate kernel statistics.
#[derive(Debug, Default, Clone)]
pub struct KernelStats {
    /// RPC requests dispatched by the poller.
    pub rpc_dispatched: u64,
    /// One-sided writes issued through LITE.
    pub lt_writes: u64,
    /// One-sided reads issued through LITE.
    pub lt_reads: u64,
    /// Bytes moved by LITE one-sided ops.
    pub lt_bytes: u64,
    /// Total RC QPs this kernel created (K × (N-1)).
    pub qps: usize,
    /// Datapath attempts repeated by the recovery layer (backoff retries
    /// plus post-reconnect replays).
    pub retries: u64,
    /// Broken shared QPs this node tore down and re-established.
    pub qp_reconnects: u64,
    /// Peers this node's liveness monitor declared dead.
    pub peers_marked_dead: u64,
    /// Datapath ops that failed after recovery gave up (deadline
    /// exhausted, dead peer, or a non-retryable fault).
    pub ops_failed: u64,
    /// Cleanup paths that failed (allocation rollback, handle teardown)
    /// — previously swallowed with `let _ = ...`; each one is a leaked
    /// remote chunk or scratch region.
    pub cleanup_failures: u64,
    /// Lock-word unwinds: failed acquires that rolled their `fetch_add`
    /// back, keeping the lock word consistent under faults.
    pub lock_unwinds: u64,
    /// Lock fault paths that could not restore consistency (abort
    /// unreachable, unwind failed, or a release grant undeliverable) —
    /// the lock involved should be considered poisoned.
    pub sync_leaks: u64,
    /// OCC transactions committed through this node (reported by the
    /// `lite-txn` layer via [`crate::LiteKernel::note_txn_commit`]).
    pub txn_commits: u64,
    /// OCC transactions aborted (lock conflict, validation failure,
    /// explicit abort, or indeterminate outcome).
    pub txn_aborts: u64,
    /// The subset of aborts caused by read-set validation failure —
    /// the OCC conflict signal proper.
    pub txn_validation_fails: u64,
    /// KV writes applied by a `lite-kv` replica on this node (reported
    /// by the service layer via [`crate::LiteKernel::note_kv_put`]).
    pub kv_puts: u64,
    /// KV reads served by a `lite-kv` replica on this node.
    pub kv_gets: u64,
    /// Current replication lag of the `lite-kv` leader on this node:
    /// committed writes minus the slowest follower's acknowledged seq.
    /// A gauge (last stored value), not a monotonic counter.
    pub kv_replication_lag: u64,
    /// Host-wall nanoseconds this node's boot (`finish_setup`) took.
    pub boot_ns: u64,
    /// Host-wall nanoseconds spent wiring peer pairs lazily (shared QP
    /// pools + RPC rings) after boot.
    pub mesh_ns: u64,
    /// Peer pairs this node wired on first use (incremental membership).
    pub lazy_connects: u64,
}

/// The kernel's live counters (relaxed atomics; snapshot via
/// [`KernelCounters::snapshot`]).
#[derive(Debug, Default)]
pub(crate) struct KernelCounters {
    pub(crate) rpc: AtomicU64,
    pub(crate) writes: AtomicU64,
    pub(crate) reads: AtomicU64,
    pub(crate) bytes: AtomicU64,
    pub(crate) cleanup_failures: AtomicU64,
    pub(crate) lock_unwinds: AtomicU64,
    pub(crate) sync_leaks: AtomicU64,
    pub(crate) txn_commits: AtomicU64,
    pub(crate) txn_aborts: AtomicU64,
    pub(crate) txn_validation_fails: AtomicU64,
    pub(crate) kv_puts: AtomicU64,
    pub(crate) kv_gets: AtomicU64,
    pub(crate) kv_replication_lag: AtomicU64,
}

/// Recovery-layer counters, owned by the node's datapath (the retry
/// wrapper is the only writer).
#[derive(Debug, Default)]
pub(crate) struct RetryCounters {
    pub(crate) retries: AtomicU64,
    pub(crate) qp_reconnects: AtomicU64,
    pub(crate) peers_marked_dead: AtomicU64,
    pub(crate) ops_failed: AtomicU64,
}

impl KernelCounters {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    // Op counter (relaxed) strictly before bytes (release) — see the
    // module-level snapshot consistency contract.

    pub(crate) fn count_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Release);
    }

    pub(crate) fn count_writes(&self, n: u64, bytes: u64) {
        self.writes.fetch_add(n, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Release);
    }

    pub(crate) fn count_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Release);
    }

    pub(crate) fn count_rpc(&self) {
        self.rpc.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_cleanup_failure(&self) {
        self.cleanup_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_lock_unwind(&self) {
        self.lock_unwinds.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_sync_leak(&self) {
        self.sync_leaks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_txn_commit(&self) {
        self.txn_commits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_txn_abort(&self, validation_fail: bool) {
        self.txn_aborts.fetch_add(1, Ordering::Relaxed);
        if validation_fail {
            self.txn_validation_fails.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn count_kv_put(&self) {
        self.kv_puts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_kv_get(&self) {
        self.kv_gets.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn set_kv_replication_lag(&self, lag: u64) {
        self.kv_replication_lag.store(lag, Ordering::Relaxed);
    }

    /// Snapshot with the QP count and recovery counters supplied by the
    /// kernel (which owns the pool tables and the datapath).
    pub(crate) fn snapshot(&self, qps: usize, retry: Option<&RetryCounters>) -> KernelStats {
        let r = |c: &AtomicU64| c.load(Ordering::Relaxed);
        // Bytes first (acquire): pairs with the release adds so the op
        // counters read afterwards can only be ahead of, never behind,
        // the ops that produced these bytes.
        let lt_bytes = self.bytes.load(Ordering::Acquire);
        KernelStats {
            rpc_dispatched: r(&self.rpc),
            lt_writes: r(&self.writes),
            lt_reads: r(&self.reads),
            lt_bytes,
            qps,
            retries: retry.map_or(0, |c| r(&c.retries)),
            qp_reconnects: retry.map_or(0, |c| r(&c.qp_reconnects)),
            peers_marked_dead: retry.map_or(0, |c| r(&c.peers_marked_dead)),
            ops_failed: retry.map_or(0, |c| r(&c.ops_failed)),
            cleanup_failures: r(&self.cleanup_failures),
            lock_unwinds: r(&self.lock_unwinds),
            sync_leaks: r(&self.sync_leaks),
            txn_commits: r(&self.txn_commits),
            txn_aborts: r(&self.txn_aborts),
            txn_validation_fails: r(&self.txn_validation_fails),
            kv_puts: r(&self.kv_puts),
            kv_gets: r(&self.kv_gets),
            kv_replication_lag: r(&self.kv_replication_lag),
            // Gauges owned by the kernel/datapath; folded in by
            // `LiteKernel::stats` after this snapshot.
            boot_ns: 0,
            mesh_ns: 0,
            lazy_connects: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot() {
        let c = KernelCounters::new();
        c.count_write(100);
        c.count_writes(2, 50);
        c.count_read(7);
        c.count_rpc();
        c.count_cleanup_failure();
        c.count_lock_unwind();
        c.count_sync_leak();
        c.count_txn_commit();
        c.count_txn_abort(true);
        c.count_txn_abort(false);
        c.count_kv_put();
        c.count_kv_put();
        c.count_kv_get();
        c.set_kv_replication_lag(9);
        c.set_kv_replication_lag(4);
        let s = c.snapshot(6, None);
        assert_eq!(s.lt_writes, 3);
        assert_eq!(s.lt_reads, 1);
        assert_eq!(s.lt_bytes, 157);
        assert_eq!(s.rpc_dispatched, 1);
        assert_eq!(s.qps, 6);
        assert_eq!(s.retries, 0);
        assert_eq!(s.cleanup_failures, 1);
        assert_eq!(s.lock_unwinds, 1);
        assert_eq!(s.sync_leaks, 1);
        assert_eq!(s.txn_commits, 1);
        assert_eq!(s.txn_aborts, 2);
        assert_eq!(s.txn_validation_fails, 1);
        assert_eq!(s.kv_puts, 2);
        assert_eq!(s.kv_gets, 1);
        // The lag is a gauge: the last stored value wins.
        assert_eq!(s.kv_replication_lag, 4);
    }

    #[test]
    fn retry_counters_fold_into_snapshot() {
        let c = KernelCounters::new();
        let r = RetryCounters::default();
        r.retries.fetch_add(4, Ordering::Relaxed);
        r.qp_reconnects.fetch_add(1, Ordering::Relaxed);
        r.peers_marked_dead.fetch_add(2, Ordering::Relaxed);
        r.ops_failed.fetch_add(3, Ordering::Relaxed);
        let s = c.snapshot(0, Some(&r));
        assert_eq!(s.retries, 4);
        assert_eq!(s.qp_reconnects, 1);
        assert_eq!(s.peers_marked_dead, 2);
        assert_eq!(s.ops_failed, 3);
    }
}
