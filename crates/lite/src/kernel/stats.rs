//! Kernel statistics: lock-free counters updated on the hot paths and
//! the aggregate snapshot handed to benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate kernel statistics.
#[derive(Debug, Default, Clone)]
pub struct KernelStats {
    /// RPC requests dispatched by the poller.
    pub rpc_dispatched: u64,
    /// One-sided writes issued through LITE.
    pub lt_writes: u64,
    /// One-sided reads issued through LITE.
    pub lt_reads: u64,
    /// Bytes moved by LITE one-sided ops.
    pub lt_bytes: u64,
    /// Total RC QPs this kernel created (K × (N-1)).
    pub qps: usize,
}

/// The kernel's live counters (relaxed atomics; snapshot via
/// [`KernelCounters::snapshot`]).
#[derive(Debug, Default)]
pub(crate) struct KernelCounters {
    pub(crate) rpc: AtomicU64,
    pub(crate) writes: AtomicU64,
    pub(crate) reads: AtomicU64,
    pub(crate) bytes: AtomicU64,
}

impl KernelCounters {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn count_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn count_writes(&self, n: u64, bytes: u64) {
        self.writes.fetch_add(n, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn count_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn count_rpc(&self) {
        self.rpc.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot with the QP count supplied by the kernel (which owns the
    /// pool tables).
    pub(crate) fn snapshot(&self, qps: usize) -> KernelStats {
        KernelStats {
            rpc_dispatched: self.rpc.load(Ordering::Relaxed),
            lt_writes: self.writes.load(Ordering::Relaxed),
            lt_reads: self.reads.load(Ordering::Relaxed),
            lt_bytes: self.bytes.load(Ordering::Relaxed),
            qps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot() {
        let c = KernelCounters::new();
        c.count_write(100);
        c.count_writes(2, 50);
        c.count_read(7);
        c.count_rpc();
        let s = c.snapshot(6);
        assert_eq!(s.lt_writes, 3);
        assert_eq!(s.lt_reads, 1);
        assert_eq!(s.lt_bytes, 157);
        assert_eq!(s.rpc_dispatched, 1);
        assert_eq!(s.qps, 6);
    }
}
