//! Kernel-internal services: naming, mapping, master records, memory
//! ops, locks, and barriers (§3.3's management plane plus §4.4/§4.5's
//! synchronization primitives).
//!
//! Every handler here is *event-driven code executed by the polling
//! thread* — none of them blocks, and multi-step operations are driven
//! by the calling thread as a sequence of RPCs, so the poller can never
//! deadlock.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU32, Ordering};

use rnic::NodeId;
use simnet::Ctx;
use smem::Chunk;

use super::rpc::ReplyRoute;
use super::{
    LiteKernel, FN_BARRIER, FN_EVICT, FN_FETCH_BACK, FN_FREE_CHUNKS, FN_GRANT, FN_INVALIDATE,
    FN_LOCK, FN_MALLOC, FN_MAP, FN_MEMCPY, FN_MEMSET, FN_QUERYNAME, FN_REGNAME, FN_TAKE_RECORD,
    FN_UNMAP, FN_UNREGNAME, LOCK_CELLS,
};
use crate::error::{LiteError, LiteResult};
use crate::lmr::{LhEntry, LmrId, Location, MasterRecord, Perm};
use crate::qos::Priority;
use crate::shard::ShardedMap;
use crate::wire::{Dec, Enc, MsgHeader};

/// Owner-side state of one lock word. Every enqueue and every release
/// carries a cluster-unique token, which is what makes the fault paths
/// safe: releases are idempotent (retrying a grant whose ack was lost
/// cannot grant a second waiter) and a failed enqueue can be aborted
/// with a definite answer (queued / already granted / never arrived).
/// A release that finds no waiter is answered "no waiter yet" and
/// retried by the unlocker — the handover is never banked owner-side,
/// so an aborted (unwound) increment can never strand a pre-granted
/// credit. `granted` and `releases_seen` grow by O(contended ops +
/// releases with waiters) u64s per lock over its lifetime — accepted:
/// tokens are 8 bytes and lock cells are bounded by `LOCK_CELLS`.
#[derive(Default)]
pub(super) struct LockState {
    waiters: VecDeque<(u64, ReplyRoute)>,
    granted: HashSet<u64>,
    releases_seen: HashSet<u64>,
    /// First answer given for each aborted token — a retried abort
    /// (whose previous reply was lost) must repeat the original answer,
    /// not re-derive it ("granted" would wrongly become "never
    /// arrived" after the first abort consumed the `granted` entry).
    aborts_seen: HashMap<u64, u8>,
}

pub(super) struct BarrierState {
    routes: Vec<ReplyRoute>,
    count: u32,
}

/// Master records, sharded by record index with a sharded name index on
/// the side. The two maps are updated without a covering lock; the
/// invariants that keep that safe:
///
/// * a record is inserted into `records` *before* its `by_name` binding,
///   and removed from `records` *before* the binding is scrubbed — so a
///   `by_name` hit whose record is missing means "being torn down" and
///   is answered like an unknown name (status 2);
/// * `by_name` scrubs are conditional (`entry == idx`), so a name that
///   was freed and re-registered under a new index is never scrubbed by
///   the old record's teardown.
pub(super) struct MasterTable {
    records: ShardedMap<u32, MasterRecord>,
    by_name: ShardedMap<String, u32>,
    next_idx: AtomicU32,
}

impl MasterTable {
    pub(super) fn new(shards: usize) -> Self {
        MasterTable {
            records: ShardedMap::new(shards),
            by_name: ShardedMap::new(shards),
            next_idx: AtomicU32::new(1),
        }
    }

    /// Removes `name → idx` only if it still points at `idx`.
    fn scrub_name(&self, name: &str, idx: u32) {
        let key = name.to_string();
        self.by_name.with_shard_of(&key, |m| {
            if m.get(&key) == Some(&idx) {
                m.remove(&key);
            }
        });
    }
}

pub(crate) fn perm_to_byte(p: Perm) -> u8 {
    (p.read as u8) | ((p.write as u8) << 1) | ((p.master as u8) << 2)
}

pub(crate) fn byte_to_perm(b: u8) -> Perm {
    Perm {
        read: b & 1 != 0,
        write: b & 2 != 0,
        master: b & 4 != 0,
    }
}

impl LiteKernel {
    // ------------------------------------------------------------------
    // lh table
    // ------------------------------------------------------------------

    /// Creates a process on this node; returns its pid.
    pub(crate) fn alloc_pid(&self) -> u32 {
        self.next_pid.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn install_lh(&self, pid: u32, entry: LhEntry) -> u64 {
        let lh = self.next_lh.fetch_add(1, Ordering::Relaxed);
        self.lhs.insert((pid, lh), entry);
        lh
    }

    pub(crate) fn lookup_lh(&self, pid: u32, lh: u64) -> LiteResult<LhEntry> {
        self.lhs.get(&(pid, lh)).ok_or(LiteError::BadLh { lh })
    }

    pub(crate) fn reinstall_lh(&self, pid: u32, lh: u64, entry: LhEntry) {
        self.lhs.insert((pid, lh), entry);
    }

    pub(crate) fn remove_lh(&self, pid: u32, lh: u64) -> LiteResult<LhEntry> {
        self.lhs.remove(&(pid, lh)).ok_or(LiteError::BadLh { lh })
    }

    fn invalidate_lmr(&self, id: LmrId) {
        // Snapshot-per-shard: a handle installed into an already-visited
        // shard mid-sweep belongs to a mapping that re-fetched after the
        // invalidation, so skipping it is correct.
        self.lhs.for_each_mut(|_, entry| {
            if entry.id == id {
                entry.stale = true;
            }
        });
    }

    /// Marks every local handle on `id` as relocated (not stale): the
    /// LMR still exists, but its cached location moved under the handle.
    /// The API layer re-fetches the mapping and clears the flag.
    pub(crate) fn invalidate_lmr_relocated(&self, id: LmrId) {
        self.lhs.for_each_mut(|_, entry| {
            if entry.id == id {
                entry.relocated = true;
            }
        });
    }

    // ------------------------------------------------------------------
    // Master records
    // ------------------------------------------------------------------

    /// Removes a master record created on this node (rollback path).
    pub(crate) fn remove_master_record(&self, idx: u32) {
        if let Some(rec) = self.masters.records.remove(&idx) {
            if let Some(name) = rec.name {
                self.masters.scrub_name(&name, idx);
            }
            // Stop tiering the dropped record's chunks (lt_malloc
            // rollback); the storage itself is freed by the caller's
            // FN_FREE_CHUNKS traffic.
            self.mm.unregister_lmr(idx);
        }
    }

    /// Swaps the physical location of a master record held on this node
    /// (LT_move). Returns the old location, or `None` if the record is
    /// gone or the requester lacks master rights.
    pub(crate) fn swap_master_location(
        &self,
        name: &str,
        requester: NodeId,
        new_location: Location,
    ) -> Option<(LmrId, Location, Vec<NodeId>)> {
        let idx = self.masters.by_name.get(&name.to_string())?;
        let me = self.node;
        let (id, old, mappers, fresh) = self.masters.records.with_shard_of(&idx, move |m| {
            let rec = m.get_mut(&idx)?;
            if requester != me && !rec.perm_for(requester).master {
                return None;
            }
            let old = std::mem::replace(&mut rec.location, new_location);
            Some((rec.id, old, rec.mapped_by.clone(), rec.location.clone()))
        })?;
        // Re-register with the tiering manager outside the shard lock
        // (the manager takes its own locks).
        self.mm.unregister_lmr(idx);
        self.mm.register(id, &fresh);
        Some((id, old, mappers))
    }

    /// Installs a master record for a freshly allocated LMR.
    pub(crate) fn create_master_record(
        &self,
        location: Location,
        name: Option<String>,
        default_perm: Perm,
    ) -> LmrId {
        let idx = self.masters.next_idx.fetch_add(1, Ordering::Relaxed);
        let id = LmrId {
            node: self.node as u32,
            idx,
        };
        self.mm.register(id, &location);
        let binding = name.clone();
        // Record first, name binding second: a `by_name` hit always has
        // a live record behind it (or is a teardown race, answered as
        // "unknown name").
        self.masters.records.insert(
            idx,
            MasterRecord {
                id,
                location,
                name,
                default_perm,
                grants: HashMap::new(),
                mapped_by: vec![self.node],
            },
        );
        if let Some(n) = binding {
            self.masters.by_name.insert(n, idx);
        }
        id
    }

    /// Replaces the extents covering `[off, off+len)` of record `idx`
    /// with `repl`, in place. Returns `false` if the record is gone or
    /// the range does not line up with extent boundaries (a concurrent
    /// move/free changed the layout under the migrator, which then
    /// aborts and rolls back).
    pub(crate) fn replace_extents(
        &self,
        idx: u32,
        off: u64,
        len: u64,
        repl: &[(NodeId, Chunk)],
    ) -> bool {
        self.masters.records.with_shard_of(&idx, |m| {
            let Some(rec) = m.get_mut(&idx) else {
                return false;
            };
            let mut out = Vec::with_capacity(rec.location.extents.len() + repl.len());
            let mut cur = 0u64;
            let mut matched = 0u64;
            let mut replaced = false;
            for (node, c) in &rec.location.extents {
                let start = cur;
                cur += c.len;
                if start >= off && cur <= off + len {
                    matched += c.len;
                    if !replaced {
                        out.extend(repl.iter().copied());
                        replaced = true;
                    }
                } else if cur <= off || start >= off + len {
                    out.push((*node, *c));
                } else {
                    return false; // partial overlap: layout changed under us
                }
            }
            if !replaced || matched != len {
                return false;
            }
            rec.location.extents = out;
            true
        })
    }

    /// The nodes currently mapping record `idx` (relocation notification
    /// targets), if the record still exists.
    pub(crate) fn record_mappers(&self, idx: u32) -> Option<Vec<NodeId>> {
        self.masters
            .records
            .with_shard_of(&idx, |m| m.get(&idx).map(|r| r.mapped_by.clone()))
    }

    // ------------------------------------------------------------------
    // Locks
    // ------------------------------------------------------------------

    /// Allocates a lock cell on this node; returns its physical address
    /// and index.
    pub(crate) fn alloc_lock_cell(&self) -> LiteResult<(u64, u64)> {
        let idx = self.next_lock.fetch_add(1, Ordering::Relaxed);
        if idx >= LOCK_CELLS {
            return Err(LiteError::Mem(smem::MemError::OutOfMemory { requested: 8 }));
        }
        let addr = self.lock_cells + idx * 8;
        self.mem().store_u64(addr, 0)?;
        Ok((addr, idx))
    }

    // ------------------------------------------------------------------
    // Kernel services (run on the poller; must never block)
    // ------------------------------------------------------------------

    pub(super) fn kernel_service(
        &self,
        ctx: &mut Ctx,
        hdr: &MsgHeader,
        payload: &[u8],
    ) -> LiteResult<Option<Vec<u8>>> {
        let mut d = Dec::new(payload);
        match hdr.func {
            FN_MALLOC => {
                let size = d.u64()?;
                let max_chunk = d.u64()?;
                match self.alloc.lock().alloc_chunked(size, max_chunk) {
                    Ok(chunks) => {
                        // The range has a fresh owner: scrub any Moved
                        // tombstones it covers. Cross-node LMRs
                        // (allocated here, mastered elsewhere) are never
                        // register()ed locally, so without this a
                        // recycled address would answer Relocated
                        // forever.
                        self.mm.on_alloc(&chunks);
                        // Eager mode pins every page up front, the
                        // get_user_pages cost that makes registration
                        // scale with size (Fig 8). Lazy mode defers it
                        // to first touch at the datapath.
                        if !self.config().lazy_pinning {
                            let pages = chunks
                                .iter()
                                .map(|c| (c.len + smem::PAGE_SIZE as u64 - 1) >> smem::PAGE_SHIFT)
                                .sum::<u64>();
                            ctx.work(self.fabric.cost().pin_page_ns * pages);
                        }
                        let mut e = Enc::new().u8(0).u32(chunks.len() as u32);
                        for c in &chunks {
                            e = e.u64(c.addr).u64(c.len);
                        }
                        Ok(Some(e.done()))
                    }
                    Err(_) => Ok(Some(Enc::new().u8(1).done())),
                }
            }
            FN_FREE_CHUNKS => {
                let n = d.u32()?;
                let mut status = 0u8;
                for _ in 0..n {
                    let addr = d.u64()?;
                    if self.alloc.lock().free(addr).is_err() {
                        status = 1;
                    } else {
                        self.mm.on_free(addr);
                    }
                }
                Ok(Some(Enc::new().u8(status).done()))
            }
            FN_INVALIDATE => {
                let node = d.u32()?;
                let idx = d.u32()?;
                // Trailing kind byte (absent in older senders): 0 = the
                // LMR is gone (free/move) — handles go stale; 1 = the
                // LMR's chunks migrated — handles refresh transparently.
                let kind = d.u8().unwrap_or(0);
                if kind == 1 {
                    self.invalidate_lmr_relocated(LmrId { node, idx });
                } else {
                    self.invalidate_lmr(LmrId { node, idx });
                }
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_REGNAME => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                let master = d.u32()?;
                if self.names.insert_if_absent(name, master) {
                    Ok(Some(Enc::new().u8(0).done()))
                } else {
                    Ok(Some(Enc::new().u8(1).done()))
                }
            }
            FN_UNREGNAME => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                // Guarded scrub: the payload carries the master node the
                // caller believes owns the name. If the name was freed
                // and re-registered by another node in the meantime, the
                // newer binding is left alone — an unregister must never
                // scrub a binding it did not create. (Legacy senders
                // without the guard fall back to unconditional removal.)
                match d.u32() {
                    Ok(expected) => {
                        self.names.with_shard_of(&name, |m| {
                            if m.get(&name) == Some(&expected) {
                                m.remove(&name);
                            }
                        });
                    }
                    Err(_) => {
                        self.names.remove(&name);
                    }
                }
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_QUERYNAME => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                match self.names.get(&name) {
                    Some(node) => Ok(Some(Enc::new().u8(0).u32(node).done())),
                    None => Ok(Some(Enc::new().u8(2).done())),
                }
            }
            FN_MAP => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                let Some(idx) = self.masters.by_name.get(&name) else {
                    return Ok(Some(Enc::new().u8(2).done()));
                };
                let src = hdr.src_node as NodeId;
                let me = self.node;
                // Build the reply inside the record's shard; the
                // map-fault is only *noted* there and reported to the
                // tiering manager after the shard unlocks (the manager
                // takes its own locks).
                let out = self.masters.records.with_shard_of(&idx, |m| {
                    let rec = m.get_mut(&idx)?;
                    let perm = rec.perm_for(src);
                    if !rec.mapped_by.contains(&src) {
                        rec.mapped_by.push(src);
                    }
                    // A mapper re-fetching a location whose extents left
                    // the master node is a remote fault: enough of them
                    // pull the LMR home on the next manager sweep.
                    let fault = rec.id.node as NodeId == me
                        && rec.location.extents.iter().any(|(n, _)| *n != me);
                    let mut e = Enc::new()
                        .u8(0)
                        .u32(rec.id.node)
                        .u32(rec.id.idx)
                        .u8(perm_to_byte(perm))
                        .u32(rec.location.extents.len() as u32);
                    for (node, c) in &rec.location.extents {
                        e = e.u32(*node as u32).u64(c.addr).u64(c.len);
                    }
                    Some((fault, e.done()))
                });
                match out {
                    Some((fault, bytes)) => {
                        if fault {
                            self.mm.note_map_fault(idx);
                        }
                        Ok(Some(bytes))
                    }
                    // The record vanished between the name lookup and the
                    // record lookup (concurrent free/take): same answer
                    // as an unknown name.
                    None => Ok(Some(Enc::new().u8(2).done())),
                }
            }
            FN_UNMAP => {
                let idx = d.u32()?;
                let node = d.u32()?;
                self.masters.records.with_shard_of(&idx, |m| {
                    if let Some(rec) = m.get_mut(&idx) {
                        rec.mapped_by.retain(|&n| n != node as NodeId);
                    }
                });
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_TAKE_RECORD => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                let Some(idx) = self.masters.by_name.get(&name) else {
                    return Ok(Some(Enc::new().u8(2).done()));
                };
                let requester = hdr.src_node as NodeId;
                let me = self.node;
                enum Take {
                    Missing,
                    Denied,
                    Got(Box<MasterRecord>),
                }
                let taken = self.masters.records.with_shard_of(&idx, |m| {
                    let Some(rec) = m.get(&idx) else {
                        return Take::Missing;
                    };
                    if requester != me && !rec.perm_for(requester).master {
                        return Take::Denied;
                    }
                    match m.remove(&idx) {
                        Some(rec) => Take::Got(Box::new(rec)),
                        None => Take::Missing,
                    }
                });
                match taken {
                    Take::Missing => Ok(Some(Enc::new().u8(2).done())),
                    Take::Denied => Ok(Some(Enc::new().u8(3).done())),
                    Take::Got(rec) => {
                        self.masters.scrub_name(&name, idx);
                        self.mm.unregister_lmr(idx);
                        let mut e = Enc::new()
                            .u8(0)
                            .u32(rec.id.node)
                            .u32(rec.id.idx)
                            .u32(rec.location.extents.len() as u32);
                        for (node, c) in &rec.location.extents {
                            e = e.u32(*node as u32).u64(c.addr).u64(c.len);
                        }
                        e = e.u32(rec.mapped_by.len() as u32);
                        for n in &rec.mapped_by {
                            e = e.u32(*n as u32);
                        }
                        Ok(Some(e.done()))
                    }
                }
            }
            FN_GRANT => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                let node = d.u32()?;
                let perm = byte_to_perm(d.u8()?);
                let Some(idx) = self.masters.by_name.get(&name) else {
                    return Ok(Some(Enc::new().u8(2).done()));
                };
                let requester = hdr.src_node as NodeId;
                let me = self.node;
                let code = self.masters.records.with_shard_of(&idx, |m| {
                    let Some(rec) = m.get_mut(&idx) else {
                        return 2u8; // torn down under the name lookup
                    };
                    if requester != me && !rec.perm_for(requester).master {
                        return 3;
                    }
                    rec.grants.insert(node as NodeId, perm);
                    0
                });
                Ok(Some(Enc::new().u8(code).done()))
            }
            FN_MEMSET => {
                let addr = d.u64()?;
                let len = d.u64()?;
                let byte = d.u8()?;
                // Status 4: the range migrated under the caller's cached
                // location — it refreshes the mapping and retries.
                let _pin = match self.mm.pin_raw_nowait(addr, len) {
                    (crate::mm::PinOutcome::Relocated, _) => {
                        return Ok(Some(Enc::new().u8(4).done()))
                    }
                    (pin, faulted) => {
                        ctx.work(self.fabric.cost().fault_page_ns * faulted as u64);
                        pin
                    }
                };
                self.mem().fill(addr, len as usize, byte)?;
                ctx.work(self.fabric.cost().memcpy_time(len));
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_MEMCPY => {
                let op = d.u8()?;
                let src = d.u64()?;
                let len = d.u64()?;
                let dst_node = d.u32()? as NodeId;
                let dst = d.u64()?;
                let _src_pin = match self.mm.pin_raw_nowait(src, len) {
                    (crate::mm::PinOutcome::Relocated, _) => {
                        return Ok(Some(Enc::new().u8(4).done()))
                    }
                    (pin, faulted) => {
                        ctx.work(self.fabric.cost().fault_page_ns * faulted as u64);
                        pin
                    }
                };
                let local_dst = op == 0 || dst_node == self.node;
                // Fence the destination at whichever node hosts it: a
                // local dst through our own manager, a cross-node dst
                // through the peer's. Without the peer pin, an eviction
                // at dst_node could free/recycle the range while the
                // one-sided push is in flight and the copy would land
                // in dead memory.
                let dst_mm = if local_dst {
                    Some(&self.mm)
                } else {
                    self.mm.peer(dst_node)
                };
                let _dst_pin = match dst_mm.map(|mm| mm.pin_raw_nowait(dst, len)) {
                    Some((crate::mm::PinOutcome::Relocated, _)) => {
                        return Ok(Some(Enc::new().u8(4).done()))
                    }
                    Some((pin, faulted)) => {
                        ctx.work(self.fabric.cost().fault_page_ns * faulted as u64);
                        Some(pin)
                    }
                    None => None,
                };
                let mut data = vec![0u8; len as usize];
                self.mem().read(src, &mut data)?;
                if local_dst {
                    self.mem().write(dst, &data)?;
                    ctx.work(self.fabric.cost().memcpy_time(len));
                } else {
                    // Push to the destination node with a one-sided write;
                    // LT_memcpy returns only once the copy is durable.
                    let chunks = [Chunk { addr: src, len }];
                    let comp =
                        self.rdma_write(ctx, Priority::High, dst_node, dst, &chunks, len as usize)?;
                    ctx.wait_until(comp);
                }
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_LOCK => {
                let op = d.u8()?;
                let addr = d.u64()?;
                let token = d.u64()?;
                match op {
                    1 => {
                        // Enqueue a waiter; reply only when granted. A
                        // release that raced ahead of this enqueue will
                        // come back (the unlocker retries releases that
                        // found no waiter), so the waiter just queues.
                        let route = ReplyRoute::of_hdr(hdr);
                        self.locks.with_shard_of(&addr, |m| {
                            m.entry(addr).or_default().waiters.push_back((token, route));
                        });
                        Ok(None)
                    }
                    2 => {
                        // Grant-next on release. Two-way: the unlocker
                        // gets an ack, so it can retry a lost one — and
                        // `releases_seen` makes the retry idempotent (a
                        // duplicate of a *consumed* release token acks
                        // without granting a second waiter). A release
                        // that finds no waiter is NOT consumed: it
                        // answers "no waiter yet" (sub-code 3) and the
                        // unlocker retries after re-reading the lock
                        // word. Banking the handover here instead (a
                        // credit) would be unsound: the increment it
                        // waits for can be unwound by an abort, and the
                        // orphaned credit would later grant a waiter
                        // while another holder owns the lock.
                        //
                        // The state transition happens inside the shard;
                        // the grant reply is sent after the shard
                        // unlocks (lock-ordering rule: replies post ops,
                        // which must never run under a shard lock).
                        let grant = self.locks.with_shard_of(&addr, |m| {
                            let st = m.entry(addr).or_default();
                            if st.releases_seen.contains(&token) {
                                return Err(0);
                            }
                            match st.waiters.pop_front() {
                                Some((wtoken, route)) => {
                                    st.releases_seen.insert(token);
                                    st.granted.insert(wtoken);
                                    Ok(route)
                                }
                                None => Err(3),
                            }
                        });
                        match grant {
                            Ok(route) => {
                                // Grant before acking: the waiter's
                                // wakeup is never gated on the unlocker's
                                // reply path.
                                let _ = self.reply_bytes(ctx, route, &[0]);
                                Ok(Some(Enc::new().u8(0).u8(0).done()))
                            }
                            Err(code) => Ok(Some(Enc::new().u8(0).u8(code).done())),
                        }
                    }
                    3 => {
                        // Abort an enqueue whose reply was lost. Replies
                        // with what actually happened: 0 = dequeued (the
                        // caller does not hold the lock), 1 = already
                        // granted (the caller holds it), 2 = the enqueue
                        // never arrived. The per-(client,server) ring is
                        // FIFO and drops are terminal, so by the time
                        // this abort is processed the enqueue either ran
                        // or never will — there is no in-flight window.
                        let code = self.locks.with_shard_of(&addr, |m| {
                            let st = m.entry(addr).or_default();
                            match st.aborts_seen.get(&token) {
                                Some(&c) => c,
                                None => {
                                    let c = if let Some(pos) =
                                        st.waiters.iter().position(|(t, _)| *t == token)
                                    {
                                        st.waiters.remove(pos);
                                        0
                                    } else if st.granted.remove(&token) {
                                        1
                                    } else {
                                        2
                                    };
                                    st.aborts_seen.insert(token, c);
                                    c
                                }
                            }
                        });
                        Ok(Some(Enc::new().u8(0).u8(code).done()))
                    }
                    _ => Err(LiteError::Remote(1)),
                }
            }
            FN_BARRIER => {
                let id = d.u64()?;
                let count = d.u32()?;
                let route = ReplyRoute::of_hdr(hdr);
                // Collect the released routes inside the shard, reply
                // after it unlocks.
                let released = self.barriers.with_shard_of(&id, |m| {
                    let st = m.entry(id).or_insert(BarrierState {
                        routes: Vec::new(),
                        count,
                    });
                    st.routes.push(route);
                    if st.routes.len() as u32 >= st.count {
                        m.remove(&id).map(|st| st.routes)
                    } else {
                        None
                    }
                });
                if let Some(routes) = released {
                    for route in routes {
                        let _ = self.reply_bytes(ctx, route, &[0]);
                    }
                }
                Ok(None)
            }
            FN_EVICT => {
                let idx = d.u32()?;
                let off = d.u64()?;
                if !self.mm.enabled() {
                    return Ok(Some(Enc::new().u8(1).done()));
                }
                self.mm.request(crate::mm::MmRequest::Evict { idx, off });
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_FETCH_BACK => {
                let idx = d.u32()?;
                if !self.mm.enabled() {
                    return Ok(Some(Enc::new().u8(1).done()));
                }
                self.mm.request(crate::mm::MmRequest::FetchBack { idx });
                Ok(Some(Enc::new().u8(0).done()))
            }
            other => Err(LiteError::UnknownRpc { func: other }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perm_byte_roundtrip() {
        for p in [Perm::RO, Perm::RW, Perm::MASTER] {
            assert_eq!(byte_to_perm(perm_to_byte(p)), p);
        }
    }

    #[test]
    fn unregname_guard_spares_recycled_bindings() {
        // Regression for the stale-name bug: an unregister carrying an
        // expected-master guard must only scrub the binding it created.
        let cluster = crate::LiteCluster::start(3).unwrap();
        let mut ctx = simnet::Ctx::new();
        let mut h1 = cluster.attach(1).unwrap();
        h1.lt_malloc(&mut ctx, 1, 4096, "guarded", crate::Perm::RW)
            .unwrap();
        let mut h2 = cluster.attach(2).unwrap();
        // Wrong guard (node 2 never registered the name): no-op.
        h2.kcall(
            &mut ctx,
            crate::MANAGER_NODE,
            FN_UNREGNAME,
            Enc::new().bytes(b"guarded").u32(2).done(),
        )
        .unwrap();
        let lh = h2.lt_map(&mut ctx, "guarded").unwrap();
        h2.lt_unmap(&mut ctx, lh).unwrap();
        // Right guard: the binding goes away.
        h2.kcall(
            &mut ctx,
            crate::MANAGER_NODE,
            FN_UNREGNAME,
            Enc::new().bytes(b"guarded").u32(1).done(),
        )
        .unwrap();
        assert!(matches!(
            h2.lt_map(&mut ctx, "guarded"),
            Err(LiteError::NameNotFound { .. })
        ));
    }
}
