//! Kernel-internal services: naming, mapping, master records, memory
//! ops, locks, and barriers (§3.3's management plane plus §4.4/§4.5's
//! synchronization primitives).
//!
//! Every handler here is *event-driven code executed by the polling
//! thread* — none of them blocks, and multi-step operations are driven
//! by the calling thread as a sequence of RPCs, so the poller can never
//! deadlock.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::Ordering;

use rnic::NodeId;
use simnet::Ctx;
use smem::Chunk;

use super::rpc::ReplyRoute;
use super::{
    LiteKernel, FN_BARRIER, FN_EVICT, FN_FETCH_BACK, FN_FREE_CHUNKS, FN_GRANT, FN_INVALIDATE,
    FN_LOCK, FN_MALLOC, FN_MAP, FN_MEMCPY, FN_MEMSET, FN_QUERYNAME, FN_REGNAME, FN_TAKE_RECORD,
    FN_UNMAP, FN_UNREGNAME, LOCK_CELLS,
};
use crate::error::{LiteError, LiteResult};
use crate::lmr::{LhEntry, LmrId, Location, MasterRecord, Perm};
use crate::qos::Priority;
use crate::wire::{Dec, Enc, MsgHeader};

/// Owner-side state of one lock word. Every enqueue and every release
/// carries a cluster-unique token, which is what makes the fault paths
/// safe: releases are idempotent (retrying a grant whose ack was lost
/// cannot grant a second waiter) and a failed enqueue can be aborted
/// with a definite answer (queued / already granted / never arrived).
/// A release that finds no waiter is answered "no waiter yet" and
/// retried by the unlocker — the handover is never banked owner-side,
/// so an aborted (unwound) increment can never strand a pre-granted
/// credit. `granted` and `releases_seen` grow by O(contended ops +
/// releases with waiters) u64s per lock over its lifetime — accepted:
/// tokens are 8 bytes and lock cells are bounded by `LOCK_CELLS`.
#[derive(Default)]
pub(super) struct LockState {
    waiters: VecDeque<(u64, ReplyRoute)>,
    granted: HashSet<u64>,
    releases_seen: HashSet<u64>,
    /// First answer given for each aborted token — a retried abort
    /// (whose previous reply was lost) must repeat the original answer,
    /// not re-derive it ("granted" would wrongly become "never
    /// arrived" after the first abort consumed the `granted` entry).
    aborts_seen: HashMap<u64, u8>,
}

pub(super) struct BarrierState {
    routes: Vec<ReplyRoute>,
    count: u32,
}

pub(super) struct MasterTable {
    records: HashMap<u32, MasterRecord>,
    by_name: HashMap<String, u32>,
    next_idx: u32,
}

impl MasterTable {
    pub(super) fn new() -> Self {
        MasterTable {
            records: HashMap::new(),
            by_name: HashMap::new(),
            next_idx: 1,
        }
    }
}

pub(crate) fn perm_to_byte(p: Perm) -> u8 {
    (p.read as u8) | ((p.write as u8) << 1) | ((p.master as u8) << 2)
}

pub(crate) fn byte_to_perm(b: u8) -> Perm {
    Perm {
        read: b & 1 != 0,
        write: b & 2 != 0,
        master: b & 4 != 0,
    }
}

impl LiteKernel {
    // ------------------------------------------------------------------
    // lh table
    // ------------------------------------------------------------------

    /// Creates a process on this node; returns its pid.
    pub(crate) fn alloc_pid(&self) -> u32 {
        self.next_pid.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn install_lh(&self, pid: u32, entry: LhEntry) -> u64 {
        let lh = self.next_lh.fetch_add(1, Ordering::Relaxed);
        self.lhs.lock().insert((pid, lh), entry);
        lh
    }

    pub(crate) fn lookup_lh(&self, pid: u32, lh: u64) -> LiteResult<LhEntry> {
        self.lhs
            .lock()
            .get(&(pid, lh))
            .cloned()
            .ok_or(LiteError::BadLh { lh })
    }

    pub(crate) fn reinstall_lh(&self, pid: u32, lh: u64, entry: LhEntry) {
        self.lhs.lock().insert((pid, lh), entry);
    }

    pub(crate) fn remove_lh(&self, pid: u32, lh: u64) -> LiteResult<LhEntry> {
        self.lhs
            .lock()
            .remove(&(pid, lh))
            .ok_or(LiteError::BadLh { lh })
    }

    fn invalidate_lmr(&self, id: LmrId) {
        for entry in self.lhs.lock().values_mut() {
            if entry.id == id {
                entry.stale = true;
            }
        }
    }

    /// Marks every local handle on `id` as relocated (not stale): the
    /// LMR still exists, but its cached location moved under the handle.
    /// The API layer re-fetches the mapping and clears the flag.
    pub(crate) fn invalidate_lmr_relocated(&self, id: LmrId) {
        for entry in self.lhs.lock().values_mut() {
            if entry.id == id {
                entry.relocated = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Master records
    // ------------------------------------------------------------------

    /// Removes a master record created on this node (rollback path).
    pub(crate) fn remove_master_record(&self, idx: u32) {
        let mut t = self.masters.lock();
        if let Some(rec) = t.records.remove(&idx) {
            if let Some(name) = rec.name {
                t.by_name.remove(&name);
            }
            // Stop tiering the dropped record's chunks (lt_malloc
            // rollback); the storage itself is freed by the caller's
            // FN_FREE_CHUNKS traffic.
            self.mm.unregister_lmr(idx);
        }
    }

    /// Swaps the physical location of a master record held on this node
    /// (LT_move). Returns the old location, or `None` if the record is
    /// gone or the requester lacks master rights.
    pub(crate) fn swap_master_location(
        &self,
        name: &str,
        requester: NodeId,
        new_location: Location,
    ) -> Option<(LmrId, Location, Vec<NodeId>)> {
        let mut t = self.masters.lock();
        let idx = *t.by_name.get(name)?;
        let rec = t.records.get_mut(&idx)?;
        if requester != self.node && !rec.perm_for(requester).master {
            return None;
        }
        let old = std::mem::replace(&mut rec.location, new_location);
        self.mm.unregister_lmr(idx);
        self.mm.register(rec.id, &rec.location);
        Some((rec.id, old, rec.mapped_by.clone()))
    }

    /// Installs a master record for a freshly allocated LMR.
    pub(crate) fn create_master_record(
        &self,
        location: Location,
        name: Option<String>,
        default_perm: Perm,
    ) -> LmrId {
        let mut t = self.masters.lock();
        let idx = t.next_idx;
        t.next_idx += 1;
        let id = LmrId {
            node: self.node as u32,
            idx,
        };
        self.mm.register(id, &location);
        if let Some(n) = &name {
            t.by_name.insert(n.clone(), idx);
        }
        t.records.insert(
            idx,
            MasterRecord {
                id,
                location,
                name,
                default_perm,
                grants: HashMap::new(),
                mapped_by: vec![self.node],
            },
        );
        id
    }

    /// Replaces the extents covering `[off, off+len)` of record `idx`
    /// with `repl`, in place. Returns `false` if the record is gone or
    /// the range does not line up with extent boundaries (a concurrent
    /// move/free changed the layout under the migrator, which then
    /// aborts and rolls back).
    pub(crate) fn replace_extents(
        &self,
        idx: u32,
        off: u64,
        len: u64,
        repl: &[(NodeId, Chunk)],
    ) -> bool {
        let mut t = self.masters.lock();
        let Some(rec) = t.records.get_mut(&idx) else {
            return false;
        };
        let mut out = Vec::with_capacity(rec.location.extents.len() + repl.len());
        let mut cur = 0u64;
        let mut matched = 0u64;
        let mut replaced = false;
        for (node, c) in &rec.location.extents {
            let start = cur;
            cur += c.len;
            if start >= off && cur <= off + len {
                matched += c.len;
                if !replaced {
                    out.extend(repl.iter().copied());
                    replaced = true;
                }
            } else if cur <= off || start >= off + len {
                out.push((*node, *c));
            } else {
                return false; // partial overlap: layout changed under us
            }
        }
        if !replaced || matched != len {
            return false;
        }
        rec.location.extents = out;
        true
    }

    /// The nodes currently mapping record `idx` (relocation notification
    /// targets), if the record still exists.
    pub(crate) fn record_mappers(&self, idx: u32) -> Option<Vec<NodeId>> {
        self.masters
            .lock()
            .records
            .get(&idx)
            .map(|r| r.mapped_by.clone())
    }

    // ------------------------------------------------------------------
    // Locks
    // ------------------------------------------------------------------

    /// Allocates a lock cell on this node; returns its physical address
    /// and index.
    pub(crate) fn alloc_lock_cell(&self) -> LiteResult<(u64, u64)> {
        let idx = self.next_lock.fetch_add(1, Ordering::Relaxed);
        if idx >= LOCK_CELLS {
            return Err(LiteError::Mem(smem::MemError::OutOfMemory { requested: 8 }));
        }
        let addr = self.lock_cells + idx * 8;
        self.mem().store_u64(addr, 0)?;
        Ok((addr, idx))
    }

    // ------------------------------------------------------------------
    // Kernel services (run on the poller; must never block)
    // ------------------------------------------------------------------

    pub(super) fn kernel_service(
        &self,
        ctx: &mut Ctx,
        hdr: &MsgHeader,
        payload: &[u8],
    ) -> LiteResult<Option<Vec<u8>>> {
        let mut d = Dec::new(payload);
        match hdr.func {
            FN_MALLOC => {
                let size = d.u64()?;
                let max_chunk = d.u64()?;
                match self.alloc.lock().alloc_chunked(size, max_chunk) {
                    Ok(chunks) => {
                        // The range has a fresh owner: scrub any Moved
                        // tombstones it covers. Cross-node LMRs
                        // (allocated here, mastered elsewhere) are never
                        // register()ed locally, so without this a
                        // recycled address would answer Relocated
                        // forever.
                        self.mm.on_alloc(&chunks);
                        let mut e = Enc::new().u8(0).u32(chunks.len() as u32);
                        for c in &chunks {
                            e = e.u64(c.addr).u64(c.len);
                        }
                        Ok(Some(e.done()))
                    }
                    Err(_) => Ok(Some(Enc::new().u8(1).done())),
                }
            }
            FN_FREE_CHUNKS => {
                let n = d.u32()?;
                let mut status = 0u8;
                for _ in 0..n {
                    let addr = d.u64()?;
                    if self.alloc.lock().free(addr).is_err() {
                        status = 1;
                    } else {
                        self.mm.on_free(addr);
                    }
                }
                Ok(Some(Enc::new().u8(status).done()))
            }
            FN_INVALIDATE => {
                let node = d.u32()?;
                let idx = d.u32()?;
                // Trailing kind byte (absent in older senders): 0 = the
                // LMR is gone (free/move) — handles go stale; 1 = the
                // LMR's chunks migrated — handles refresh transparently.
                let kind = d.u8().unwrap_or(0);
                if kind == 1 {
                    self.invalidate_lmr_relocated(LmrId { node, idx });
                } else {
                    self.invalidate_lmr(LmrId { node, idx });
                }
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_REGNAME => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                let master = d.u32()?;
                let mut names = self.names.lock();
                match names.entry(name) {
                    std::collections::hash_map::Entry::Occupied(_) => {
                        Ok(Some(Enc::new().u8(1).done()))
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(master);
                        Ok(Some(Enc::new().u8(0).done()))
                    }
                }
            }
            FN_UNREGNAME => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                self.names.lock().remove(&name);
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_QUERYNAME => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                match self.names.lock().get(&name) {
                    Some(&node) => Ok(Some(Enc::new().u8(0).u32(node).done())),
                    None => Ok(Some(Enc::new().u8(2).done())),
                }
            }
            FN_MAP => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                let mut t = self.masters.lock();
                let Some(&idx) = t.by_name.get(&name) else {
                    return Ok(Some(Enc::new().u8(2).done()));
                };
                let rec = t
                    .records
                    .get_mut(&idx)
                    .ok_or(LiteError::Internal("master table lost an indexed record"))?;
                let perm = rec.perm_for(hdr.src_node as NodeId);
                if !rec.mapped_by.contains(&(hdr.src_node as NodeId)) {
                    rec.mapped_by.push(hdr.src_node as NodeId);
                }
                // A mapper re-fetching a location whose extents left the
                // master node is a remote fault: enough of them pull the
                // LMR home on the next manager sweep.
                if rec.id.node as NodeId == self.node
                    && rec.location.extents.iter().any(|(n, _)| *n != self.node)
                {
                    self.mm.note_map_fault(idx);
                }
                let mut e = Enc::new()
                    .u8(0)
                    .u32(rec.id.node)
                    .u32(rec.id.idx)
                    .u8(perm_to_byte(perm))
                    .u32(rec.location.extents.len() as u32);
                for (node, c) in &rec.location.extents {
                    e = e.u32(*node as u32).u64(c.addr).u64(c.len);
                }
                Ok(Some(e.done()))
            }
            FN_UNMAP => {
                let idx = d.u32()?;
                let node = d.u32()?;
                let mut t = self.masters.lock();
                if let Some(rec) = t.records.get_mut(&idx) {
                    rec.mapped_by.retain(|&n| n != node as NodeId);
                }
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_TAKE_RECORD => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                let mut t = self.masters.lock();
                let Some(&idx) = t.by_name.get(&name) else {
                    return Ok(Some(Enc::new().u8(2).done()));
                };
                let rec = t
                    .records
                    .get(&idx)
                    .ok_or(LiteError::Internal("master table lost an indexed record"))?;
                let requester = hdr.src_node as NodeId;
                let is_master = requester == self.node || rec.perm_for(requester).master;
                if !is_master {
                    return Ok(Some(Enc::new().u8(3).done()));
                }
                let rec = t
                    .records
                    .remove(&idx)
                    .ok_or(LiteError::Internal("master table lost an indexed record"))?;
                t.by_name.remove(&name);
                self.mm.unregister_lmr(idx);
                let mut e = Enc::new()
                    .u8(0)
                    .u32(rec.id.node)
                    .u32(rec.id.idx)
                    .u32(rec.location.extents.len() as u32);
                for (node, c) in &rec.location.extents {
                    e = e.u32(*node as u32).u64(c.addr).u64(c.len);
                }
                e = e.u32(rec.mapped_by.len() as u32);
                for n in &rec.mapped_by {
                    e = e.u32(*n as u32);
                }
                Ok(Some(e.done()))
            }
            FN_GRANT => {
                let name = String::from_utf8_lossy(d.bytes()?).into_owned();
                let node = d.u32()?;
                let perm = byte_to_perm(d.u8()?);
                let mut t = self.masters.lock();
                let Some(&idx) = t.by_name.get(&name) else {
                    return Ok(Some(Enc::new().u8(2).done()));
                };
                let rec = t
                    .records
                    .get_mut(&idx)
                    .ok_or(LiteError::Internal("master table lost an indexed record"))?;
                let requester = hdr.src_node as NodeId;
                if requester != self.node && !rec.perm_for(requester).master {
                    return Ok(Some(Enc::new().u8(3).done()));
                }
                rec.grants.insert(node as NodeId, perm);
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_MEMSET => {
                let addr = d.u64()?;
                let len = d.u64()?;
                let byte = d.u8()?;
                // Status 4: the range migrated under the caller's cached
                // location — it refreshes the mapping and retries.
                let _pin = match self.mm.pin_raw_nowait(addr, len) {
                    crate::mm::PinOutcome::Relocated => return Ok(Some(Enc::new().u8(4).done())),
                    pin => pin,
                };
                self.mem().fill(addr, len as usize, byte)?;
                ctx.work(self.fabric.cost().memcpy_time(len));
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_MEMCPY => {
                let op = d.u8()?;
                let src = d.u64()?;
                let len = d.u64()?;
                let dst_node = d.u32()? as NodeId;
                let dst = d.u64()?;
                let _src_pin = match self.mm.pin_raw_nowait(src, len) {
                    crate::mm::PinOutcome::Relocated => return Ok(Some(Enc::new().u8(4).done())),
                    pin => pin,
                };
                let local_dst = op == 0 || dst_node == self.node;
                // Fence the destination at whichever node hosts it: a
                // local dst through our own manager, a cross-node dst
                // through the peer's. Without the peer pin, an eviction
                // at dst_node could free/recycle the range while the
                // one-sided push is in flight and the copy would land
                // in dead memory.
                let dst_mm = if local_dst {
                    Some(&self.mm)
                } else {
                    self.mm.peer(dst_node)
                };
                let _dst_pin = match dst_mm.map(|mm| mm.pin_raw_nowait(dst, len)) {
                    Some(crate::mm::PinOutcome::Relocated) => {
                        return Ok(Some(Enc::new().u8(4).done()))
                    }
                    pin => pin,
                };
                let mut data = vec![0u8; len as usize];
                self.mem().read(src, &mut data)?;
                if local_dst {
                    self.mem().write(dst, &data)?;
                    ctx.work(self.fabric.cost().memcpy_time(len));
                } else {
                    // Push to the destination node with a one-sided write;
                    // LT_memcpy returns only once the copy is durable.
                    let chunks = [Chunk { addr: src, len }];
                    let comp =
                        self.rdma_write(ctx, Priority::High, dst_node, dst, &chunks, len as usize)?;
                    ctx.wait_until(comp);
                }
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_LOCK => {
                let op = d.u8()?;
                let addr = d.u64()?;
                let token = d.u64()?;
                let mut locks = self.locks.lock();
                let st = locks.entry(addr).or_default();
                match op {
                    1 => {
                        // Enqueue a waiter; reply only when granted. A
                        // release that raced ahead of this enqueue will
                        // come back (the unlocker retries releases that
                        // found no waiter), so the waiter just queues.
                        st.waiters.push_back((token, ReplyRoute::of_hdr(hdr)));
                        Ok(None)
                    }
                    2 => {
                        // Grant-next on release. Two-way: the unlocker
                        // gets an ack, so it can retry a lost one — and
                        // `releases_seen` makes the retry idempotent (a
                        // duplicate of a *consumed* release token acks
                        // without granting a second waiter). A release
                        // that finds no waiter is NOT consumed: it
                        // answers "no waiter yet" (sub-code 3) and the
                        // unlocker retries after re-reading the lock
                        // word. Banking the handover here instead (a
                        // credit) would be unsound: the increment it
                        // waits for can be unwound by an abort, and the
                        // orphaned credit would later grant a waiter
                        // while another holder owns the lock.
                        let code = if st.releases_seen.contains(&token) {
                            0
                        } else {
                            match st.waiters.pop_front() {
                                Some((wtoken, route)) => {
                                    st.releases_seen.insert(token);
                                    st.granted.insert(wtoken);
                                    drop(locks);
                                    // Grant before acking: the waiter's
                                    // wakeup is never gated on the
                                    // unlocker's reply path.
                                    let _ = self.reply_bytes(ctx, route, &[0]);
                                    return Ok(Some(Enc::new().u8(0).u8(0).done()));
                                }
                                None => 3,
                            }
                        };
                        Ok(Some(Enc::new().u8(0).u8(code).done()))
                    }
                    3 => {
                        // Abort an enqueue whose reply was lost. Replies
                        // with what actually happened: 0 = dequeued (the
                        // caller does not hold the lock), 1 = already
                        // granted (the caller holds it), 2 = the enqueue
                        // never arrived. The per-(client,server) ring is
                        // FIFO and drops are terminal, so by the time
                        // this abort is processed the enqueue either ran
                        // or never will — there is no in-flight window.
                        let code = match st.aborts_seen.get(&token) {
                            Some(&c) => c,
                            None => {
                                let c = if let Some(pos) =
                                    st.waiters.iter().position(|(t, _)| *t == token)
                                {
                                    st.waiters.remove(pos);
                                    0
                                } else if st.granted.remove(&token) {
                                    1
                                } else {
                                    2
                                };
                                st.aborts_seen.insert(token, c);
                                c
                            }
                        };
                        Ok(Some(Enc::new().u8(0).u8(code).done()))
                    }
                    _ => Err(LiteError::Remote(1)),
                }
            }
            FN_BARRIER => {
                let id = d.u64()?;
                let count = d.u32()?;
                let mut barriers = self.barriers.lock();
                let st = barriers.entry(id).or_insert(BarrierState {
                    routes: Vec::new(),
                    count,
                });
                st.routes.push(ReplyRoute::of_hdr(hdr));
                if st.routes.len() as u32 >= st.count {
                    let Some(st) = barriers.remove(&id) else {
                        return Ok(None); // raced: another waiter released it
                    };
                    drop(barriers);
                    for route in st.routes {
                        let _ = self.reply_bytes(ctx, route, &[0]);
                    }
                }
                Ok(None)
            }
            FN_EVICT => {
                let idx = d.u32()?;
                let off = d.u64()?;
                if !self.mm.enabled() {
                    return Ok(Some(Enc::new().u8(1).done()));
                }
                self.mm.request(crate::mm::MmRequest::Evict { idx, off });
                Ok(Some(Enc::new().u8(0).done()))
            }
            FN_FETCH_BACK => {
                let idx = d.u32()?;
                if !self.mm.enabled() {
                    return Ok(Some(Enc::new().u8(1).done()));
                }
                self.mm.request(crate::mm::MmRequest::FetchBack { idx });
                Ok(Some(Enc::new().u8(0).done()))
            }
            other => Err(LiteError::UnknownRpc { func: other }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perm_byte_roundtrip() {
        for p in [Perm::RO, Perm::RW, Perm::MASTER] {
            assert_eq!(byte_to_perm(perm_to_byte(p)), p);
        }
    }
}
