//! Gather/scatter between [`smem::PhysMem`] and chunk lists.
//!
//! LMRs are physically chunked (§4.1 splits large LMRs to dodge external
//! fragmentation), so every local staging move walks a chunk list. These
//! two helpers are the only place that walk lives.

use smem::{Chunk, PhysMem};

use crate::error::LiteResult;

/// Reads `len` bytes spread over `chunks` into one contiguous buffer.
pub(crate) fn read_chunks(mem: &PhysMem, chunks: &[Chunk], len: usize) -> LiteResult<Vec<u8>> {
    let mut out = vec![0u8; len];
    let mut off = 0usize;
    for c in chunks {
        if off >= len {
            break;
        }
        let n = (c.len as usize).min(len - off);
        mem.read(c.addr, &mut out[off..off + n])?;
        off += n;
    }
    Ok(out)
}

/// Scatters `data` over `chunks`.
pub(crate) fn write_chunks(mem: &PhysMem, chunks: &[Chunk], data: &[u8]) -> LiteResult<()> {
    let mut off = 0usize;
    for c in chunks {
        if off >= data.len() {
            break;
        }
        let n = (c.len as usize).min(data.len() - off);
        mem.write(c.addr, &data[off..off + n])?;
        off += n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_roundtrip_spans_pieces() {
        let mem = PhysMem::new(4096);
        let chunks = [
            Chunk { addr: 0, len: 5 },
            Chunk { addr: 100, len: 11 },
            Chunk {
                addr: 1000,
                len: 64,
            },
        ];
        let data: Vec<u8> = (0..16u8).collect();
        write_chunks(&mem, &chunks, &data).unwrap();
        // 16 bytes span the first two chunks (5 + 11); the third is
        // untouched.
        let back = read_chunks(&mem, &chunks, 16).unwrap();
        assert_eq!(back, data);
        let mut third = [0u8; 1];
        mem.read(1000, &mut third).unwrap();
        assert_eq!(third[0], 0);
    }
}
