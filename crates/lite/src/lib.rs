#![warn(missing_docs)]

//! # LITE: a Local Indirection TiEr for RDMA
//!
//! A faithful reimplementation of *LITE Kernel RDMA Support for
//! Datacenter Applications* (Tsai & Zhang, SOSP 2017) over the simulated
//! RNIC substrate in [`rnic`].
//!
//! LITE virtualizes native RDMA behind a kernel-level indirection layer:
//!
//! * **Memory** — applications see named, permissioned *LITE memory
//!   regions* (LMRs) through opaque handles (`lh`); the kernel maps them
//!   onto physical memory and registers a **single global physical MR**
//!   with the NIC, eliminating the on-NIC MR-key and PTE-cache
//!   scalability cliffs of native RDMA (§4).
//! * **RPC** — a new mechanism built on paired `RDMA write-imm`
//!   operations through per-node-pair rings, one shared polling thread
//!   per node, and user/kernel crossing optimizations (§5).
//! * **Sharing & QoS** — K×N shared RC QPs per node, one shared receive
//!   CQ, and two QoS schemes (HW-Sep partitioning and SW-Pri software
//!   flow control) (§6).
//! * **Extensions** — memory-like ops (`LT_memset/memcpy/memmove`),
//!   synchronization (`LT_lock`, `LT_barrier`, `LT_fetch-add`,
//!   `LT_test-set`), and multicast RPC (§7).
//!
//! Start a cluster with [`LiteCluster::start`], attach processes with
//! [`LiteCluster::attach`], and use the `lt_*` methods on
//! [`LiteHandle`] (they mirror the paper's Table 1).
//!
//! ```
//! use lite::{LiteCluster, Perm};
//! use simnet::Ctx;
//!
//! let cluster = LiteCluster::start(2).unwrap();
//! let mut h0 = cluster.attach(0).unwrap();
//! let mut h1 = cluster.attach(1).unwrap();
//! let mut ctx = Ctx::new();
//!
//! // Allocate a named LMR on node 1, write from node 0, read it back.
//! let lh = h0.lt_malloc(&mut ctx, 1, 4096, "demo", Perm::RW).unwrap();
//! h0.lt_write(&mut ctx, lh, 0, b"hello LITE").unwrap();
//!
//! let mut ctx1 = Ctx::new();
//! let lh1 = h1.lt_map(&mut ctx1, "demo").unwrap();
//! let mut buf = [0u8; 10];
//! h1.lt_read(&mut ctx1, lh1, 0, &mut buf).unwrap();
//! assert_eq!(&buf, b"hello LITE");
//! ```

pub mod api;
pub mod cluster;
pub mod config;
pub mod directory;
pub mod error;
pub mod kernel;
pub mod lmr;
pub mod mm;
pub mod observe;
pub mod qos;
pub mod ring;
pub mod shard;
pub mod verify;
pub mod wire;

pub use api::{Lh, LiteHandle, LockId, RpcCall};
pub use cluster::LiteCluster;
pub use config::LiteConfig;
pub use directory::ClusterDirectory;
pub use error::{LiteError, LiteResult};
pub use kernel::datapath::{
    Chunk, Completion, DataPath, DataPathBarrier, Op, RnicDataPath, TcpDataPath,
};
pub use kernel::{KernelStats, LiteKernel, MANAGER_NODE, USER_FUNC_MIN};
pub use lmr::{LmrId, Location, Perm};
pub use mm::{MemManager, MmReport, Residency};
pub use observe::{
    ClassStats, ConcurrentHistogram, EventKind, LatencySummary, Observability, OpClass, PeerReport,
    QosReport, StatsReport, TraceEvent, TraceRing, TraceStats,
};
pub use qos::{Priority, QosConfig, QosMode, QosState};
pub use shard::ShardedMap;
pub use verify::{
    explore, fingerprint, proc_id, run_mixed, CheckOutcome, ExploreReport, HistOp, History,
    HistoryLog, Key, MixedWorkload, OpKind, SeedReport, TxnCheckOutcome, TxnHistory, TxnLog, TxnOp,
    TxnOutcome, Violation,
};
