//! Kernel-level observability: lock-free latency histograms, per-peer
//! accounting, and an op-lifecycle trace ring.
//!
//! The paper's evaluation (§6, §8) is built on per-priority latency and
//! throughput breakdowns; production RDMA stacks (FaRM's per-machine
//! telemetry, HERD's per-verb accounting) treat in-kernel measurement as
//! load-bearing. This module gives the LITE kernel the same capability:
//!
//! * [`ConcurrentHistogram`] — the log-bucketed [`simnet::Histogram`]
//!   made concurrent: per-bucket atomics sharded across cache lines so
//!   hot-path recording is a couple of relaxed `fetch_add`s, never a
//!   lock. Snapshots reconstruct a plain `Histogram` (with exact
//!   min/max) for percentile queries.
//! * [`TraceRing`] — a fixed-size, per-node, seqlock-style ring of
//!   timestamped op-lifecycle events (posted, batched, retried,
//!   reconnected, completed, failed). Writers never block; readers
//!   detect and skip torn slots. Dumpable on fault or via
//!   [`StatsReport`].
//! * [`StatsReport`] — the structured snapshot returned by
//!   `lt_stats()`: per-class × per-priority percentiles, per-peer
//!   liveness and byte counts, trace-ring occupancy, retry/QoS gauges,
//!   and a hand-rolled JSON export for benches and CI artifacts.
//!
//! Recording costs **host** cycles only — it never advances virtual
//! clocks — so observability is invisible to the modeled latencies it
//! measures. A sampling knob ([`crate::LiteConfig::stats_sample_rate`])
//! bounds even the host cost on hot paths.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use rnic::NodeId;
use simnet::{bucket_floor, bucket_of, Histogram, Nanos, HIST_BUCKETS};

use crate::qos::{Priority, QosMode};

// ---------------------------------------------------------------------
// Op classification
// ---------------------------------------------------------------------

/// The class of a measured operation, one histogram family each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// One-sided RDMA read (`lt_read` and internal reads).
    Read,
    /// One-sided RDMA write (`lt_write`, write-imm payload posts).
    Write,
    /// One-sided atomic (fetch-add / compare-and-swap).
    Atomic,
    /// Full RPC round trip (request post → reply observed).
    Rpc,
    /// Distributed lock acquire (`lt_lock`, fast or queued path).
    Lock,
    /// Barrier wait (`lt_barrier`).
    Barrier,
    /// Management / cleanup traffic (allocation rollback, handle
    /// teardown, lock-word unwinds) — the paths whose failures used to
    /// be silently swallowed.
    Mgmt,
}

/// All op classes, in display order.
pub const OP_CLASSES: [OpClass; 7] = [
    OpClass::Read,
    OpClass::Write,
    OpClass::Atomic,
    OpClass::Rpc,
    OpClass::Lock,
    OpClass::Barrier,
    OpClass::Mgmt,
];

impl OpClass {
    /// Stable short name (JSON keys, table labels).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Read => "read",
            OpClass::Write => "write",
            OpClass::Atomic => "atomic",
            OpClass::Rpc => "rpc",
            OpClass::Lock => "lock",
            OpClass::Barrier => "barrier",
            OpClass::Mgmt => "mgmt",
        }
    }

    fn index(self) -> usize {
        match self {
            OpClass::Read => 0,
            OpClass::Write => 1,
            OpClass::Atomic => 2,
            OpClass::Rpc => 3,
            OpClass::Lock => 4,
            OpClass::Barrier => 5,
            OpClass::Mgmt => 6,
        }
    }

    fn from_index(i: usize) -> OpClass {
        OP_CLASSES[i]
    }
}

fn prio_index(p: Priority) -> usize {
    match p {
        Priority::High => 0,
        Priority::Low => 1,
    }
}

// ---------------------------------------------------------------------
// Concurrent sharded histogram
// ---------------------------------------------------------------------

/// One shard: a full bucket array plus exact extremes and a running sum.
struct HistShard {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        HistShard {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }
}

/// Number of shards; recording threads spread across them to avoid
/// bouncing one cache line between cores. Power of two.
const SHARDS: usize = 4;

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each recording thread gets a stable shard index.
    static THREAD_SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// The `simnet` log-bucketed histogram made lock-free and sharded for
/// concurrent hot-path recording. `record` is wait-free (a handful of
/// relaxed atomic RMWs on the calling thread's shard); `snapshot` merges
/// all shards into a plain [`Histogram`] whose percentiles carry the
/// usual ~6 % bucket error with exact endpoints.
pub struct ConcurrentHistogram {
    shards: Vec<HistShard>,
}

impl ConcurrentHistogram {
    /// Creates an empty concurrent histogram.
    pub fn new() -> Self {
        ConcurrentHistogram {
            shards: (0..SHARDS).map(|_| HistShard::new()).collect(),
        }
    }

    /// Records one sample (lock-free, callable from any thread).
    pub fn record(&self, v: u64) {
        THREAD_SHARD.with(|&s| self.shards[s].record(v));
    }

    /// Total samples recorded across all shards.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Merges every shard into a plain histogram for percentile queries.
    /// Concurrent recording during a snapshot can skew individual bucket
    /// counts by in-flight ops; it never tears a single bucket.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        let (mut min, mut max) = (u64::MAX, 0u64);
        for shard in &self.shards {
            for i in 0..HIST_BUCKETS {
                let c = shard.buckets[i].load(Ordering::Relaxed);
                if c > 0 {
                    h.record_n(bucket_floor(i), c);
                }
            }
            min = min.min(shard.min.load(Ordering::Relaxed));
            max = max.max(shard.max.load(Ordering::Relaxed));
        }
        if h.count() > 0 {
            h.set_bounds(min, max);
        }
        h
    }

    /// Mean of all recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let (mut c, mut s) = (0u64, 0u128);
        for shard in &self.shards {
            c += shard.count.load(Ordering::Relaxed);
            s += shard.sum.load(Ordering::Relaxed) as u128;
        }
        if c == 0 {
            0.0
        } else {
            s as f64 / c as f64
        }
    }
}

impl Default for ConcurrentHistogram {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------

/// What happened to an op at one point in its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Handed to the datapath.
    Posted,
    /// Part of a doorbell-batched chain.
    Batched,
    /// A failed attempt was retried (backoff or post-reconnect replay).
    Retried,
    /// A broken QP towards the peer was re-established for this op.
    Reconnected,
    /// Completed successfully.
    Completed,
    /// Failed after recovery gave up.
    Failed,
}

/// All event kinds, in display order.
pub const EVENT_KINDS: [EventKind; 6] = [
    EventKind::Posted,
    EventKind::Batched,
    EventKind::Retried,
    EventKind::Reconnected,
    EventKind::Completed,
    EventKind::Failed,
];

impl EventKind {
    /// Stable short name (JSON keys, dumps).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Posted => "posted",
            EventKind::Batched => "batched",
            EventKind::Retried => "retried",
            EventKind::Reconnected => "reconnected",
            EventKind::Completed => "completed",
            EventKind::Failed => "failed",
        }
    }

    fn code(self) -> u64 {
        match self {
            EventKind::Posted => 0,
            EventKind::Batched => 1,
            EventKind::Retried => 2,
            EventKind::Reconnected => 3,
            EventKind::Completed => 4,
            EventKind::Failed => 5,
        }
    }

    fn from_code(c: u64) -> EventKind {
        EVENT_KINDS[(c as usize) % EVENT_KINDS.len()]
    }
}

/// One decoded op-lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic per-node op id (assigned at post time).
    pub op_id: u64,
    /// Op class.
    pub class: OpClass,
    /// Lifecycle stage.
    pub kind: EventKind,
    /// Priority the op ran at.
    pub prio: Priority,
    /// Remote peer (the local node id for loop-back ops).
    pub peer: NodeId,
    /// Virtual-time stamp of the event.
    pub stamp: Nanos,
}

fn pack_word(class: OpClass, kind: EventKind, prio: Priority, peer: NodeId) -> u64 {
    (class.index() as u64)
        | (kind.code() << 8)
        | ((prio_index(prio) as u64) << 16)
        | ((peer as u64) << 24)
}

fn unpack_word(w: u64) -> (OpClass, EventKind, Priority, NodeId) {
    let class = OpClass::from_index((w & 0xff) as usize % OP_CLASSES.len());
    let kind = EventKind::from_code((w >> 8) & 0xff);
    let prio = if (w >> 16) & 0xff == 0 {
        Priority::High
    } else {
        Priority::Low
    };
    (class, kind, prio, (w >> 24) as NodeId)
}

/// One ring slot: a double-sequence seqlock around three payload words.
///
/// Writers store `start = idx + 1`, the payload, then `end = idx + 1`
/// (release). Readers load `end` (acquire), the payload, then `start`
/// (acquire), and accept the slot only when both sequences agree —
/// anything else is a torn or in-progress write and is skipped. All
/// fields are atomics, so a race is at worst a skipped event, never UB.
struct TraceSlot {
    start: AtomicU64,
    end: AtomicU64,
    word: AtomicU64,
    op_id: AtomicU64,
    stamp: AtomicU64,
}

impl TraceSlot {
    fn new() -> Self {
        TraceSlot {
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
            word: AtomicU64::new(0),
            op_id: AtomicU64::new(0),
            stamp: AtomicU64::new(0),
        }
    }
}

/// A fixed-size, per-node, lock-free ring of the last N op-lifecycle
/// events. Writers claim a slot with one `fetch_add` and never wait;
/// overwrites evict the oldest events. [`TraceRing::snapshot`] returns
/// the surviving events oldest-first.
pub struct TraceRing {
    slots: Vec<TraceSlot>,
    head: AtomicU64,
}

impl TraceRing {
    /// Creates a ring with `slots` entries (rounded up to a power of
    /// two, minimum 64).
    pub fn new(slots: usize) -> Self {
        let n = slots.max(64).next_power_of_two();
        TraceRing {
            slots: (0..n).map(|_| TraceSlot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (monotonic; `recorded - capacity`
    /// events have been evicted once it exceeds the capacity).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one event (lock-free).
    pub fn record(&self, ev: TraceEvent) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx as usize) & (self.slots.len() - 1)];
        let seq = idx + 1;
        slot.start.store(seq, Ordering::Relaxed);
        slot.word.store(
            pack_word(ev.class, ev.kind, ev.prio, ev.peer),
            Ordering::Relaxed,
        );
        slot.op_id.store(ev.op_id, Ordering::Relaxed);
        slot.stamp.store(ev.stamp, Ordering::Relaxed);
        slot.end.store(seq, Ordering::Release);
    }

    /// The surviving events, oldest first. Slots being overwritten
    /// concurrently are skipped rather than returned torn.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let lo = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - lo) as usize);
        for idx in lo..head {
            let slot = &self.slots[(idx as usize) & (self.slots.len() - 1)];
            let end = slot.end.load(Ordering::Acquire);
            let word = slot.word.load(Ordering::Relaxed);
            let op_id = slot.op_id.load(Ordering::Relaxed);
            let stamp = slot.stamp.load(Ordering::Relaxed);
            let start = slot.start.load(Ordering::Acquire);
            if start != idx + 1 || end != idx + 1 {
                continue; // torn or already overwritten
            }
            let (class, kind, prio, peer) = unpack_word(word);
            out.push(TraceEvent {
                op_id,
                class,
                kind,
                prio,
                peer,
                stamp,
            });
        }
        out
    }

    /// Number of surviving events of `kind` (snapshot-based).
    pub fn count_kind(&self, kind: EventKind) -> u64 {
        self.snapshot().iter().filter(|e| e.kind == kind).count() as u64
    }
}

// ---------------------------------------------------------------------
// Per-peer accounting
// ---------------------------------------------------------------------

/// Lock-free per-peer counters plus a latency histogram.
pub(crate) struct PeerStats {
    pub(crate) ops: AtomicU64,
    pub(crate) bytes: AtomicU64,
    pub(crate) failures: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) lat: ConcurrentHistogram,
    /// Virtual stamp of the most recent completion from this peer.
    pub(crate) last_completion: AtomicU64,
}

impl PeerStats {
    fn new() -> Self {
        PeerStats {
            ops: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            lat: ConcurrentHistogram::new(),
            last_completion: AtomicU64::new(0),
        }
    }
}

// ---------------------------------------------------------------------
// The observability state owned by a datapath / kernel
// ---------------------------------------------------------------------

/// The kernel's observability surface: one per node, shared by the
/// datapath hot paths, the RPC plane, and the API layer.
pub struct Observability {
    /// class × priority latency histograms (post → completion).
    class_lat: Vec<ConcurrentHistogram>, // [class][prio] flattened
    /// Per-peer accounting, materialized on first traffic to the peer.
    /// Eager allocation here was O(peers × histogram) per node — the
    /// dominant boot cost at hundreds of nodes — for tables most peers
    /// never populate.
    peers: Vec<OnceLock<Box<PeerStats>>>,
    ring: TraceRing,
    /// Record 1 in `sample_rate` latency samples (lifecycle *error*
    /// events — retried/reconnected/failed — are always recorded).
    sample_rate: u32,
    next_op: AtomicU64,
    /// Per-thread sampling strides start from here.
    sample_tick: AtomicU64,
    /// History log for the linearizability checker (armed by
    /// [`crate::LiteCluster::record_history`]; absent in normal runs).
    history: OnceLock<Arc<crate::verify::HistoryLog>>,
}

impl Observability {
    /// Creates observability state for a node with `peers` peers.
    pub fn new(peers: usize, sample_rate: u32, ring_slots: usize) -> Self {
        Observability {
            class_lat: (0..OP_CLASSES.len() * 2)
                .map(|_| ConcurrentHistogram::new())
                .collect(),
            peers: (0..peers).map(|_| OnceLock::new()).collect(),
            ring: TraceRing::new(ring_slots),
            sample_rate: sample_rate.max(1),
            next_op: AtomicU64::new(1),
            sample_tick: AtomicU64::new(0),
            history: OnceLock::new(),
        }
    }

    /// Arms history recording for this node; recording stays on for the
    /// node's lifetime. Subsequent installs are ignored (first wins).
    pub fn install_history(&self, log: Arc<crate::verify::HistoryLog>) {
        let _ = self.history.set(log);
    }

    /// The armed history log, if any. Hot paths check this and skip
    /// recording entirely when unarmed (one relaxed load).
    pub fn history(&self) -> Option<&Arc<crate::verify::HistoryLog>> {
        self.history.get()
    }

    /// Assigns the next monotonic op id.
    pub fn next_op_id(&self) -> u64 {
        self.next_op.fetch_add(1, Ordering::Relaxed)
    }

    /// Whether this op's latency (and posted/completed trace events)
    /// should be recorded under the sampling rate.
    pub fn sample(&self) -> bool {
        self.sample_rate <= 1
            || self
                .sample_tick
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(self.sample_rate as u64)
    }

    /// The trace ring.
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// The latency histogram for one class × priority cell.
    pub fn class_hist(&self, class: OpClass, prio: Priority) -> &ConcurrentHistogram {
        &self.class_lat[class.index() * 2 + prio_index(prio)]
    }

    /// Records a completed op: per-peer op/byte gauges are always exact;
    /// the latency histograms (class cell + per-peer) record only when
    /// `sampled` — the caller's one [`Observability::sample`] draw for
    /// the op.
    #[allow(clippy::too_many_arguments)]
    pub fn record_completion(
        &self,
        class: OpClass,
        prio: Priority,
        peer: NodeId,
        bytes: u64,
        latency: Nanos,
        stamp: Nanos,
        sampled: bool,
    ) {
        if sampled {
            self.class_hist(class, prio).record(latency);
        }
        if let Some(p) = self.peer_touch(peer) {
            p.ops.fetch_add(1, Ordering::Relaxed);
            p.bytes.fetch_add(bytes, Ordering::Relaxed);
            if sampled {
                p.lat.record(latency);
            }
            p.last_completion.fetch_max(stamp, Ordering::Relaxed);
        }
    }

    /// Records a latency sample into one class × priority cell only (no
    /// per-peer accounting) — used for API-level round-trip spans (RPC,
    /// lock, barrier) whose underlying posts already feed the peer table.
    pub fn record_span(&self, class: OpClass, prio: Priority, latency: Nanos) {
        self.class_hist(class, prio).record(latency);
    }

    /// Counts a failed op towards `peer`.
    pub fn record_failure(&self, peer: NodeId) {
        if let Some(p) = self.peer_touch(peer) {
            p.failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts a retried attempt towards `peer`.
    pub fn record_retry(&self, peer: NodeId) {
        if let Some(p) = self.peer_touch(peer) {
            p.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Emits one lifecycle event into the trace ring.
    pub fn trace(
        &self,
        op_id: u64,
        class: OpClass,
        kind: EventKind,
        prio: Priority,
        peer: NodeId,
        stamp: Nanos,
    ) {
        self.ring.record(TraceEvent {
            op_id,
            class,
            kind,
            prio,
            peer,
            stamp,
        });
    }

    /// The peer's stats slot, materializing it on first use (recording
    /// paths: the caller has real traffic towards this peer). After the
    /// first touch this is one acquire load.
    fn peer_touch(&self, peer: NodeId) -> Option<&PeerStats> {
        self.peers
            .get(peer)
            .map(|slot| &**slot.get_or_init(|| Box::new(PeerStats::new())))
    }

    /// The peer's stats, if any traffic ever materialized them
    /// (read-only: reporting must not inflate the table).
    pub(crate) fn peer_stats(&self, peer: NodeId) -> Option<&PeerStats> {
        self.peers
            .get(peer)
            .and_then(|slot| slot.get())
            .map(|b| &**b)
    }

    /// Configured sampling rate (1 = every op).
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }
}

// ---------------------------------------------------------------------
// The structured report
// ---------------------------------------------------------------------

/// Percentile summary of one latency population (nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Samples recorded (after sampling).
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Exact minimum (p0).
    pub p0: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile — the SLO tail (ROADMAP asks for p50/p99/p999).
    /// Same log-bucket resolution as the other interior percentiles.
    pub p999: u64,
    /// Exact maximum (p100).
    pub p100: u64,
}

impl LatencySummary {
    pub(crate) fn of(hist: &ConcurrentHistogram) -> LatencySummary {
        let h = hist.snapshot();
        LatencySummary {
            count: h.count(),
            mean_ns: hist.mean(),
            p0: h.percentile(0.0),
            p50: h.percentile(50.0),
            p90: h.percentile(90.0),
            p99: h.percentile(99.0),
            p999: h.percentile(99.9),
            p100: h.percentile(100.0),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean_ns\":{:.1},\"p0\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"p100\":{}}}",
            self.count, self.mean_ns, self.p0, self.p50, self.p90, self.p99, self.p999, self.p100
        )
    }
}

/// Latency breakdown of one op class at one priority.
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// Op class.
    pub class: OpClass,
    /// Priority.
    pub prio: Priority,
    /// Post→completion latency summary.
    pub lat: LatencySummary,
}

/// One peer's view from this node.
#[derive(Debug, Clone)]
pub struct PeerReport {
    /// Peer node id.
    pub peer: NodeId,
    /// Completed ops towards the peer.
    pub ops: u64,
    /// Bytes moved towards/from the peer.
    pub bytes: u64,
    /// Ops that failed after recovery gave up.
    pub failures: u64,
    /// Attempts repeated towards the peer.
    pub retries: u64,
    /// Whether the liveness monitor currently considers the peer alive.
    pub alive: bool,
    /// Virtual stamp of the latest completion.
    pub last_completion: Nanos,
    /// Latency summary towards the peer (all classes).
    pub lat: LatencySummary,
}

/// Trace-ring gauges.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Ring capacity in events.
    pub capacity: usize,
    /// Events ever recorded.
    pub recorded: u64,
    /// Events currently held (≤ capacity).
    pub occupancy: usize,
    /// Surviving events by kind, indexed like [`EVENT_KINDS`].
    pub by_kind: [u64; 6],
}

/// QoS gauges folded into the report.
#[derive(Debug, Clone)]
pub struct QosReport {
    /// Active mode.
    pub mode: QosMode,
    /// High-priority RTT EWMA (policy 3 input).
    pub rtt_ewma_ns: Nanos,
}

/// The structured snapshot returned by `lt_stats()`.
#[derive(Debug, Clone)]
pub struct StatsReport {
    /// Reporting node.
    pub node: NodeId,
    /// Flat kernel counters (same data as [`crate::KernelStats`]).
    pub kernel: crate::KernelStats,
    /// Per class × priority latency summaries (only non-empty cells).
    pub classes: Vec<ClassStats>,
    /// Per-peer accounting and liveness.
    pub peers: Vec<PeerReport>,
    /// Trace-ring gauges.
    pub trace: TraceStats,
    /// QoS gauges.
    pub qos: QosReport,
    /// Memory-tiering gauges (resident/evicted bytes, migrations).
    pub mm: crate::mm::MmReport,
    /// Sampling rate the histograms were recorded at.
    pub sample_rate: u32,
}

impl StatsReport {
    /// The summary for one class × priority cell, if it recorded samples.
    pub fn class(&self, class: OpClass, prio: Priority) -> Option<&LatencySummary> {
        self.classes
            .iter()
            .find(|c| c.class == class && c.prio == prio)
            .map(|c| &c.lat)
    }

    /// Combined summary across both priorities of `class` (count-weighted
    /// mean; percentiles are the worse of the two cells).
    pub fn class_any_prio(&self, class: OpClass) -> Option<LatencySummary> {
        let cells: Vec<&LatencySummary> = self
            .classes
            .iter()
            .filter(|c| c.class == class)
            .map(|c| &c.lat)
            .collect();
        if cells.is_empty() {
            return None;
        }
        let count: u64 = cells.iter().map(|c| c.count).sum();
        Some(LatencySummary {
            count,
            mean_ns: cells
                .iter()
                .map(|c| c.mean_ns * c.count as f64)
                .sum::<f64>()
                / count.max(1) as f64,
            p0: cells.iter().map(|c| c.p0).min().unwrap_or(0),
            p50: cells.iter().map(|c| c.p50).max().unwrap_or(0),
            p90: cells.iter().map(|c| c.p90).max().unwrap_or(0),
            p99: cells.iter().map(|c| c.p99).max().unwrap_or(0),
            p999: cells.iter().map(|c| c.p999).max().unwrap_or(0),
            p100: cells.iter().map(|c| c.p100).max().unwrap_or(0),
        })
    }

    /// Surviving trace events of `kind`.
    pub fn trace_count(&self, kind: EventKind) -> u64 {
        self.trace.by_kind[kind.code() as usize]
    }

    /// Serializes the full report as a JSON object (no external deps —
    /// the schema is documented in DESIGN.md "Observability").
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str(&format!(
            "{{\"node\":{},\"sample_rate\":{},\"kernel\":{{",
            self.node, self.sample_rate
        ));
        let k = &self.kernel;
        s.push_str(&format!(
            "\"rpc_dispatched\":{},\"lt_writes\":{},\"lt_reads\":{},\"lt_bytes\":{},\"qps\":{},\"retries\":{},\"qp_reconnects\":{},\"peers_marked_dead\":{},\"ops_failed\":{},\"cleanup_failures\":{},\"lock_unwinds\":{},\"sync_leaks\":{},\"txn_commits\":{},\"txn_aborts\":{},\"txn_validation_fails\":{},\"kv_puts\":{},\"kv_gets\":{},\"kv_replication_lag\":{},\"boot_ns\":{},\"mesh_ns\":{},\"lazy_connects\":{}}}",
            k.rpc_dispatched, k.lt_writes, k.lt_reads, k.lt_bytes, k.qps, k.retries,
            k.qp_reconnects, k.peers_marked_dead, k.ops_failed, k.cleanup_failures,
            k.lock_unwinds, k.sync_leaks, k.txn_commits, k.txn_aborts,
            k.txn_validation_fails, k.kv_puts, k.kv_gets, k.kv_replication_lag,
            k.boot_ns, k.mesh_ns, k.lazy_connects
        ));
        s.push_str(",\"classes\":{");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let prio = if c.prio == Priority::High {
                "high"
            } else {
                "low"
            };
            s.push_str(&format!("\"{}.{}\":{}", c.class.name(), prio, c.lat.json()));
        }
        s.push_str("},\"peers\":[");
        for (i, p) in self.peers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"peer\":{},\"ops\":{},\"bytes\":{},\"failures\":{},\"retries\":{},\"alive\":{},\"last_completion\":{},\"lat\":{}}}",
                p.peer, p.ops, p.bytes, p.failures, p.retries, p.alive, p.last_completion,
                p.lat.json()
            ));
        }
        s.push_str("],\"trace\":{");
        s.push_str(&format!(
            "\"capacity\":{},\"recorded\":{},\"occupancy\":{}",
            self.trace.capacity, self.trace.recorded, self.trace.occupancy
        ));
        for (i, kind) in EVENT_KINDS.iter().enumerate() {
            s.push_str(&format!(",\"{}\":{}", kind.name(), self.trace.by_kind[i]));
        }
        s.push_str("},\"qos\":{");
        let mode = match self.qos.mode {
            QosMode::None => "none",
            QosMode::HwSep => "hw-sep",
            QosMode::SwPri => "sw-pri",
        };
        s.push_str(&format!(
            "\"mode\":\"{}\",\"rtt_ewma_ns\":{}}}",
            mode, self.qos.rtt_ewma_ns
        ));
        s.push_str(&format!(",\"mm\":{}", self.mm.json()));
        s.push('}');
        s
    }
}

/// Builds the per-class / per-peer sections of a report from live state.
pub(crate) fn build_report(
    node: NodeId,
    kernel: crate::KernelStats,
    obs: &Observability,
    peer_alive: impl Fn(NodeId) -> bool,
    qos: QosReport,
    mm: crate::mm::MmReport,
) -> StatsReport {
    let mut classes = Vec::new();
    for &class in &OP_CLASSES {
        for prio in [Priority::High, Priority::Low] {
            let lat = LatencySummary::of(obs.class_hist(class, prio));
            if lat.count > 0 {
                classes.push(ClassStats { class, prio, lat });
            }
        }
    }
    let mut peers = Vec::new();
    for peer in 0..obs.peers.len() {
        let Some(p) = obs.peer_stats(peer) else {
            continue;
        };
        let ops = p.ops.load(Ordering::Relaxed);
        let retries = p.retries.load(Ordering::Relaxed);
        let failures = p.failures.load(Ordering::Relaxed);
        if ops == 0 && retries == 0 && failures == 0 {
            continue; // never talked to this peer (or ourselves)
        }
        peers.push(PeerReport {
            peer,
            ops,
            bytes: p.bytes.load(Ordering::Relaxed),
            failures,
            retries,
            alive: peer_alive(peer),
            last_completion: p.last_completion.load(Ordering::Relaxed),
            lat: LatencySummary::of(&p.lat),
        });
    }
    let events = obs.ring.snapshot();
    let mut by_kind = [0u64; 6];
    for e in &events {
        by_kind[e.kind.code() as usize] += 1;
    }
    StatsReport {
        node,
        kernel,
        classes,
        peers,
        trace: TraceStats {
            capacity: obs.ring.capacity(),
            recorded: obs.ring.recorded(),
            occupancy: events.len(),
            by_kind,
        },
        qos,
        mm,
        sample_rate: obs.sample_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_histogram_matches_serial() {
        let ch = ConcurrentHistogram::new();
        let mut serial = Histogram::new();
        for v in 1..=5_000u64 {
            ch.record(v);
            serial.record(v);
        }
        let snap = ch.snapshot();
        assert_eq!(snap.count(), serial.count());
        assert_eq!(snap.percentile(0.0), serial.percentile(0.0));
        assert_eq!(snap.percentile(100.0), serial.percentile(100.0));
        for p in [25.0, 50.0, 90.0, 99.0] {
            assert_eq!(snap.percentile(p), serial.percentile(p), "p={p}");
        }
        assert!((ch.mean() - 2500.5).abs() < 1.0);
    }

    #[test]
    fn trace_ring_orders_and_evicts() {
        let ring = TraceRing::new(64);
        assert_eq!(ring.capacity(), 64);
        for i in 0..100u64 {
            ring.record(TraceEvent {
                op_id: i,
                class: OpClass::Write,
                kind: if i % 2 == 0 {
                    EventKind::Posted
                } else {
                    EventKind::Completed
                },
                prio: Priority::High,
                peer: 1,
                stamp: i * 10,
            });
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 64);
        assert_eq!(snap.first().map(|e| e.op_id), Some(36));
        assert_eq!(snap.last().map(|e| e.op_id), Some(99));
        assert!(snap.windows(2).all(|w| w[0].op_id < w[1].op_id));
        assert_eq!(ring.recorded(), 100);
        assert_eq!(
            ring.count_kind(EventKind::Posted) + ring.count_kind(EventKind::Completed),
            64
        );
    }

    #[test]
    fn event_word_roundtrip() {
        for &class in &OP_CLASSES {
            for &kind in &EVENT_KINDS {
                for prio in [Priority::High, Priority::Low] {
                    let w = pack_word(class, kind, prio, 7);
                    assert_eq!(unpack_word(w), (class, kind, prio, 7));
                }
            }
        }
    }

    #[test]
    fn observability_records_and_reports() {
        let obs = Observability::new(3, 1, 256);
        for i in 0..50u64 {
            let id = obs.next_op_id();
            obs.trace(id, OpClass::Read, EventKind::Posted, Priority::High, 2, i);
            obs.record_completion(OpClass::Read, Priority::High, 2, 64, 1_000 + i, i + 5, true);
            obs.trace(
                id,
                OpClass::Read,
                EventKind::Completed,
                Priority::High,
                2,
                i + 5,
            );
        }
        obs.record_failure(2);
        let report = build_report(
            0,
            crate::KernelStats::default(),
            &obs,
            |_| true,
            QosReport {
                mode: QosMode::None,
                rtt_ewma_ns: 0,
            },
            crate::mm::MmReport::default(),
        );
        let lat = report.class(OpClass::Read, Priority::High).unwrap();
        assert_eq!(lat.count, 50);
        assert_eq!(lat.p0, 1_000);
        assert_eq!(lat.p100, 1_049);
        assert_eq!(report.peers.len(), 1);
        assert_eq!(report.peers[0].peer, 2);
        assert_eq!(report.peers[0].ops, 50);
        assert_eq!(report.peers[0].bytes, 3_200);
        assert_eq!(report.peers[0].failures, 1);
        assert_eq!(report.trace_count(EventKind::Posted), 50);
        assert_eq!(report.trace_count(EventKind::Completed), 50);
        assert!(lat.p999 >= lat.p99 && lat.p999 <= lat.p100);
        let json = report.to_json();
        assert!(json.contains("\"read.high\""));
        assert!(json.contains("\"p50\""));
        assert!(json.contains("\"p999\""));
        assert!(json.contains("\"kv_puts\""));
        assert!(json.contains("\"peer\":2"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn sampling_rate_thins_recording() {
        let obs = Observability::new(1, 4, 64);
        let mut sampled = 0;
        for _ in 0..100 {
            if obs.sample() {
                sampled += 1;
            }
        }
        assert_eq!(sampled, 25);
        let every = Observability::new(1, 1, 64);
        assert!((0..10).all(|_| every.sample()));
    }
}
