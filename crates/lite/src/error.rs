//! LITE-level errors.

use std::fmt;

use rnic::VerbsError;
use smem::MemError;

/// Result alias for LITE operations.
pub type LiteResult<T> = Result<T, LiteError>;

/// Errors surfaced by the LITE API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiteError {
    /// The lh is not valid for this process (never mapped, unmapped, or
    /// invalidated by a free).
    BadLh {
        /// The invalid handle (0 when unknown at the failure site).
        lh: u64,
    },
    /// Access past the end of the LMR.
    OutOfBounds {
        /// Offset of the access within the LMR.
        offset: u64,
        /// Access length in bytes.
        len: usize,
    },
    /// An 8-byte atomic (fetch-add / test-and-set) target spans two
    /// chunks of a multi-chunk LMR; atomics must land entirely inside
    /// one chunk so the RNIC can apply them in a single operation.
    StraddlesChunk {
        /// Offset of the atomic word within the LMR.
        offset: u64,
        /// Width of the atomic access in bytes (always 8 today).
        len: usize,
    },
    /// The lh's permission does not allow this operation.
    PermissionDenied,
    /// The caller is not a master of the LMR.
    NotMaster,
    /// No LMR with this name is registered.
    NameNotFound {
        /// The name looked up.
        name: String,
    },
    /// The name is already taken.
    NameExists {
        /// The conflicting name.
        name: String,
    },
    /// RPC did not complete within the liveness bound.
    Timeout,
    /// The RPC ring to the target is full and did not drain in time.
    RingFull,
    /// No handler thread is bound to the RPC function id.
    UnknownRpc {
        /// The unbound function id.
        func: u8,
    },
    /// RPC input/reply larger than the supported maximum.
    TooLarge {
        /// Payload length.
        len: usize,
        /// The configured maximum.
        max: usize,
    },
    /// Kernel-internal function ids (< 16) are reserved.
    ReservedFunc {
        /// The rejected function id.
        func: u8,
    },
    /// The target node is down or unreachable.
    NodeDown {
        /// The unreachable node.
        node: usize,
    },
    /// The liveness monitor declared the target node dead after repeated
    /// exhausted deadlines; operations fail fast until traffic from the
    /// peer (or a successful probe) revives it.
    PeerDead {
        /// The dead node.
        node: usize,
    },
    /// Underlying verbs failure.
    Verbs(VerbsError),
    /// Underlying memory failure.
    Mem(MemError),
    /// A remote handler reported a failure (encoded status byte).
    Remote(u8),
    /// The chunk backing this access was evicted or migrated mid-flight;
    /// the cached lh location is out of date. The API layer refreshes
    /// the mapping from the master and retries transparently — user code
    /// only sees this if a refresh itself keeps landing on moving chunks.
    Relocated,
    /// A kernel invariant was violated (formerly a panic site); the
    /// message names the broken invariant. Returned instead of unwinding
    /// so a wedged node degrades to failed ops rather than a crashed
    /// poller mid-recovery.
    Internal(&'static str),
}

impl fmt::Display for LiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiteError::BadLh { lh } => write!(f, "invalid lh {lh:#x}"),
            LiteError::OutOfBounds { offset, len } => {
                write!(f, "access out of LMR bounds: offset {offset}+{len}")
            }
            LiteError::StraddlesChunk { offset, len } => {
                write!(
                    f,
                    "atomic at offset {offset} (len {len}) straddles a chunk boundary"
                )
            }
            LiteError::PermissionDenied => write!(f, "permission denied"),
            LiteError::NotMaster => write!(f, "caller is not a master of the LMR"),
            LiteError::NameNotFound { name } => write!(f, "no LMR named {name:?}"),
            LiteError::NameExists { name } => write!(f, "LMR name {name:?} already exists"),
            LiteError::Timeout => write!(f, "operation timed out"),
            LiteError::RingFull => write!(f, "RPC ring full"),
            LiteError::UnknownRpc { func } => write!(f, "no such RPC function {func}"),
            LiteError::TooLarge { len, max } => write!(f, "payload {len} exceeds max {max}"),
            LiteError::ReservedFunc { func } => write!(f, "function id {func} is reserved"),
            LiteError::NodeDown { node } => write!(f, "node {node} is down"),
            LiteError::PeerDead { node } => write!(f, "node {node} is presumed dead"),
            LiteError::Verbs(e) => write!(f, "verbs: {e}"),
            LiteError::Mem(e) => write!(f, "memory: {e}"),
            LiteError::Remote(code) => write!(f, "remote handler failed with status {code}"),
            LiteError::Relocated => write!(f, "chunk relocated mid-operation"),
            LiteError::Internal(what) => write!(f, "kernel invariant violated: {what}"),
        }
    }
}

impl std::error::Error for LiteError {}

impl From<VerbsError> for LiteError {
    fn from(e: VerbsError) -> Self {
        match e {
            VerbsError::Timeout => LiteError::Timeout,
            other => LiteError::Verbs(other),
        }
    }
}

impl From<MemError> for LiteError {
    fn from(e: MemError) -> Self {
        LiteError::Mem(e)
    }
}
