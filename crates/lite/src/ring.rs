//! RPC ring buffers (§5.1).
//!
//! For each (client node → server node) direction LITE keeps one internal
//! ring LMR at the *server*. The client writes requests at its cached tail
//! with RDMA write-imm; the server consumes them and returns head updates
//! so the client can reuse space. The client manages the tail, the server
//! manages the head — exactly the split the paper describes.
//!
//! Because several client threads share the ring and several server
//! threads consume out of order, the server tracks freed spans in a small
//! map and advances the head over the contiguous freed prefix.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use simnet::Nanos;
use smem::PhysAddr;

use crate::error::{LiteError, LiteResult};
use crate::wire::round_granule;

/// Client-side view of a ring that lives at a server node.
pub struct ClientRing {
    /// Physical base of the ring at the server (global-MR address).
    pub remote_base: PhysAddr,
    /// Ring size in bytes.
    pub size: u64,
    inner: Mutex<ClientInner>,
}

struct ClientInner {
    /// Next free byte (monotonic, wrapped by `% size` at use).
    tail: u64,
    /// Last head value received from the server (monotonic).
    head: u64,
    /// Virtual stamp of the last head update.
    head_stamp: Nanos,
}

/// A reserved span of ring space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Byte offset within the ring where the message starts.
    pub offset: u64,
    /// Rounded length reserved.
    pub len: u64,
    /// Monotonic position (for debugging).
    pub pos: u64,
    /// Bytes skipped at the wrap point just before this message. Carried
    /// in the message header so the server can reclaim the skipped span.
    pub skip: u64,
}

impl ClientRing {
    /// Creates a client view of a `size`-byte ring at `remote_base`.
    ///
    /// `size` must be a non-zero power of two (the wrap logic relies on
    /// it); a bad size is reported as an error instead of panicking the
    /// poller thread that builds rings during cluster bring-up.
    pub fn new(remote_base: PhysAddr, size: u64) -> LiteResult<Self> {
        if size == 0 || !size.is_power_of_two() {
            return Err(LiteError::Internal("ring size must be a power of two"));
        }
        Ok(ClientRing {
            remote_base,
            size,
            inner: Mutex::new(ClientInner {
                tail: 0,
                head: 0,
                head_stamp: 0,
            }),
        })
    }

    /// Tries to reserve `len` payload bytes (rounded to the granule). The
    /// reservation never straddles the wrap point: if the message does not
    /// fit before the end, the remainder of the ring is skipped (the
    /// skipped span is reclaimed when the head passes it, because monotonic
    /// positions keep accounting exact).
    pub fn try_reserve(&self, len: u64) -> LiteResult<Reservation> {
        let want = round_granule(len);
        if want > self.size / 2 {
            return Err(LiteError::TooLarge {
                len: len as usize,
                max: (self.size / 2) as usize,
            });
        }
        let mut inner = self.inner.lock();
        let mut start = inner.tail;
        let in_ring = start % self.size;
        let mut skip = 0;
        if in_ring + want > self.size {
            // Skip the tail fragment; message starts at the wrap.
            skip = self.size - in_ring;
            start += skip;
        }
        let need_through = start + want;
        if need_through - inner.head > self.size {
            return Err(LiteError::RingFull);
        }
        inner.tail = need_through;
        Ok(Reservation {
            offset: start % self.size,
            len: want,
            pos: start,
            skip,
        })
    }

    /// Applies a head update from the server. Head values are granule
    /// counts of the *monotonic* head position.
    pub fn update_head(&self, head_pos: u64, stamp: Nanos) {
        let mut inner = self.inner.lock();
        if head_pos > inner.head {
            inner.head = head_pos;
        }
        if stamp > inner.head_stamp {
            inner.head_stamp = stamp;
        }
    }

    /// Current (head, stamp) for space-wait loops.
    pub fn head(&self) -> (u64, Nanos) {
        let inner = self.inner.lock();
        (inner.head, inner.head_stamp)
    }

    /// Bytes currently reserved and not yet freed.
    pub fn in_flight(&self) -> u64 {
        let inner = self.inner.lock();
        inner.tail - inner.head
    }
}

/// Server-side state of one client's ring.
pub struct ServerRing {
    /// Physical base of the ring on this node.
    pub base: PhysAddr,
    /// Ring size in bytes.
    pub size: u64,
    inner: Mutex<ServerInner>,
}

struct ServerInner {
    /// Monotonic head: everything below is free.
    head: u64,
    /// Out-of-order freed spans: start -> len (monotonic positions).
    freed: BTreeMap<u64, u64>,
}

impl ServerRing {
    /// Creates the server-side state for a ring at `base`.
    ///
    /// Like [`ClientRing::new`], rejects sizes that are not a non-zero
    /// power of two rather than panicking.
    pub fn new(base: PhysAddr, size: u64) -> LiteResult<Self> {
        if size == 0 || !size.is_power_of_two() {
            return Err(LiteError::Internal("ring size must be a power of two"));
        }
        Ok(ServerRing {
            base,
            size,
            inner: Mutex::new(ServerInner {
                head: 0,
                freed: BTreeMap::new(),
            }),
        })
    }

    /// Converts a ring byte-offset (from an IMM) plus the current head
    /// epoch into the monotonic position. Offsets are unambiguous because
    /// at most `size` bytes are in flight.
    fn monotonic(&self, head: u64, offset: u64) -> u64 {
        let head_off = head % self.size;
        let epoch_base = head - head_off;
        if offset >= head_off {
            epoch_base + offset
        } else {
            epoch_base + self.size + offset
        }
    }

    /// Marks `[offset, offset+len)` (ring coordinates) consumed, plus the
    /// `skip` bytes the client discarded at the wrap just before this
    /// message (from the header). Returns `Some(new_head_pos)` when the
    /// contiguous freed prefix advanced and a head update should be sent
    /// to the client.
    pub fn consume(&self, offset: u64, len: u64, skip: u64) -> Option<u64> {
        let len = round_granule(len);
        let mut inner = self.inner.lock();
        let pos = self.monotonic(inner.head, offset);
        if skip > 0 {
            // A corrupt header could claim a skip larger than the message
            // position; clamp instead of underflowing (the excess span is
            // simply not reclaimed, which at worst wastes ring space).
            let skip = skip.min(pos);
            if skip > 0 {
                inner.freed.insert(pos - skip, skip);
            }
        }
        inner.freed.insert(pos, len);
        // Advance the head over the contiguous prefix.
        let mut advanced = false;
        while let Some((&start, &flen)) = inner.freed.first_key_value() {
            if start <= inner.head {
                inner.freed.remove(&start);
                let end = start + flen;
                if end > inner.head {
                    inner.head = end;
                }
                advanced = true;
            } else {
                break;
            }
        }
        if advanced {
            Some(inner.head)
        } else {
            None
        }
    }

    /// Current monotonic head.
    pub fn head(&self) -> u64 {
        self.inner.lock().head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_free_in_order() {
        let cr = ClientRing::new(0x1000, 1024).unwrap();
        let sr = ServerRing::new(0x1000, 1024).unwrap();
        let r1 = cr.try_reserve(100).unwrap();
        let r2 = cr.try_reserve(100).unwrap();
        assert_eq!(r1.offset, 0);
        assert_eq!(r2.offset, 128);
        let h1 = sr.consume(r1.offset, 100, 0).unwrap();
        assert_eq!(h1, 128);
        let h2 = sr.consume(r2.offset, 100, 0).unwrap();
        assert_eq!(h2, 256);
        cr.update_head(h2, 10);
        assert_eq!(cr.head(), (256, 10));
        assert_eq!(cr.in_flight(), 0);
    }

    #[test]
    fn out_of_order_free_waits_for_prefix() {
        let cr = ClientRing::new(0, 1024).unwrap();
        let sr = ServerRing::new(0, 1024).unwrap();
        let r1 = cr.try_reserve(64).unwrap();
        let r2 = cr.try_reserve(64).unwrap();
        // Consuming the second first does not advance the head.
        assert_eq!(sr.consume(r2.offset, 64, 0), None);
        // Consuming the first advances over both.
        assert_eq!(sr.consume(r1.offset, 64, 0), Some(128));
    }

    #[test]
    fn ring_fills_and_reopens() {
        let cr = ClientRing::new(0, 1024).unwrap();
        let sr = ServerRing::new(0, 1024).unwrap();
        let mut rs = Vec::new();
        for _ in 0..8 {
            rs.push(cr.try_reserve(128).unwrap());
        }
        assert!(matches!(cr.try_reserve(64), Err(LiteError::RingFull)));
        let mut head = 0;
        for r in &rs[..2] {
            if let Some(h) = sr.consume(r.offset, 128, r.skip) {
                head = h;
            }
        }
        cr.update_head(head, 1);
        assert!(cr.try_reserve(128).is_ok());
    }

    #[test]
    fn wrap_skips_tail_fragment() {
        let cr = ClientRing::new(0, 1024).unwrap();
        let sr = ServerRing::new(0, 1024).unwrap();
        // Fill 960 bytes (two reservations), free them, so tail is at 960
        // with head 960.
        let r1a = cr.try_reserve(512).unwrap();
        let r1b = cr.try_reserve(448).unwrap();
        sr.consume(r1a.offset, 512, 0).unwrap();
        let h = sr.consume(r1b.offset, 448, 0).unwrap();
        cr.update_head(h, 1);
        // A 128-byte message cannot straddle the wrap: starts at 0.
        let r2 = cr.try_reserve(128).unwrap();
        assert_eq!(r2.offset, 0);
        assert_eq!(r2.pos, 1024);
        // Server consumes it; head passes the skipped fragment too.
        let h2 = sr.consume(r2.offset, 128, r2.skip).unwrap();
        assert_eq!(h2, 1024 + 128);
        cr.update_head(h2, 2);
        assert_eq!(cr.in_flight(), 0);
    }

    #[test]
    fn oversized_reservation_rejected() {
        let cr = ClientRing::new(0, 1024).unwrap();
        assert!(matches!(
            cr.try_reserve(600),
            Err(LiteError::TooLarge { .. })
        ));
    }

    #[test]
    fn many_wraps_stay_consistent() {
        let cr = ClientRing::new(0, 1024).unwrap();
        let sr = ServerRing::new(0, 1024).unwrap();
        for i in 0..200 {
            let len = 64 + (i % 5) * 64;
            let r = cr.try_reserve(len).unwrap();
            let h = sr.consume(r.offset, len, r.skip);
            if let Some(h) = h {
                cr.update_head(h, i);
            }
            assert!(cr.in_flight() <= 1024);
        }
        assert_eq!(cr.in_flight(), 0, "all space reclaimed");
    }
}
