//! Resource isolation and QoS (§6.2).
//!
//! Two schemes, both selectable at runtime:
//!
//! * **HW-Sep** — hardware partitioning: the K shared QPs towards each
//!   peer are split between priorities (3:1 at K=4), which divides the
//!   NIC's bandwidth in the same proportion. Low-priority work cannot use
//!   the high-priority share *even when it is idle* — the rigidity the
//!   paper demonstrates.
//! * **SW-Pri** — sender-side software control with the paper's three
//!   policies: (1) rate-limit low priority when high-priority load is
//!   high, (2) don't when high-priority traffic is absent/light, and
//!   (3) rate-limit low priority when high-priority RTT inflates.

use std::sync::atomic::{AtomicU64, Ordering};

use simnet::{Ctx, Nanos, Resource, TokenBucket, MILLIS};

/// Request priority carried by every LITE operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency/bandwidth-sensitive foreground work.
    #[default]
    High,
    /// Background work, throttled under contention.
    Low,
}

/// Which QoS scheme is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QosMode {
    /// No isolation: everyone shares everything (the "No QoS" lines).
    #[default]
    None,
    /// Per-priority hardware partitions.
    HwSep,
    /// Software priority-based flow control.
    SwPri,
}

/// QoS tunables.
#[derive(Debug, Clone)]
pub struct QosConfig {
    /// Fraction of resources HW-Sep reserves for high priority.
    pub hw_high_share: f64,
    /// SW-Pri: rate allowed to low priority while throttled, as a
    /// fraction of link bandwidth.
    pub sw_low_frac: f64,
    /// SW-Pri: high-priority load (fraction of link bandwidth over the
    /// monitoring window) above which policy 1 throttles low priority.
    pub sw_high_load_frac: f64,
    /// SW-Pri: high-priority RTT EWMA above this throttles low priority
    /// (policy 3).
    pub sw_rtt_threshold_ns: Nanos,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            hw_high_share: 0.75,
            sw_low_frac: 0.12,
            sw_high_load_frac: 0.08,
            sw_rtt_threshold_ns: 4_500,
        }
    }
}

/// Monitoring window: byte counters in 1 ms virtual-time buckets.
const BUCKETS: usize = 32;
const BUCKET_WIDTH: Nanos = MILLIS;
/// Buckets summed when estimating current high-priority load.
const WINDOW: u64 = 8;

struct LoadMonitor {
    /// Per-bucket epoch tags; a slot is valid only for its current epoch.
    epochs: Vec<AtomicU64>,
    bytes: Vec<AtomicU64>,
    ops: Vec<AtomicU64>,
}

impl LoadMonitor {
    fn new() -> Self {
        LoadMonitor {
            epochs: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            bytes: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            ops: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, at: Nanos, bytes: u64) {
        let epoch = at / BUCKET_WIDTH;
        let slot = (epoch as usize) % BUCKETS;
        // Best-effort reset on epoch change; a lost update only blurs the
        // estimate by one bucket.
        if self.epochs[slot].swap(epoch, Ordering::Relaxed) != epoch {
            self.bytes[slot].store(0, Ordering::Relaxed);
            self.ops[slot].store(0, Ordering::Relaxed);
        }
        self.bytes[slot].fetch_add(bytes, Ordering::Relaxed);
        self.ops[slot].fetch_add(1, Ordering::Relaxed);
    }

    fn window_sums(&self, at: Nanos) -> (u64, u64) {
        let cur = at / BUCKET_WIDTH;
        let lo = cur.saturating_sub(WINDOW);
        let (mut b, mut o) = (0u64, 0u64);
        for slot in 0..BUCKETS {
            let e = self.epochs[slot].load(Ordering::Relaxed);
            if e > lo && e <= cur {
                b += self.bytes[slot].load(Ordering::Relaxed);
                o += self.ops[slot].load(Ordering::Relaxed);
            }
        }
        (b, o)
    }

    /// Bytes/second of recorded traffic over the last `WINDOW` buckets
    /// before `at`.
    fn rate(&self, at: Nanos) -> f64 {
        self.window_sums(at).0 as f64 * 1e9 / (WINDOW * BUCKET_WIDTH) as f64
    }

    /// Ops/second over the window.
    fn op_rate(&self, at: Nanos) -> f64 {
        self.window_sums(at).1 as f64 * 1e9 / (WINDOW * BUCKET_WIDTH) as f64
    }
}

/// Per-node QoS state.
pub struct QosState {
    mode: AtomicU64, // QosMode encoded
    cfg: QosConfig,
    link_bytes_per_sec: u64,
    /// HW-Sep pipes: bandwidth shares as FCFS servers with scaled service.
    high_pipe: Resource,
    low_pipe: Resource,
    /// SW-Pri limiter for low priority.
    low_bucket: TokenBucket,
    /// High-priority load monitor (policies 1 and 2).
    monitor: LoadMonitor,
    /// High-priority RTT EWMA in ns (policy 3).
    rtt_ewma: AtomicU64,
}

impl QosState {
    /// Creates QoS state for a node whose link runs at
    /// `link_bytes_per_sec`.
    pub fn new(cfg: QosConfig, link_bytes_per_sec: u64) -> Self {
        let low_rate = (link_bytes_per_sec as f64 * cfg.sw_low_frac) as u64;
        QosState {
            mode: AtomicU64::new(0),
            cfg,
            link_bytes_per_sec,
            high_pipe: Resource::with_slack("qos-high-pipe", 60_000),
            low_pipe: Resource::with_slack("qos-low-pipe", 60_000),
            low_bucket: TokenBucket::new(low_rate, 256 * 1024),
            monitor: LoadMonitor::new(),
            rtt_ewma: AtomicU64::new(0),
        }
    }

    /// Active mode.
    pub fn mode(&self) -> QosMode {
        match self.mode.load(Ordering::Relaxed) {
            1 => QosMode::HwSep,
            2 => QosMode::SwPri,
            _ => QosMode::None,
        }
    }

    /// Switches mode.
    pub fn set_mode(&self, mode: QosMode) {
        let v = match mode {
            QosMode::None => 0,
            QosMode::HwSep => 1,
            QosMode::SwPri => 2,
        };
        self.mode.store(v, Ordering::Relaxed);
        self.low_bucket.reset();
    }

    /// Splits K QPs between priorities under HW-Sep: returns
    /// `(high_range, low_range)` as index bounds `0..hi` and `hi..k`.
    pub fn hw_partition(&self, k: usize) -> (usize, usize) {
        if k <= 1 {
            return (k, k);
        }
        let hi = ((k as f64 * self.cfg.hw_high_share).round() as usize).clamp(1, k - 1);
        (hi, k)
    }

    /// Applies QoS policy before an operation of `bytes` at priority
    /// `prio`; delays the caller's clock as required.
    pub fn before_op(&self, ctx: &mut Ctx, prio: Priority, bytes: u64) {
        match self.mode() {
            QosMode::None => {}
            QosMode::HwSep => {
                // Service scaled by the inverse share: a class holding
                // share s of the link drains bytes at s * link rate.
                let (pipe, share) = match prio {
                    Priority::High => (&self.high_pipe, self.cfg.hw_high_share),
                    Priority::Low => (&self.low_pipe, 1.0 - self.cfg.hw_high_share),
                };
                let eff = (self.link_bytes_per_sec as f64 * share).max(1.0) as u64;
                let service = simnet::transfer_time(bytes, eff);
                let g = pipe.acquire(ctx.now(), service);
                ctx.wait_until(g.finish);
            }
            QosMode::SwPri => {
                // Policy 2: no/light high-priority traffic => no limit.
                if prio == Priority::Low && self.low_should_throttle(ctx.now()) {
                    let at = self.low_bucket.reserve(ctx.now(), bytes);
                    ctx.wait_until(at);
                }
            }
        }
    }

    fn low_should_throttle(&self, now: Nanos) -> bool {
        // Policy 2 overrides: with no (or negligible) high-priority
        // *activity* there is no one to protect — never throttle, even if
        // a stale RTT estimate lingers from the last burst. Activity is
        // measured in operations, not bytes: a latency-sensitive app
        // issuing small ops still deserves protection.
        if self.monitor.op_rate(now) < 1_000.0 {
            return false;
        }
        let high_rate = self.monitor.rate(now);
        // Policy 1: high load from high-priority jobs.
        if high_rate > self.cfg.sw_high_load_frac * self.link_bytes_per_sec as f64 {
            return true;
        }
        // Policy 3: high-priority RTT inflation.
        self.rtt_ewma.load(Ordering::Relaxed) > self.cfg.sw_rtt_threshold_ns
    }

    /// Current high-priority RTT estimate (diagnostics, tests).
    pub fn rtt_estimate(&self) -> Nanos {
        self.rtt_ewma.load(Ordering::Relaxed)
    }

    /// Records a completed high-priority op (feeds policies 1 and 3).
    pub fn after_high_op(&self, finish: Nanos, bytes: u64, latency: Nanos) {
        self.monitor.record(finish, bytes);
        // EWMA with alpha = 1/8.
        let old = self.rtt_ewma.load(Ordering::Relaxed);
        let new = old - old / 8 + latency / 8;
        self.rtt_ewma.store(new, Ordering::Relaxed);
    }

    /// Resets queueing/monitoring state between experiments.
    pub fn reset(&self) {
        self.high_pipe.reset();
        self.low_pipe.reset();
        self.low_bucket.reset();
        self.rtt_ewma.store(0, Ordering::Relaxed);
        for b in &self.monitor.bytes {
            b.store(0, Ordering::Relaxed);
        }
        for e in &self.monitor.epochs {
            e.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SECONDS;

    fn state() -> QosState {
        QosState::new(QosConfig::default(), 4_000_000_000)
    }

    #[test]
    fn none_mode_is_free() {
        let q = state();
        let mut ctx = Ctx::new();
        q.before_op(&mut ctx, Priority::Low, 1 << 20);
        assert_eq!(ctx.now(), 0);
    }

    #[test]
    fn hw_partition_shares() {
        let q = state();
        assert_eq!(q.hw_partition(4), (3, 4));
        assert_eq!(q.hw_partition(2), (1, 2));
        assert_eq!(q.hw_partition(1), (1, 1));
    }

    #[test]
    fn hw_sep_caps_low_even_when_idle() {
        let q = state();
        q.set_mode(QosMode::HwSep);
        let mut ctx = Ctx::new();
        // Push 100 MB of low-priority traffic with no high traffic at all:
        // the low pipe still caps it at 25% of the link (= 1 GB/s).
        let total = 100u64 << 20;
        for _ in 0..100 {
            q.before_op(&mut ctx, Priority::Low, total / 100);
        }
        let rate = total as f64 * 1e9 / ctx.now() as f64;
        assert!(
            rate < 1.1e9,
            "low-priority rate {rate:.2e} should be capped at ~1 GB/s"
        );
    }

    #[test]
    fn sw_pri_throttles_only_under_high_load() {
        let q = state();
        q.set_mode(QosMode::SwPri);
        let mut ctx = Ctx::new();
        ctx.wait_until(10 * MILLIS);
        // No high traffic: low is unlimited (policy 2).
        let t0 = ctx.now();
        q.before_op(&mut ctx, Priority::Low, 10 << 20);
        assert_eq!(ctx.now(), t0, "no throttle without high load");

        // Inject heavy high-priority load into the monitor near now
        // (enough ops to clear the policy-2 activity floor).
        for i in 0..64 {
            q.after_high_op(ctx.now() + (i % 8) * MILLIS, 1 << 20, 3_000);
        }
        let mut later = Ctx::new();
        later.wait_until(ctx.now() + 4 * MILLIS);
        let t1 = later.now();
        q.before_op(&mut later, Priority::Low, 32 << 20);
        assert!(later.now() > t1, "policy 1 throttles low priority");
    }

    #[test]
    fn sw_pri_rtt_policy_throttles() {
        let q = state();
        q.set_mode(QosMode::SwPri);
        let mut ctx = Ctx::new();
        ctx.wait_until(SECONDS);
        // Report inflated high-priority RTTs (policy 3) with *some* high
        // traffic — above the policy-2 floor (1% of link over the 8 ms
        // window = ~320 KB) but below the policy-1 load threshold.
        for i in 0..64 {
            q.after_high_op(ctx.now() - i * 1_000, 16 * 1024, 100_000);
        }
        let t0 = ctx.now();
        q.before_op(&mut ctx, Priority::Low, 64 << 20);
        assert!(ctx.now() > t0, "RTT inflation throttles low priority");

        // Policy 2 override: with high traffic gone (stale monitor), the
        // lingering RTT estimate must not keep throttling.
        let mut later = Ctx::new();
        later.wait_until(10 * SECONDS);
        let t1 = later.now();
        q.before_op(&mut later, Priority::Low, 64 << 20);
        assert_eq!(later.now(), t1, "no high traffic => no throttle");
    }

    #[test]
    fn mode_switching() {
        let q = state();
        assert_eq!(q.mode(), QosMode::None);
        q.set_mode(QosMode::SwPri);
        assert_eq!(q.mode(), QosMode::SwPri);
        q.set_mode(QosMode::HwSep);
        assert_eq!(q.mode(), QosMode::HwSep);
        q.set_mode(QosMode::None);
        assert_eq!(q.mode(), QosMode::None);
    }
}
