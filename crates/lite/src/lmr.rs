//! LITE Memory Regions (LMRs), handles (lh), permissions, and masters.
//!
//! §4.1: an LMR is a virtualized memory region of arbitrary size that can
//! map to one or more physical ranges, possibly on several machines. Users
//! only ever see an opaque *LITE handle* (`lh`), a capability carrying
//! permission and address mapping, local to one process on one node.

use std::collections::HashMap;

use rnic::NodeId;
use smem::Chunk;

use crate::error::{LiteError, LiteResult};

/// Cluster-unique LMR identity: (master node, local index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LmrId {
    /// Node that created the LMR (its first master).
    pub node: u32,
    /// Index within that node's master table.
    pub idx: u32,
}

/// Permission carried by an lh (§4.1: read, write, master).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perm {
    /// May LT_read.
    pub read: bool,
    /// May LT_write (and memset/memcpy into it).
    pub write: bool,
    /// May manage: move, free, grant.
    pub master: bool,
}

impl Perm {
    /// Read-only permission.
    pub const RO: Perm = Perm {
        read: true,
        write: false,
        master: false,
    };
    /// Read-write permission.
    pub const RW: Perm = Perm {
        read: true,
        write: true,
        master: false,
    };
    /// Full master permission.
    pub const MASTER: Perm = Perm {
        read: true,
        write: true,
        master: true,
    };

    /// Whether `self` covers everything `need` asks for.
    pub fn covers(&self, need: Perm) -> bool {
        (!need.read || self.read) && (!need.write || self.write) && (!need.master || self.master)
    }
}

/// Where an LMR's bytes live: an ordered list of physical extents, each on
/// some node. A single-node LMR has all extents on one node; LITE also
/// allows LMRs spread across machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    /// Ordered physical extents.
    pub extents: Vec<(NodeId, Chunk)>,
}

impl Location {
    /// Total length in bytes.
    pub fn len(&self) -> u64 {
        self.extents.iter().map(|(_, c)| c.len).sum()
    }

    /// Whether the location is empty.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Splits the byte range `[offset, offset+len)` into per-extent
    /// physical pieces `(node, phys_addr, len)`.
    pub fn slice(&self, offset: u64, len: u64) -> LiteResult<Vec<(NodeId, Chunk)>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let total = self.len();
        if offset + len > total {
            return Err(LiteError::OutOfBounds {
                offset,
                len: len as usize,
            });
        }
        let mut out = Vec::new();
        let mut cur = 0u64;
        let (mut remaining, mut pos) = (len, offset);
        for (node, c) in &self.extents {
            let ext_end = cur + c.len;
            if pos < ext_end && remaining > 0 {
                let in_ext = pos - cur;
                let take = (c.len - in_ext).min(remaining);
                out.push((
                    *node,
                    Chunk {
                        addr: c.addr + in_ext,
                        len: take,
                    },
                ));
                pos += take;
                remaining -= take;
            }
            cur = ext_end;
            if remaining == 0 {
                break;
            }
        }
        debug_assert_eq!(remaining, 0);
        Ok(out)
    }
}

/// The master-side record of an LMR, kept on its master node (§4.1:
/// "Master maintains a list of nodes that have mapped the LMR").
pub struct MasterRecord {
    /// Identity.
    pub id: LmrId,
    /// Physical location.
    pub location: Location,
    /// Name registered with the cluster manager, if any.
    pub name: Option<String>,
    /// Permission handed to non-master mappers by default.
    pub default_perm: Perm,
    /// Extra grants: node -> permission (a master can grant master).
    pub grants: HashMap<NodeId, Perm>,
    /// Nodes that currently map the LMR (for free/move notification).
    pub mapped_by: Vec<NodeId>,
}

impl MasterRecord {
    /// Permission a mapper from `node` receives.
    pub fn perm_for(&self, node: NodeId) -> Perm {
        self.grants.get(&node).copied().unwrap_or(self.default_perm)
    }
}

/// A process-local lh table entry: everything needed to use the LMR
/// without talking to the master again (§4.1: "LITE stores all the
/// metadata of an lh at the requesting node to avoid extra RTTs").
#[derive(Debug, Clone)]
pub struct LhEntry {
    /// Which LMR this handle maps.
    pub id: LmrId,
    /// The LMR's cluster-wide name (used for master-side operations).
    pub name: String,
    /// Cached physical location.
    pub location: Location,
    /// The permission this handle carries.
    pub perm: Perm,
    /// Set when the master freed/moved the LMR under us.
    pub stale: bool,
    /// Set when the memory manager migrated chunks under us (eviction,
    /// fetch-back, rebalance). Unlike `stale`, the handle is still good —
    /// the API layer transparently re-fetches the location from the
    /// master and clears this flag.
    pub relocated: bool,
}

impl LhEntry {
    /// Validates an access of `len` bytes at `offset` with permission
    /// `need`, returning the physical pieces to operate on.
    pub fn check(&self, offset: u64, len: usize, need: Perm) -> LiteResult<Vec<(NodeId, Chunk)>> {
        if self.stale {
            return Err(LiteError::BadLh { lh: 0 });
        }
        if self.relocated {
            return Err(LiteError::Relocated);
        }
        if !self.perm.covers(need) {
            return Err(LiteError::PermissionDenied);
        }
        self.location.slice(offset, len as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc() -> Location {
        Location {
            extents: vec![
                (
                    0,
                    Chunk {
                        addr: 1000,
                        len: 100,
                    },
                ),
                (
                    1,
                    Chunk {
                        addr: 5000,
                        len: 50,
                    },
                ),
                (
                    0,
                    Chunk {
                        addr: 9000,
                        len: 200,
                    },
                ),
            ],
        }
    }

    #[test]
    fn perm_covering() {
        assert!(Perm::MASTER.covers(Perm::RW));
        assert!(Perm::RW.covers(Perm::RO));
        assert!(!Perm::RO.covers(Perm::RW));
        assert!(!Perm::RW.covers(Perm::MASTER));
    }

    #[test]
    fn slice_within_one_extent() {
        let l = loc();
        assert_eq!(l.len(), 350);
        let s = l.slice(10, 20).unwrap();
        assert_eq!(
            s,
            vec![(
                0,
                Chunk {
                    addr: 1010,
                    len: 20
                }
            )]
        );
    }

    #[test]
    fn slice_across_extents() {
        let l = loc();
        let s = l.slice(90, 70).unwrap();
        assert_eq!(
            s,
            vec![
                (
                    0,
                    Chunk {
                        addr: 1090,
                        len: 10
                    }
                ),
                (
                    1,
                    Chunk {
                        addr: 5000,
                        len: 50
                    }
                ),
                (
                    0,
                    Chunk {
                        addr: 9000,
                        len: 10
                    }
                ),
            ]
        );
    }

    #[test]
    fn slice_bounds() {
        let l = loc();
        assert!(l.slice(300, 51).is_err());
        assert!(l.slice(350, 1).is_err());
        assert!(l.slice(0, 350).is_ok());
        assert!(l.slice(349, 1).is_ok());
        assert!(l.slice(10, 0).unwrap().is_empty());
    }

    #[test]
    fn lh_entry_checks() {
        let e = LhEntry {
            id: LmrId { node: 0, idx: 1 },
            name: "x".to_string(),
            location: loc(),
            perm: Perm::RO,
            stale: false,
            relocated: false,
        };
        assert!(e.check(0, 10, Perm::RO).is_ok());
        assert_eq!(e.check(0, 10, Perm::RW), Err(LiteError::PermissionDenied));
        let mut stale = e.clone();
        stale.stale = true;
        assert!(matches!(
            stale.check(0, 10, Perm::RO),
            Err(LiteError::BadLh { .. })
        ));
    }

    #[test]
    fn master_record_grants() {
        let mut r = MasterRecord {
            id: LmrId { node: 0, idx: 0 },
            location: loc(),
            name: None,
            default_perm: Perm::RO,
            grants: HashMap::new(),
            mapped_by: Vec::new(),
        };
        assert_eq!(r.perm_for(5), Perm::RO);
        r.grants.insert(5, Perm::MASTER);
        assert_eq!(r.perm_for(5), Perm::MASTER);
        assert_eq!(r.perm_for(6), Perm::RO);
    }
}
