//! Shared plumbing for the RPC baselines: registered scratch regions and
//! the stamp side-channel used by memory-polling receivers.
//!
//! The simulation moves real bytes through [`smem::PhysMem`], but a
//! receiver that polls *memory* (HERD's request regions, FaRM's rings)
//! has no CQ entry to learn the virtual arrival stamp from. The
//! [`Doorbell`] is the simulation's stand-in for the cache-coherent flag
//! byte such systems poll: it carries `(slot, stamp)` while the payload
//! itself travels through simulated memory.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rnic::{Access, IbFabric, Mr, NodeId, VerbsResult};
use simnet::{Ctx, Nanos};
use smem::AddrSpace;

/// A registered, physically-resolved scratch region on one node.
pub struct Region {
    /// Owning node.
    pub node: NodeId,
    /// Virtual base in `space`.
    pub va: u64,
    /// Length in bytes.
    pub len: usize,
    /// The MR covering it.
    pub mr: Mr,
    space: Arc<AddrSpace>,
    fabric: Arc<IbFabric>,
}

impl Region {
    /// Allocates and registers a fresh region.
    pub fn new(
        fabric: &Arc<IbFabric>,
        node: NodeId,
        space: &Arc<AddrSpace>,
        len: usize,
        access: Access,
        ctx: &mut Ctx,
    ) -> VerbsResult<Region> {
        let va = space.mmap(len as u64)?;
        let mr = fabric
            .nic(node)
            .register_mr(ctx, space, va, len as u64, access)?;
        Ok(Region {
            node,
            va,
            len,
            mr,
            space: Arc::clone(space),
            fabric: Arc::clone(fabric),
        })
    }

    /// Writes bytes into the region at `off` (local host access).
    pub fn put(&self, off: usize, data: &[u8]) -> VerbsResult<()> {
        let frags = self
            .space
            .translate_range(self.va + off as u64, data.len() as u64)?;
        let mut pos = 0;
        for f in frags {
            self.fabric
                .mem(self.node)
                .write(f.addr, &data[pos..pos + f.len as usize])?;
            pos += f.len as usize;
        }
        Ok(())
    }

    /// Reads bytes from the region at `off`.
    pub fn get(&self, off: usize, buf: &mut [u8]) -> VerbsResult<()> {
        let frags = self
            .space
            .translate_range(self.va + off as u64, buf.len() as u64)?;
        let mut pos = 0;
        for f in frags {
            self.fabric
                .mem(self.node)
                .read(f.addr, &mut buf[pos..pos + f.len as usize])?;
            pos += f.len as usize;
        }
        Ok(())
    }
}

/// A `(tag, stamp, len)` notification channel standing in for polled
/// memory flags.
pub struct Doorbell {
    q: Mutex<BinaryHeap<Reverse<(Nanos, u64, usize)>>>,
    cv: Condvar,
}

impl Doorbell {
    /// Creates an empty doorbell.
    pub fn new() -> Arc<Self> {
        Arc::new(Doorbell {
            q: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
        })
    }

    /// Rings: data tagged `tag` became visible at `stamp`.
    pub fn ring(&self, tag: u64, stamp: Nanos, len: usize) {
        self.q.lock().push(Reverse((stamp, tag, len)));
        self.cv.notify_all();
    }

    /// Busy-polling receive: charges `scan_cost` CPU per poll iteration
    /// that found something, plus the full idle gap (these receivers spin).
    pub fn poll(
        &self,
        ctx: &mut Ctx,
        scan_cost: Nanos,
        timeout: Duration,
    ) -> Option<(u64, Nanos, usize)> {
        let deadline = Instant::now() + timeout;
        let mut q = self.q.lock();
        loop {
            if let Some(Reverse((stamp, tag, len))) = q.pop() {
                drop(q);
                ctx.spin_until(stamp);
                ctx.work(scan_cost);
                return Some((tag, stamp, len));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if self.cv.wait_until(&mut q, deadline).timed_out() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;
    use rnic::IbConfig;
    use smem::PhysAllocator;

    #[test]
    fn region_put_get() {
        let fabric = IbFabric::new(IbConfig::with_nodes(1));
        let space = Arc::new(AddrSpace::new(Arc::new(PMutex::new(PhysAllocator::new(
            0,
            1 << 24,
        )))));
        let mut ctx = Ctx::new();
        let r = Region::new(&fabric, 0, &space, 8192, Access::RW, &mut ctx).unwrap();
        r.put(100, b"abcdef").unwrap();
        let mut buf = [0u8; 6];
        r.get(100, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn doorbell_stamps_and_spins() {
        let db = Doorbell::new();
        db.ring(5, 10_000, 64);
        let mut ctx = Ctx::new();
        let (tag, stamp, len) = db.poll(&mut ctx, 100, Duration::from_secs(1)).unwrap();
        assert_eq!((tag, stamp, len), (5, 10_000, 64));
        assert!(ctx.now() >= 10_000);
        assert!(ctx.cpu.total() >= 10_000, "spinning receiver burns CPU");
        assert!(db.poll(&mut ctx, 100, Duration::from_millis(5)).is_none());
    }
}
