//! FaRM-style two-write messaging (the "2 Verbs writes" line of Fig 10).
//!
//! FaRM's message-passing primitive is a one-sided RDMA write into a ring
//! at the receiver, which busy-polls the ring tail. An RPC is two of
//! those: request write + reply write. This module implements exactly
//! that pair over raw RC verbs.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex as PMutex;
use rnic::{Access, IbFabric, NodeId, RemoteAddr, Sge, VerbsError, VerbsResult};
use simnet::Ctx;
use smem::{AddrSpace, PhysAllocator};

use crate::common::{Doorbell, Region};

/// Ring slots per direction.
const SLOTS: usize = 64;

/// One FaRM-style connected pair. The client calls; a server thread
/// serves with a handler.
pub struct FarmPair {
    fabric: Arc<IbFabric>,
    client_node: NodeId,
    server_node: NodeId,
    qp_c: Arc<rnic::Qp>,
    qp_s: Arc<rnic::Qp>,
    /// Client-side send scratch + reply ring.
    c_send: Region,
    c_reply: Region,
    /// Server-side request ring + reply scratch.
    s_ring: Region,
    s_send: Region,
    /// Stamp side channels (the polled ring tails).
    req_bell: Arc<Doorbell>,
    rep_bell: Arc<Doorbell>,
    slot_size: usize,
}

impl FarmPair {
    /// Builds a pair with `slot_size`-byte message slots.
    pub fn new(
        fabric: &Arc<IbFabric>,
        client_node: NodeId,
        server_node: NodeId,
        slot_size: usize,
    ) -> VerbsResult<FarmPair> {
        let mut ctx = Ctx::new();
        let mk_space = |node: NodeId| {
            let _ = node;
            Arc::new(AddrSpace::new(Arc::new(PMutex::new(PhysAllocator::new(
                0,
                1 << 28,
            )))))
        };
        let c_space = mk_space(client_node);
        let s_space = mk_space(server_node);
        let (qp_c, qp_s) = fabric.rc_pair(client_node, server_node);
        Ok(FarmPair {
            fabric: Arc::clone(fabric),
            client_node,
            server_node,
            qp_c,
            qp_s,
            c_send: Region::new(
                fabric,
                client_node,
                &c_space,
                slot_size,
                Access::LOCAL,
                &mut ctx,
            )?,
            c_reply: Region::new(
                fabric,
                client_node,
                &c_space,
                slot_size * SLOTS,
                Access::RW,
                &mut ctx,
            )?,
            s_ring: Region::new(
                fabric,
                server_node,
                &s_space,
                slot_size * SLOTS,
                Access::RW,
                &mut ctx,
            )?,
            s_send: Region::new(
                fabric,
                server_node,
                &s_space,
                slot_size,
                Access::LOCAL,
                &mut ctx,
            )?,
            req_bell: Doorbell::new(),
            rep_bell: Doorbell::new(),
            slot_size,
        })
    }

    /// Client: one RPC = one write (request) + polled reply write.
    pub fn call(
        &self,
        ctx: &mut Ctx,
        slot: usize,
        payload: &[u8],
        timeout: Duration,
    ) -> VerbsResult<Vec<u8>> {
        assert!(slot < SLOTS && payload.len() <= self.slot_size);
        self.c_send.put(0, payload)?;
        let nic = self.fabric.nic(self.client_node);
        let outcome = nic.post_write_outcome(
            ctx,
            &self.qp_c,
            0,
            &Sge::Virt {
                lkey: self.c_send.mr.lkey(),
                addr: self.c_send.va,
                len: payload.len(),
            },
            RemoteAddr {
                rkey: self.s_ring.mr.rkey(),
                addr: self.s_ring.va + (slot * self.slot_size) as u64,
            },
            None,
            false,
        )?;
        self.req_bell
            .ring(slot as u64, outcome.remote_visible, payload.len());
        // FaRM senders don't wait for their own completion; they poll the
        // reply ring.
        let (tag, _stamp, len) = self
            .rep_bell
            .poll(ctx, self.fabric.cost().cq_poll_ns, timeout)
            .ok_or(VerbsError::Timeout)?;
        debug_assert_eq!(tag as usize, slot);
        let mut out = vec![0u8; len];
        self.c_reply.get(slot * self.slot_size, &mut out)?;
        Ok(out)
    }

    /// Server: receives one request, applies `f`, writes the reply back.
    pub fn serve_one(
        &self,
        ctx: &mut Ctx,
        f: impl FnOnce(&[u8]) -> Vec<u8>,
        timeout: Duration,
    ) -> VerbsResult<()> {
        let (slot, _stamp, len) = self
            .req_bell
            .poll(ctx, self.fabric.cost().cq_poll_ns, timeout)
            .ok_or(VerbsError::Timeout)?;
        let mut req = vec![0u8; len];
        self.s_ring.get(slot as usize * self.slot_size, &mut req)?;
        let reply = f(&req);
        assert!(reply.len() <= self.slot_size);
        self.s_send.put(0, &reply)?;
        let nic = self.fabric.nic(self.server_node);
        let outcome = nic.post_write_outcome(
            ctx,
            &self.qp_s,
            0,
            &Sge::Virt {
                lkey: self.s_send.mr.lkey(),
                addr: self.s_send.va,
                len: reply.len(),
            },
            RemoteAddr {
                rkey: self.c_reply.mr.rkey(),
                addr: self.c_reply.va + slot as usize as u64 * self.slot_size as u64,
            },
            None,
            false,
        )?;
        self.rep_bell
            .ring(slot, outcome.remote_visible, reply.len());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnic::IbConfig;
    use simnet::MICROS;

    #[test]
    fn two_write_rpc_roundtrip_and_latency() {
        let fabric = IbFabric::new(IbConfig::with_nodes(2));
        let pair = Arc::new(FarmPair::new(&fabric, 0, 1, 4096).unwrap());
        let srv = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let mut ctx = Ctx::new();
            for _ in 0..10 {
                srv.serve_one(
                    &mut ctx,
                    |req| {
                        let mut r = req.to_vec();
                        r.reverse();
                        r
                    },
                    Duration::from_secs(2),
                )
                .unwrap();
            }
            ctx
        });
        let mut ctx = Ctx::new();
        // Warm up once.
        pair.call(&mut ctx, 0, b"warm", Duration::from_secs(2))
            .unwrap();
        let t0 = ctx.now();
        for i in 0..9 {
            let out = pair
                .call(&mut ctx, i % SLOTS, b"ping", Duration::from_secs(2))
                .unwrap();
            assert_eq!(out, b"gnip");
        }
        let per_call = (ctx.now() - t0) / 9;
        // Two one-sided writes plus polling: ~3-6 us.
        assert!(
            per_call < 8 * MICROS,
            "two-write RPC costs {per_call} ns/call"
        );
        h.join().unwrap();
    }
}
