#![warn(missing_docs)]

//! RPC baselines from the LITE evaluation (§5.3, Figs 10–13).
//!
//! * [`farm`] — FaRM-style messaging: an RPC emulated with two one-sided
//!   RDMA writes into rings the receiver polls (the paper's "2 Verbs
//!   writes" lower bound).
//! * [`herd`] — HERD RPC: request by RDMA write into a per-client region
//!   busy-polled by the server, reply by UD send. Fast, but the server
//!   burns CPU scanning one region *per client*.
//! * [`fasst`] — FaSST RPC: UD send both ways; a master "coroutine"
//!   thread polls the CQ and executes handlers inline.
//! * [`send_rpc`] — send/recv-based RPC memory accounting for Figure 12:
//!   pre-posted worst-case receive buffers vs LITE's packed ring.
//!
//! Each baseline exposes a client `call` and a server loop driven by a
//! user handler, plus CPU meters, so the Fig 10/11/13 harnesses treat
//! them uniformly with LITE RPC.

pub mod common;
pub mod farm;
pub mod fasst;
pub mod herd;
pub mod send_rpc;

pub use farm::FarmPair;
pub use fasst::{FasstClient, FasstServer};
pub use herd::{HerdClient, HerdServer};
pub use send_rpc::{RingAccounting, SendRpcAccounting};
