//! FaSST-style RPC (Kalia et al., OSDI '16): unreliable-datagram sends in
//! both directions, with a master thread ("coroutine scheduler") that
//! polls the receive CQ *and executes handlers inline* — the design LITE
//! §5.3 criticizes for coupling polling with execution.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex as PMutex;
use rnic::qp::RecvEntry;
use rnic::{Access, IbFabric, NodeId, QpType, Sge, VerbsError, VerbsResult};
use simnet::Ctx;
use smem::{AddrSpace, PhysAllocator};

use crate::common::Region;

/// Receive ring depth (both sides).
const RING: usize = 256;

/// The FaSST server endpoint.
pub struct FasstServer {
    fabric: Arc<IbFabric>,
    node: NodeId,
    ud: Arc<rnic::Qp>,
    recv: Region,
    send: Region,
    slot_size: usize,
}

/// A FaSST client endpoint.
pub struct FasstClient {
    fabric: Arc<IbFabric>,
    node: NodeId,
    ud: Arc<rnic::Qp>,
    recv: Region,
    send: Region,
    server: (NodeId, u64),
    slot_size: usize,
}

fn make_endpoint(
    fabric: &Arc<IbFabric>,
    node: NodeId,
    slot_size: usize,
) -> VerbsResult<(Arc<rnic::Qp>, Region, Region)> {
    let mut ctx = Ctx::new();
    let space = Arc::new(AddrSpace::new(Arc::new(PMutex::new(PhysAllocator::new(
        0,
        1 << 28,
    )))));
    let recv = Region::new(
        fabric,
        node,
        &space,
        slot_size * RING,
        Access::LOCAL,
        &mut ctx,
    )?;
    let send = Region::new(fabric, node, &space, slot_size, Access::LOCAL, &mut ctx)?;
    let ud = fabric.nic(node).create_qp(QpType::Ud);
    for i in 0..RING {
        fabric.nic(node).post_recv(
            &mut ctx,
            &ud,
            RecvEntry {
                wr_id: i as u64,
                sge: Some(Sge::Virt {
                    lkey: recv.mr.lkey(),
                    addr: recv.va + (i * slot_size) as u64,
                    len: slot_size,
                }),
            },
        );
    }
    Ok((ud, recv, send))
}

impl FasstServer {
    /// Creates the server endpoint. UD caps messages at one MTU (4 KB),
    /// exactly FaSST's constraint.
    pub fn new(fabric: &Arc<IbFabric>, node: NodeId, slot_size: usize) -> VerbsResult<Arc<Self>> {
        assert!(slot_size <= fabric.cost().ud_max_payload);
        let (ud, recv, send) = make_endpoint(fabric, node, slot_size)?;
        Ok(Arc::new(FasstServer {
            fabric: Arc::clone(fabric),
            node,
            ud,
            recv,
            send,
            slot_size,
        }))
    }

    /// The server's UD address clients send to.
    pub fn address(&self) -> (NodeId, u64) {
        (self.node, self.ud.id)
    }

    /// Master-thread step: poll the CQ (busy), run the handler *inline*,
    /// and UD-send the reply back to the request's source.
    pub fn serve_one(
        &self,
        ctx: &mut Ctx,
        f: impl FnOnce(&[u8]) -> Vec<u8>,
        timeout: Duration,
    ) -> VerbsResult<()> {
        let wc = self
            .ud
            .recv_cq
            .poll_blocking(ctx, self.fabric.cost(), true, timeout)
            .ok_or(VerbsError::Timeout)?;
        let slot = wc.wr_id as usize;
        let mut req = vec![0u8; wc.byte_len];
        self.recv.get(slot * self.slot_size, &mut req)?;
        // Handler runs on the polling thread — FaSST's bottleneck.
        let reply = f(&req);
        assert!(reply.len() <= self.slot_size);
        self.send.put(0, &reply)?;
        let dest = wc.src.ok_or(VerbsError::Disconnected)?;
        self.fabric.nic(self.node).post_send_ud(
            ctx,
            &self.ud,
            0,
            &Sge::Virt {
                lkey: self.send.mr.lkey(),
                addr: self.send.va,
                len: reply.len(),
            },
            dest,
            false,
        )?;
        // Repost the consumed receive.
        self.fabric.nic(self.node).post_recv(
            ctx,
            &self.ud,
            RecvEntry {
                wr_id: wc.wr_id,
                sge: Some(Sge::Virt {
                    lkey: self.recv.mr.lkey(),
                    addr: self.recv.va + (slot * self.slot_size) as u64,
                    len: self.slot_size,
                }),
            },
        );
        Ok(())
    }
}

impl FasstClient {
    /// Creates a client endpoint talking to `server`.
    pub fn connect(
        fabric: &Arc<IbFabric>,
        node: NodeId,
        server: (NodeId, u64),
        slot_size: usize,
    ) -> VerbsResult<FasstClient> {
        assert!(slot_size <= fabric.cost().ud_max_payload);
        let (ud, recv, send) = make_endpoint(fabric, node, slot_size)?;
        Ok(FasstClient {
            fabric: Arc::clone(fabric),
            node,
            ud,
            recv,
            send,
            server,
            slot_size,
        })
    }

    /// One RPC: UD send + busy-poll the reply.
    pub fn call(&self, ctx: &mut Ctx, payload: &[u8], timeout: Duration) -> VerbsResult<Vec<u8>> {
        assert!(payload.len() <= self.slot_size);
        self.send.put(0, payload)?;
        self.fabric.nic(self.node).post_send_ud(
            ctx,
            &self.ud,
            0,
            &Sge::Virt {
                lkey: self.send.mr.lkey(),
                addr: self.send.va,
                len: payload.len(),
            },
            self.server,
            false,
        )?;
        let wc = self
            .ud
            .recv_cq
            .poll_blocking(ctx, self.fabric.cost(), true, timeout)
            .ok_or(VerbsError::Timeout)?;
        let slot = wc.wr_id as usize;
        let mut out = vec![0u8; wc.byte_len];
        self.recv.get(slot * self.slot_size, &mut out)?;
        self.fabric.nic(self.node).post_recv(
            ctx,
            &self.ud,
            RecvEntry {
                wr_id: wc.wr_id,
                sge: Some(Sge::Virt {
                    lkey: self.recv.mr.lkey(),
                    addr: self.recv.va + (slot * self.slot_size) as u64,
                    len: self.slot_size,
                }),
            },
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnic::IbConfig;
    use simnet::MICROS;

    #[test]
    fn fasst_roundtrip() {
        let fabric = IbFabric::new(IbConfig::with_nodes(2));
        let server = FasstServer::new(&fabric, 1, 4096).unwrap();
        let client = FasstClient::connect(&fabric, 0, server.address(), 4096).unwrap();
        let s2 = Arc::clone(&server);
        let h = std::thread::spawn(move || {
            let mut ctx = Ctx::new();
            for _ in 0..10 {
                s2.serve_one(
                    &mut ctx,
                    |req| {
                        let mut r = req.to_vec();
                        r.rotate_left(1);
                        r
                    },
                    Duration::from_secs(2),
                )
                .unwrap();
            }
            ctx.cpu.total()
        });
        let mut ctx = Ctx::new();
        client
            .call(&mut ctx, b"warm", Duration::from_secs(2))
            .unwrap();
        let t0 = ctx.now();
        for _ in 0..9 {
            let out = client
                .call(&mut ctx, b"abcd", Duration::from_secs(2))
                .unwrap();
            assert_eq!(out, b"bcda");
        }
        let per_call = (ctx.now() - t0) / 9;
        assert!(per_call < 7 * MICROS, "FaSST 4B RPC = {per_call} ns");
        let server_cpu = h.join().unwrap();
        // The busy-polling master thread burned CPU for the entire run.
        assert!(server_cpu > 0);
    }

    #[test]
    #[should_panic(expected = "slot_size <= fabric.cost().ud_max_payload")]
    fn fasst_rejects_over_mtu() {
        let fabric = IbFabric::new(IbConfig::with_nodes(2));
        let _ = FasstServer::new(&fabric, 1, 8192);
    }
}
