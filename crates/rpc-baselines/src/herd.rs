//! HERD-style RPC (Kalia et al., the paper's fastest small-RPC baseline).
//!
//! Requests travel as one-sided RDMA writes into a *per-client* request
//! region at the server; server threads busy-poll every client's region
//! in turn (cheap detection, but CPU scales with the number of clients —
//! the §5.3 criticism). Replies travel as UD sends.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex as PMutex;
use rnic::qp::RecvEntry;
use rnic::{Access, IbFabric, NodeId, QpType, RemoteAddr, Sge, VerbsError, VerbsResult};
use simnet::{Ctx, Nanos};
use smem::{AddrSpace, PhysAllocator};

use crate::common::{Doorbell, Region};

/// Cost of checking one client's request region for a new flag byte.
const REGION_CHECK_NS: Nanos = 40;
/// Receive ring posted on each client's UD QP.
const CLIENT_RING: usize = 64;

/// The HERD server: one request region per client, one UD QP for replies.
pub struct HerdServer {
    fabric: Arc<IbFabric>,
    node: NodeId,
    regions: Vec<Region>,
    send: Region,
    ud: Arc<rnic::Qp>,
    bell: Arc<Doorbell>,
    slot_size: usize,
    clients: PMutex<Vec<(NodeId, u64)>>,
}

/// A HERD client endpoint.
pub struct HerdClient {
    fabric: Arc<IbFabric>,
    node: NodeId,
    id: usize,
    qp: Arc<rnic::Qp>,
    send: Region,
    recv: Region,
    ud: Arc<rnic::Qp>,
    server: Arc<HerdServer>,
    slot_size: usize,
}

impl HerdServer {
    /// Creates the server with room for `max_clients` clients.
    pub fn new(
        fabric: &Arc<IbFabric>,
        node: NodeId,
        max_clients: usize,
        slot_size: usize,
    ) -> VerbsResult<Arc<HerdServer>> {
        let mut ctx = Ctx::new();
        let space = Arc::new(AddrSpace::new(Arc::new(PMutex::new(PhysAllocator::new(
            0,
            1 << 30,
        )))));
        let regions = (0..max_clients)
            .map(|_| Region::new(fabric, node, &space, slot_size, Access::RW, &mut ctx))
            .collect::<VerbsResult<Vec<_>>>()?;
        let send = Region::new(fabric, node, &space, slot_size, Access::LOCAL, &mut ctx)?;
        let ud = fabric.nic(node).create_qp(QpType::Ud);
        Ok(Arc::new(HerdServer {
            fabric: Arc::clone(fabric),
            node,
            regions,
            send,
            ud,
            bell: Doorbell::new(),
            slot_size,
            clients: PMutex::new(Vec::new()),
        }))
    }

    /// Serves one request with `f`; busy-polls all client regions.
    pub fn serve_one(
        &self,
        ctx: &mut Ctx,
        f: impl FnOnce(&[u8]) -> Vec<u8>,
        timeout: Duration,
    ) -> VerbsResult<()> {
        let n = self.clients.lock().len().max(1);
        // Scanning cost grows with the number of client regions (§5.3:
        // "it needs to busy check different RDMA regions for all RPC
        // clients").
        let scan = REGION_CHECK_NS * n as u64;
        let (client, _stamp, len) = self
            .bell
            .poll(ctx, scan, timeout)
            .ok_or(VerbsError::Timeout)?;
        let mut req = vec![0u8; len];
        self.regions[client as usize].get(0, &mut req)?;
        let reply = f(&req);
        assert!(reply.len() <= self.slot_size, "HERD reply exceeds slot");
        self.send.put(0, &reply)?;
        let dest = self.clients.lock()[client as usize];
        self.fabric.nic(self.node).post_send_ud(
            ctx,
            &self.ud,
            0,
            &Sge::Virt {
                lkey: self.send.mr.lkey(),
                addr: self.send.va,
                len: reply.len(),
            },
            dest,
            false,
        )?;
        Ok(())
    }
}

impl HerdClient {
    /// Connects a new client from `node`.
    pub fn connect(
        server: &Arc<HerdServer>,
        node: NodeId,
        slot_size: usize,
    ) -> VerbsResult<HerdClient> {
        let fabric = Arc::clone(&server.fabric);
        let mut ctx = Ctx::new();
        let space = Arc::new(AddrSpace::new(Arc::new(PMutex::new(PhysAllocator::new(
            0,
            1 << 28,
        )))));
        let send = Region::new(&fabric, node, &space, slot_size, Access::LOCAL, &mut ctx)?;
        let recv = Region::new(
            &fabric,
            node,
            &space,
            slot_size * CLIENT_RING,
            Access::LOCAL,
            &mut ctx,
        )?;
        let ud = fabric.nic(node).create_qp(QpType::Ud);
        for i in 0..CLIENT_RING {
            fabric.nic(node).post_recv(
                &mut ctx,
                &ud,
                RecvEntry {
                    wr_id: i as u64,
                    sge: Some(Sge::Virt {
                        lkey: recv.mr.lkey(),
                        addr: recv.va + (i * slot_size) as u64,
                        len: slot_size,
                    }),
                },
            );
        }
        let (qp, _server_qp) = fabric.rc_pair(node, server.node);
        let id = {
            let mut clients = server.clients.lock();
            clients.push((node, ud.id));
            clients.len() - 1
        };
        Ok(HerdClient {
            fabric,
            node,
            id,
            qp,
            send,
            recv,
            ud,
            server: Arc::clone(server),
            slot_size,
        })
    }

    /// One RPC: RDMA-write the request into our region at the server,
    /// then busy-poll our UD recv CQ for the reply.
    pub fn call(&self, ctx: &mut Ctx, payload: &[u8], timeout: Duration) -> VerbsResult<Vec<u8>> {
        assert!(payload.len() <= self.slot_size);
        self.send.put(0, payload)?;
        let region = &self.server.regions[self.id];
        let outcome = self.fabric.nic(self.node).post_write_outcome(
            ctx,
            &self.qp,
            0,
            &Sge::Virt {
                lkey: self.send.mr.lkey(),
                addr: self.send.va,
                len: payload.len(),
            },
            RemoteAddr {
                rkey: region.mr.rkey(),
                addr: region.va,
            },
            None,
            false,
        )?;
        self.server
            .bell
            .ring(self.id as u64, outcome.remote_visible, payload.len());
        let wc = self
            .ud
            .recv_cq
            .poll_blocking(ctx, self.fabric.cost(), true, timeout)
            .ok_or(VerbsError::Timeout)?;
        let slot = wc.wr_id as usize;
        let mut out = vec![0u8; wc.byte_len];
        self.recv.get(slot * self.slot_size, &mut out)?;
        // Repost the consumed receive.
        self.fabric.nic(self.node).post_recv(
            ctx,
            &self.ud,
            RecvEntry {
                wr_id: wc.wr_id,
                sge: Some(Sge::Virt {
                    lkey: self.recv.mr.lkey(),
                    addr: self.recv.va + (slot * self.slot_size) as u64,
                    len: self.slot_size,
                }),
            },
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnic::IbConfig;
    use simnet::MICROS;

    #[test]
    fn herd_roundtrip_and_small_latency() {
        let fabric = IbFabric::new(IbConfig::with_nodes(2));
        let server = HerdServer::new(&fabric, 1, 4, 4096).unwrap();
        let client = HerdClient::connect(&server, 0, 4096).unwrap();
        let s2 = Arc::clone(&server);
        let h = std::thread::spawn(move || {
            let mut ctx = Ctx::new();
            for _ in 0..10 {
                s2.serve_one(&mut ctx, |req| req.to_vec(), Duration::from_secs(2))
                    .unwrap();
            }
        });
        let mut ctx = Ctx::new();
        client
            .call(&mut ctx, b"warm", Duration::from_secs(2))
            .unwrap();
        let t0 = ctx.now();
        for _ in 0..9 {
            let out = client
                .call(&mut ctx, b"herd!", Duration::from_secs(2))
                .unwrap();
            assert_eq!(out, b"herd!");
        }
        let per_call = (ctx.now() - t0) / 9;
        assert!(per_call < 6 * MICROS, "HERD 5B RPC = {per_call} ns");
        h.join().unwrap();
    }

    #[test]
    fn herd_server_cpu_scales_with_clients() {
        // With more connected clients, each detection costs more scanning.
        let fabric = IbFabric::new(IbConfig::with_nodes(2));
        let server = HerdServer::new(&fabric, 1, 64, 1024).unwrap();
        let mut clients = Vec::new();
        for _ in 0..64 {
            clients.push(HerdClient::connect(&server, 0, 1024).unwrap());
        }
        let mut cctx = Ctx::new();
        let mut sctx = Ctx::new();
        clients[0].send.put(0, b"x").unwrap();
        // Ring directly to isolate the scan cost.
        server.bell.ring(0, cctx.now(), 1);
        let cpu0 = sctx.cpu.total();
        server
            .serve_one(&mut sctx, |r| r.to_vec(), Duration::from_secs(1))
            .unwrap();
        let scan_cost = sctx.cpu.total() - cpu0;
        assert!(
            scan_cost >= REGION_CHECK_NS * 64,
            "scan cost {scan_cost} should cover 64 regions"
        );
        let _ = &mut cctx;
    }
}
