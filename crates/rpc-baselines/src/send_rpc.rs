//! Memory-utilization accounting for Figure 12.
//!
//! Send/recv-based RPC must pre-post receive buffers big enough for the
//! *largest possible* message; every received message therefore consumes
//! a worst-case buffer. The optimization from the paper's comparison
//! point posts buffers of different sizes on multiple receive queues and
//! routes each message to the most space-efficient queue that fits.
//! LITE's write-imm RPC instead packs messages back-to-back in the ring
//! at 64-byte granularity.
//!
//! Utilization = useful payload bytes / buffer bytes consumed.

use crate::common::Doorbell;
use simnet::Nanos;

/// Accounting for send-based RPC with `n` receive queues of graduated
/// buffer sizes.
#[derive(Debug, Clone)]
pub struct SendRpcAccounting {
    /// Buffer size of each RQ, ascending.
    pub rq_sizes: Vec<usize>,
    payload: u64,
    consumed: u64,
    rejected: u64,
}

impl SendRpcAccounting {
    /// Builds the RQ ladder: `n` queues whose buffer sizes subdivide
    /// `[64, max]` geometrically, largest always = `max` (every message
    /// must fit somewhere).
    pub fn new(n: usize, max: usize) -> Self {
        assert!(n >= 1);
        let mut rq_sizes = Vec::with_capacity(n);
        for i in 0..n {
            // Geometric ladder: max / 2^(n-1-i), floored at 64.
            let s = (max >> (n - 1 - i)).max(64);
            rq_sizes.push(s);
        }
        rq_sizes.dedup();
        SendRpcAccounting {
            rq_sizes,
            payload: 0,
            consumed: 0,
            rejected: 0,
        }
    }

    /// Accounts one message of `len` bytes: it consumes the smallest
    /// buffer that fits.
    pub fn receive(&mut self, len: usize) {
        match self.rq_sizes.iter().find(|&&s| s >= len) {
            Some(&s) => {
                self.payload += len as u64;
                self.consumed += s as u64;
            }
            None => self.rejected += 1,
        }
    }

    /// Fraction of consumed buffer bytes that carried payload.
    pub fn utilization(&self) -> f64 {
        if self.consumed == 0 {
            return 0.0;
        }
        self.payload as f64 / self.consumed as f64
    }

    /// Messages that fit no buffer (should be zero when max is right).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

/// Accounting for LITE's ring-based RPC: messages are packed at 64-byte
/// granularity plus a 40-byte header.
#[derive(Debug, Clone, Default)]
pub struct RingAccounting {
    payload: u64,
    consumed: u64,
}

impl RingAccounting {
    /// Creates zeroed accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts one message of `len` payload bytes.
    pub fn receive(&mut self, len: usize) {
        let total = crate::send_rpc::round64(len as u64 + 40);
        self.payload += len as u64;
        self.consumed += total;
    }

    /// Fraction of ring bytes that carried payload.
    pub fn utilization(&self) -> f64 {
        if self.consumed == 0 {
            return 0.0;
        }
        self.payload as f64 / self.consumed as f64
    }
}

pub(crate) fn round64(v: u64) -> u64 {
    v.div_ceil(64) * 64
}

/// Tiny helper kept here so the module is exercised by `Doorbell` users.
#[allow(dead_code)]
fn _stamp(_: Nanos, _: &Doorbell) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rq_ladder_shapes() {
        let one = SendRpcAccounting::new(1, 4096);
        assert_eq!(one.rq_sizes, vec![4096]);
        let four = SendRpcAccounting::new(4, 4096);
        assert_eq!(four.rq_sizes, vec![512, 1024, 2048, 4096]);
    }

    #[test]
    fn single_rq_wastes_memory_on_small_messages() {
        let mut a = SendRpcAccounting::new(1, 4096);
        for _ in 0..1000 {
            a.receive(100);
        }
        assert!(a.utilization() < 0.03, "util {}", a.utilization());
        assert_eq!(a.rejected(), 0);
    }

    #[test]
    fn more_rqs_improve_utilization() {
        let sizes = [100usize, 300, 900, 2000, 4000];
        let mut utils = Vec::new();
        for n in 1..=4 {
            let mut a = SendRpcAccounting::new(n, 4096);
            for &s in sizes.iter().cycle().take(5000) {
                a.receive(s);
            }
            utils.push(a.utilization());
        }
        for w in utils.windows(2) {
            assert!(w[1] >= w[0], "utilization should improve: {utils:?}");
        }
    }

    #[test]
    fn lite_ring_beats_send_based() {
        let sizes = [100usize, 300, 900, 2000, 4000];
        let mut ring = RingAccounting::new();
        let mut send4 = SendRpcAccounting::new(4, 4096);
        for &s in sizes.iter().cycle().take(5000) {
            ring.receive(s);
            send4.receive(s);
        }
        assert!(
            ring.utilization() > send4.utilization(),
            "ring {} vs send {}",
            ring.utilization(),
            send4.utilization()
        );
        assert!(ring.utilization() > 0.9);
    }
}
