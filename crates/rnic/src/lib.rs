#![warn(missing_docs)]

//! A software RNIC implementing the Verbs abstraction over an in-memory
//! InfiniBand fabric, with an explicit on-NIC SRAM model.
//!
//! This crate is the substrate the whole reproduction stands on. It
//! models, per node, a 40 Gbps ConnectX-3-class RNIC:
//!
//! * **Verbs objects** — memory regions ([`Mr`]) with `lkey`/`rkey`,
//!   queue pairs ([`Qp`], RC/UC/UD), completion queues ([`Cq`]), receive
//!   queues with posted buffers, and shared receive queues.
//! * **Operations** — one-sided `READ`/`WRITE`/`WRITE_WITH_IMM`, two-sided
//!   `SEND`/`RECV`, and `ATOMIC` fetch-add / compare-and-swap, all moving
//!   real bytes through [`smem::PhysMem`].
//! * **The SRAM model** — three LRU caches with per-miss virtual-time
//!   penalties: the MR key table, the PTE cache, and the QP context cache.
//!   These caches are why native RDMA's performance collapses with many
//!   MRs (paper Fig 4), large MRs (Fig 5), and many QPs (§2.4); the LITE
//!   layer above avoids all three by registering a single *physical*
//!   global MR ([`Nic::register_phys_mr`]).
//! * **Queueing** — per-NIC request engines and link resources
//!   ([`simnet::Resource`]) through which every operation passes, so
//!   throughput saturation and multi-thread contention emerge naturally.
//!
//! One-sided operations are executed by the *requester's* thread directly
//! against the target node's memory — the remote CPU is never involved,
//! exactly like the hardware. Two-sided operations deposit a completion
//! (with its virtual arrival stamp) in the remote CQ, where a remote
//! software thread polls it out.

pub mod cost;
pub mod cq;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod nic;
pub mod qp;
pub mod verbs;

pub use cost::CostModel;
pub use cq::Cq;
pub use error::{VerbsError, VerbsResult};
pub use fabric::{IbConfig, IbFabric, NodeId};
pub use fault::{FaultAction, FaultPlan, FaultRule, FaultStats};
pub use nic::{Mr, Nic, WriteOutcome, WritePost};
pub use qp::{Qp, QpId, QpType};
pub use verbs::{Access, RemoteAddr, Sge, Wc, WcOpcode};
