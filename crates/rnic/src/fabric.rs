//! The InfiniBand fabric: a set of nodes, each with physical memory and
//! one RNIC, joined by a switch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use smem::PhysMem;

use crate::cost::CostModel;
use crate::error::{VerbsError, VerbsResult};
use crate::fault::{FaultAction, FaultPlan, FaultState, FaultStats};
use crate::nic::Nic;
use crate::qp::{Qp, QpType};

/// Index of a node in the fabric.
pub type NodeId = usize;

/// Fabric construction parameters.
#[derive(Debug, Clone)]
pub struct IbConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Physical memory per node, bytes (sparse — only touched pages cost
    /// host memory).
    pub phys_mem_per_node: u64,
    /// Cost model applied to every NIC and link.
    pub cost: CostModel,
}

impl Default for IbConfig {
    fn default() -> Self {
        IbConfig {
            nodes: 2,
            phys_mem_per_node: 16 << 30,
            cost: CostModel::default(),
        }
    }
}

impl IbConfig {
    /// Config with `n` nodes and default everything else.
    pub fn with_nodes(n: usize) -> Self {
        IbConfig {
            nodes: n,
            ..Default::default()
        }
    }
}

pub(crate) struct NodeHw {
    pub(crate) mem: Arc<PhysMem>,
    pub(crate) nic: Nic,
    pub(crate) down: AtomicBool,
}

/// The fabric. Everything in the simulation hangs off one of these.
pub struct IbFabric {
    cfg: IbConfig,
    pub(crate) nodes: Vec<NodeHw>,
    next_qp: AtomicU64,
    next_key: AtomicU64,
    /// Installed fault plan, if any (`fault_active` is its lock-free
    /// fast-path mirror: the hot path pays one relaxed load when no plan
    /// is installed).
    fault: Mutex<Option<FaultState>>,
    fault_active: AtomicBool,
    /// Fabric-wide count of work requests that passed the injection
    /// point; drives the scheduled (`at_op`) fault rules.
    fault_ops: AtomicU64,
}

impl IbFabric {
    /// Builds a fabric of `cfg.nodes` nodes.
    pub fn new(cfg: IbConfig) -> Arc<Self> {
        assert!(cfg.nodes >= 1, "fabric needs at least one node");
        Arc::new_cyclic(|weak| {
            let nodes = (0..cfg.nodes)
                .map(|id| NodeHw {
                    mem: Arc::new(PhysMem::new(cfg.phys_mem_per_node)),
                    nic: Nic::new(id, cfg.cost.clone(), weak.clone()),
                    down: AtomicBool::new(false),
                })
                .collect();
            IbFabric {
                cfg,
                nodes,
                next_qp: AtomicU64::new(1),
                next_key: AtomicU64::new(1),
                fault: Mutex::new(None),
                fault_active: AtomicBool::new(false),
                fault_ops: AtomicU64::new(0),
            }
        })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The fabric-wide cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cfg.cost
    }

    /// The NIC of node `n`.
    pub fn nic(&self, n: NodeId) -> &Nic {
        &self.nodes[n].nic
    }

    /// Checked NIC access.
    pub fn try_nic(&self, n: NodeId) -> VerbsResult<&Nic> {
        self.nodes
            .get(n)
            .map(|hw| &hw.nic)
            .ok_or(VerbsError::BadNode { node: n })
    }

    /// The physical memory of node `n`.
    pub fn mem(&self, n: NodeId) -> &Arc<PhysMem> {
        &self.nodes[n].mem
    }

    /// Marks a node up/down. Operations touching a down node fail with
    /// [`VerbsError::Timeout`] (RC retry exhaustion) — the failure
    /// injection hook used by the fault tests.
    pub fn set_down(&self, n: NodeId, down: bool) {
        self.nodes[n].down.store(down, Ordering::Release);
    }

    /// Whether node `n` is marked down.
    pub fn is_down(&self, n: NodeId) -> bool {
        self.nodes[n].down.load(Ordering::Acquire)
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Installs a fault plan; replaces any previous plan and resets the
    /// fabric-wide operation counter its schedule runs on.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.fault_ops.store(0, Ordering::Relaxed);
        *self.fault.lock() = Some(FaultState::new(plan));
        self.fault_active.store(true, Ordering::Release);
    }

    /// Removes the installed fault plan (in-flight breakage — broken QPs,
    /// down nodes — stays; only future injections stop).
    pub fn clear_fault_plan(&self) {
        self.fault_active.store(false, Ordering::Release);
        *self.fault.lock() = None;
    }

    /// Counts of faults the installed plan has fired so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault
            .lock()
            .as_ref()
            .map(|s| s.stats())
            .unwrap_or_default()
    }

    /// The injection point: every verb calls this once per work request
    /// `src → dst` (posted on `qp` when one is identified), *before* any
    /// side effect. Applies scheduled node crash/restart transitions and
    /// marks the victim QP pair broken for [`FaultAction::BreakQp`].
    pub fn fault_check(&self, src: NodeId, dst: NodeId, qp: Option<&Qp>) -> FaultAction {
        if !self.fault_active.load(Ordering::Acquire) {
            return FaultAction::None;
        }
        let (action, power) = {
            let mut guard = self.fault.lock();
            let Some(state) = guard.as_mut() else {
                return FaultAction::None;
            };
            state.check(&self.fault_ops, src, dst, qp.map(|q| q.id))
        };
        for n in power.crash {
            self.set_down(n, true);
        }
        for n in power.restart {
            self.set_down(n, false);
        }
        if action == FaultAction::BreakQp {
            if let Some(qp) = qp {
                self.break_qp_pair(qp);
            }
        }
        action
    }

    /// The *ack-leg* injection point: atomics call this once per work
    /// request after the remote apply has landed. Only
    /// [`FaultRule::DropAtomicAck`](crate::FaultRule::DropAtomicAck)
    /// rules participate and the fabric-wide operation counter is left
    /// untouched, so installing ack rules never shifts an existing
    /// op-scheduled crash/break schedule.
    pub fn fault_check_ack(&self, src: NodeId, dst: NodeId) -> FaultAction {
        if !self.fault_active.load(Ordering::Acquire) {
            return FaultAction::None;
        }
        let mut guard = self.fault.lock();
        let Some(state) = guard.as_mut() else {
            return FaultAction::None;
        };
        state.check_ack(src, dst)
    }

    /// Moves a QP and its connected peer into the error state; further
    /// posts on either end fail with
    /// [`VerbsError::QpBroken`](crate::VerbsError::QpBroken) until the
    /// layer above re-establishes the connection.
    pub fn break_qp_pair(&self, qp: &Qp) {
        qp.set_broken(true);
        if let Some((peer_node, peer_qp)) = *qp.peer.lock() {
            if let Ok(nic) = self.try_nic(peer_node) {
                if let Ok(p) = nic.qp(peer_qp) {
                    p.set_broken(true);
                }
            }
        }
    }

    /// Allocates a fabric-unique QP number.
    pub(crate) fn alloc_qp_id(&self) -> u64 {
        self.next_qp.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates a fabric-unique MR key.
    pub(crate) fn alloc_key(&self) -> u32 {
        let k = self.next_key.fetch_add(1, Ordering::Relaxed);
        u32::try_from(k).expect("key space exhausted")
    }

    /// Creates a connected RC QP pair between nodes `a` and `b`, each with
    /// its own fresh CQs and receive queue.
    pub fn rc_pair(&self, a: NodeId, b: NodeId) -> (Arc<Qp>, Arc<Qp>) {
        let qa = self.nic(a).create_qp(QpType::Rc);
        let qb = self.nic(b).create_qp(QpType::Rc);
        self.connect(&qa, &qb);
        (qa, qb)
    }

    /// Connects two RC/UC QPs.
    pub fn connect(&self, a: &Arc<Qp>, b: &Arc<Qp>) {
        assert_ne!(a.typ, QpType::Ud, "UD QPs are connectionless");
        assert_eq!(a.typ, b.typ, "QP types must match");
        *a.peer.lock() = Some((b.node, b.id));
        *b.peer.lock() = Some((a.node, a.id));
    }

    /// Closes every CQ on every node, releasing blocked pollers.
    pub fn shutdown(&self) {
        for hw in &self.nodes {
            hw.nic.close_all_cqs();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_builds_and_indexes() {
        let f = IbFabric::new(IbConfig::with_nodes(3));
        assert_eq!(f.num_nodes(), 3);
        assert!(f.try_nic(2).is_ok());
        assert!(matches!(f.try_nic(3), Err(VerbsError::BadNode { node: 3 })));
        assert!(!f.is_down(0));
        f.set_down(0, true);
        assert!(f.is_down(0));
    }

    #[test]
    fn rc_pair_is_connected() {
        let f = IbFabric::new(IbConfig::with_nodes(2));
        let (qa, qb) = f.rc_pair(0, 1);
        assert_eq!(qa.peer().unwrap(), (1, qb.id));
        assert_eq!(qb.peer().unwrap(), (0, qa.id));
        assert_ne!(qa.id, qb.id);
    }
}
