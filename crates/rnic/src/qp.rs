//! Queue pairs and receive queues.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cq::Cq;
use crate::error::{VerbsError, VerbsResult};
use crate::fabric::NodeId;
use crate::verbs::Sge;

/// Fabric-unique queue pair number.
pub type QpId = u64;

/// Transport type of a QP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpType {
    /// Reliable connection: acked, ordered, supports one-sided + atomics.
    Rc,
    /// Unreliable connection: connection-oriented, no acks; supports
    /// one-sided writes but not reads/atomics.
    Uc,
    /// Unreliable datagram: connectionless two-sided only, one MTU max.
    Ud,
}

/// A posted receive buffer.
#[derive(Debug, Clone)]
pub struct RecvEntry {
    /// Caller-chosen id returned in the receive completion.
    pub wr_id: u64,
    /// Target buffer for incoming payloads. `None` posts a pure credit
    /// (LITE's IMM buffers: write-imm consumes a credit but carries its
    /// payload in the RDMA write itself).
    pub sge: Option<Sge>,
}

/// A receive queue, possibly shared between QPs (SRQ semantics).
#[derive(Default)]
pub struct RecvQueue {
    q: Mutex<VecDeque<RecvEntry>>,
}

impl RecvQueue {
    /// Creates an empty receive queue.
    pub fn new() -> Self {
        RecvQueue {
            q: Mutex::new(VecDeque::new()),
        }
    }

    /// Posts a receive entry.
    pub fn post(&self, entry: RecvEntry) {
        self.q.lock().push_back(entry);
    }

    /// Consumes the next posted entry (the sending NIC does this).
    pub fn consume(&self) -> VerbsResult<RecvEntry> {
        self.q
            .lock()
            .pop_front()
            .ok_or(VerbsError::ReceiverNotReady)
    }

    /// Posted entries outstanding.
    pub fn depth(&self) -> usize {
        self.q.lock().len()
    }
}

/// A queue pair.
///
/// The send queue itself needs no structure in the simulation (requests
/// execute inline through the NIC's FCFS resources); the QP carries
/// identity, connection state, and its attached queues.
pub struct Qp {
    /// Fabric-unique id.
    pub id: QpId,
    /// Node owning this QP.
    pub node: NodeId,
    /// Transport type.
    pub typ: QpType,
    /// Send completion queue.
    pub send_cq: Arc<Cq>,
    /// Receive completion queue (shared with other QPs under LITE).
    pub recv_cq: Arc<Cq>,
    /// Receive queue (shareable — SRQ).
    pub rq: Arc<RecvQueue>,
    /// Connected peer, for RC/UC.
    pub peer: Mutex<Option<(NodeId, QpId)>>,
    /// Error state: a broken QP rejects every post with
    /// [`VerbsError::QpBroken`] until destroyed and replaced (real RC
    /// QPs enter the error state after retry exhaustion and must be
    /// torn down and reconnected).
    broken: AtomicBool,
    /// Last remote-delivery stamp issued on this QP (RC/UC process WQEs
    /// of one QP strictly in order; the fluid resource model alone would
    /// let a cheap later WQE overtake an expensive earlier one).
    last_delivery: AtomicU64,
}

impl Qp {
    /// Creates a QP (used by the NIC; applications go through
    /// `Nic::create_qp`).
    pub(crate) fn new(
        id: QpId,
        node: NodeId,
        typ: QpType,
        send_cq: Arc<crate::cq::Cq>,
        recv_cq: Arc<crate::cq::Cq>,
        rq: Arc<RecvQueue>,
    ) -> Qp {
        Qp {
            id,
            node,
            typ,
            send_cq,
            recv_cq,
            rq,
            peer: Mutex::new(None),
            broken: AtomicBool::new(false),
            last_delivery: AtomicU64::new(0),
        }
    }

    /// Moves the QP into (or out of) the error state.
    pub fn set_broken(&self, broken: bool) {
        self.broken.store(broken, Ordering::Release);
    }

    /// Whether the QP is in the error state.
    pub fn is_broken(&self) -> bool {
        self.broken.load(Ordering::Acquire)
    }

    /// Window within which per-QP FIFO ordering is enforced. Ops whose
    /// stamps land further apart than this are causally independent in
    /// the simulation (they were produced by threads whose virtual clocks
    /// have drifted apart); clamping across such gaps would let a
    /// far-future post block a present one — a simulation artifact, not
    /// RC semantics.
    const ORDER_WINDOW: u64 = 50_000;

    /// Clamps a computed delivery stamp to be monotone on this QP
    /// (per-QP FIFO, the RC/UC ordering guarantee), within
    /// [`Self::ORDER_WINDOW`].
    pub(crate) fn order_delivery(&self, stamp: u64) -> u64 {
        let mut cur = self.last_delivery.load(Ordering::Relaxed);
        loop {
            let next = if cur > stamp + Self::ORDER_WINDOW {
                stamp // independent epoch: no clamp, horizon unchanged
            } else {
                stamp.max(cur + 1)
            };
            let store = next.max(cur);
            match self.last_delivery.compare_exchange_weak(
                cur,
                store,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return next,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Returns the connected peer or an error for unconnected RC/UC QPs.
    pub fn peer(&self) -> VerbsResult<(NodeId, QpId)> {
        self.peer.lock().ok_or(VerbsError::BadQp { qp: self.id })
    }

    /// Whether this QP supports one-sided reads and atomics.
    pub fn supports_read_atomic(&self) -> bool {
        self.typ == QpType::Rc
    }

    /// Whether this QP supports one-sided writes.
    pub fn supports_write(&self) -> bool {
        matches!(self.typ, QpType::Rc | QpType::Uc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_delivery_is_monotone() {
        let qp = Qp::new(
            9,
            0,
            QpType::Rc,
            Arc::new(Cq::new()),
            Arc::new(Cq::new()),
            Arc::new(RecvQueue::new()),
        );
        assert_eq!(qp.order_delivery(100), 100);
        assert_eq!(qp.order_delivery(50), 101, "late cheap WQE cannot overtake");
        assert_eq!(qp.order_delivery(500), 500);
        // A stamp far in the past of the horizon is causally independent:
        // it passes through unclamped and leaves the horizon alone.
        qp.order_delivery(10_000_000);
        assert_eq!(qp.order_delivery(1_000), 1_000);
        assert_eq!(qp.order_delivery(10_000_100), 10_000_100);
    }

    #[test]
    fn recv_queue_fifo() {
        let rq = RecvQueue::new();
        rq.post(RecvEntry {
            wr_id: 1,
            sge: None,
        });
        rq.post(RecvEntry {
            wr_id: 2,
            sge: None,
        });
        assert_eq!(rq.depth(), 2);
        assert_eq!(rq.consume().unwrap().wr_id, 1);
        assert_eq!(rq.consume().unwrap().wr_id, 2);
        assert!(matches!(rq.consume(), Err(VerbsError::ReceiverNotReady)));
    }

    #[test]
    fn qp_capabilities() {
        let mk = |typ| {
            Qp::new(
                1,
                0,
                typ,
                Arc::new(Cq::new()),
                Arc::new(Cq::new()),
                Arc::new(RecvQueue::new()),
            )
        };
        assert!(mk(QpType::Rc).supports_read_atomic());
        assert!(!mk(QpType::Ud).supports_write());
        assert!(mk(QpType::Uc).supports_write());
        assert!(!mk(QpType::Uc).supports_read_atomic());
        assert!(matches!(
            mk(QpType::Rc).peer(),
            Err(VerbsError::BadQp { qp: 1 })
        ));
    }
}
