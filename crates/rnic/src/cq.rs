//! Completion queues.
//!
//! A [`Cq`] is a thread-safe FIFO of [`Wc`] entries. Completions are pushed
//! by whichever thread executed the work (for one-sided operations that is
//! the requester; for receives it is the sender acting as the remote NIC's
//! DMA engine) and popped by software polling.
//!
//! Virtual-time semantics: each entry carries `ready_at`. A poller that
//! pops an entry *joins* its clock with that stamp. Polling cost is
//! charged per poll; busy-polling between entries can additionally charge
//! the idle gap as CPU time (`spin`), which is how we model HERD/FaSST's
//! busy pollers versus LITE's adaptive poller (Fig 13).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use simnet::Ctx;

use crate::cost::CostModel;
use crate::verbs::Wc;

/// Heap entry ordering completions by virtual readiness (the hardware
/// raises CQEs in completion-time order, which is stamp order here —
/// real-thread push order is an artifact of the simulation).
struct Entry(Reverse<(u64, u64)>, Wc);

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

/// A completion queue.
pub struct Cq {
    q: Mutex<(BinaryHeap<Entry>, u64)>,
    cv: Condvar,
    closed: AtomicBool,
}

impl Cq {
    /// Creates an empty CQ.
    pub fn new() -> Self {
        Cq {
            q: Mutex::new((BinaryHeap::new(), 0)),
            cv: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    /// Hardware side: deposits a completion.
    pub fn push(&self, wc: Wc) {
        let mut q = self.q.lock();
        let seq = q.1;
        q.1 += 1;
        q.0.push(Entry(Reverse((wc.ready_at, seq)), wc));
        self.cv.notify_all();
    }

    /// Marks the CQ closed (fabric shutdown); wakes all pollers.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Whether the CQ has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Entries currently queued.
    pub fn depth(&self) -> usize {
        self.q.lock().0.len()
    }

    /// Non-blocking poll of up to `max` completions. Charges one poll's
    /// CPU cost and joins the caller's clock with each entry's stamp.
    pub fn poll(&self, ctx: &mut Ctx, cost: &CostModel, max: usize) -> Vec<Wc> {
        let mut q = self.q.lock();
        if q.0.is_empty() {
            drop(q);
            ctx.work(cost.cq_poll_empty_ns);
            return Vec::new();
        }
        let n = q.0.len().min(max);
        let mut out: Vec<Wc> = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(q.0.pop().expect("checked len").1);
        }
        drop(q);
        for wc in &out {
            ctx.wait_until(wc.ready_at);
        }
        ctx.work(cost.cq_poll_ns * out.len() as u64);
        out
    }

    /// Blocking poll of one completion.
    ///
    /// `spin` selects the CPU model: `true` charges the whole wait as busy
    /// CPU (a dedicated busy-polling thread); `false` charges only the
    /// final poll (an adaptive/sleeping poller).
    ///
    /// Returns `None` if the CQ is closed or `timeout` (host wall time,
    /// a liveness bound for failure tests) expires.
    pub fn poll_blocking(
        &self,
        ctx: &mut Ctx,
        cost: &CostModel,
        spin: bool,
        timeout: Duration,
    ) -> Option<Wc> {
        let mut q = self.q.lock();
        loop {
            if let Some(Entry(_, wc)) = q.0.pop() {
                drop(q);
                if spin {
                    ctx.spin_until(wc.ready_at);
                } else {
                    ctx.wait_until(wc.ready_at);
                }
                ctx.work(cost.cq_poll_ns);
                return Some(wc);
            }
            if self.is_closed() {
                return None;
            }
            if self.cv.wait_for(&mut q, timeout).timed_out() {
                return None;
            }
        }
    }
}

impl Default for Cq {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verbs::WcOpcode;
    use std::sync::Arc;

    fn wc(id: u64, at: u64) -> Wc {
        Wc::new(id, WcOpcode::RdmaWrite, 0, at)
    }

    #[test]
    fn poll_joins_clock() {
        let cq = Cq::new();
        let cost = CostModel::default();
        let mut ctx = Ctx::new();
        cq.push(wc(1, 5_000));
        cq.push(wc(2, 6_000));
        let out = cq.poll(&mut ctx, &cost, 16);
        assert_eq!(out.len(), 2);
        assert!(ctx.now() >= 6_000);
        // Empty poll charges the empty cost only.
        let before = ctx.now();
        assert!(cq.poll(&mut ctx, &cost, 16).is_empty());
        assert_eq!(ctx.now(), before + cost.cq_poll_empty_ns);
    }

    #[test]
    fn blocking_poll_wakes_on_push() {
        let cq = Arc::new(Cq::new());
        let cost = CostModel::default();
        let c2 = Arc::clone(&cq);
        let h = std::thread::spawn(move || {
            let mut ctx = Ctx::new();
            c2.poll_blocking(
                &mut ctx,
                &CostModel::default(),
                false,
                Duration::from_secs(5),
            )
            .expect("completion arrives")
        });
        std::thread::sleep(Duration::from_millis(20));
        cq.push(wc(7, 1234));
        let got = h.join().unwrap();
        assert_eq!(got.wr_id, 7);
        let _ = cost;
    }

    #[test]
    fn blocking_poll_times_out() {
        let cq = Cq::new();
        let mut ctx = Ctx::new();
        let got = cq.poll_blocking(
            &mut ctx,
            &CostModel::default(),
            false,
            Duration::from_millis(10),
        );
        assert!(got.is_none());
    }

    #[test]
    fn close_wakes_pollers() {
        let cq = Arc::new(Cq::new());
        let c2 = Arc::clone(&cq);
        let h = std::thread::spawn(move || {
            let mut ctx = Ctx::new();
            c2.poll_blocking(
                &mut ctx,
                &CostModel::default(),
                false,
                Duration::from_secs(30),
            )
        });
        std::thread::sleep(Duration::from_millis(10));
        cq.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn spin_charges_idle_gap() {
        let cq = Cq::new();
        let cost = CostModel::default();
        let mut ctx = Ctx::new();
        cq.push(wc(1, 10_000));
        let got = cq
            .poll_blocking(&mut ctx, &cost, true, Duration::from_secs(1))
            .unwrap();
        assert_eq!(got.wr_id, 1);
        assert!(
            ctx.cpu.total() >= 10_000,
            "spin charged {}",
            ctx.cpu.total()
        );
    }
}
