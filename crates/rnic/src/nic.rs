//! The per-node RNIC: MR registry, QP registry, SRAM caches, request
//! engine, and the implementation of every verb.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, RwLock};
use simnet::{Ctx, Lru, Nanos, Resource};
use smem::{AddrSpace, Chunk, PhysMem, PAGE_SHIFT, PAGE_SIZE};

use crate::cost::CostModel;
use crate::cq::Cq;
use crate::error::{VerbsError, VerbsResult};
use crate::fabric::{IbFabric, NodeId};
use crate::fault::FaultAction;
use crate::qp::{Qp, QpId, QpType, RecvEntry, RecvQueue};
use crate::verbs::{Access, RemoteAddr, Sge, Wc, WcOpcode};

/// How a registered MR addresses memory.
enum MrKind {
    /// User-space MR: virtual addresses resolved through a page table.
    Virt {
        space: Arc<AddrSpace>,
        base: u64,
        len: u64,
    },
    /// Kernel physical MR (LITE's global MR): addresses are physical.
    Phys { base: u64, len: u64 },
}

struct MrInner {
    key: u32,
    kind: MrKind,
    access: Access,
    /// Pin-free (lazy) MR: pages pin on first datapath touch instead of
    /// at registration; this set holds the vpns faulted in so far.
    /// `None` for eagerly pinned and physical MRs.
    lazy_pins: Option<Mutex<BTreeSet<u64>>>,
}

/// A registered memory region handle.
///
/// In this simulation `lkey == rkey == key` (as on much real hardware,
/// where both name the same MR context).
#[derive(Clone)]
pub struct Mr {
    inner: Arc<MrInner>,
    node: NodeId,
}

impl Mr {
    /// Local key.
    pub fn lkey(&self) -> u32 {
        self.inner.key
    }

    /// Remote key.
    pub fn rkey(&self) -> u32 {
        self.inner.key
    }

    /// Node the MR lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registered length in bytes.
    pub fn len(&self) -> u64 {
        match &self.inner.kind {
            MrKind::Virt { len, .. } | MrKind::Phys { len, .. } => *len,
        }
    }

    /// Whether the region is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Base address (virtual for user MRs, physical for global MRs).
    pub fn base(&self) -> u64 {
        match &self.inner.kind {
            MrKind::Virt { base, .. } | MrKind::Phys { base, .. } => *base,
        }
    }
}

struct Caches {
    /// MR key table: key -> (). Capacity `mr_cache_entries`.
    mr_keys: Lru<u32, ()>,
    /// PTE cache: (key, vpn) -> (). Capacity `pte_cache_entries`.
    ptes: Lru<(u32, u64), ()>,
    /// QP context cache: qpn -> (). Capacity `qp_cache_entries`.
    qpc: Lru<u64, ()>,
}

/// Aggregate NIC statistics for assertions and reports.
#[derive(Debug, Clone, Default)]
pub struct NicStats {
    /// One-sided + atomic operations issued from this NIC.
    pub one_sided_ops: u64,
    /// Two-sided sends issued from this NIC.
    pub send_ops: u64,
    /// Payload bytes transmitted.
    pub bytes_tx: u64,
    /// MR-key cache hits/misses.
    pub mr_hits: u64,
    /// MR-key cache misses.
    pub mr_misses: u64,
    /// PTE cache hits.
    pub pte_hits: u64,
    /// PTE cache misses.
    pub pte_misses: u64,
    /// QP-context cache misses.
    pub qp_misses: u64,
    /// First-touch page faults served for lazily registered MRs.
    pub page_faults: u64,
    /// Registered MRs currently live.
    pub live_mrs: usize,
    /// QPs currently live.
    pub live_qps: usize,
}

/// One simulated RNIC.
pub struct Nic {
    node: NodeId,
    cost: CostModel,
    fabric: Weak<IbFabric>,
    /// WQE processing engine (FCFS).
    engine: Resource,
    /// Egress link.
    tx: Resource,
    /// Ingress link (cut-through: contended only when several senders
    /// target this NIC at once).
    rx: Resource,
    caches: Mutex<Caches>,
    mrs: RwLock<HashMap<u32, Arc<MrInner>>>,
    qps: RwLock<HashMap<QpId, Arc<Qp>>>,
    one_sided_ops: AtomicU64,
    send_ops: AtomicU64,
    bytes_tx: AtomicU64,
    page_faults: AtomicU64,
    /// Responder-side exactly-once filter for *tagged* atomics: per
    /// requester node, a sliding window of (sequence → old value). A
    /// retried atomic whose first attempt already applied (its ack leg
    /// was lost) hits the memo and gets its original old value back
    /// instead of applying twice. Keyed by the requester's per-logical-
    /// op sequence, which the layer above must keep stable across retry
    /// attempts of the same logical op.
    atomic_dedup: Mutex<HashMap<NodeId, BTreeMap<u64, u64>>>,
}

/// Per-source window of remembered atomic sequences. Sequences are
/// monotone per source, so the oldest entry is the smallest key; the
/// window only needs to out-last the deepest retry pipeline (one
/// in-flight logical atomic per requester context).
const ATOMIC_MEMO_WINDOW: usize = 1024;

/// Local buffer resolved to physical fragments.
struct Resolved {
    chunks: Vec<Chunk>,
    penalty: Nanos,
}

/// One write work request inside a doorbell batch
/// ([`Nic::post_write_many`]).
#[derive(Debug, Clone)]
pub struct WritePost {
    /// Caller-chosen id returned in the (signaled) send completion.
    pub wr_id: u64,
    /// Local payload description.
    pub sge: Sge,
    /// Remote destination.
    pub remote: RemoteAddr,
    /// Immediate data (consumes a remote receive credit when present).
    pub imm: Option<u32>,
    /// Whether to generate a send-CQ completion.
    pub signaled: bool,
}

/// Timing of a one-sided write, for baselines that detect incoming data
/// by polling remote memory (HERD, FaRM) rather than a CQ.
#[derive(Debug, Clone, Copy)]
pub struct WriteOutcome {
    /// When the local completion (RC ack) is observable.
    pub completion: Nanos,
    /// When the data is visible in remote memory.
    pub remote_visible: Nanos,
}

impl Nic {
    pub(crate) fn new(node: NodeId, cost: CostModel, fabric: Weak<IbFabric>) -> Self {
        let caches = Caches {
            mr_keys: Lru::new(cost.mr_cache_entries),
            ptes: Lru::new(cost.pte_cache_entries),
            qpc: Lru::new(cost.qp_cache_entries),
        };
        // Pipeline windows: the request engine accepts a deep WQE queue
        // (it processes WQEs from many QPs out of order, so a request
        // scheduled far ahead by ingress queueing never blocks an
        // independent one); the wire has NIC buffering worth tens of
        // microseconds.
        let engine_slack = 64_000;
        let tx_slack = cost.link_time(96 * 1024);
        Nic {
            node,
            cost,
            fabric,
            engine: Resource::with_slack("nic-engine", engine_slack),
            tx: Resource::with_slack("nic-tx", tx_slack),
            rx: Resource::with_slack("nic-rx", tx_slack),
            caches: Mutex::new(caches),
            mrs: RwLock::new(HashMap::new()),
            qps: RwLock::new(HashMap::new()),
            one_sided_ops: AtomicU64::new(0),
            send_ops: AtomicU64::new(0),
            bytes_tx: AtomicU64::new(0),
            page_faults: AtomicU64::new(0),
            atomic_dedup: Mutex::new(HashMap::new()),
        }
    }

    /// This NIC's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    fn fabric(&self) -> Arc<IbFabric> {
        self.fabric.upgrade().expect("fabric alive")
    }

    fn mem(&self) -> Arc<PhysMem> {
        Arc::clone(self.fabric().mem(self.node))
    }

    /// Snapshot of counters and cache statistics.
    pub fn stats(&self) -> NicStats {
        let c = self.caches.lock();
        NicStats {
            one_sided_ops: self.one_sided_ops.load(Ordering::Relaxed),
            send_ops: self.send_ops.load(Ordering::Relaxed),
            bytes_tx: self.bytes_tx.load(Ordering::Relaxed),
            mr_hits: c.mr_keys.hits(),
            mr_misses: c.mr_keys.misses(),
            pte_hits: c.ptes.hits(),
            pte_misses: c.ptes.misses(),
            qp_misses: c.qpc.misses(),
            page_faults: self.page_faults.load(Ordering::Relaxed),
            live_mrs: self.mrs.read().len(),
            live_qps: self.qps.read().len(),
        }
    }

    /// Resets queueing state between experiments (caches keep warmth).
    pub fn reset_resources(&self) {
        self.engine.reset();
        self.tx.reset();
        self.rx.reset();
    }

    /// Receive-side arrival: the last byte of a `len`-byte transfer whose
    /// first byte hits this NIC at `first_byte`. Cut-through: an
    /// uncontended receive finishes exactly one serialization after the
    /// first byte; competing senders queue on the ingress link.
    pub(crate) fn rx_arrival(&self, first_byte: Nanos, len: usize) -> Nanos {
        self.rx
            .acquire(first_byte, self.cost.link_time(len as u64))
            .finish
    }

    // ------------------------------------------------------------------
    // Registration
    // ------------------------------------------------------------------

    /// Registers a user-space MR over `[addr, addr+len)` in `space`,
    /// pinning every page (the Figure 8 cost).
    pub fn register_mr(
        &self,
        ctx: &mut Ctx,
        space: &Arc<AddrSpace>,
        addr: u64,
        len: u64,
        access: Access,
    ) -> VerbsResult<Mr> {
        let pages = space.pin_range(addr, len)?;
        ctx.work(self.cost.reg_mr_base_ns + self.cost.pin_page_ns * pages as u64);
        let key = self.fabric().alloc_key();
        let inner = Arc::new(MrInner {
            key,
            kind: MrKind::Virt {
                space: Arc::clone(space),
                base: addr,
                len,
            },
            access,
            lazy_pins: None,
        });
        self.mrs.write().insert(key, inner.clone());
        Ok(Mr {
            inner,
            node: self.node,
        })
    }

    /// Registers a user-space MR in pin-free mode (ODP / NP-RDMA style):
    /// no page is pinned up front, so the cost is O(1) in the region size.
    /// Pages pin on first datapath touch — the resolve paths emulate the
    /// NIC page fault, charging [`CostModel::fault_page_ns`] per faulted
    /// page — and deregistration unpins only what actually faulted in.
    pub fn register_mr_lazy(
        &self,
        ctx: &mut Ctx,
        space: &Arc<AddrSpace>,
        addr: u64,
        len: u64,
        access: Access,
    ) -> VerbsResult<Mr> {
        // Bounds must still be mapped; only the pinning is deferred.
        space.translate(addr)?;
        space.translate(addr + len.max(1) - 1)?;
        ctx.work(self.cost.reg_mr_base_ns);
        let key = self.fabric().alloc_key();
        let inner = Arc::new(MrInner {
            key,
            kind: MrKind::Virt {
                space: Arc::clone(space),
                base: addr,
                len,
            },
            access,
            lazy_pins: Some(Mutex::new(BTreeSet::new())),
        });
        self.mrs.write().insert(key, inner.clone());
        Ok(Mr {
            inner,
            node: self.node,
        })
    }

    /// Registers a *physical* MR — the kernel-only verb LITE builds on
    /// (§4.1). No pinning, no page-table involvement: O(1) cost regardless
    /// of size.
    pub fn register_phys_mr(
        &self,
        ctx: &mut Ctx,
        base: u64,
        len: u64,
        access: Access,
    ) -> VerbsResult<Mr> {
        ctx.work(self.cost.reg_mr_base_ns);
        let key = self.fabric().alloc_key();
        let inner = Arc::new(MrInner {
            key,
            kind: MrKind::Phys { base, len },
            access,
            lazy_pins: None,
        });
        self.mrs.write().insert(key, inner.clone());
        Ok(Mr {
            inner,
            node: self.node,
        })
    }

    /// Deregisters an MR, unpinning user pages.
    ///
    /// Deregistration is continue-and-collect: the MR identity (registry
    /// entry and key-cache line) dies first and unconditionally, then
    /// every page is unpinned individually, so an unpin failure mid-list
    /// can neither resurrect the MR nor leave later pages pinned. The
    /// first unpin error, if any, is returned after the sweep completes.
    pub fn deregister_mr(&self, ctx: &mut Ctx, mr: &Mr) -> VerbsResult<()> {
        let removed = self
            .mrs
            .write()
            .remove(&mr.inner.key)
            .ok_or(VerbsError::BadKey { key: mr.inner.key })?;
        self.caches.lock().mr_keys.remove(&mr.inner.key);
        match &removed.kind {
            MrKind::Virt { space, base, len } => {
                let (unpinned, first_err) = match &removed.lazy_pins {
                    // Lazy MR: only the faulted-in pages hold pins.
                    Some(pinned) => {
                        let vpns: Vec<u64> =
                            std::mem::take(&mut *pinned.lock()).into_iter().collect();
                        Self::unpin_each(space, vpns.into_iter())
                    }
                    None => {
                        // Fast path: the whole range unpins atomically.
                        match space.unpin_range(*base, *len) {
                            Ok(pages) => (pages as u64, None),
                            // A page was unpinned behind our back: fall
                            // back to per-page sweep so the rest of the
                            // range is still released.
                            Err(_) => {
                                let first = *base >> PAGE_SHIFT;
                                let last = (*base + (*len).max(1) - 1) >> PAGE_SHIFT;
                                Self::unpin_each(space, first..=last)
                            }
                        }
                    }
                };
                ctx.work(self.cost.dereg_mr_base_ns + self.cost.unpin_page_ns * unpinned);
                if let Some(e) = first_err {
                    return Err(e.into());
                }
            }
            MrKind::Phys { .. } => ctx.work(self.cost.dereg_mr_base_ns),
        }
        Ok(())
    }

    /// Unpins each page (by vpn), continuing past failures; returns the
    /// number of pages released and the first error encountered.
    fn unpin_each(
        space: &Arc<AddrSpace>,
        vpns: impl Iterator<Item = u64>,
    ) -> (u64, Option<smem::MemError>) {
        let mut unpinned = 0u64;
        let mut first_err = None;
        for vpn in vpns {
            match space.unpin_range(vpn << PAGE_SHIFT, PAGE_SIZE as u64) {
                Ok(_) => unpinned += 1,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        (unpinned, first_err)
    }

    // ------------------------------------------------------------------
    // QPs
    // ------------------------------------------------------------------

    /// Creates a QP with fresh CQs and receive queue.
    pub fn create_qp(&self, typ: QpType) -> Arc<Qp> {
        self.create_qp_with(
            typ,
            Arc::new(Cq::new()),
            Arc::new(Cq::new()),
            Arc::new(RecvQueue::new()),
        )
    }

    /// Creates a QP sharing the given CQs / receive queue (SRQ-style
    /// sharing; LITE attaches all its QPs to one shared recv CQ).
    pub fn create_qp_with(
        &self,
        typ: QpType,
        send_cq: Arc<Cq>,
        recv_cq: Arc<Cq>,
        rq: Arc<RecvQueue>,
    ) -> Arc<Qp> {
        let qp = Arc::new(Qp::new(
            self.fabric().alloc_qp_id(),
            self.node,
            typ,
            send_cq,
            recv_cq,
            rq,
        ));
        self.qps.write().insert(qp.id, Arc::clone(&qp));
        qp
    }

    /// Destroys a QP.
    pub fn destroy_qp(&self, qp: &Arc<Qp>) {
        self.qps.write().remove(&qp.id);
        self.caches.lock().qpc.remove(&qp.id);
    }

    /// Looks up a QP by number.
    pub fn qp(&self, id: QpId) -> VerbsResult<Arc<Qp>> {
        self.qps
            .read()
            .get(&id)
            .cloned()
            .ok_or(VerbsError::BadQp { qp: id })
    }

    /// Posts a receive entry on a QP's receive queue.
    pub fn post_recv(&self, ctx: &mut Ctx, qp: &Qp, entry: RecvEntry) {
        ctx.work(self.cost.post_wr_ns);
        qp.rq.post(entry);
    }

    pub(crate) fn close_all_cqs(&self) {
        for qp in self.qps.read().values() {
            qp.send_cq.close();
            qp.recv_cq.close();
        }
    }

    // ------------------------------------------------------------------
    // SRAM model
    // ------------------------------------------------------------------

    fn touch_mr_key(&self, key: u32) -> Nanos {
        let mut c = self.caches.lock();
        if c.mr_keys.touch(&key).is_some() {
            0
        } else {
            c.mr_keys.insert(key, ());
            self.cost.mr_miss_ns
        }
    }

    fn touch_ptes(&self, key: u32, addr: u64, len: usize) -> Nanos {
        let mut c = self.caches.lock();
        let first = addr >> PAGE_SHIFT;
        let last = (addr + len.max(1) as u64 - 1) >> PAGE_SHIFT;
        let mut pen = 0;
        for vpn in first..=last {
            if c.ptes.touch(&(key, vpn)).is_none() {
                c.ptes.insert((key, vpn), ());
                pen += self.cost.pte_miss_ns;
            }
        }
        pen
    }

    fn touch_qpc(&self, qpn: u64) -> Nanos {
        let mut c = self.caches.lock();
        if c.qpc.touch(&qpn).is_some() {
            0
        } else {
            c.qpc.insert(qpn, ());
            self.cost.qp_miss_ns
        }
    }

    // ------------------------------------------------------------------
    // Address resolution
    // ------------------------------------------------------------------

    fn lookup_mr(&self, key: u32) -> VerbsResult<Arc<MrInner>> {
        self.mrs
            .read()
            .get(&key)
            .cloned()
            .ok_or(VerbsError::BadKey { key })
    }

    /// Emulated NIC page fault for pin-free MRs: pins any page of
    /// `[addr, addr+len)` not yet faulted in and returns the service
    /// penalty (`fault_page_ns` per fault). No-op for eager MRs.
    fn fault_in_lazy(
        &self,
        mr: &MrInner,
        space: &Arc<AddrSpace>,
        addr: u64,
        len: usize,
    ) -> VerbsResult<Nanos> {
        let Some(pinned) = &mr.lazy_pins else {
            return Ok(0);
        };
        let first = addr >> PAGE_SHIFT;
        let last = (addr + len.max(1) as u64 - 1) >> PAGE_SHIFT;
        let mut pen = 0;
        let mut set = pinned.lock();
        for vpn in first..=last {
            if !set.contains(&vpn) {
                space.pin_range(vpn << PAGE_SHIFT, 1)?;
                set.insert(vpn);
                pen += self.cost.fault_page_ns;
                self.page_faults.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(pen)
    }

    /// Resolves a local SGE to physical fragments, charging SRAM
    /// penalties exactly as the hardware would.
    fn resolve_local(&self, sge: &Sge) -> VerbsResult<Resolved> {
        match sge {
            Sge::Virt { lkey, addr, len } => {
                let mr = self.lookup_mr(*lkey)?;
                let MrKind::Virt {
                    space,
                    base,
                    len: mrlen,
                } = &mr.kind
                else {
                    return Err(VerbsError::BadKey { key: *lkey });
                };
                check_bounds(*addr, *len, *base, *mrlen)?;
                let mut penalty = self.touch_mr_key(*lkey);
                penalty += self.touch_ptes(*lkey, *addr, *len);
                penalty += self.fault_in_lazy(&mr, space, *addr, *len)?;
                let chunks = space.translate_range(*addr, *len as u64)?;
                Ok(Resolved { chunks, penalty })
            }
            Sge::Phys { lkey, chunks } => {
                let mr = self.lookup_mr(*lkey)?;
                let MrKind::Phys { base, len: mrlen } = &mr.kind else {
                    return Err(VerbsError::BadKey { key: *lkey });
                };
                for c in chunks {
                    check_bounds(c.addr, c.len as usize, *base, *mrlen)?;
                }
                let penalty = self.touch_mr_key(*lkey);
                Ok(Resolved {
                    chunks: chunks.clone(),
                    penalty,
                })
            }
        }
    }

    /// Resolves a remote address (this NIC acting as the *target* of a
    /// one-sided operation), charging this NIC's SRAM penalties.
    fn resolve_remote(
        &self,
        remote: &RemoteAddr,
        len: usize,
        need_write: bool,
        need_read: bool,
        need_atomic: bool,
    ) -> VerbsResult<Resolved> {
        let mr = self.lookup_mr(remote.rkey)?;
        let a = &mr.access;
        if (need_write && !a.remote_write)
            || (need_read && !a.remote_read)
            || (need_atomic && !a.remote_atomic)
        {
            return Err(VerbsError::AccessDenied { key: remote.rkey });
        }
        match &mr.kind {
            MrKind::Virt {
                space,
                base,
                len: mrlen,
            } => {
                check_bounds(remote.addr, len, *base, *mrlen)?;
                let mut penalty = self.touch_mr_key(remote.rkey);
                penalty += self.touch_ptes(remote.rkey, remote.addr, len);
                penalty += self.fault_in_lazy(&mr, space, remote.addr, len)?;
                let chunks = space.translate_range(remote.addr, len as u64)?;
                Ok(Resolved { chunks, penalty })
            }
            MrKind::Phys { base, len: mrlen } => {
                check_bounds(remote.addr, len, *base, *mrlen)?;
                let penalty = self.touch_mr_key(remote.rkey);
                Ok(Resolved {
                    chunks: vec![Chunk {
                        addr: remote.addr,
                        len: len as u64,
                    }],
                    penalty,
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Data movement between physical fragments
    // ------------------------------------------------------------------

    fn read_fragments(mem: &PhysMem, chunks: &[Chunk]) -> VerbsResult<Vec<u8>> {
        let total: usize = chunks.iter().map(|c| c.len as usize).sum();
        let mut buf = vec![0u8; total];
        let mut off = 0;
        for c in chunks {
            mem.read(c.addr, &mut buf[off..off + c.len as usize])?;
            off += c.len as usize;
        }
        Ok(buf)
    }

    fn write_fragments(mem: &PhysMem, chunks: &[Chunk], data: &[u8]) -> VerbsResult<()> {
        let mut off = 0;
        for c in chunks {
            let n = (c.len as usize).min(data.len() - off);
            mem.write(c.addr, &data[off..off + n])?;
            off += n;
            if off == data.len() {
                break;
            }
        }
        Ok(())
    }

    fn check_up(&self, fabric: &IbFabric, peer: NodeId) -> VerbsResult<()> {
        if fabric.is_down(self.node) || fabric.is_down(peer) {
            return Err(VerbsError::Timeout);
        }
        Ok(())
    }

    /// The per-WR fault gate, run before any side effect: broken-QP
    /// check, the installed fault plan, then node liveness. Injected
    /// delays advance the caller's virtual clock; drops surface as
    /// [`VerbsError::Timeout`] (RC retry exhaustion), breaks as
    /// [`VerbsError::QpBroken`]. Runs *before* `check_up` so the plan's
    /// operation counter keeps advancing while nodes are down — that is
    /// what makes scheduled restarts reachable under retry traffic.
    fn fault_gate(
        &self,
        ctx: &mut Ctx,
        fabric: &IbFabric,
        qp: &Qp,
        peer: NodeId,
    ) -> VerbsResult<()> {
        if qp.is_broken() {
            return Err(VerbsError::QpBroken { qp: qp.id });
        }
        match fabric.fault_check(self.node, peer, Some(qp)) {
            FaultAction::None => {}
            FaultAction::Delay(d) => ctx.wait_until(ctx.now() + d),
            FaultAction::Drop => return Err(VerbsError::Timeout),
            FaultAction::BreakQp => return Err(VerbsError::QpBroken { qp: qp.id }),
        }
        self.check_up(fabric, peer)
    }

    // ------------------------------------------------------------------
    // One-sided verbs
    // ------------------------------------------------------------------

    /// Posts a one-sided RDMA write (optionally with immediate data).
    ///
    /// Executes the whole wire path and returns the completion stamp. The
    /// caller's clock advances only by the post cost — poll the send CQ
    /// (if `signaled`) or [`simnet::ctx::Ctx::wait_until`] the returned
    /// stamp for blocking semantics.
    #[allow(clippy::too_many_arguments)]
    pub fn post_write(
        &self,
        ctx: &mut Ctx,
        qp: &Qp,
        wr_id: u64,
        sge: &Sge,
        remote: RemoteAddr,
        imm: Option<u32>,
        signaled: bool,
    ) -> VerbsResult<Nanos> {
        self.post_write_outcome(ctx, qp, wr_id, sge, remote, imm, signaled)
            .map(|o| o.completion)
    }

    /// Like [`Nic::post_write`], but also reports when the data became
    /// visible in remote memory (for memory-polling receivers).
    #[allow(clippy::too_many_arguments)]
    pub fn post_write_outcome(
        &self,
        ctx: &mut Ctx,
        qp: &Qp,
        wr_id: u64,
        sge: &Sge,
        remote: RemoteAddr,
        imm: Option<u32>,
        signaled: bool,
    ) -> VerbsResult<WriteOutcome> {
        if !qp.supports_write() {
            return Err(VerbsError::BadOpForQpType);
        }
        let fabric = self.fabric();
        let (peer_node, peer_qp) = qp.peer()?;
        self.fault_gate(ctx, &fabric, qp, peer_node)?;
        ctx.work(self.cost.post_wr_ns);
        let len = sge.len();

        // Local NIC: WQE fetch + lkey/PTE resolution, then DMA-read the
        // payload and push it onto the wire.
        let local = self.resolve_local(sge)?;
        let lpen = local.penalty + self.touch_qpc(qp.id);
        let g1 = self
            .engine
            .acquire(ctx.now(), self.cost.nic_engine_ns + lpen);
        let data = Self::read_fragments(&self.mem(), &local.chunks)?;
        let g2 = self.tx.acquire(g1.finish, self.cost.link_time(len as u64));

        // Remote NIC: ingress link, then rkey/PTE resolution and DMA.
        let rnic = fabric.try_nic(peer_node)?;
        let arrive = rnic.rx_arrival(g2.start + self.cost.propagation_ns, len);
        let rres = rnic.resolve_remote(&remote, len, true, false, false)?;
        let rpen = rres.penalty + rnic.touch_qpc(peer_qp);
        let g3 = rnic.engine.acquire(arrive, self.cost.nic_engine_ns + rpen);
        Self::write_fragments(fabric.mem(peer_node), &rres.chunks, &data)?;
        let done = qp.order_delivery(g3.finish);

        // Immediate data consumes a receive credit and surfaces in the
        // remote receive CQ.
        if let Some(imm) = imm {
            let rqp = rnic.qp(peer_qp)?;
            let entry = rqp.rq.consume()?;
            let mut wc = Wc::new(
                entry.wr_id,
                WcOpcode::RecvRdmaWithImm,
                len,
                done + self.cost.recv_handle_ns,
            );
            wc.imm = Some(imm);
            wc.src = Some((self.node, qp.id));
            rqp.recv_cq.push(wc);
        }

        // RC acks; UC completes at the wire.
        let comp = match qp.typ {
            QpType::Rc => done + self.cost.propagation_ns + self.cost.ack_ns,
            _ => g2.finish,
        };
        if signaled {
            let mut wc = Wc::new(wr_id, WcOpcode::RdmaWrite, len, comp);
            wc.imm = imm;
            qp.send_cq.push(wc);
        }
        self.one_sided_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_tx.fetch_add(len as u64, Ordering::Relaxed);
        Ok(WriteOutcome {
            completion: comp,
            remote_visible: done,
        })
    }

    /// Posts a chain of RDMA writes on one QP with a single doorbell.
    ///
    /// The host pays `post_wr_ns` and the QP-context lookup **once** for
    /// the whole chain, and the WQE-engine charges are granted in one
    /// batch ([`Resource::acquire_batch`]) — this is the amortization a
    /// real NIC gets from doorbell batching. Everything downstream of the
    /// engine (wire serialization, remote resolution, delivery ordering,
    /// receive credits) is charged per WQE exactly as in
    /// [`Nic::post_write_outcome`], so a one-element batch is
    /// indistinguishable from a single post apart from the warm-QPC
    /// difference being folded into the first element.
    ///
    /// The batch is atomic with respect to validation: every SGE, remote
    /// address, and receive credit is checked/claimed before any memory
    /// is written or any completion pushed. On failure the claimed
    /// credits are re-posted and the error returned with no side effects.
    pub fn post_write_many(
        &self,
        ctx: &mut Ctx,
        qp: &Qp,
        posts: &[WritePost],
    ) -> VerbsResult<Vec<WriteOutcome>> {
        if posts.is_empty() {
            return Ok(Vec::new());
        }
        if !qp.supports_write() {
            return Err(VerbsError::BadOpForQpType);
        }
        let fabric = self.fabric();
        let (peer_node, peer_qp) = qp.peer()?;
        self.fault_gate(ctx, &fabric, qp, peer_node)?;
        let rnic = fabric.try_nic(peer_node)?;

        // Validation pass: resolve both sides of every WQE and claim all
        // receive credits before touching memory, so a mid-batch failure
        // cannot leave half the chain delivered.
        let mut locals = Vec::with_capacity(posts.len());
        let mut remotes = Vec::with_capacity(posts.len());
        let qpc_pen = self.touch_qpc(qp.id);
        let rqpc_pen = rnic.touch_qpc(peer_qp);
        let mut validate = || -> VerbsResult<()> {
            for (i, p) in posts.iter().enumerate() {
                let len = p.sge.len();
                let local = self.resolve_local(&p.sge)?;
                let rres = rnic.resolve_remote(&p.remote, len, true, false, false)?;
                // The doorbell chain touches the QP context once; only
                // the first WQE can miss.
                let lpen = local.penalty + if i == 0 { qpc_pen } else { 0 };
                let rpen = rres.penalty + if i == 0 { rqpc_pen } else { 0 };
                locals.push((local, lpen));
                remotes.push((rres, rpen));
            }
            Ok(())
        };
        validate()?;
        let rqp = rnic.qp(peer_qp)?;
        let mut credits = Vec::new();
        for p in posts {
            if p.imm.is_some() {
                match rqp.rq.consume() {
                    Ok(entry) => credits.push(entry),
                    Err(e) => {
                        // Roll back: pure credits are interchangeable, so
                        // re-posting in any order restores the queue.
                        for entry in credits {
                            rqp.rq.post(entry);
                        }
                        return Err(e);
                    }
                }
            }
        }

        // One doorbell: a single host post charge, then the engine grants
        // the whole WQE chain back-to-back.
        ctx.work(self.cost.post_wr_ns);
        let services: Vec<Nanos> = locals
            .iter()
            .map(|(_, lpen)| self.cost.nic_engine_ns + lpen)
            .collect();
        let engine_grants = self.engine.acquire_batch(ctx.now(), &services);

        let mut outcomes = Vec::with_capacity(posts.len());
        let mut credits = credits.into_iter();
        let mut total_len = 0u64;
        for (i, p) in posts.iter().enumerate() {
            let len = p.sge.len();
            let (local, _) = &locals[i];
            let (rres, rpen) = &remotes[i];
            let data = Self::read_fragments(&self.mem(), &local.chunks)?;
            let g2 = self
                .tx
                .acquire(engine_grants[i].finish, self.cost.link_time(len as u64));
            let arrive = rnic.rx_arrival(g2.start + self.cost.propagation_ns, len);
            let g3 = rnic.engine.acquire(arrive, self.cost.nic_engine_ns + rpen);
            Self::write_fragments(fabric.mem(peer_node), &rres.chunks, &data)?;
            let done = qp.order_delivery(g3.finish);
            if let Some(imm) = p.imm {
                let entry = credits.next().expect("credit claimed per imm");
                let mut wc = Wc::new(
                    entry.wr_id,
                    WcOpcode::RecvRdmaWithImm,
                    len,
                    done + self.cost.recv_handle_ns,
                );
                wc.imm = Some(imm);
                wc.src = Some((self.node, qp.id));
                rqp.recv_cq.push(wc);
            }
            let comp = match qp.typ {
                QpType::Rc => done + self.cost.propagation_ns + self.cost.ack_ns,
                _ => g2.finish,
            };
            if p.signaled {
                let mut wc = Wc::new(p.wr_id, WcOpcode::RdmaWrite, len, comp);
                wc.imm = p.imm;
                qp.send_cq.push(wc);
            }
            total_len += len as u64;
            outcomes.push(WriteOutcome {
                completion: comp,
                remote_visible: done,
            });
        }
        self.one_sided_ops
            .fetch_add(posts.len() as u64, Ordering::Relaxed);
        self.bytes_tx.fetch_add(total_len, Ordering::Relaxed);
        Ok(outcomes)
    }

    /// Posts a one-sided RDMA read. Data lands in the local SGE buffer.
    pub fn post_read(
        &self,
        ctx: &mut Ctx,
        qp: &Qp,
        wr_id: u64,
        sge: &Sge,
        remote: RemoteAddr,
        signaled: bool,
    ) -> VerbsResult<Nanos> {
        if !qp.supports_read_atomic() {
            return Err(VerbsError::BadOpForQpType);
        }
        let fabric = self.fabric();
        let (peer_node, peer_qp) = qp.peer()?;
        self.fault_gate(ctx, &fabric, qp, peer_node)?;
        ctx.work(self.cost.post_wr_ns);
        let len = sge.len();

        // Request leg: local engine, then the (tiny) request on the wire.
        let local = self.resolve_local(sge)?;
        let lpen = local.penalty + self.touch_qpc(qp.id);
        let g1 = self
            .engine
            .acquire(ctx.now(), self.cost.nic_engine_ns + lpen);
        let arrive_req = g1.finish + self.cost.propagation_ns;

        // Remote NIC resolves and streams the data back.
        let rnic = fabric.try_nic(peer_node)?;
        let rres = rnic.resolve_remote(&remote, len, false, true, false)?;
        let rpen = rres.penalty + rnic.touch_qpc(peer_qp);
        let g3 = rnic
            .engine
            .acquire(arrive_req, self.cost.nic_engine_ns + rpen);
        let data = Self::read_fragments(fabric.mem(peer_node), &rres.chunks)?;
        let g4 = rnic.tx.acquire(g3.finish, self.cost.link_time(len as u64));
        let back = self.rx_arrival(g4.start + self.cost.propagation_ns, len);

        // Local DMA into the destination buffer.
        Self::write_fragments(&self.mem(), &local.chunks, &data)?;
        let comp = back + self.cost.ack_ns;
        if signaled {
            qp.send_cq
                .push(Wc::new(wr_id, WcOpcode::RdmaRead, len, comp));
        }
        self.one_sided_ops.fetch_add(1, Ordering::Relaxed);
        Ok(comp)
    }

    /// One-sided atomic fetch-and-add on a remote 8-byte word. Blocking:
    /// the caller's clock advances to completion; returns the old value.
    pub fn fetch_add(
        &self,
        ctx: &mut Ctx,
        qp: &Qp,
        remote: RemoteAddr,
        delta: u64,
    ) -> VerbsResult<u64> {
        self.atomic_op(ctx, qp, remote, AtomicKind::FetchAdd(delta), None)
    }

    /// One-sided atomic compare-and-swap; returns the old value.
    pub fn cmp_swap(
        &self,
        ctx: &mut Ctx,
        qp: &Qp,
        remote: RemoteAddr,
        expect: u64,
        new: u64,
    ) -> VerbsResult<u64> {
        self.atomic_op(ctx, qp, remote, AtomicKind::CmpSwap(expect, new), None)
    }

    /// [`Self::fetch_add`] tagged with an exactly-once token
    /// `(requester node, per-logical-op sequence)`. The sequence must be
    /// allocated once per *logical* op and reused verbatim on every
    /// retry attempt: the responder memoizes the old value under it, so
    /// a retry after a lost ack returns the original result instead of
    /// applying the delta a second time.
    pub fn fetch_add_tagged(
        &self,
        ctx: &mut Ctx,
        qp: &Qp,
        remote: RemoteAddr,
        delta: u64,
        token: (NodeId, u64),
    ) -> VerbsResult<u64> {
        self.atomic_op(ctx, qp, remote, AtomicKind::FetchAdd(delta), Some(token))
    }

    /// [`Self::cmp_swap`] tagged with an exactly-once token; see
    /// [`Self::fetch_add_tagged`].
    pub fn cmp_swap_tagged(
        &self,
        ctx: &mut Ctx,
        qp: &Qp,
        remote: RemoteAddr,
        expect: u64,
        new: u64,
        token: (NodeId, u64),
    ) -> VerbsResult<u64> {
        self.atomic_op(
            ctx,
            qp,
            remote,
            AtomicKind::CmpSwap(expect, new),
            Some(token),
        )
    }

    fn atomic_memo_get(&self, src: NodeId, seq: u64) -> Option<u64> {
        self.atomic_dedup.lock().get(&src)?.get(&seq).copied()
    }

    fn atomic_memo_put(&self, src: NodeId, seq: u64, old: u64) {
        let mut table = self.atomic_dedup.lock();
        let memo = table.entry(src).or_default();
        memo.insert(seq, old);
        while memo.len() > ATOMIC_MEMO_WINDOW {
            memo.pop_first();
        }
    }

    fn atomic_op(
        &self,
        ctx: &mut Ctx,
        qp: &Qp,
        remote: RemoteAddr,
        kind: AtomicKind,
        token: Option<(NodeId, u64)>,
    ) -> VerbsResult<u64> {
        if !qp.supports_read_atomic() {
            return Err(VerbsError::BadOpForQpType);
        }
        let fabric = self.fabric();
        let (peer_node, peer_qp) = qp.peer()?;
        self.fault_gate(ctx, &fabric, qp, peer_node)?;
        ctx.work(self.cost.post_wr_ns);
        let lpen = self.touch_qpc(qp.id);
        let g1 = self
            .engine
            .acquire(ctx.now(), self.cost.nic_engine_ns + lpen);
        let arrive = g1.finish + self.cost.propagation_ns;
        let rnic = fabric.try_nic(peer_node)?;
        let rres = rnic.resolve_remote(&remote, 8, false, false, true)?;
        let rpen = rres.penalty + rnic.touch_qpc(peer_qp);
        let g3 = rnic.engine.acquire(
            arrive,
            self.cost.nic_engine_ns + self.cost.atomic_extra_ns + rpen,
        );
        let target = rres.chunks[0].addr;
        let mem = fabric.mem(peer_node);
        // Apply through the stamped variants: the completion stamp is
        // taken inside the target page's critical section, so stamps of
        // conflicting atomics are monotone in the order the memory
        // system actually applied them — even when host-thread
        // scheduling reorders the appliers relative to virtual time.
        let comp = g3.finish + self.cost.propagation_ns + self.cost.ack_ns;
        // Exactly-once filter for tagged ops: a retry whose first attempt
        // already applied (its ack leg was lost) short-circuits to the
        // memoized old value — the word is never touched twice.
        if let Some((src, seq)) = token {
            if let Some(old) = rnic.atomic_memo_get(src, seq) {
                ctx.wait_until(comp);
                ctx.work(self.cost.cq_poll_ns);
                self.one_sided_ops.fetch_add(1, Ordering::Relaxed);
                return Ok(old);
            }
        }
        let (old, stamp) = match kind {
            AtomicKind::FetchAdd(d) => mem.fetch_add_u64_stamped(target, d, comp)?,
            AtomicKind::CmpSwap(e, n) => mem.cas_u64_stamped(target, e, n, comp)?,
        };
        // The memo is recorded before the ack-leg gate below: if the ack
        // is dropped, the retry must find the apply it is retrying.
        if let Some((src, seq)) = token {
            rnic.atomic_memo_put(src, seq, old);
        }
        // Response-leg injection point — the apply above is durable, so a
        // Drop here is the lost-ACK window that makes blind retry of a
        // non-idempotent verb double-apply (the request-leg gate cannot
        // model it: it fires before side effects).
        if fabric.fault_check_ack(self.node, peer_node) == FaultAction::Drop {
            return Err(VerbsError::Timeout);
        }
        ctx.wait_until(stamp);
        ctx.work(self.cost.cq_poll_ns);
        self.one_sided_ops.fetch_add(1, Ordering::Relaxed);
        Ok(old)
    }

    // ------------------------------------------------------------------
    // Two-sided verbs
    // ------------------------------------------------------------------

    /// Posts a two-sided send on a connected RC/UC QP.
    pub fn post_send(
        &self,
        ctx: &mut Ctx,
        qp: &Qp,
        wr_id: u64,
        sge: &Sge,
        imm: Option<u32>,
        signaled: bool,
    ) -> VerbsResult<Nanos> {
        let (peer_node, peer_qp) = qp.peer()?;
        self.send_inner(ctx, qp, wr_id, sge, imm, signaled, peer_node, peer_qp, 0)
    }

    /// Posts a UD send to an explicit destination (connectionless).
    pub fn post_send_ud(
        &self,
        ctx: &mut Ctx,
        qp: &Qp,
        wr_id: u64,
        sge: &Sge,
        dest: (NodeId, QpId),
        signaled: bool,
    ) -> VerbsResult<Nanos> {
        if qp.typ != QpType::Ud {
            return Err(VerbsError::BadOpForQpType);
        }
        if sge.len() > self.cost.ud_max_payload {
            return Err(VerbsError::PayloadTooLarge {
                len: sge.len(),
                max: self.cost.ud_max_payload,
            });
        }
        self.send_inner(
            ctx,
            qp,
            wr_id,
            sge,
            None,
            signaled,
            dest.0,
            dest.1,
            self.cost.ud_extra_ns,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn send_inner(
        &self,
        ctx: &mut Ctx,
        qp: &Qp,
        wr_id: u64,
        sge: &Sge,
        imm: Option<u32>,
        signaled: bool,
        peer_node: NodeId,
        peer_qp: QpId,
        extra: Nanos,
    ) -> VerbsResult<Nanos> {
        let fabric = self.fabric();
        self.fault_gate(ctx, &fabric, qp, peer_node)?;
        ctx.work(self.cost.post_wr_ns);
        let len = sge.len();
        let local = self.resolve_local(sge)?;
        let lpen = local.penalty + self.touch_qpc(qp.id);
        let g1 = self
            .engine
            .acquire(ctx.now(), self.cost.nic_engine_ns + lpen + extra);
        let data = Self::read_fragments(&self.mem(), &local.chunks)?;
        let g2 = self.tx.acquire(g1.finish, self.cost.link_time(len as u64));

        let rnic = fabric.try_nic(peer_node)?;
        let arrive = rnic.rx_arrival(g2.start + self.cost.propagation_ns, len);
        let rqp = rnic.qp(peer_qp)?;
        let entry = rqp.rq.consume()?;
        let mut rpen = rnic.touch_qpc(peer_qp) + self.cost.recv_handle_ns;
        // Deliver the payload into the posted buffer. Only the payload
        // prefix of the buffer is resolved/charged — the NIC translates
        // the pages it DMAs into, not the whole posted region.
        if len > 0 {
            let dst = entry
                .sge
                .as_ref()
                .ok_or(VerbsError::RecvBufferTooSmall { need: len, have: 0 })?;
            if dst.len() < len {
                return Err(VerbsError::RecvBufferTooSmall {
                    need: len,
                    have: dst.len(),
                });
            }
            let rres = rnic.resolve_local(&truncate_sge(dst, len))?;
            rpen += rres.penalty;
            Self::write_fragments(fabric.mem(peer_node), &rres.chunks, &data)?;
        }
        let g3 = rnic.engine.acquire(arrive, self.cost.nic_engine_ns + rpen);
        let delivered = qp.order_delivery(g3.finish);
        let mut wc = Wc::new(entry.wr_id, WcOpcode::Recv, len, delivered);
        wc.imm = imm;
        wc.src = Some((self.node, qp.id));
        rqp.recv_cq.push(wc);

        let comp = match qp.typ {
            QpType::Rc => delivered + self.cost.propagation_ns + self.cost.ack_ns,
            _ => g2.finish,
        };
        if signaled {
            qp.send_cq.push(Wc::new(wr_id, WcOpcode::Send, len, comp));
        }
        self.send_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_tx.fetch_add(len as u64, Ordering::Relaxed);
        Ok(comp)
    }
}

enum AtomicKind {
    FetchAdd(u64),
    CmpSwap(u64, u64),
}

/// Restricts an SGE to its first `len` bytes.
fn truncate_sge(sge: &Sge, len: usize) -> Sge {
    match sge {
        Sge::Virt { lkey, addr, len: l } => Sge::Virt {
            lkey: *lkey,
            addr: *addr,
            len: (*l).min(len),
        },
        Sge::Phys { lkey, chunks } => {
            let mut remaining = len as u64;
            let mut out = Vec::new();
            for c in chunks {
                if remaining == 0 {
                    break;
                }
                let take = c.len.min(remaining);
                out.push(Chunk {
                    addr: c.addr,
                    len: take,
                });
                remaining -= take;
            }
            Sge::Phys {
                lkey: *lkey,
                chunks: out,
            }
        }
    }
}

fn check_bounds(addr: u64, len: usize, base: u64, mrlen: u64) -> VerbsResult<()> {
    let end = addr
        .checked_add(len as u64)
        .ok_or(VerbsError::OutOfBounds { addr, len })?;
    if addr < base || end > base + mrlen {
        return Err(VerbsError::OutOfBounds { addr, len });
    }
    Ok(())
}
