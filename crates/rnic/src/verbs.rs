//! Verbs wire-level types: scatter/gather entries, remote addresses,
//! access flags, and work completions.

use simnet::Nanos;
use smem::Chunk;

use crate::fabric::NodeId;
use crate::qp::QpId;

/// MR access flags (subset of `ibv_access_flags`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Remote peers may RDMA-read.
    pub remote_read: bool,
    /// Remote peers may RDMA-write.
    pub remote_write: bool,
    /// Remote peers may execute atomics.
    pub remote_atomic: bool,
}

impl Access {
    /// Read-only remote access.
    pub const RO: Access = Access {
        remote_read: true,
        remote_write: false,
        remote_atomic: false,
    };
    /// Full remote access.
    pub const RW: Access = Access {
        remote_read: true,
        remote_write: true,
        remote_atomic: true,
    };
    /// No remote access (local-only MR).
    pub const LOCAL: Access = Access {
        remote_read: false,
        remote_write: false,
        remote_atomic: false,
    };
}

/// A local buffer reference in a work request.
///
/// `Virt` is the native user-space path: the NIC resolves the virtual
/// address through the MR's address space, touching its PTE cache.
/// `Phys` is the kernel path LITE uses (§4.1): the caller supplies
/// physically-consecutive chunks under the node's *global physical MR*,
/// so no PTE traffic occurs at all.
#[derive(Debug, Clone)]
pub enum Sge {
    /// Virtual-address buffer inside a registered user MR.
    Virt {
        /// lkey of the MR the buffer lives in.
        lkey: u32,
        /// Starting virtual address.
        addr: u64,
        /// Length in bytes.
        len: usize,
    },
    /// Physical chunk list under a physical MR (kernel/LITE path).
    Phys {
        /// lkey of the physical MR (LITE's global MR).
        lkey: u32,
        /// Physically-consecutive fragments, in order.
        chunks: Vec<Chunk>,
    },
}

impl Sge {
    /// Total byte length of the buffer.
    pub fn len(&self) -> usize {
        match self {
            Sge::Virt { len, .. } => *len,
            Sge::Phys { chunks, .. } => chunks.iter().map(|c| c.len as usize).sum(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The remote half of a one-sided operation.
///
/// For user MRs `addr` is a virtual address in the remote process; for a
/// physical (global) MR it is a remote physical address — exactly the
/// distinction LITE exploits.
#[derive(Debug, Clone, Copy)]
pub struct RemoteAddr {
    /// rkey of the target MR on the remote NIC.
    pub rkey: u32,
    /// Address within the MR (virtual or physical, per MR kind).
    pub addr: u64,
}

/// Completion opcode (subset of `ibv_wc_opcode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcOpcode {
    /// One-sided write completed.
    RdmaWrite,
    /// One-sided read completed (data is in the local buffer).
    RdmaRead,
    /// Two-sided send completed locally.
    Send,
    /// Incoming send consumed a posted receive.
    Recv,
    /// Incoming write-with-immediate consumed a receive credit.
    RecvRdmaWithImm,
    /// Atomic completed (old value in `atomic_old`).
    Atomic,
}

/// A work completion.
#[derive(Debug, Clone)]
pub struct Wc {
    /// Caller-chosen work-request id (or receive id).
    pub wr_id: u64,
    /// What completed.
    pub opcode: WcOpcode,
    /// Payload length in bytes.
    pub byte_len: usize,
    /// Immediate data, for [`WcOpcode::RecvRdmaWithImm`] (and sends that
    /// carried immediates).
    pub imm: Option<u32>,
    /// Originating (node, qp) for receive-side completions.
    pub src: Option<(NodeId, QpId)>,
    /// Virtual time at which this completion became observable.
    pub ready_at: Nanos,
    /// Old value returned by an atomic.
    pub atomic_old: Option<u64>,
}

impl Wc {
    /// Builds a minimal completion.
    pub fn new(wr_id: u64, opcode: WcOpcode, byte_len: usize, ready_at: Nanos) -> Self {
        Wc {
            wr_id,
            opcode,
            byte_len,
            imm: None,
            src: None,
            ready_at,
            atomic_old: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sge_lengths() {
        let v = Sge::Virt {
            lkey: 1,
            addr: 0x1000,
            len: 64,
        };
        assert_eq!(v.len(), 64);
        let p = Sge::Phys {
            lkey: 2,
            chunks: vec![
                Chunk { addr: 0, len: 100 },
                Chunk {
                    addr: 4096,
                    len: 28,
                },
            ],
        };
        assert_eq!(p.len(), 128);
        assert!(!p.is_empty());
        let e = Sge::Phys {
            lkey: 2,
            chunks: vec![],
        };
        assert!(e.is_empty());
    }
}
