//! Verbs-level errors.

use std::fmt;

use smem::MemError;

/// Result alias for verbs operations.
pub type VerbsResult<T> = Result<T, VerbsError>;

/// Errors surfaced by the simulated Verbs layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerbsError {
    /// The lkey/rkey does not name a registered MR on that NIC.
    BadKey {
        /// The unknown key.
        key: u32,
    },
    /// Access outside the registered region.
    OutOfBounds {
        /// Offending address.
        addr: u64,
        /// Access length in bytes.
        len: usize,
    },
    /// The MR's access flags forbid the operation.
    AccessDenied {
        /// Key of the MR whose permissions were violated.
        key: u32,
    },
    /// The QP does not exist or is not connected.
    BadQp {
        /// The QP number.
        qp: u64,
    },
    /// Operation not supported on this QP type (e.g. one-sided on UD).
    BadOpForQpType,
    /// Receiver not ready: no posted receive buffer / IMM credit.
    ReceiverNotReady,
    /// Posted receive buffer too small for the incoming message.
    RecvBufferTooSmall {
        /// Incoming payload length.
        need: usize,
        /// Posted buffer capacity.
        have: usize,
    },
    /// UD payload exceeds one MTU.
    PayloadTooLarge {
        /// Payload length.
        len: usize,
        /// The MTU.
        max: usize,
    },
    /// Target node id outside the fabric.
    BadNode {
        /// The offending node id.
        node: usize,
    },
    /// Underlying (simulated) memory fault.
    Mem(MemError),
    /// The QP is in the error state (broken by a fault); it must be
    /// destroyed and re-established before further use.
    QpBroken {
        /// The broken QP's number.
        qp: u64,
    },
    /// The remote side closed / the fabric was shut down.
    Disconnected,
    /// Operation timed out (used by layers above for failure detection).
    Timeout,
}

impl fmt::Display for VerbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbsError::BadKey { key } => write!(f, "unknown lkey/rkey {key:#x}"),
            VerbsError::OutOfBounds { addr, len } => {
                write!(f, "access out of MR bounds: {addr:#x}+{len}")
            }
            VerbsError::AccessDenied { key } => write!(f, "MR {key:#x} access denied"),
            VerbsError::BadQp { qp } => write!(f, "bad or unconnected QP {qp}"),
            VerbsError::BadOpForQpType => write!(f, "operation unsupported on this QP type"),
            VerbsError::ReceiverNotReady => write!(f, "receiver not ready (RNR)"),
            VerbsError::RecvBufferTooSmall { need, have } => {
                write!(
                    f,
                    "posted receive buffer too small: need {need}, have {have}"
                )
            }
            VerbsError::PayloadTooLarge { len, max } => {
                write!(f, "UD payload {len} exceeds MTU {max}")
            }
            VerbsError::BadNode { node } => write!(f, "no such node {node}"),
            VerbsError::Mem(e) => write!(f, "memory fault: {e}"),
            VerbsError::QpBroken { qp } => write!(f, "QP {qp} is in the error state"),
            VerbsError::Disconnected => write!(f, "peer disconnected"),
            VerbsError::Timeout => write!(f, "operation timed out"),
        }
    }
}

impl std::error::Error for VerbsError {}

impl From<MemError> for VerbsError {
    fn from(e: MemError) -> Self {
        VerbsError::Mem(e)
    }
}
