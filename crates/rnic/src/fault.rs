//! Deterministic fault injection for the fabric.
//!
//! A [`FaultPlan`] is a seeded schedule of failures attached to an
//! [`IbFabric`](crate::IbFabric): individual work requests can be
//! dropped or delayed, a specific QP can be broken (moved to the error
//! state, as a real RC QP does after retry exhaustion), and whole nodes
//! can crash and later restart. It generalizes the boolean
//! `set_down` hook into first-class, testable failure scenarios.
//!
//! Determinism: probabilistic rules draw from one `SmallRng` seeded by
//! the plan, and scheduled rules (`BreakQp`, `CrashNode`) trigger on a
//! fabric-wide *operation counter* — the number of work requests that
//! have passed the injection point — rather than on wall or virtual
//! time. Same plan + same workload interleaving ⇒ same faults. The
//! counter keeps advancing while nodes are down (failed attempts and
//! retries count), so a `CrashNode` restart scheduled in operations is
//! always reached.
//!
//! Injection happens at the *top* of every verb, before any side effect
//! (no memory written, no receive credit consumed, no completion
//! pushed), so a layer above can safely retry a faulted work request.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use simnet::Nanos;

use crate::fabric::NodeId;
use crate::qp::QpId;

/// One rule of a [`FaultPlan`].
#[derive(Debug, Clone)]
pub enum FaultRule {
    /// Drop matching work requests with probability `prob` (they vanish
    /// before any side effect; the verb reports
    /// [`VerbsError::Timeout`](crate::VerbsError::Timeout), like an RC
    /// QP whose retransmissions were lost). At most `max_drops` fire.
    DropWr {
        /// Only WRs posted by this node match (any if `None`).
        src: Option<NodeId>,
        /// Only WRs towards this node match (any if `None`).
        dst: Option<NodeId>,
        /// Per-WR drop probability in `[0, 1]`.
        prob: f64,
        /// Upper bound on fired drops (`u64::MAX` for unlimited).
        max_drops: u64,
    },
    /// Delay matching work requests by `delay_ns` of virtual time with
    /// probability `prob` (congestion / retransmission stand-in).
    DelayWr {
        /// Only WRs posted by this node match (any if `None`).
        src: Option<NodeId>,
        /// Only WRs towards this node match (any if `None`).
        dst: Option<NodeId>,
        /// Per-WR delay probability in `[0, 1]`.
        prob: f64,
        /// Added latency in virtual nanoseconds.
        delay_ns: Nanos,
    },
    /// Move the first QP carrying a `src → dst` work request at or after
    /// fabric-wide operation `at_op` into the error state (both ends).
    /// Fires once.
    BreakQp {
        /// Posting node of the victim QP.
        src: NodeId,
        /// Peer node of the victim QP.
        dst: NodeId,
        /// Operation count that arms the rule.
        at_op: u64,
    },
    /// Drop the *response* leg of a matching atomic (fetch-add /
    /// cmp-swap) — the remote side has already applied the op when this
    /// fires, but the requester sees
    /// [`VerbsError::Timeout`](crate::VerbsError::Timeout), exactly the
    /// lost-ACK window that makes blind retry of a non-idempotent verb
    /// double-apply. Evaluated only at the dedicated ack injection point
    /// ([`IbFabric::fault_check_ack`](crate::IbFabric::fault_check_ack)),
    /// which deliberately does **not** advance the fabric-wide operation
    /// counter — op-scheduled `BreakQp`/`CrashNode` rules keep firing at
    /// the same request-leg ops whether or not ack rules are installed.
    DropAtomicAck {
        /// Only atomics posted by this node match (any if `None`).
        src: Option<NodeId>,
        /// Only atomics towards this node match (any if `None`).
        dst: Option<NodeId>,
        /// Per-ack drop probability in `[0, 1]`.
        prob: f64,
        /// Upper bound on fired drops (`u64::MAX` for unlimited).
        max_drops: u64,
    },
    /// Crash `node` (mark it down) at fabric-wide operation `at_op`,
    /// restarting it `restart_after_ops` operations later
    /// (`u64::MAX` = never). Memory contents survive the outage, as on
    /// a machine whose NIC/link died and came back.
    CrashNode {
        /// The victim node.
        node: NodeId,
        /// Operation count at which the node goes down.
        at_op: u64,
        /// Operations after `at_op` until the node comes back.
        restart_after_ops: u64,
    },
}

/// A seeded schedule of faults to install on a fabric.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// RNG seed for the probabilistic rules.
    pub seed: u64,
    /// The rules, evaluated in order for every work request.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn with(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }
}

/// What the injection point decided for one work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Proceed normally.
    None,
    /// Drop the WR before any side effect (surface a timeout).
    Drop,
    /// Proceed, but add this much virtual latency first.
    Delay(Nanos),
    /// Break the posting QP (both ends) and fail the WR.
    BreakQp,
}

/// Counts of faults actually fired (for assertions and reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Work requests seen by the injection point.
    pub ops_seen: u64,
    /// WRs dropped.
    pub drops: u64,
    /// WRs delayed.
    pub delays: u64,
    /// Atomic response legs dropped (op already applied remotely).
    pub ack_drops: u64,
    /// QPs broken.
    pub qp_breaks: u64,
    /// Node crashes fired.
    pub crashes: u64,
    /// Node restarts fired.
    pub restarts: u64,
}

/// Per-rule mutable trigger state.
#[derive(Debug, Clone, Copy)]
enum RuleState {
    Drop { fired: u64 },
    AckDrop { fired: u64 },
    Delay,
    Break { fired: bool },
    Crash { crashed: bool, restarted: bool },
}

/// What the fabric must do about node power state after an injection
/// decision (applied by the caller, outside the plan lock).
pub(crate) struct PowerTransitions {
    pub(crate) crash: Vec<NodeId>,
    pub(crate) restart: Vec<NodeId>,
}

/// The live state of an installed plan. Owned by the fabric behind a
/// mutex; every injection point funnels through [`FaultState::check`].
pub(crate) struct FaultState {
    rules: Vec<FaultRule>,
    states: Vec<RuleState>,
    rng: SmallRng,
    stats: FaultStats,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let states = plan
            .rules
            .iter()
            .map(|r| match r {
                FaultRule::DropWr { .. } => RuleState::Drop { fired: 0 },
                FaultRule::DropAtomicAck { .. } => RuleState::AckDrop { fired: 0 },
                FaultRule::DelayWr { .. } => RuleState::Delay,
                FaultRule::BreakQp { .. } => RuleState::Break { fired: false },
                FaultRule::CrashNode { .. } => RuleState::Crash {
                    crashed: false,
                    restarted: false,
                },
            })
            .collect();
        FaultState {
            rules: plan.rules,
            states,
            rng: SmallRng::seed_from_u64(plan.seed),
            stats: FaultStats::default(),
        }
    }

    pub(crate) fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Evaluates one work request `src → dst` posted on `qp` (QPs are
    /// breakable only when identified). Returns the action plus any node
    /// power transitions the fabric must apply.
    pub(crate) fn check(
        &mut self,
        op_counter: &AtomicU64,
        src: NodeId,
        dst: NodeId,
        qp: Option<QpId>,
    ) -> (FaultAction, PowerTransitions) {
        let op = op_counter.fetch_add(1, Ordering::Relaxed);
        self.stats.ops_seen = op + 1;
        let mut power = PowerTransitions {
            crash: Vec::new(),
            restart: Vec::new(),
        };
        let mut action = FaultAction::None;
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            match (rule, state) {
                (
                    FaultRule::CrashNode {
                        node,
                        at_op,
                        restart_after_ops,
                    },
                    RuleState::Crash { crashed, restarted },
                ) => {
                    if !*crashed && op >= *at_op {
                        *crashed = true;
                        self.stats.crashes += 1;
                        power.crash.push(*node);
                    }
                    if *crashed
                        && !*restarted
                        && *restart_after_ops != u64::MAX
                        && op >= at_op.saturating_add(*restart_after_ops)
                    {
                        *restarted = true;
                        self.stats.restarts += 1;
                        power.restart.push(*node);
                    }
                }
                (
                    FaultRule::BreakQp {
                        src: rs,
                        dst: rd,
                        at_op,
                    },
                    RuleState::Break { fired },
                ) => {
                    if action == FaultAction::None
                        && !*fired
                        && qp.is_some()
                        && *rs == src
                        && *rd == dst
                        && op >= *at_op
                    {
                        *fired = true;
                        self.stats.qp_breaks += 1;
                        action = FaultAction::BreakQp;
                    }
                }
                (
                    FaultRule::DropWr {
                        src: rs,
                        dst: rd,
                        prob,
                        max_drops,
                    },
                    RuleState::Drop { fired },
                ) => {
                    if action == FaultAction::None
                        && rs.is_none_or(|n| n == src)
                        && rd.is_none_or(|n| n == dst)
                        && *fired < *max_drops
                        && self.rng.gen_bool(*prob)
                    {
                        *fired += 1;
                        self.stats.drops += 1;
                        action = FaultAction::Drop;
                    }
                }
                (
                    FaultRule::DelayWr {
                        src: rs,
                        dst: rd,
                        prob,
                        delay_ns,
                    },
                    RuleState::Delay,
                ) => {
                    if action == FaultAction::None
                        && rs.is_none_or(|n| n == src)
                        && rd.is_none_or(|n| n == dst)
                        && self.rng.gen_bool(*prob)
                    {
                        self.stats.delays += 1;
                        action = FaultAction::Delay(*delay_ns);
                    }
                }
                // Ack rules are evaluated only at the ack injection
                // point (`check_ack`) — the request leg ignores them.
                (FaultRule::DropAtomicAck { .. }, RuleState::AckDrop { .. }) => {}
                _ => unreachable!("rule/state vectors built together"),
            }
        }
        (action, power)
    }

    /// Evaluates the *response leg* of one atomic `src → dst` whose
    /// remote apply already happened. Only [`FaultRule::DropAtomicAck`]
    /// rules participate, and the fabric-wide operation counter is not
    /// advanced — existing op-scheduled fault schedules stay byte-for-
    /// byte identical when ack rules are added to a plan.
    pub(crate) fn check_ack(&mut self, src: NodeId, dst: NodeId) -> FaultAction {
        let mut action = FaultAction::None;
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            if let (
                FaultRule::DropAtomicAck {
                    src: rs,
                    dst: rd,
                    prob,
                    max_drops,
                },
                RuleState::AckDrop { fired },
            ) = (rule, state)
            {
                if action == FaultAction::None
                    && rs.is_none_or(|n| n == src)
                    && rd.is_none_or(|n| n == dst)
                    && *fired < *max_drops
                    && self.rng.gen_bool(*prob)
                {
                    *fired += 1;
                    self.stats.ack_drops += 1;
                    action = FaultAction::Drop;
                }
            }
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(
        st: &mut FaultState,
        ctr: &AtomicU64,
        src: NodeId,
        dst: NodeId,
        qp: Option<QpId>,
    ) -> FaultAction {
        st.check(ctr, src, dst, qp).0
    }

    #[test]
    fn drop_rule_is_deterministic_and_bounded() {
        let plan = FaultPlan::seeded(7).with(FaultRule::DropWr {
            src: None,
            dst: Some(1),
            prob: 0.5,
            max_drops: 3,
        });
        let run = |plan: FaultPlan| {
            let mut st = FaultState::new(plan);
            let ctr = AtomicU64::new(0);
            (0..64)
                .map(|_| check(&mut st, &ctr, 0, 1, None))
                .collect::<Vec<_>>()
        };
        let a = run(plan.clone());
        let b = run(plan);
        assert_eq!(a, b, "same seed, same schedule");
        let drops = a.iter().filter(|&&x| x == FaultAction::Drop).count();
        assert_eq!(drops, 3, "capped at max_drops");
        // WRs towards other nodes never match.
        let mut st = FaultState::new(FaultPlan::seeded(7).with(FaultRule::DropWr {
            src: None,
            dst: Some(1),
            prob: 1.0,
            max_drops: u64::MAX,
        }));
        let ctr = AtomicU64::new(0);
        assert_eq!(check(&mut st, &ctr, 0, 2, None), FaultAction::None);
    }

    #[test]
    fn break_rule_fires_once_on_matching_qp_traffic() {
        let mut st = FaultState::new(FaultPlan::seeded(1).with(FaultRule::BreakQp {
            src: 0,
            dst: 1,
            at_op: 2,
        }));
        let ctr = AtomicU64::new(0);
        assert_eq!(check(&mut st, &ctr, 0, 1, Some(9)), FaultAction::None); // op 0
        assert_eq!(check(&mut st, &ctr, 0, 1, None), FaultAction::None); // op 1, no QP
        assert_eq!(check(&mut st, &ctr, 1, 0, Some(9)), FaultAction::None); // op 2, wrong dir
        assert_eq!(check(&mut st, &ctr, 0, 1, Some(9)), FaultAction::BreakQp); // op 3
        assert_eq!(check(&mut st, &ctr, 0, 1, Some(9)), FaultAction::None); // fired once
        assert_eq!(st.stats().qp_breaks, 1);
    }

    #[test]
    fn ack_drop_rule_fires_only_on_ack_leg_and_keeps_op_counter() {
        let plan = FaultPlan::seeded(11)
            .with(FaultRule::DropAtomicAck {
                src: Some(0),
                dst: Some(1),
                prob: 1.0,
                max_drops: 2,
            })
            .with(FaultRule::BreakQp {
                src: 0,
                dst: 1,
                at_op: 2,
            });
        let mut st = FaultState::new(plan);
        let ctr = AtomicU64::new(0);
        // Request legs ignore the ack rule entirely.
        assert_eq!(check(&mut st, &ctr, 0, 1, None), FaultAction::None); // op 0
        assert_eq!(check(&mut st, &ctr, 0, 1, None), FaultAction::None); // op 1
                                                                         // Ack legs do not advance the counter...
        assert_eq!(st.check_ack(0, 1), FaultAction::Drop);
        assert_eq!(st.check_ack(1, 0), FaultAction::None); // wrong direction
        assert_eq!(ctr.load(Ordering::Relaxed), 2);
        // ...so the op-scheduled BreakQp still fires exactly at op 2.
        assert_eq!(check(&mut st, &ctr, 0, 1, Some(9)), FaultAction::BreakQp);
        // Bounded by max_drops.
        assert_eq!(st.check_ack(0, 1), FaultAction::Drop);
        assert_eq!(st.check_ack(0, 1), FaultAction::None);
        assert_eq!(st.stats().ack_drops, 2);
    }

    #[test]
    fn crash_and_restart_trigger_on_op_counts() {
        let mut st = FaultState::new(FaultPlan::seeded(1).with(FaultRule::CrashNode {
            node: 2,
            at_op: 1,
            restart_after_ops: 3,
        }));
        let ctr = AtomicU64::new(0);
        let (_, p0) = st.check(&ctr, 0, 1, None); // op 0
        assert!(p0.crash.is_empty());
        let (_, p1) = st.check(&ctr, 0, 1, None); // op 1: crash
        assert_eq!(p1.crash, vec![2]);
        assert!(p1.restart.is_empty());
        let (_, _) = st.check(&ctr, 0, 1, None); // op 2
        let (_, _) = st.check(&ctr, 0, 1, None); // op 3
        let (_, p4) = st.check(&ctr, 0, 1, None); // op 4: restart
        assert_eq!(p4.restart, vec![2]);
        assert_eq!((st.stats().crashes, st.stats().restarts), (1, 1));
    }
}
