//! The RNIC/fabric cost model.
//!
//! Every constant is calibrated against a number the paper reports for its
//! testbed (two-socket Xeon E5-2620, 40 Gbps ConnectX-3, one IB switch) or
//! against well-known ConnectX-3 characteristics. The *shapes* of the
//! reproduced figures come from the model's structure (caches, queues),
//! not from these constants; the constants only pin the axes.

use simnet::Nanos;

/// Cost/capacity parameters for one simulated RNIC + fabric.
#[derive(Debug, Clone)]
pub struct CostModel {
    // ---- software/NIC interface ----
    /// CPU cost to build and ring a work request (doorbell, WQE write).
    pub post_wr_ns: Nanos,
    /// CPU cost of one completion-queue poll that returns an entry.
    pub cq_poll_ns: Nanos,
    /// CPU cost of one empty completion-queue poll.
    pub cq_poll_empty_ns: Nanos,

    // ---- NIC request engines ----
    /// Per-WQE service time on the NIC request engine (pipelined rate:
    /// ~5.5 M small verbs/s, matching Fig 5's flat-region throughput).
    pub nic_engine_ns: Nanos,
    /// Extra engine service for two-sided receive handling.
    pub recv_handle_ns: Nanos,
    /// Extra engine service for an atomic (fetch-add / cmp-swap) —
    /// read-modify-write through the PCIe root complex.
    pub atomic_extra_ns: Nanos,

    // ---- fabric ----
    /// One-way propagation + switch traversal.
    pub propagation_ns: Nanos,
    /// Effective data bandwidth of a node's link (40 Gbps minus framing;
    /// the paper's peak measured ~3.9 GB/s).
    pub link_bytes_per_sec: u64,
    /// Acknowledgement / completion return path cost.
    pub ack_ns: Nanos,

    // ---- on-NIC SRAM: the scalability model ----
    /// MR key-table capacity (entries). The paper observes degradation
    /// beyond ~100 MRs.
    pub mr_cache_entries: usize,
    /// Penalty per MR-key miss (fetch from host memory over PCIe).
    pub mr_miss_ns: Nanos,
    /// PTE cache capacity in *pages*. 1024 pages = 4 MB reach, where the
    /// paper's Fig 5 cliff begins.
    pub pte_cache_entries: usize,
    /// Penalty per PTE miss.
    pub pte_miss_ns: Nanos,
    /// QP context cache capacity (QPs).
    pub qp_cache_entries: usize,
    /// Penalty per QP-context miss.
    pub qp_miss_ns: Nanos,

    // ---- registration (host-side, Fig 8) ----
    /// Fixed cost of `ibv_reg_mr` bookkeeping.
    pub reg_mr_base_ns: Nanos,
    /// Per-page pin cost during registration (get_user_pages).
    pub pin_page_ns: Nanos,
    /// Fixed cost of `ibv_dereg_mr`.
    pub dereg_mr_base_ns: Nanos,
    /// Per-page unpin cost during deregistration.
    pub unpin_page_ns: Nanos,
    /// First-touch page-fault service for a lazily registered page: the
    /// NIC raises an event, the host pins the page and patches the NIC
    /// page table (the ODP/NP-RDMA pin-free path). Much dearer than a
    /// register-time pin, which is the eager-vs-lazy tradeoff.
    pub fault_page_ns: Nanos,

    // ---- memory ----
    /// Host memcpy bandwidth (user<->kernel moves, local memcpy).
    pub memcpy_bytes_per_sec: u64,

    // ---- UD specifics ----
    /// Extra per-message cost of UD (address handle resolution, GRH).
    pub ud_extra_ns: Nanos,
    /// Maximum UD payload (one MTU; no fragmentation in UD).
    pub ud_max_payload: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            post_wr_ns: 100,
            cq_poll_ns: 150,
            cq_poll_empty_ns: 60,
            nic_engine_ns: 180,
            recv_handle_ns: 200,
            atomic_extra_ns: 900,
            propagation_ns: 450,
            link_bytes_per_sec: 3_900_000_000,
            ack_ns: 350,
            mr_cache_entries: 128,
            mr_miss_ns: 1_100,
            pte_cache_entries: 1_024,
            pte_miss_ns: 900,
            qp_cache_entries: 256,
            qp_miss_ns: 700,
            reg_mr_base_ns: 5_000,
            pin_page_ns: 350,
            dereg_mr_base_ns: 3_000,
            unpin_page_ns: 250,
            fault_page_ns: 1_800,
            memcpy_bytes_per_sec: 10_000_000_000,
            ud_extra_ns: 150,
            ud_max_payload: 4_096,
        }
    }
}

impl CostModel {
    /// Transfer time of `bytes` on the link.
    #[inline]
    pub fn link_time(&self, bytes: u64) -> Nanos {
        simnet::transfer_time(bytes, self.link_bytes_per_sec)
    }

    /// Host memcpy time for `bytes`.
    #[inline]
    pub fn memcpy_time(&self, bytes: u64) -> Nanos {
        simnet::transfer_time(bytes, self.memcpy_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latency_budget_matches_paper() {
        // A small one-sided write should come out around 1.2-1.7 us:
        // post + engine + link + propagation + remote engine + ack.
        let c = CostModel::default();
        let small = c.post_wr_ns
            + c.nic_engine_ns
            + c.link_time(64)
            + c.propagation_ns
            + c.nic_engine_ns
            + c.propagation_ns
            + c.ack_ns
            + c.cq_poll_ns;
        assert!(
            (1_200..=1_900).contains(&small),
            "64B write path = {small} ns"
        );
        // PTE reach = 4 MB.
        assert_eq!(c.pte_cache_entries * 4096, 4 << 20);
    }

    #[test]
    fn link_time_is_sane() {
        let c = CostModel::default();
        // 4 KB at ~3.9 GB/s ≈ 1.05 us.
        let t = c.link_time(4096);
        assert!((900..=1200).contains(&t), "4KB link time = {t}");
    }
}
