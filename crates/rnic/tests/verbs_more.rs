//! Additional Verbs-layer coverage: UC semantics, CQ/RQ sharing (SRQ),
//! counters, resource resets, and error surfaces.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rnic::qp::{RecvEntry, RecvQueue};
use rnic::{Access, Cq, IbConfig, IbFabric, QpType, RemoteAddr, Sge, VerbsError};
use simnet::Ctx;
use smem::{AddrSpace, PhysAllocator};

fn setup(nodes: usize) -> (Arc<IbFabric>, Vec<Arc<AddrSpace>>) {
    let fabric = IbFabric::new(IbConfig::with_nodes(nodes));
    let spaces = (0..nodes)
        .map(|_| {
            Arc::new(AddrSpace::new(Arc::new(Mutex::new(PhysAllocator::new(
                0,
                1 << 28,
            )))))
        })
        .collect();
    (fabric, spaces)
}

/// UC writes complete at the wire (no ack leg) — earlier than RC.
#[test]
fn uc_write_completes_before_rc() {
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();
    let dst_va = spaces[1].mmap(4096).unwrap();
    let dst = fabric
        .nic(1)
        .register_mr(&mut ctx, &spaces[1], dst_va, 4096, Access::RW)
        .unwrap();
    let src_va = spaces[0].mmap(4096).unwrap();
    let src = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], src_va, 4096, Access::LOCAL)
        .unwrap();

    let rc_a = fabric.nic(0).create_qp(QpType::Rc);
    let rc_b = fabric.nic(1).create_qp(QpType::Rc);
    fabric.connect(&rc_a, &rc_b);
    let uc_a = fabric.nic(0).create_qp(QpType::Uc);
    let uc_b = fabric.nic(1).create_qp(QpType::Uc);
    fabric.connect(&uc_a, &uc_b);

    let sge = Sge::Virt {
        lkey: src.lkey(),
        addr: src_va,
        len: 64,
    };
    let remote = RemoteAddr {
        rkey: dst.rkey(),
        addr: dst_va,
    };
    // Warm, then compare completion deltas from the same instant.
    fabric
        .nic(0)
        .post_write(&mut ctx, &rc_a, 0, &sge, remote, None, false)
        .unwrap();
    fabric
        .nic(0)
        .post_write(&mut ctx, &uc_a, 0, &sge, remote, None, false)
        .unwrap();
    let t = ctx.now();
    let rc_comp = fabric
        .nic(0)
        .post_write(&mut ctx, &rc_a, 0, &sge, remote, None, false)
        .unwrap();
    ctx.wait_until(t); // same epoch for the UC probe
    let uc_comp = fabric
        .nic(0)
        .post_write(&mut ctx, &uc_a, 0, &sge, remote, None, false)
        .unwrap();
    assert!(
        uc_comp < rc_comp,
        "UC ({uc_comp}) must complete before RC ({rc_comp}) — no ack leg"
    );
    // UC still refuses reads and atomics.
    assert!(matches!(
        fabric
            .nic(0)
            .post_read(&mut ctx, &uc_a, 0, &sge, remote, false),
        Err(VerbsError::BadOpForQpType)
    ));
    assert!(matches!(
        fabric.nic(0).fetch_add(&mut ctx, &uc_a, remote, 1),
        Err(VerbsError::BadOpForQpType)
    ));
}

/// Several QPs sharing one recv CQ and one receive queue (SRQ style):
/// messages from different senders drain through the shared structures.
#[test]
fn srq_style_sharing_across_qps() {
    let (fabric, spaces) = setup(3);
    let mut ctx = Ctx::new();
    let shared_cq = Arc::new(Cq::new());
    let shared_rq = Arc::new(RecvQueue::new());

    // Node 2 hosts two QPs (one per peer) on the shared structures.
    let mk_server_qp = |peer: usize| {
        let q2 = fabric.nic(2).create_qp_with(
            QpType::Rc,
            Arc::new(Cq::new()),
            Arc::clone(&shared_cq),
            Arc::clone(&shared_rq),
        );
        let qp = fabric.nic(2).create_qp(QpType::Rc); // placeholder peer end
        let q_peer = fabric.nic(peer).create_qp(QpType::Rc);
        fabric.connect(&q2, &q_peer);
        drop(qp);
        q_peer
    };
    let q0 = mk_server_qp(0);
    let q1 = mk_server_qp(1);

    // Post shared buffers.
    let rbuf_va = spaces[2].mmap(16 * 1024).unwrap();
    let rbuf = fabric
        .nic(2)
        .register_mr(&mut ctx, &spaces[2], rbuf_va, 16 * 1024, Access::LOCAL)
        .unwrap();
    for i in 0..8 {
        shared_rq.post(RecvEntry {
            wr_id: i,
            sge: Some(Sge::Virt {
                lkey: rbuf.lkey(),
                addr: rbuf_va + i * 1024,
                len: 1024,
            }),
        });
    }

    // Both peers send through their own QPs.
    for (node, qp, tag) in [(0usize, &q0, 0xAAu8), (1, &q1, 0xBB)] {
        let sva = spaces[node].mmap(4096).unwrap();
        let smr = fabric
            .nic(node)
            .register_mr(&mut ctx, &spaces[node], sva, 4096, Access::LOCAL)
            .unwrap();
        let pa = spaces[node].translate(sva).unwrap();
        fabric.mem(node).write(pa, &[tag; 32]).unwrap();
        fabric
            .nic(node)
            .post_send(
                &mut ctx,
                qp,
                7,
                &Sge::Virt {
                    lkey: smr.lkey(),
                    addr: sva,
                    len: 32,
                },
                None,
                false,
            )
            .unwrap();
    }
    // Both arrive in the one shared CQ.
    let mut rctx = Ctx::new();
    let mut seen = Vec::new();
    for _ in 0..2 {
        let wc = shared_cq
            .poll_blocking(&mut rctx, fabric.cost(), false, Duration::from_secs(2))
            .unwrap();
        seen.push(wc.src.unwrap().0);
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![0, 1]);
    assert_eq!(shared_rq.depth(), 6, "two buffers consumed from the SRQ");
}

/// NIC statistics reflect traffic, and resets clear queueing state.
#[test]
fn stats_and_resets() {
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();
    let dst_va = spaces[1].mmap(1 << 16).unwrap();
    let dst = fabric
        .nic(1)
        .register_mr(&mut ctx, &spaces[1], dst_va, 1 << 16, Access::RW)
        .unwrap();
    let src_va = spaces[0].mmap(4096).unwrap();
    let src = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], src_va, 4096, Access::LOCAL)
        .unwrap();
    let (qa, _) = fabric.rc_pair(0, 1);
    let sge = Sge::Virt {
        lkey: src.lkey(),
        addr: src_va,
        len: 256,
    };
    for _ in 0..10 {
        fabric
            .nic(0)
            .post_write(
                &mut ctx,
                &qa,
                0,
                &sge,
                RemoteAddr {
                    rkey: dst.rkey(),
                    addr: dst_va,
                },
                None,
                false,
            )
            .unwrap();
    }
    let s = fabric.nic(0).stats();
    assert_eq!(s.one_sided_ops, 10);
    assert_eq!(s.bytes_tx, 2560);
    assert_eq!(s.live_mrs, 1);
    assert!(s.live_qps >= 1);
    fabric.nic(0).reset_resources();
    fabric.nic(1).reset_resources();
    // After a reset, a fresh clock on a *fresh QP* starts immediately
    // (an existing QP keeps its per-QP FIFO ordering horizon).
    let (qf, _) = fabric.rc_pair(0, 1);
    let mut fresh = Ctx::new();
    let comp = fabric
        .nic(0)
        .post_write(
            &mut fresh,
            &qf,
            0,
            &sge,
            RemoteAddr {
                rkey: dst.rkey(),
                addr: dst_va,
            },
            None,
            false,
        )
        .unwrap();
    assert!(comp < 10_000, "reset state should serve a t=0 client fast");
}

/// Deregistered keys stop working; unknown keys are typed errors.
#[test]
fn key_lifecycle_errors() {
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();
    let dst_va = spaces[1].mmap(4096).unwrap();
    let dst = fabric
        .nic(1)
        .register_mr(&mut ctx, &spaces[1], dst_va, 4096, Access::RW)
        .unwrap();
    let src_va = spaces[0].mmap(4096).unwrap();
    let src = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], src_va, 4096, Access::LOCAL)
        .unwrap();
    let (qa, _) = fabric.rc_pair(0, 1);
    let sge = Sge::Virt {
        lkey: src.lkey(),
        addr: src_va,
        len: 16,
    };
    let remote = RemoteAddr {
        rkey: dst.rkey(),
        addr: dst_va,
    };
    fabric
        .nic(0)
        .post_write(&mut ctx, &qa, 0, &sge, remote, None, false)
        .unwrap();
    fabric.nic(1).deregister_mr(&mut ctx, &dst).unwrap();
    assert!(matches!(
        fabric
            .nic(0)
            .post_write(&mut ctx, &qa, 0, &sge, remote, None, false),
        Err(VerbsError::BadKey { .. })
    ));
    // Bogus local key too.
    let bad = Sge::Virt {
        lkey: 0xDEAD,
        addr: src_va,
        len: 16,
    };
    assert!(matches!(
        fabric.nic(0).post_send(&mut ctx, &qa, 0, &bad, None, false),
        Err(VerbsError::BadKey { .. })
    ));
}
