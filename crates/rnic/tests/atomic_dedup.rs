//! Exactly-once semantics for atomics under lost-ACK faults.
//!
//! `FaultRule::DropAtomicAck` models the window the request-leg gate
//! cannot: the responder applied the atomic, but the completion never
//! reached the requester. A blind retry of an *untagged* verb then
//! double-applies; the *tagged* verbs (`fetch_add_tagged` /
//! `cmp_swap_tagged`) carry a per-logical-op sequence the responder
//! memoizes, so a retry returns the original old value instead.

use std::sync::Arc;

use parking_lot::Mutex;
use rnic::{Access, FaultPlan, FaultRule, IbConfig, IbFabric, RemoteAddr, VerbsError};
use simnet::Ctx;
use smem::{AddrSpace, PhysAllocator};

fn setup() -> (Arc<IbFabric>, u64, RemoteAddr) {
    let fabric = IbFabric::new(IbConfig::with_nodes(2));
    let space = Arc::new(AddrSpace::new(Arc::new(Mutex::new(PhysAllocator::new(
        0,
        1 << 20,
    )))));
    let mut ctx = Ctx::new();
    let va = space.mmap(4096).unwrap();
    let mr = fabric
        .nic(1)
        .register_mr(&mut ctx, &space, va, 4096, Access::RW)
        .unwrap();
    let pa = space.translate(va).unwrap();
    fabric.mem(1).store_u64(pa, 0).unwrap();
    let remote = RemoteAddr {
        rkey: mr.rkey(),
        addr: va,
    };
    (fabric, pa, remote)
}

fn ack_drop_plan(max_drops: u64) -> FaultPlan {
    FaultPlan::seeded(42).with(FaultRule::DropAtomicAck {
        src: Some(0),
        dst: Some(1),
        prob: 1.0,
        max_drops,
    })
}

/// The modeled hazard: an untagged fetch-add whose ack is dropped has
/// already landed, so a blind retry applies the delta twice.
#[test]
fn untagged_blind_retry_double_applies() {
    let (fabric, pa, remote) = setup();
    let (qa, _qb) = fabric.rc_pair(0, 1);
    fabric.install_fault_plan(ack_drop_plan(1));
    let mut ctx = Ctx::new();

    let first = fabric.nic(0).fetch_add(&mut ctx, &qa, remote, 5);
    assert!(matches!(first, Err(VerbsError::Timeout)), "{first:?}");
    assert_eq!(
        fabric.mem(1).load_u64(pa).unwrap(),
        5,
        "the op applied before its ack was lost"
    );
    // A layer above that blindly retries the same logical op...
    let second = fabric.nic(0).fetch_add(&mut ctx, &qa, remote, 5).unwrap();
    assert_eq!(second, 5);
    // ...has now applied it twice. This is the bug the tagged verbs fix.
    assert_eq!(fabric.mem(1).load_u64(pa).unwrap(), 10);
    assert_eq!(fabric.fault_stats().ack_drops, 1);
}

/// Tagged retry with the same sequence is exactly-once: the responder
/// memo returns the original old value and the word is untouched.
#[test]
fn tagged_retry_is_exactly_once() {
    let (fabric, pa, remote) = setup();
    let (qa, _qb) = fabric.rc_pair(0, 1);
    fabric.install_fault_plan(ack_drop_plan(2));
    let mut ctx = Ctx::new();

    // Fetch-add: first attempt applies + loses its ack; the retry (same
    // token) must return old = 0 and leave the word at 5.
    let r = fabric
        .nic(0)
        .fetch_add_tagged(&mut ctx, &qa, remote, 5, (0, 1));
    assert!(matches!(r, Err(VerbsError::Timeout)));
    let old = fabric
        .nic(0)
        .fetch_add_tagged(&mut ctx, &qa, remote, 5, (0, 1))
        .unwrap();
    assert_eq!(old, 0);
    assert_eq!(fabric.mem(1).load_u64(pa).unwrap(), 5);

    // CAS: ack of the winning 5 -> 9 swap is lost; the retry must report
    // the original success (old = 5), not a spurious CAS failure from
    // re-executing against the already-swapped word.
    let r = fabric
        .nic(0)
        .cmp_swap_tagged(&mut ctx, &qa, remote, 5, 9, (0, 2));
    assert!(matches!(r, Err(VerbsError::Timeout)));
    let old = fabric
        .nic(0)
        .cmp_swap_tagged(&mut ctx, &qa, remote, 5, 9, (0, 2))
        .unwrap();
    assert_eq!(old, 5, "retry reports the one real apply");
    assert_eq!(fabric.mem(1).load_u64(pa).unwrap(), 9, "swapped once");
    assert_eq!(fabric.fault_stats().ack_drops, 2);
}

/// Distinct logical ops (fresh sequences) are not deduplicated.
#[test]
fn fresh_sequences_apply_normally() {
    let (fabric, pa, remote) = setup();
    let (qa, _qb) = fabric.rc_pair(0, 1);
    let mut ctx = Ctx::new();
    for seq in 0..4u64 {
        let old = fabric
            .nic(0)
            .fetch_add_tagged(&mut ctx, &qa, remote, 1, (0, seq))
            .unwrap();
        assert_eq!(old, seq);
    }
    assert_eq!(fabric.mem(1).load_u64(pa).unwrap(), 4);
}
