//! End-to-end tests of the simulated Verbs layer: data correctness,
//! virtual-time behaviour, and the SRAM scalability model.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rnic::{Access, CostModel, IbConfig, IbFabric, QpType, RemoteAddr, Sge, WcOpcode};
use simnet::{Ctx, MICROS};
use smem::{AddrSpace, PhysAllocator};

/// Builds a fabric plus one address space per node.
fn setup(nodes: usize) -> (Arc<IbFabric>, Vec<Arc<AddrSpace>>) {
    let fabric = IbFabric::new(IbConfig::with_nodes(nodes));
    let spaces = (0..nodes)
        .map(|_| {
            Arc::new(AddrSpace::new(Arc::new(Mutex::new(PhysAllocator::new(
                0,
                1 << 30,
            )))))
        })
        .collect();
    (fabric, spaces)
}

#[test]
fn one_sided_write_moves_bytes() {
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();

    // Node 1 registers a 1 MB remote-writable MR.
    let dst_va = spaces[1].mmap(1 << 20).unwrap();
    let dst_mr = fabric
        .nic(1)
        .register_mr(&mut ctx, &spaces[1], dst_va, 1 << 20, Access::RW)
        .unwrap();

    // Node 0 registers a local buffer and writes into node 1.
    let src_va = spaces[0].mmap(4096).unwrap();
    let src_mr = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], src_va, 4096, Access::LOCAL)
        .unwrap();
    let payload = b"hello, remote memory!".to_vec();
    let src_pa = spaces[0].translate(src_va).unwrap();
    fabric.mem(0).write(src_pa, &payload).unwrap();

    let (qa, _qb) = fabric.rc_pair(0, 1);
    let sge = Sge::Virt {
        lkey: src_mr.lkey(),
        addr: src_va,
        len: payload.len(),
    };
    let remote = RemoteAddr {
        rkey: dst_mr.rkey(),
        addr: dst_va + 100,
    };
    let comp = fabric
        .nic(0)
        .post_write(&mut ctx, &qa, 1, &sge, remote, None, true)
        .unwrap();
    assert!(comp > ctx.now(), "completion is in the future");

    // Poll the send CQ: clock joins the completion stamp.
    let wcs = qa.send_cq.poll(&mut ctx, fabric.cost(), 1);
    assert_eq!(wcs.len(), 1);
    assert_eq!(wcs[0].opcode, WcOpcode::RdmaWrite);
    assert!(ctx.now() >= comp);

    // Bytes actually landed at node 1.
    let dst_pa = spaces[1].translate(dst_va + 100).unwrap();
    let mut back = vec![0u8; payload.len()];
    fabric.mem(1).read(dst_pa, &mut back).unwrap();
    assert_eq!(back, payload);
}

#[test]
fn one_sided_read_fetches_bytes() {
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();

    let data_va = spaces[1].mmap(8192).unwrap();
    let data_mr = fabric
        .nic(1)
        .register_mr(&mut ctx, &spaces[1], data_va, 8192, Access::RO)
        .unwrap();
    let secret: Vec<u8> = (0..256).map(|i| i as u8).collect();
    let data_pa = spaces[1].translate(data_va).unwrap();
    fabric.mem(1).write(data_pa, &secret).unwrap();

    let buf_va = spaces[0].mmap(4096).unwrap();
    let buf_mr = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], buf_va, 4096, Access::LOCAL)
        .unwrap();
    let (qa, _qb) = fabric.rc_pair(0, 1);
    let comp = fabric
        .nic(0)
        .post_read(
            &mut ctx,
            &qa,
            2,
            &Sge::Virt {
                lkey: buf_mr.lkey(),
                addr: buf_va,
                len: secret.len(),
            },
            RemoteAddr {
                rkey: data_mr.rkey(),
                addr: data_va,
            },
            false,
        )
        .unwrap();
    ctx.wait_until(comp);

    let buf_pa = spaces[0].translate(buf_va).unwrap();
    let mut got = vec![0u8; secret.len()];
    fabric.mem(0).read(buf_pa, &mut got).unwrap();
    assert_eq!(got, secret);
}

#[test]
fn read_only_mr_rejects_write() {
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();
    let dst_va = spaces[1].mmap(4096).unwrap();
    let dst_mr = fabric
        .nic(1)
        .register_mr(&mut ctx, &spaces[1], dst_va, 4096, Access::RO)
        .unwrap();
    let src_va = spaces[0].mmap(4096).unwrap();
    let src_mr = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], src_va, 4096, Access::LOCAL)
        .unwrap();
    let (qa, _) = fabric.rc_pair(0, 1);
    let err = fabric
        .nic(0)
        .post_write(
            &mut ctx,
            &qa,
            1,
            &Sge::Virt {
                lkey: src_mr.lkey(),
                addr: src_va,
                len: 64,
            },
            RemoteAddr {
                rkey: dst_mr.rkey(),
                addr: dst_va,
            },
            None,
            false,
        )
        .unwrap_err();
    assert!(matches!(err, rnic::VerbsError::AccessDenied { .. }));
}

#[test]
fn out_of_bounds_rejected() {
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();
    let dst_va = spaces[1].mmap(4096).unwrap();
    let dst_mr = fabric
        .nic(1)
        .register_mr(&mut ctx, &spaces[1], dst_va, 4096, Access::RW)
        .unwrap();
    let src_va = spaces[0].mmap(8192).unwrap();
    let src_mr = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], src_va, 8192, Access::LOCAL)
        .unwrap();
    let (qa, _) = fabric.rc_pair(0, 1);
    let err = fabric
        .nic(0)
        .post_write(
            &mut ctx,
            &qa,
            1,
            &Sge::Virt {
                lkey: src_mr.lkey(),
                addr: src_va,
                len: 8192,
            },
            RemoteAddr {
                rkey: dst_mr.rkey(),
                addr: dst_va, // 8 KB into a 4 KB MR
            },
            None,
            false,
        )
        .unwrap_err();
    assert!(matches!(err, rnic::VerbsError::OutOfBounds { .. }));
}

#[test]
fn write_imm_delivers_to_recv_cq() {
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();
    let dst_va = spaces[1].mmap(1 << 16).unwrap();
    let dst_mr = fabric
        .nic(1)
        .register_mr(&mut ctx, &spaces[1], dst_va, 1 << 16, Access::RW)
        .unwrap();
    let src_va = spaces[0].mmap(4096).unwrap();
    let src_mr = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], src_va, 4096, Access::LOCAL)
        .unwrap();
    let (qa, qb) = fabric.rc_pair(0, 1);

    // Without a posted credit the write-imm is RNR-rejected.
    let sge = Sge::Virt {
        lkey: src_mr.lkey(),
        addr: src_va,
        len: 128,
    };
    let remote = RemoteAddr {
        rkey: dst_mr.rkey(),
        addr: dst_va,
    };
    let err = fabric
        .nic(0)
        .post_write(&mut ctx, &qa, 1, &sge, remote, Some(42), false)
        .unwrap_err();
    assert!(matches!(err, rnic::VerbsError::ReceiverNotReady));

    // Post a pure credit and retry.
    fabric.nic(1).post_recv(
        &mut ctx,
        &qb,
        rnic::qp::RecvEntry {
            wr_id: 77,
            sge: None,
        },
    );
    fabric
        .nic(0)
        .post_write(&mut ctx, &qa, 1, &sge, remote, Some(42), false)
        .unwrap();
    let mut rctx = Ctx::new();
    let wc = qb
        .recv_cq
        .poll_blocking(&mut rctx, fabric.cost(), false, Duration::from_secs(1))
        .unwrap();
    assert_eq!(wc.opcode, WcOpcode::RecvRdmaWithImm);
    assert_eq!(wc.imm, Some(42));
    assert_eq!(wc.wr_id, 77);
    assert_eq!(wc.byte_len, 128);
    assert_eq!(wc.src, Some((0, qa.id)));
    assert!(rctx.now() >= MICROS, "arrival stamp propagated");
}

#[test]
fn send_recv_roundtrip() {
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();
    let (qa, qb) = fabric.rc_pair(0, 1);

    // Receiver posts a real buffer.
    let rbuf_va = spaces[1].mmap(4096).unwrap();
    let rbuf_mr = fabric
        .nic(1)
        .register_mr(&mut ctx, &spaces[1], rbuf_va, 4096, Access::LOCAL)
        .unwrap();
    fabric.nic(1).post_recv(
        &mut ctx,
        &qb,
        rnic::qp::RecvEntry {
            wr_id: 9,
            sge: Some(Sge::Virt {
                lkey: rbuf_mr.lkey(),
                addr: rbuf_va,
                len: 4096,
            }),
        },
    );

    let sbuf_va = spaces[0].mmap(4096).unwrap();
    let sbuf_mr = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], sbuf_va, 4096, Access::LOCAL)
        .unwrap();
    let msg = b"ping".to_vec();
    let spa = spaces[0].translate(sbuf_va).unwrap();
    fabric.mem(0).write(spa, &msg).unwrap();

    fabric
        .nic(0)
        .post_send(
            &mut ctx,
            &qa,
            3,
            &Sge::Virt {
                lkey: sbuf_mr.lkey(),
                addr: sbuf_va,
                len: msg.len(),
            },
            None,
            true,
        )
        .unwrap();

    let mut rctx = Ctx::new();
    let wc = qb
        .recv_cq
        .poll_blocking(&mut rctx, fabric.cost(), false, Duration::from_secs(1))
        .unwrap();
    assert_eq!(wc.opcode, WcOpcode::Recv);
    assert_eq!(wc.byte_len, 4);
    let rpa = spaces[1].translate(rbuf_va).unwrap();
    let mut got = vec![0u8; 4];
    fabric.mem(1).read(rpa, &mut got).unwrap();
    assert_eq!(got, msg);

    // Sender's completion also arrives.
    let wcs = qa.send_cq.poll(&mut ctx, fabric.cost(), 4);
    assert_eq!(wcs.len(), 1);
    assert_eq!(wcs[0].opcode, WcOpcode::Send);
}

#[test]
fn ud_send_enforces_mtu_and_delivers() {
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();
    let qa = fabric.nic(0).create_qp(QpType::Ud);
    let qb = fabric.nic(1).create_qp(QpType::Ud);

    let rbuf_va = spaces[1].mmap(8192).unwrap();
    let rbuf_mr = fabric
        .nic(1)
        .register_mr(&mut ctx, &spaces[1], rbuf_va, 8192, Access::LOCAL)
        .unwrap();
    fabric.nic(1).post_recv(
        &mut ctx,
        &qb,
        rnic::qp::RecvEntry {
            wr_id: 1,
            sge: Some(Sge::Virt {
                lkey: rbuf_mr.lkey(),
                addr: rbuf_va,
                len: 4096,
            }),
        },
    );

    let sbuf_va = spaces[0].mmap(8192).unwrap();
    let sbuf_mr = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], sbuf_va, 8192, Access::LOCAL)
        .unwrap();

    // Over-MTU payload is rejected.
    let big = Sge::Virt {
        lkey: sbuf_mr.lkey(),
        addr: sbuf_va,
        len: 5000,
    };
    assert!(matches!(
        fabric
            .nic(0)
            .post_send_ud(&mut ctx, &qa, 1, &big, (1, qb.id), false),
        Err(rnic::VerbsError::PayloadTooLarge { .. })
    ));

    let ok = Sge::Virt {
        lkey: sbuf_mr.lkey(),
        addr: sbuf_va,
        len: 4096,
    };
    fabric
        .nic(0)
        .post_send_ud(&mut ctx, &qa, 1, &ok, (1, qb.id), false)
        .unwrap();
    let mut rctx = Ctx::new();
    let wc = qb
        .recv_cq
        .poll_blocking(&mut rctx, fabric.cost(), false, Duration::from_secs(1))
        .unwrap();
    assert_eq!(wc.byte_len, 4096);
}

#[test]
fn atomics_are_globally_consistent() {
    let (fabric, spaces) = setup(3);
    let mut ctx = Ctx::new();
    let ctr_va = spaces[2].mmap(4096).unwrap();
    let ctr_mr = fabric
        .nic(2)
        .register_mr(&mut ctx, &spaces[2], ctr_va, 4096, Access::RW)
        .unwrap();
    let ctr_pa = spaces[2].translate(ctr_va).unwrap();
    fabric.mem(2).store_u64(ctr_pa, 0).unwrap();

    let remote = RemoteAddr {
        rkey: ctr_mr.rkey(),
        addr: ctr_va,
    };
    let (q0, _) = fabric.rc_pair(0, 2);
    let (q1, _) = fabric.rc_pair(1, 2);

    let old0 = fabric.nic(0).fetch_add(&mut ctx, &q0, remote, 5).unwrap();
    let mut ctx1 = Ctx::new();
    let old1 = fabric.nic(1).fetch_add(&mut ctx1, &q1, remote, 7).unwrap();
    assert_eq!(old0, 0);
    assert_eq!(old1, 5);
    assert_eq!(fabric.mem(2).load_u64(ctr_pa).unwrap(), 12);

    // CAS: succeeds once, then observes the new value.
    let old = fabric
        .nic(0)
        .cmp_swap(&mut ctx, &q0, remote, 12, 100)
        .unwrap();
    assert_eq!(old, 12);
    let old = fabric
        .nic(0)
        .cmp_swap(&mut ctx, &q0, remote, 12, 200)
        .unwrap();
    assert_eq!(old, 100, "failed CAS returns current value");
    assert_eq!(fabric.mem(2).load_u64(ctr_pa).unwrap(), 100);
    // Atomic latency is ~2.2 us as in the paper (§7.2). Measure with the
    // already-advanced clock so we don't queue behind our own history.
    let before = ctx.now();
    fabric.nic(0).fetch_add(&mut ctx, &q0, remote, 1).unwrap();
    let lat = ctx.now() - before;
    assert!(
        (1_500..=3_500).contains(&lat),
        "atomic latency {lat} ns out of range"
    );
}

#[test]
fn down_node_times_out() {
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();
    let dst_va = spaces[1].mmap(4096).unwrap();
    let dst_mr = fabric
        .nic(1)
        .register_mr(&mut ctx, &spaces[1], dst_va, 4096, Access::RW)
        .unwrap();
    let src_va = spaces[0].mmap(4096).unwrap();
    let src_mr = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], src_va, 4096, Access::LOCAL)
        .unwrap();
    let (qa, _) = fabric.rc_pair(0, 1);
    fabric.set_down(1, true);
    let err = fabric
        .nic(0)
        .post_write(
            &mut ctx,
            &qa,
            1,
            &Sge::Virt {
                lkey: src_mr.lkey(),
                addr: src_va,
                len: 64,
            },
            RemoteAddr {
                rkey: dst_mr.rkey(),
                addr: dst_va,
            },
            None,
            false,
        )
        .unwrap_err();
    assert_eq!(err, rnic::VerbsError::Timeout);
    fabric.set_down(1, false);
    assert!(fabric
        .nic(0)
        .post_write(
            &mut ctx,
            &qa,
            1,
            &Sge::Virt {
                lkey: src_mr.lkey(),
                addr: src_va,
                len: 64,
            },
            RemoteAddr {
                rkey: dst_mr.rkey(),
                addr: dst_va,
            },
            None,
            false,
        )
        .is_ok());
}

/// The Figure 4 mechanism: with many MRs, rkey lookups miss in NIC SRAM
/// and latency rises; with one MR they always hit.
#[test]
fn mr_key_cache_produces_fig4_cliff() {
    let cost = CostModel::default();
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();

    // Register 1024 4 KB MRs on node 1 (capacity is 128).
    let n_mrs = 1024usize;
    let region = spaces[1].mmap((n_mrs * 4096) as u64).unwrap();
    let mrs: Vec<_> = (0..n_mrs)
        .map(|i| {
            fabric
                .nic(1)
                .register_mr(
                    &mut ctx,
                    &spaces[1],
                    region + (i * 4096) as u64,
                    4096,
                    Access::RW,
                )
                .unwrap()
        })
        .collect();

    let src_va = spaces[0].mmap(4096).unwrap();
    let src_mr = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], src_va, 4096, Access::LOCAL)
        .unwrap();
    let (qa, _) = fabric.rc_pair(0, 1);
    let sge = Sge::Virt {
        lkey: src_mr.lkey(),
        addr: src_va,
        len: 64,
    };

    // Round-robin over all MRs: every rkey lookup misses.
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
    let mut spread = simnet::Summary::new();
    for _ in 0..400 {
        let mr = &mrs[rng.gen_range(0..n_mrs)];
        let before = ctx.now();
        let comp = fabric
            .nic(0)
            .post_write(
                &mut ctx,
                &qa,
                1,
                &sge,
                RemoteAddr {
                    rkey: mr.rkey(),
                    addr: mr.base(),
                },
                None,
                false,
            )
            .unwrap();
        ctx.wait_until(comp);
        spread.record(ctx.now() - before);
    }

    // Single hot MR: all hits.
    let mut hot = simnet::Summary::new();
    for _ in 0..400 {
        let before = ctx.now();
        let comp = fabric
            .nic(0)
            .post_write(
                &mut ctx,
                &qa,
                1,
                &sge,
                RemoteAddr {
                    rkey: mrs[0].rkey(),
                    addr: mrs[0].base(),
                },
                None,
                false,
            )
            .unwrap();
        ctx.wait_until(comp);
        hot.record(ctx.now() - before);
    }
    assert!(
        spread.mean() > hot.mean() + cost.mr_miss_ns as f64 * 0.8,
        "spread {} vs hot {}",
        spread.mean(),
        hot.mean()
    );
}

/// The Figure 5 mechanism: a working set beyond the PTE cache reach
/// (4 MB) makes every access pay a PTE miss; a physical (global) MR
/// never does.
#[test]
fn pte_cache_produces_fig5_cliff_and_phys_mr_avoids_it() {
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();
    let big = 64u64 << 20; // 64 MB >> 4 MB reach
    let dst_va = spaces[1].mmap(big).unwrap();
    let dst_mr = fabric
        .nic(1)
        .register_mr(&mut ctx, &spaces[1], dst_va, big, Access::RW)
        .unwrap();
    let src_va = spaces[0].mmap(4096).unwrap();
    let src_mr = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], src_va, 4096, Access::LOCAL)
        .unwrap();
    let (qa, _) = fabric.rc_pair(0, 1);
    let sge = Sge::Virt {
        lkey: src_mr.lkey(),
        addr: src_va,
        len: 64,
    };

    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
    let s1 = fabric.nic(1).stats();
    for _ in 0..500 {
        let off = rng.gen_range(0..big - 64) & !63;
        let comp = fabric
            .nic(0)
            .post_write(
                &mut ctx,
                &qa,
                1,
                &sge,
                RemoteAddr {
                    rkey: dst_mr.rkey(),
                    addr: dst_va + off,
                },
                None,
                false,
            )
            .unwrap();
        ctx.wait_until(comp);
    }
    let s2 = fabric.nic(1).stats();
    let misses = s2.pte_misses - s1.pte_misses;
    assert!(
        misses > 400,
        "random access over 64 MB should miss nearly always, got {misses}"
    );

    // LITE path: global physical MR over the whole memory. Zero PTE
    // traffic by construction.
    let gmr = fabric
        .nic(1)
        .register_phys_mr(&mut ctx, 0, fabric.mem(1).size(), Access::RW)
        .unwrap();
    let psge = Sge::Phys {
        lkey: src_mr.lkey(),
        chunks: vec![],
    };
    let _ = psge; // physical sends come from LITE later; here we target it remotely
    let s3 = fabric.nic(1).stats();
    for _ in 0..500 {
        let off = rng.gen_range(0..(1u64 << 29)) & !63;
        let comp = fabric
            .nic(0)
            .post_write(
                &mut ctx,
                &qa,
                1,
                &sge,
                RemoteAddr {
                    rkey: gmr.rkey(),
                    addr: off,
                },
                None,
                false,
            )
            .unwrap();
        ctx.wait_until(comp);
    }
    let s4 = fabric.nic(1).stats();
    assert_eq!(
        s4.pte_misses, s3.pte_misses,
        "physical MR causes no PTE traffic"
    );
}

/// Figure 8 mechanism: registration cost scales with pages pinned;
/// physical registration is O(1).
#[test]
fn registration_cost_scales_with_pages() {
    let (fabric, spaces) = setup(1);
    let cost = CostModel::default();

    let mut ctx = Ctx::new();
    let v_small = spaces[0].mmap(4096).unwrap();
    let t0 = ctx.now();
    let small = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], v_small, 4096, Access::RW)
        .unwrap();
    let small_cost = ctx.now() - t0;

    let v_big = spaces[0].mmap(1 << 20).unwrap();
    let t1 = ctx.now();
    let big = fabric
        .nic(0)
        .register_mr(&mut ctx, &spaces[0], v_big, 1 << 20, Access::RW)
        .unwrap();
    let big_cost = ctx.now() - t1;
    assert!(
        big_cost >= small_cost + 200 * cost.pin_page_ns,
        "1 MB register ({big_cost}) should cost ~256 pages more than 4 KB ({small_cost})"
    );

    let t2 = ctx.now();
    let gmr = fabric
        .nic(0)
        .register_phys_mr(&mut ctx, 0, fabric.mem(0).size(), Access::RW)
        .unwrap();
    let phys_cost = ctx.now() - t2;
    assert!(phys_cost < small_cost * 2, "physical registration is O(1)");

    // Deregistration unpins.
    assert_eq!(spaces[0].pinned_pages(), 1 + 256);
    fabric.nic(0).deregister_mr(&mut ctx, &small).unwrap();
    fabric.nic(0).deregister_mr(&mut ctx, &big).unwrap();
    assert_eq!(spaces[0].pinned_pages(), 0);
    fabric.nic(0).deregister_mr(&mut ctx, &gmr).unwrap();
    assert!(fabric.nic(0).deregister_mr(&mut ctx, &gmr).is_err());
}

/// Concurrent writers through one NIC serialize on its engine/link:
/// aggregate throughput is bounded by the link bandwidth.
#[test]
fn link_saturates_under_parallel_writers() {
    let (fabric, spaces) = setup(2);
    let mut ctx = Ctx::new();
    let big = 16u64 << 20;
    let dst_va = spaces[1].mmap(big).unwrap();
    let dst_mr = fabric
        .nic(1)
        .register_mr(&mut ctx, &spaces[1], dst_va, big, Access::RW)
        .unwrap();

    let threads = 8;
    let per_thread_ops = 64;
    let size = 64 * 1024usize;
    let mut handles = Vec::new();
    for t in 0..threads {
        let fabric = Arc::clone(&fabric);
        let space = Arc::clone(&spaces[0]);
        let rkey = dst_mr.rkey();
        handles.push(std::thread::spawn(move || {
            let mut ctx = Ctx::new();
            let src_va = space.mmap(size as u64).unwrap();
            let src_mr = fabric
                .nic(0)
                .register_mr(&mut ctx, &space, src_va, size as u64, Access::LOCAL)
                .unwrap();
            let (qa, _) = fabric.rc_pair(0, 1);
            let sge = Sge::Virt {
                lkey: src_mr.lkey(),
                addr: src_va,
                len: size,
            };
            let mut last = 0;
            for i in 0..per_thread_ops {
                let off = ((t * per_thread_ops + i) * size) as u64 % (big - size as u64);
                let comp = fabric
                    .nic(0)
                    .post_write(
                        &mut ctx,
                        &qa,
                        i as u64,
                        &sge,
                        RemoteAddr {
                            rkey,
                            addr: dst_va + off,
                        },
                        None,
                        false,
                    )
                    .unwrap();
                ctx.wait_until(comp);
                last = ctx.now();
            }
            last
        }));
    }
    let makespan = handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .max()
        .unwrap();
    let bytes = (threads * per_thread_ops * size) as u64;
    let gbps = bytes as f64 / makespan as f64; // bytes/ns == GB/s
    let link = fabric.cost().link_bytes_per_sec as f64 / 1e9;
    assert!(
        gbps <= link * 1.02,
        "throughput {gbps:.2} GB/s exceeds link {link:.2} GB/s"
    );
    assert!(
        gbps >= link * 0.5,
        "8 blocking writers of 64 KB should get near line rate, got {gbps:.2}"
    );
}
